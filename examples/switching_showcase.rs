//! Walkthrough of the fast-task-switching subsystem (Section 4): the
//! device memory pool, early task cleaning, speculative memory management,
//! and the resulting switch costs under the three runtimes.
//!
//! ```sh
//! cargo run --release --example switching_showcase
//! ```

use hare::cluster::{GpuKind, SimDuration};
use hare::memory::{
    cleaning, plan_cache, switch_time, transfer, MemoryPool, PrevTask, RegionKind, SwitchPolicy,
    SwitchRequest, TaskModelRef,
};
use hare::workload::{JobId, ModelKind};

fn main() {
    let gpu = GpuKind::V100;

    // --- The memory pool -------------------------------------------------
    let mut pool = MemoryPool::new(gpu.spec().memory);
    let bert = ModelKind::BertBase.spec();
    let weights = pool
        .alloc(JobId(0), RegionKind::Weights, bert.param_bytes)
        .unwrap();
    let acts = pool
        .alloc(JobId(0), RegionKind::Activations, bert.activation_bytes)
        .unwrap();
    println!(
        "BERT resident on a {gpu}: {} used of {} ({} free)",
        pool.used(),
        pool.capacity(),
        pool.available()
    );
    // PipeSwitch-style release: pointers only (content leaks!).
    pool.free(acts, false);
    // Hare-style early cleaning: wiped.
    pool.free(weights, true);
    println!(
        "released: {} wiped (Hare), {} un-wiped pointer drops (PipeSwitch's leak surface)\n",
        pool.wiped(),
        pool.released_unwiped()
    );

    // --- Early task cleaning ---------------------------------------------
    let step = SimDuration::from_millis_f64(ModelKind::BertBase.batch_ms(gpu));
    let tl = cleaning::timeline(ModelKind::BertBase, step);
    let next = transfer::pipeline(ModelKind::ResNet50, gpu);
    println!(
        "early cleaning during one BERT step ({step}): frees {} across {} layer-group events",
        tl.total_freed,
        tl.events.len()
    );
    println!(
        "the successor's first layer group ({}) can preload {} before the step ends \
         (its transfer takes {})\n",
        next.group_bytes,
        tl.overlap_window(next.group_bytes),
        next.first_group
    );

    // --- Speculative memory management ------------------------------------
    let seq: Vec<TaskModelRef> = (0..12)
        .map(|i| TaskModelRef {
            job: JobId(i % 3),
            model: [ModelKind::ResNet50, ModelKind::GraphSage, ModelKind::Vgg19][(i % 3) as usize],
        })
        .collect();
    let plan = plan_cache(&seq, gpu);
    println!(
        "speculative cache over a 12-task interleaving of 3 jobs: hit rate {:.0}%, \
         {} evictions, peak memory {}",
        plan.hit_rate() * 100.0,
        plan.evictions,
        plan.peak
    );

    // --- Switch costs under the three runtimes ----------------------------
    println!("\nswitch GraphSAGE -> ResNet50 on a V100:");
    for policy in SwitchPolicy::ALL {
        for hit in [false, true] {
            if hit && policy != SwitchPolicy::Hare {
                continue;
            }
            let b = switch_time(
                policy,
                &SwitchRequest {
                    gpu,
                    prev: Some(PrevTask {
                        model: ModelKind::GraphSage,
                        step_time: SimDuration::from_millis_f64(ModelKind::GraphSage.batch_ms(gpu)),
                    }),
                    next: ModelKind::ResNet50,
                    cache_hit: hit,
                },
            );
            println!(
                "  {:<10}{} total {:>10}  (cleanup {} | context {} | framework {} | transfer {} | software {})",
                policy.name(),
                if hit { " (cache hit)" } else { "            " },
                b.total().to_string(),
                b.cleanup,
                b.context,
                b.framework,
                b.transfer,
                b.software
            );
        }
    }
}
