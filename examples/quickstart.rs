//! Quickstart: schedule a handful of DML jobs on a heterogeneous GPU
//! cluster with Hare and simulate the execution.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hare::baselines::{run_scheme, RunOptions, Scheme};
use hare::cluster::Cluster;
use hare::core::{certify, HareScheduler};
use hare::sim::SimWorkload;
use hare::workload::{ProfileDb, TraceConfig};

fn main() {
    // 1. A cluster: the paper's 15-GPU heterogeneous testbed
    //    (8 V100 + 4 T4 + 1 K80 + 2 M60 over 4 machines, 25 Gbps network).
    let cluster = Cluster::testbed15();
    println!(
        "cluster: {} GPUs on {} machines",
        cluster.gpu_count(),
        cluster.machine_count()
    );
    for (kind, count) in cluster.count_by_kind() {
        println!("  {count} x {kind}");
    }

    // 2. A workload: 12 jobs drawn from the Table-2 model zoo with
    //    Google-trace-like bursty arrivals, profiled per GPU kind.
    let db = ProfileDb::new(42);
    let trace = TraceConfig {
        n_jobs: 12,
        seed: 42,
        ..TraceConfig::default()
    }
    .generate();
    for job in &trace {
        println!(
            "  {}: {} x{} tasks/round, {} rounds, weight {}, arrives {}",
            job.id, job.model, job.sync_scale, job.rounds, job.weight, job.arrival
        );
    }
    let workload = SimWorkload::build(cluster, trace, &db);

    // 3. Schedule with Hare (Algorithm 1: relaxation -> midpoint order ->
    //    list scheduling with relaxed scale-fixed synchronization).
    let out = HareScheduler::default().schedule(&workload.problem);
    let report = certify(&workload.problem, &out);
    println!(
        "\nHare schedule: planned weighted completion {:.1}s, lower bound {:.1}s (ratio {:.2}, Theorem-4 bound {:.1})",
        report.objective, report.lower_bound, report.ratio_vs_lower_bound, report.ratio_bound
    );

    // 4. Execute on the simulated cluster (duration noise, fast task
    //    switching, contended gradient synchronization) and compare with
    //    a baseline.
    let hare = run_scheme(Scheme::Hare, &workload, RunOptions::default());
    let fifo = run_scheme(Scheme::GavelFifo, &workload, RunOptions::default());
    println!("\nsimulated:");
    for r in [&hare, &fifo] {
        let (switches, hits) = r.switch_stats();
        println!(
            "  {:<11} weighted JCT {:>8.1}  mean JCT {:>6.1}s  makespan {}  switches {} ({} cache hits)",
            r.scheme,
            r.weighted_jct,
            r.mean_jct(),
            r.makespan,
            switches,
            hits
        );
    }
    println!(
        "\nHare improves weighted JCT by {:.1}% over Gavel_FIFO on this workload.",
        (1.0 - hare.weighted_jct / fifo.weighted_jct) * 100.0
    );
}
