//! The relaxed scale-fixed synchronization scheme (Fig. 4): how a new
//! 3-task round starts under strict gang semantics vs Hare's relaxation,
//! and why the relaxation keeps convergence certainty.
//!
//! ```sh
//! cargo run --release --example relaxed_sync
//! ```

use hare::cluster::{SimDuration, SimTime};
use hare::core::{find_gang_slot, relaxed_round_assign, JobInfo, SchedProblem};

fn main() {
    // Three GPUs, each finishing someone else's task at 2s, 3s and 6s.
    let avail = vec![
        SimTime::from_secs(2),
        SimTime::from_secs(3),
        SimTime::from_secs(6),
    ];
    println!("GPU availability: gpu0 @2s, gpu1 @3s, gpu2 @6s");
    println!("a job with synchronization scale 3 arrives (tasks take 1.5s)\n");

    // Strict scale-fixed (Tiresias/Gandiva): wait for 3 simultaneous GPUs.
    let (start, gang) = find_gang_slot(&avail, 3, SimTime::ZERO);
    println!(
        "strict scale-fixed : start {start} on GPUs {gang:?}, round done {}",
        start + SimDuration::from_millis(1500)
    );

    // Relaxed scale-fixed (Hare): same task COUNT per round (identical
    // gradient averaging => identical convergence behaviour), flexible
    // placement in time and space.
    let p = SchedProblem::new(
        3,
        vec![JobInfo {
            weight: 1.0,
            arrival: SimTime::ZERO,
            rounds: 1,
            sync_scale: 3,
            train: vec![SimDuration::from_millis(1500); 3],
            sync: vec![SimDuration::ZERO; 3],
        }],
    );
    let mut phi = avail.clone();
    let placed = relaxed_round_assign(&p, 0, SimTime::ZERO, &mut phi);
    let done = placed
        .iter()
        .map(|&(s, g)| s + p.jobs[0].train[g])
        .max()
        .unwrap();
    println!("relaxed scale-fixed: placements:");
    for (i, &(s, g)) in placed.iter().enumerate() {
        println!("  task {i} -> gpu{g} at {s}");
    }
    println!("  round done {done}  (two tasks stacked on the early GPU)");

    println!(
        "\nsame |D_r| = 3 gradients are averaged either way — the relaxation trades\n\
         nothing on the statistics; it only removes the simultaneity requirement\n\
         (contrast with scale-ADAPTIVE schemes, which change |D_r| and lose\n\
         convergence predictability — Section 2.2.3)."
    );
}
