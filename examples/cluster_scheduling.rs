//! A realistic shared-cluster scenario: an overnight batch of mixed
//! research jobs — heavyweight NLP pre-training, routine CV fine-tuning and
//! lightweight graph-model retraining (the periodically re-submitted jobs
//! Section 3's profiling database exists for) — lands on a mid-size
//! heterogeneous cluster. All five schedulers compete.
//!
//! ```sh
//! cargo run --release --example cluster_scheduling
//! ```

use hare::baselines::{run_all, RunOptions};
use hare::cluster::{Cluster, GpuKind, SimDuration, SimTime};
use hare::sim::{jct_cdf, SimWorkload};
use hare::workload::{JobId, JobSpec, ModelKind, ProfileDb};

fn main() {
    // A 24-GPU cluster accreted over several procurement rounds.
    let cluster = Cluster::from_counts(
        &[
            (GpuKind::V100, 8),
            (GpuKind::T4, 8),
            (GpuKind::M60, 4),
            (GpuKind::K80, 4),
        ],
        4,
    );

    // The overnight batch: everything is known up front (offline setting).
    let mut jobs = Vec::new();
    let mut id = 0u32;
    let mut push = |model: ModelKind, rounds, scale, weight: f64, arrive_min: u64| {
        jobs.push(
            JobSpec::new(JobId(id), model, rounds, scale)
                .with_weight(weight)
                .arriving_at(SimTime::from_secs(arrive_min * 60)),
        );
        id += 1;
    };
    // Urgent BERT pre-training legs (high weight, wide gangs).
    push(ModelKind::BertBase, 60, 4, 5.0, 0);
    push(ModelKind::BertBase, 60, 4, 5.0, 5);
    push(ModelKind::BertBase, 80, 6, 5.0, 40);
    // Transformer MT jobs.
    push(ModelKind::Transformer, 50, 3, 3.0, 10);
    push(ModelKind::Transformer, 60, 4, 3.0, 35);
    // Routine CV fine-tuning, several waves.
    for wave in 0..3u64 {
        for m in [
            ModelKind::ResNet50,
            ModelKind::Vgg19,
            ModelKind::InceptionV3,
        ] {
            push(m, 40, 2, 2.0, 15 + 20 * wave);
            push(m, 30, 1, 1.0, 30 + 20 * wave);
        }
    }
    // Speech.
    push(ModelKind::DeepSpeech, 45, 2, 2.0, 20);
    push(ModelKind::DeepSpeech, 45, 3, 2.0, 50);
    // Nightly graph-model retrains (light, frequent, low priority).
    for k in 0..10 {
        let model = if k % 2 == 0 {
            ModelKind::GraphSage
        } else {
            ModelKind::FastGcn
        };
        push(model, 24, 1, 1.0, 25 + 5 * k as u64);
    }

    let db = ProfileDb::new(2024);
    let (hits, misses) = {
        let w = SimWorkload::build(cluster, jobs, &db);
        let stats = db.stats();
        println!(
            "profiling: {} measurements, {} served from the history database",
            stats.1, stats.0
        );

        println!(
            "\n{} jobs / {} tasks on {} GPUs:\n",
            w.problem.jobs.len(),
            w.problem.n_tasks(),
            w.cluster.gpu_count()
        );
        let reports = run_all(&w, RunOptions::default());
        let hare = reports[0].weighted_jct;
        println!(
            "{:<13} {:>12} {:>9} {:>10} {:>12}",
            "scheme", "weighted JCT", "vs Hare", "makespan", "90% done by"
        );
        for r in &reports {
            let cdf = jct_cdf(&r.jct);
            let p90 = cdf[(cdf.len() * 9 / 10).saturating_sub(1)].0;
            println!(
                "{:<13} {:>12.0} {:>8.2}x {:>10} {:>10.1}min",
                r.scheme,
                r.weighted_jct,
                r.weighted_jct / hare,
                r.makespan.to_string(),
                p90 / 60.0
            );
        }

        // How much of Hare's win is fast switching? Count it.
        let (switches, cache_hits) = reports[0].switch_stats();
        println!(
            "\nHare performed {switches} task switches ({cache_hits} speculative-cache hits), \
             total switching overhead {}",
            reports[0].total_switching()
        );
        let within = reports[0].fraction_within(SimDuration::from_secs(45 * 60));
        println!(
            "{:.0}% of jobs completed within 45 minutes under Hare.",
            within * 100.0
        );
        db.stats()
    };
    let _ = (hits, misses);
}
