//! Dynamic job arrivals with online Hare — the extension addressing the
//! paper's stated limitation ("jobs arrive in different time and we cannot
//! accurately predict future job arrivals").
//!
//! A bursty day of arrivals is exported to CSV (the trace a real cluster
//! log would provide), reloaded, and scheduled three ways: clairvoyant
//! offline Hare (knows the future), online Hare (replans at each arrival
//! burst), and Gavel-style FIFO.
//!
//! ```sh
//! cargo run --release --example online_arrivals
//! ```

use hare::baselines::{GavelFifo, HareOnline};
use hare::cluster::Cluster;
use hare::core::HareScheduler;
use hare::sim::{OfflineReplay, SimWorkload, Simulation};
use hare::workload::{trace_from_csv, trace_to_csv, ProfileDb, TraceConfig};

fn main() {
    // A bursty arrival day, serialized the way an operator would log it.
    let trace = TraceConfig {
        n_jobs: 24,
        burstiness: 0.85,
        seed: 99,
        ..TraceConfig::default()
    }
    .generate();
    let csv = trace_to_csv(&trace);
    println!("exported trace ({} jobs):", trace.len());
    for line in csv.lines().take(6) {
        println!("  {line}");
    }
    println!("  ...\n");

    // Reload (identical round-trip) and build the workload.
    let reloaded = trace_from_csv(&csv).expect("roundtrip");
    assert_eq!(trace, reloaded);
    let db = ProfileDb::new(99);
    let w = SimWorkload::build(Cluster::testbed15(), reloaded, &db);

    // 1. Clairvoyant offline Hare: plans once, knowing all arrivals.
    let plan = HareScheduler::default().schedule(&w.problem);
    let mut offline = OfflineReplay::new("Hare (offline, clairvoyant)", &w, &plan.schedule);
    let offline_report = Simulation::new(&w).run(&mut offline).expect("simulation");

    // 2. Online Hare: sees jobs only when they arrive; replans per burst.
    let mut online_policy = HareOnline::new();
    let online_report = Simulation::new(&w)
        .run(&mut online_policy)
        .expect("simulation");

    // 3. FIFO for reference.
    let fifo_report = Simulation::new(&w)
        .run(&mut GavelFifo::new())
        .expect("simulation");

    println!("{:<28} {:>13} {:>10}", "scheme", "weighted JCT", "mean JCT");
    for r in [&offline_report, &online_report, &fifo_report] {
        println!(
            "{:<28} {:>13.0} {:>9.0}s",
            r.scheme,
            r.weighted_jct,
            r.mean_jct()
        );
    }
    let regret = online_report.weighted_jct / offline_report.weighted_jct;
    println!(
        "\nonline Hare replanned {} times; online/offline ratio: {:.2}x; \
         advantage over FIFO: {:.2}x",
        online_policy.replans(),
        regret,
        fifo_report.weighted_jct / online_report.weighted_jct
    );
    if regret < 1.0 {
        println!(
            "(below 1.0: event-driven replanning adapts to realized durations, \
             which can beat replaying a fixed clairvoyant plan)"
        );
    }
}
