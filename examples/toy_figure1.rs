//! The paper's Fig.-1 toy example, end to end: three jobs, three
//! heterogeneous GPUs, and an ASCII timeline of the exact-optimal schedule
//! that jointly exploits GPU heterogeneity and intra-job parallelism.
//!
//! ```sh
//! cargo run --release --example toy_figure1
//! ```

use hare::core::{hare_schedule, SchedProblem, SyncMode};
use hare::solver::{fig1_instance, solve_exact};

fn timeline(p: &SchedProblem, start: &[f64], gpu: &[usize], title: &str) {
    println!("\n{title}");
    let scale = 8.0; // chars per second
    for g in 0..p.n_gpus {
        let mut line = vec![b'.'; 40];
        for (i, task) in p.tasks.iter().enumerate() {
            if gpu[i] != g {
                continue;
            }
            let dur = p.jobs[task.job].train[g].as_secs_f64();
            let from = (start[i] * scale) as usize;
            let to = ((start[i] + dur) * scale) as usize;
            let label = b'1' + task.job as u8;
            for c in line.iter_mut().take(to.min(40)).skip(from) {
                *c = label;
            }
        }
        println!("  GPU{} |{}|", g + 1, String::from_utf8(line).unwrap());
    }
    println!("        0s   1s   2s   3s   4s   (J1/J2/J3 = job id)");
}

fn main() {
    let p = SchedProblem::fig1();
    println!("Fig. 1: 3 jobs, 3 GPUs; single-batch training times (s):");
    for (j, job) in p.jobs.iter().enumerate() {
        let times: Vec<f64> = job.train.iter().map(|t| t.as_secs_f64()).collect();
        println!(
            "  J{}: {:?} ({} rounds x {} tasks)",
            j + 1,
            times,
            job.rounds,
            job.sync_scale
        );
    }

    // Exact optimum (the paper's Fig. 1(c) value).
    let exact = solve_exact(&fig1_instance());
    println!(
        "\nexact optimum (branch & bound): total JCT = {:.1}s  [paper Fig. 1(c): 8.5s]",
        exact.objective
    );
    timeline(
        &p,
        &exact.start,
        &exact.machine,
        "optimal schedule (note J3 stacking all 4 tasks on GPU1 — relaxed scale-fixed):",
    );

    // Algorithm 1 on the same instance.
    let out = hare_schedule(&p);
    assert!(out.schedule.validate(&p, SyncMode::Relaxed).is_ok());
    let starts: Vec<f64> = out.schedule.start.iter().map(|t| t.as_secs_f64()).collect();
    println!(
        "\nHare Algorithm 1: total JCT = {:.1}s (within the α(2+α) = {:.0}x bound of optimum)",
        out.schedule.weighted_completion(&p),
        {
            let a = p.alpha();
            a * (2.0 + a)
        }
    );
    timeline(&p, &starts, &out.schedule.gpu, "Algorithm 1's schedule:");
}
