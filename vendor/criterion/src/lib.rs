//! Offline stand-in for `criterion`.
//!
//! Supports the API surface the workspace's benches use — groups,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `iter` — with a
//! simple median-of-samples measurement and one printed line per
//! benchmark. No statistics engine, plots, or baselines; good enough to
//! keep `cargo bench` informative while the registry is unreachable.

use std::time::Instant;

pub use std::hint::black_box;

/// Top-level handle passed to each benchmark function.
pub struct Criterion {
    sample_size: usize,
}

/// CI override: when `HARE_BENCH_SAMPLES` is set, every benchmark runs
/// exactly that many timed samples regardless of per-group settings —
/// the smoke-test knob that keeps `cargo bench` fast in CI.
fn env_samples() -> Option<usize> {
    std::env::var("HARE_BENCH_SAMPLES").ok()?.parse().ok()
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: env_samples().unwrap_or(15),
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, mut f: F) {
        run_one(&id.to_string(), self.sample_size, &mut f);
    }
}

/// A named set of benchmarks sharing settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the number of timed samples per benchmark (overridden by
    /// `HARE_BENCH_SAMPLES` when set — see [`Criterion::default`]).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = env_samples().unwrap_or(n).max(2);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, mut f: F) {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_one(
            &format!("{}/{}", self.name, id.0),
            self.sample_size,
            &mut |b| f(b, input),
        );
    }

    /// Finish the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identify a benchmark by its parameter value alone.
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Identify a benchmark by function name and parameter.
    pub fn new(name: impl std::fmt::Display, p: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    samples_ns: Vec<u128>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, recording `sample_size` samples (plus one warm-up).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples_ns.push(t.elapsed().as_nanos());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        samples_ns: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    b.samples_ns.sort_unstable();
    let median = b
        .samples_ns
        .get(b.samples_ns.len() / 2)
        .copied()
        .unwrap_or(0);
    println!("bench {name:<50} median {}", format_ns(median));
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Collect benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
