//! Offline stand-in for `serde_json`, exposing the subset this workspace
//! uses: parse a JSON document into a [`Value`] tree with [`from_str`].
//!
//! The parser is strict RFC 8259: `NaN`, `Infinity`, trailing commas,
//! comments, and unquoted keys are all rejected — which is exactly why the
//! test suites lean on it, as a notary that our hand-rolled serializers
//! (`SimReport::to_json`, the Chrome trace exporter, the metrics registry)
//! only ever emit valid JSON. There is no serializer and no `Deserialize`
//! integration; callers inspect the `Value` tree directly.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`, like permissive readers do).
    Number(f64),
    /// A string literal, unescaped.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; keys are sorted (BTreeMap), duplicate keys keep the last
    /// occurrence, as serde_json's default behavior does.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member access on objects: `v.get("key")`; `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The array items, when this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object map, when this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64`, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, when this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True when this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// A parse failure: what went wrong and the byte offset where.
#[derive(Clone, Debug, PartialEq)]
pub struct Error {
    msg: String,
    /// Byte offset into the input at the failure point.
    pub offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for Error {}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Nesting depth guard — deep enough for any real document, shallow enough
/// that recursive descent cannot blow the stack on adversarial input.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a trailing \uXXXX.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                0x00..=0x1F => return Err(self.err("unescaped control character")),
                _ => {
                    // Consume one UTF-8 character (input is &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("empty input"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.err("bad hex digit in \\u escape")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a lone 0, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("unparseable number"))?;
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str(" false ").unwrap(), Value::Bool(false));
        assert_eq!(from_str("3.25").unwrap(), Value::Number(3.25));
        assert_eq!(from_str("-2e3").unwrap(), Value::Number(-2000.0));
        assert_eq!(
            from_str("\"hi\\n\\u0041\"").unwrap(),
            Value::String("hi\nA".into())
        );
    }

    #[test]
    fn parses_containers() {
        let v = from_str(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].as_u64(), Some(1));
        assert!(a[2].get("b").unwrap().is_null());
    }

    #[test]
    fn rejects_non_finite_and_malformed() {
        for bad in [
            "NaN",
            "Infinity",
            "-Infinity",
            "nan",
            "inf",
            "[1,]",
            "{,}",
            "01",
            "1.",
            "--1",
            "",
            "{\"a\":1",
            "\"unterminated",
            "[1 2]",
            "1 2",
        ] {
            assert!(from_str(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn surrogate_pairs_round_trip() {
        assert_eq!(
            from_str("\"\\ud83d\\ude00\"").unwrap(),
            Value::String("😀".into())
        );
        assert!(from_str("\"\\ud83d\"").is_err());
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(from_str(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(from_str(&ok).is_ok());
    }
}
