//! No-op derive macros for the offline `serde` stand-in.
//!
//! The companion `serde` crate blanket-implements its marker traits for
//! every type, so the derives only need to (a) exist and (b) accept the
//! `#[serde(...)]` helper attribute. They expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; `Serialize` is blanket-implemented by the stub.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `Deserialize` is blanket-implemented by the stub.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
