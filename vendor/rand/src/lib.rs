//! Offline stand-in for `rand` 0.8.
//!
//! The crates.io registry is unreachable in this build environment, so
//! this path dependency implements the subset of the `rand` API the
//! workspace uses: [`rngs::SmallRng`] (xoshiro256++ seeded through
//! splitmix64, the same construction real `rand` 0.8 uses on 64-bit
//! targets), [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `gen`, `gen_range` and `gen_bool`. All streams are deterministic in
//! the seed, which is the property every caller in the tree relies on.

/// Types that `Rng::gen` can produce from a uniform bit stream.
pub trait Standard: Sized {
    /// Draw one value from `rng`'s next output(s).
    fn sample_std<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_std<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_std<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_std<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_std<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_std<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range; panics if the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f64::sample_std_uniform(rng) * (self.end - self.start)
    }
}

trait UniformF64 {
    fn sample_std_uniform<R: RngCore + ?Sized>(rng: &mut R) -> f64;
}
impl UniformF64 for f64 {
    fn sample_std_uniform<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Core source of uniform 64-bit words.
pub trait RngCore {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of type `T` (`f64` in `[0,1)`, full-width ints, …).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_std(self)
    }

    /// Uniform value in `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample_std(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and plenty for simulation noise and
    /// randomized tests. Matches real `rand 0.8`'s `SmallRng` choice on
    /// 64-bit targets (stream values differ; determinism is what matters).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // splitmix64 expansion, per the xoshiro authors' seeding advice.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u64);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1..=5i32);
            assert!((1..=5).contains(&w));
            let f = rng.gen_range(0.5f64..8.0);
            assert!((0.5..8.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_enough() {
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }
}
