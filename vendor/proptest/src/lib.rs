//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, `prop::collection::vec`, `prop::sample::select`,
//! [`arbitrary::any`], [`ProptestConfig`], and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest: cases are drawn from a fixed seed (so
//! every run explores the same inputs — fully deterministic CI), and
//! there is no shrinking; a failing case prints its case index so it can
//! be replayed by running the same test again.

use rand::rngs::SmallRng;
pub use rand::Rng;
use rand::SeedableRng;

/// Number source handed to strategies.
pub type TestRng = SmallRng;

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate, then build and draw from a dependent strategy.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Run configuration: how many random cases each property runs.
#[derive(Copy, Clone, Debug)]
pub struct ProptestConfig {
    /// Cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support for primitives.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }
    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.gen()
        }
    }
    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.gen()
        }
    }
    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.gen()
        }
    }

    /// Strategy over `T`'s full domain.
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Lengths accepted by [`vec`]: a fixed size or a size range.
    pub trait SizeRange {
        /// Draw a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }
    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }
    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of values from `element`, with length drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod sample {
    //! Sampling from fixed sets.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy returned by [`select`].
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }

    /// Uniformly select one of `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over empty set");
        Select { options }
    }
}

pub mod prop {
    //! The `prop::` namespace re-exports used by `use proptest::prelude::*`.
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};
}

/// Seed a per-test RNG stream: fixed base seed mixed with the test name so
/// distinct properties explore distinct inputs, deterministically.
pub fn rng_for(test_name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    SeedableRng::seed_from_u64(h ^ ((case as u64) << 32) ^ 0x5eed_cafe)
}

/// Assert inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Define property tests: each `fn name(binding in strategy, ...)` becomes
/// a `#[test]` running `config.cases` seeded cases (no shrinking).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::rng_for(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let run = || -> () { $body };
                    run();
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(v in 1u32..=5, f in 0.0f64..2.0) {
            prop_assert!((1..=5).contains(&v));
            prop_assert!((0.0..2.0).contains(&f));
        }

        #[test]
        fn vec_and_map_compose(xs in prop::collection::vec((0u32..6, any::<bool>()), 1..40)) {
            prop_assert!(!xs.is_empty() && xs.len() < 40);
            for (a, _) in &xs {
                prop_assert!(*a < 6);
            }
        }

        #[test]
        fn flat_map_threads_values(pair in (1usize..=3).prop_flat_map(|n|
            prop::collection::vec(0.5f64..8.0, n).prop_map(move |v| (n, v)))) {
            prop_assert_eq!(pair.0, pair.1.len());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a: Vec<u64> = (0..5)
            .map(|c| crate::Strategy::generate(&(0u64..1000), &mut crate::rng_for("t", c)))
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| crate::Strategy::generate(&(0u64..1000), &mut crate::rng_for("t", c)))
            .collect();
        assert_eq!(a, b);
    }
}
