//! Offline stand-in for `serde`.
//!
//! The build environment has no reachable crates.io registry, so this
//! path dependency provides the subset the workspace actually relies on:
//! the `Serialize` / `Deserialize` *bounds* and the derive attributes.
//! Nothing in the workspace serializes through serde at runtime (results
//! are written with hand-rolled JSON/CSV writers), so the traits are
//! markers with blanket implementations and the derives expand to nothing.
//!
//! If a future PR needs real serialization, replace this crate with the
//! genuine `serde` once the registry is reachable — every `#[derive]` in
//! the tree is already written against the real API.

/// Marker for types that can be serialized. Blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for types that can be deserialized. Blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Owned-deserialization marker, mirroring serde's convenience alias.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: ?Sized + for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};
