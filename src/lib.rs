//! Facade crate re-exporting the Hare workspace — a Rust reproduction of
//! *"Hare: Exploiting Inter-job and Intra-job Parallelism of Distributed
//! Machine Learning on Heterogeneous GPUs"* (HPDC 2022).
//!
//! # Example
//!
//! Schedule a profiled workload on the paper's 15-GPU testbed with
//! Algorithm 1 and execute it on the deterministic simulator:
//!
//! ```
//! use hare::baselines::{run_scheme, RunOptions, Scheme};
//! use hare::cluster::Cluster;
//! use hare::core::HareScheduler;
//! use hare::sim::SimWorkload;
//! use hare::workload::{ProfileDb, TraceConfig};
//!
//! let db = ProfileDb::new(7);
//! let trace = TraceConfig { n_jobs: 4, seed: 7, ..Default::default() }.generate();
//! let workload = SimWorkload::build(Cluster::testbed15(), trace, &db);
//!
//! // Offline plan (midpoints from the Hare_Sched_RL relaxation)...
//! let plan = HareScheduler::default().schedule(&workload.problem);
//! assert!(plan.schedule.validate(&workload.problem, hare::core::SyncMode::Relaxed).is_ok());
//!
//! // ...executed with realized durations, switching costs and contended sync.
//! let report = run_scheme(Scheme::Hare, &workload, RunOptions::default());
//! assert_eq!(report.completion.len(), 4);
//! assert!(report.weighted_jct > 0.0);
//! ```

pub use hare_baselines as baselines;
pub use hare_cluster as cluster;
pub use hare_core as core;
pub use hare_memory as memory;
pub use hare_sim as sim;
pub use hare_solver as solver;
pub use hare_workload as workload;
