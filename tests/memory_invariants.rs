//! Property-based tests on the fast-task-switching substrate: pool
//! accounting, speculative-cache correctness, and switching-cost
//! monotonicity across arbitrary task sequences.

use hare::cluster::{Bytes, GpuKind, SimDuration};
use hare::memory::{
    plan_cache, switch_time, MemoryPool, PrevTask, RegionKind, SwitchPolicy, SwitchRequest,
    TaskModelRef,
};
use hare::workload::{JobId, ModelKind};
use proptest::prelude::*;

fn models() -> impl Strategy<Value = ModelKind> {
    prop::sample::select(ModelKind::WORKLOAD.to_vec())
}

fn sequences() -> impl Strategy<Value = Vec<TaskModelRef>> {
    prop::collection::vec((0u32..6, models()), 1..40).prop_map(|v| {
        v.into_iter()
            .map(|(job, model)| TaskModelRef {
                job: JobId(job),
                model,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn cache_hits_require_an_earlier_same_job_occurrence(seq in sequences()) {
        for gpu in [GpuKind::V100, GpuKind::M60] {
            let plan = plan_cache(&seq, gpu);
            prop_assert_eq!(plan.hits.len(), seq.len());
            for (i, &hit) in plan.hits.iter().enumerate() {
                if hit {
                    let earlier = seq[..i]
                        .iter()
                        .any(|t| t.job == seq[i].job && t.model == seq[i].model);
                    prop_assert!(earlier, "hit at {} without prior occurrence", i);
                }
            }
            // First occurrence of every (job, model) is always a miss.
            let mut seen = Vec::new();
            for (i, t) in seq.iter().enumerate() {
                if !seen.contains(&(t.job, t.model)) {
                    prop_assert!(!plan.hits[i], "first occurrence hit at {}", i);
                    seen.push((t.job, t.model));
                }
            }
            prop_assert!(plan.peak <= gpu.spec().memory);
        }
    }

    #[test]
    fn ample_memory_means_no_evictions_and_max_hits(seq in sequences()) {
        // Distinct (job, model) working sets on a V100: graph models only,
        // which always all fit.
        let tiny: Vec<TaskModelRef> = seq
            .iter()
            .map(|t| TaskModelRef {
                job: t.job,
                model: ModelKind::GraphSage,
            })
            .collect();
        let plan = plan_cache(&tiny, GpuKind::V100);
        prop_assert_eq!(plan.evictions, 0);
        let distinct = {
            let mut d = tiny.clone();
            d.sort_by_key(|t| t.job.0);
            d.dedup();
            d.len()
        };
        let misses = plan.hits.iter().filter(|&&h| !h).count();
        prop_assert_eq!(misses, distinct);
    }

    #[test]
    fn switch_cost_ordering_holds_everywhere(
        prev in models(),
        next in models(),
        gpu in prop::sample::select(vec![GpuKind::V100, GpuKind::T4, GpuKind::K80, GpuKind::M60]),
        step_ms in 20u64..2_000,
    ) {
        let req = SwitchRequest {
            gpu,
            prev: Some(PrevTask { model: prev, step_time: SimDuration::from_millis(step_ms) }),
            next,
            cache_hit: false,
        };
        let d = switch_time(SwitchPolicy::Default, &req).total();
        let p = switch_time(SwitchPolicy::PipeSwitch, &req).total();
        let h = switch_time(SwitchPolicy::Hare, &req).total();
        prop_assert!(h <= p, "{next} on {gpu}: hare {h} > pipeswitch {p}");
        prop_assert!(p < d);
        // A cache hit is never slower than a miss.
        let hit = switch_time(SwitchPolicy::Hare, &SwitchRequest { cache_hit: true, ..req }).total();
        prop_assert!(hit <= h);
    }

    #[test]
    fn pool_accounting_balances(ops in prop::collection::vec((1u64..2048, any::<bool>()), 1..50)) {
        let mut pool = MemoryPool::new(Bytes::mib(4096));
        let mut live = Vec::new();
        let mut expected_used = 0u64;
        for (mib, wipe) in ops {
            if expected_used + mib <= 4096 {
                let id = pool.alloc(JobId(0), RegionKind::Workspace, Bytes::mib(mib)).unwrap();
                live.push((id, mib, wipe));
                expected_used += mib;
            } else if let Some((id, sz, w)) = live.pop() {
                pool.free(id, w);
                expected_used -= sz;
            }
            prop_assert_eq!(pool.used(), Bytes::mib(expected_used));
            prop_assert_eq!(pool.available(), Bytes::mib(4096 - expected_used));
        }
        // Drain and check wipe accounting covers everything released.
        let mut wiped = pool.wiped();
        let mut unwiped = pool.released_unwiped();
        for (id, sz, w) in live {
            pool.free(id, w);
            if w {
                wiped += Bytes::mib(sz);
            } else {
                unwiped += Bytes::mib(sz);
            }
        }
        prop_assert_eq!(pool.wiped(), wiped);
        prop_assert_eq!(pool.released_unwiped(), unwiped);
        prop_assert_eq!(pool.used(), Bytes::ZERO);
    }
}
