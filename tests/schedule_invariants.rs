//! Property-based tests (proptest) on the scheduler and schedule
//! validator: every generated problem must yield a feasible, deterministic
//! Algorithm-1 schedule whose metrics are internally consistent.

use hare::core::{
    hare_schedule, AssignmentRule, HareScheduler, JobInfo, PriorityOrder, SchedProblem, SyncMode,
};
use hare_cluster::{SimDuration, SimTime};
use proptest::prelude::*;

/// Strategy: a problem with 1–3 GPUs and 1–4 jobs of 1–3 rounds x 1–3 tasks.
fn problems() -> impl Strategy<Value = SchedProblem> {
    let job = (
        1u32..=3,                                // rounds
        1u32..=3,                                // sync_scale
        1u32..=5,                                // weight
        0u64..5_000,                             // arrival ms
        prop::collection::vec(200u64..5_000, 3), // train ms per gpu (first n used)
        0u64..=100,                              // sync ms (bounded below min train)
    );
    (1usize..=3, prop::collection::vec(job, 1..=4)).prop_map(|(n_gpus, jobs)| {
        let jobs = jobs
            .into_iter()
            .map(|(rounds, scale, weight, arrival, train_ms, sync_ms)| {
                let train: Vec<SimDuration> = train_ms[..n_gpus]
                    .iter()
                    .map(|&ms| SimDuration::from_millis(ms))
                    .collect();
                let min_train = train.iter().min().unwrap().as_micros() / 1000;
                let sync = vec![SimDuration::from_millis(sync_ms.min(min_train)); n_gpus];
                JobInfo {
                    weight: weight as f64,
                    arrival: SimTime::from_millis(arrival),
                    rounds,
                    sync_scale: scale,
                    train,
                    sync,
                }
            })
            .collect();
        SchedProblem::new(n_gpus, jobs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn algorithm1_always_emits_feasible_schedules(p in problems()) {
        let out = hare_schedule(&p);
        prop_assert!(out.schedule.validate(&p, SyncMode::Relaxed).is_ok());
        prop_assert_eq!(out.pi.len(), p.n_tasks());
    }

    #[test]
    fn every_variant_is_feasible(p in problems()) {
        for order in [PriorityOrder::Midpoint, PriorityOrder::Arrival, PriorityOrder::Smith] {
            for assignment in [AssignmentRule::EarliestAvailable, AssignmentRule::EarliestFinish] {
                let s = HareScheduler { order, assignment, ..HareScheduler::default() };
                let out = s.schedule(&p);
                prop_assert!(
                    out.schedule.validate(&p, SyncMode::Relaxed).is_ok(),
                    "{:?}/{:?}", order, assignment
                );
            }
        }
    }

    #[test]
    fn scheduling_is_deterministic(p in problems()) {
        let a = hare_schedule(&p);
        let b = hare_schedule(&p);
        prop_assert_eq!(a.schedule, b.schedule);
    }

    #[test]
    fn objective_dominates_lower_bound_and_makespan_sane(p in problems()) {
        let out = hare_schedule(&p);
        let obj = out.schedule.weighted_completion(&p);
        prop_assert!(obj + 1e-9 >= out.lower_bound,
            "objective {} below certified bound {}", obj, out.lower_bound);
        // Makespan >= every job completion; weighted completion >= weighted jct.
        let makespan = out.schedule.makespan(&p);
        for n in 0..p.jobs.len() {
            prop_assert!(out.schedule.job_completion(&p, n) <= makespan);
        }
        prop_assert!(out.schedule.weighted_jct(&p) <= obj + 1e-9);
    }

    #[test]
    fn gpu_busy_time_never_exceeds_makespan(p in problems()) {
        let out = hare_schedule(&p);
        let makespan = out.schedule.makespan(&p);
        for busy in out.schedule.busy_time(&p) {
            prop_assert!(busy.as_micros() <= makespan.as_micros());
        }
        for util in out.schedule.utilization(&p) {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&util));
        }
    }

    #[test]
    fn perturbing_weights_never_breaks_feasibility(p in problems(), scale in 1u32..10) {
        let mut p2 = p.clone();
        for job in &mut p2.jobs {
            job.weight *= scale as f64;
        }
        let out = hare_schedule(&p2);
        prop_assert!(out.schedule.validate(&p2, SyncMode::Relaxed).is_ok());
    }
}
