//! Cross-crate integration tests: trace generation → profiling →
//! scheduling → discrete-event execution → metrics, across all five
//! schemes.

use hare::baselines::{run_all, run_scheme, RunOptions, Scheme};
use hare::cluster::{Cluster, Heterogeneity};
use hare::core::{HareScheduler, SyncMode};
use hare::sim::{broadcast_schedule, planned_report, OfflineReplay, SimWorkload, Simulation};
use hare::workload::{DomainMix, ProfileDb, TraceConfig};

fn workload(n_jobs: u32, seed: u64) -> SimWorkload {
    let db = ProfileDb::new(seed);
    let trace = TraceConfig {
        n_jobs,
        seed,
        ..TraceConfig::default()
    }
    .generate();
    SimWorkload::build(Cluster::testbed15(), trace, &db)
}

#[test]
fn full_pipeline_is_deterministic() {
    let run = || {
        let w = workload(14, 5);
        run_all(
            &w,
            RunOptions {
                seed: 5,
                ..RunOptions::default()
            },
        )
        .into_iter()
        .map(|r| r.weighted_completion)
        .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn every_scheme_completes_every_job_and_respects_arrivals() {
    let w = workload(18, 9);
    for report in run_all(&w, RunOptions::default()) {
        assert_eq!(report.completion.len(), 18, "{}", report.scheme);
        for (n, c) in report.completion.iter().enumerate() {
            assert!(
                *c > w.problem.jobs[n].arrival,
                "{}: job {n} completed before arriving",
                report.scheme
            );
        }
        assert!(report.makespan >= *report.completion.iter().max().unwrap());
    }
}

#[test]
fn hare_beats_every_baseline_on_the_testbed_workload() {
    let w = workload(30, 2);
    let reports = run_all(&w, RunOptions::default());
    let hare = reports[0].weighted_jct;
    for r in &reports[1..] {
        assert!(
            hare < r.weighted_jct,
            "Hare ({hare:.0}) lost to {} ({:.0})",
            r.scheme,
            r.weighted_jct
        );
    }
}

#[test]
fn hare_schedule_validates_and_replays_within_tolerance() {
    let w = workload(12, 11);
    let out = HareScheduler::default().schedule(&w.problem);
    out.schedule
        .validate(&w.problem, SyncMode::Relaxed)
        .expect("Algorithm 1 must emit a feasible schedule");

    let planned = planned_report(&w, &out.schedule, "plan");
    let mut replay = OfflineReplay::new("Hare", &w, &out.schedule);
    let simulated = Simulation::new(&w)
        .with_noise(0.0)
        .run(&mut replay)
        .expect("simulation");
    let gap = (simulated.weighted_completion - planned.weighted_completion).abs()
        / planned.weighted_completion;
    assert!(gap < 0.05, "plan-vs-execution gap {gap:.3} exceeds 5%");
}

#[test]
fn control_plane_carries_the_full_schedule() {
    let w = workload(8, 13);
    let out = HareScheduler::default().schedule(&w.problem);
    let log = broadcast_schedule(&out.schedule, &w.problem);
    assert_eq!(log.gradients.len(), w.problem.n_tasks());
    assert_eq!(log.stopped.len(), w.cluster.gpu_count());
}

#[test]
fn higher_heterogeneity_grows_hares_lead_over_oblivious_scheduling() {
    let run = |level: Heterogeneity| {
        let db = ProfileDb::new(21);
        let trace = TraceConfig {
            n_jobs: 30,
            mean_interarrival: hare::cluster::SimDuration::from_secs(5),
            seed: 21,
            ..TraceConfig::default()
        }
        .generate();
        let w = SimWorkload::build(Cluster::with_heterogeneity(level, 16), trace, &db);
        let hare = run_scheme(Scheme::Hare, &w, RunOptions::default()).weighted_jct;
        let homo = run_scheme(Scheme::SchedHomo, &w, RunOptions::default()).weighted_jct;
        homo / hare
    };
    let low = run(Heterogeneity::Low);
    let high = run(Heterogeneity::High);
    assert!(
        high > low,
        "heterogeneity should widen the gap: low {low:.2} high {high:.2}"
    );
}

#[test]
fn mix_shifts_total_load_as_in_fig17() {
    let run = |mix: DomainMix| {
        let db = ProfileDb::new(31);
        let trace = TraceConfig {
            n_jobs: 24,
            mix,
            seed: 31,
            ..TraceConfig::default()
        }
        .generate();
        let w = SimWorkload::build(Cluster::testbed15(), trace, &db);
        run_scheme(Scheme::Hare, &w, RunOptions::default()).weighted_jct
    };
    let nlp_heavy = run(DomainMix::emphasising(hare::workload::Domain::Nlp, 0.7));
    let rec_heavy = run(DomainMix::emphasising(hare::workload::Domain::Rec, 0.7));
    assert!(
        nlp_heavy > rec_heavy,
        "NLP-heavy ({nlp_heavy:.0}) must exceed Rec-heavy ({rec_heavy:.0})"
    );
}

#[test]
fn extension_policies_complete_and_rank_sensibly() {
    use hare::baselines::{HareOnline, TimeSlice};
    let w = workload(16, 23);
    let online = Simulation::new(&w)
        .run(&mut HareOnline::new())
        .expect("simulation");
    let slice = Simulation::new(&w)
        .run(&mut TimeSlice::new())
        .expect("simulation");
    let fifo = run_scheme(Scheme::GavelFifo, &w, RunOptions::default());
    assert_eq!(online.completion.len(), 16);
    assert_eq!(slice.completion.len(), 16);
    // Online Hare should beat FIFO even without clairvoyance.
    assert!(online.weighted_jct < fifo.weighted_jct);
    // Time slicing under Hare's fast switching remains competitive.
    assert!(slice.weighted_jct < fifo.weighted_jct * 2.0);
}

#[test]
fn allreduce_cluster_runs_end_to_end() {
    use hare::cluster::{NetworkModel, SyncScheme};
    let db = ProfileDb::new(3);
    let trace = TraceConfig {
        n_jobs: 10,
        seed: 3,
        ..TraceConfig::default()
    }
    .generate();
    let cluster = Cluster::testbed15()
        .with_network(NetworkModel::default().with_scheme(SyncScheme::RingAllReduce));
    let w = SimWorkload::build(cluster, trace, &db);
    let report = run_scheme(Scheme::Hare, &w, RunOptions::default());
    assert_eq!(report.completion.len(), 10);
}

#[test]
fn switching_runtime_matters_under_preemptive_sharing() {
    use hare::memory::SwitchPolicy;
    let w = workload(10, 17);
    let out = HareScheduler::default().schedule(&w.problem);
    let run = |policy| {
        let mut replay = OfflineReplay::new("Hare", &w, &out.schedule);
        Simulation::new(&w)
            .with_noise(0.0)
            .with_switch_policy(policy)
            .run(&mut replay)
            .expect("simulation")
    };
    let hare = run(SwitchPolicy::Hare);
    let default = run(SwitchPolicy::Default);
    assert!(hare.weighted_completion < default.weighted_completion);
    assert!(hare.total_switching() < default.total_switching());
}
