//! Theory certification against exact optima: on exhaustively solvable
//! instances, Algorithm 1 must stay inside the Theorem-4 bound α(2+α), the
//! relaxation's certified lower bound must sit below the optimum, and the
//! B&B optimum itself must be feasible.

use hare::core::{approx_ratio_bound, hare_schedule, JobInfo, SchedProblem, SyncMode};
use hare::solver::{certified_lower_bound, solve_exact};
use hare_cluster::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A random small instance: 2 machines, 2–3 jobs, ≤ 6 tasks total.
fn random_problem(seed: u64) -> SchedProblem {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_gpus = rng.gen_range(2..=3usize);
    let n_jobs = rng.gen_range(2..=3usize);
    let mut jobs = Vec::new();
    let mut total_tasks = 0u32;
    for _ in 0..n_jobs {
        let rounds = rng.gen_range(1..=2u32);
        let sync_scale = rng.gen_range(1..=2u32);
        if total_tasks + rounds * sync_scale > 6 {
            // Keep the instance exhaustively solvable.
            jobs.push(JobInfo {
                weight: rng.gen_range(1..=5) as f64,
                arrival: SimTime::from_millis(rng.gen_range(0..3000)),
                rounds: 1,
                sync_scale: 1,
                train: (0..n_gpus)
                    .map(|_| SimDuration::from_millis(rng.gen_range(500..4000)))
                    .collect(),
                sync: vec![SimDuration::from_millis(100); n_gpus],
            });
            total_tasks += 1;
            continue;
        }
        total_tasks += rounds * sync_scale;
        let train: Vec<SimDuration> = (0..n_gpus)
            .map(|_| SimDuration::from_millis(rng.gen_range(500..4000)))
            .collect();
        let min_train = train.iter().min().unwrap().as_micros();
        let sync = vec![SimDuration::from_micros(rng.gen_range(0..=min_train / 2)); n_gpus];
        jobs.push(JobInfo {
            weight: rng.gen_range(1..=5) as f64,
            arrival: SimTime::from_millis(rng.gen_range(0..3000)),
            rounds,
            sync_scale,
            train,
            sync,
        });
    }
    SchedProblem::new(n_gpus, jobs)
}

#[test]
fn algorithm1_stays_within_theorem4_on_random_instances() {
    for seed in 0..60u64 {
        let p = random_problem(seed);
        let exact = solve_exact(&p.to_instance());
        let out = hare_schedule(&p);
        out.schedule
            .validate(&p, SyncMode::Relaxed)
            .unwrap_or_else(|e| panic!("seed {seed}: invalid schedule: {e}"));
        let alg = out.schedule.weighted_completion(&p);
        let bound = approx_ratio_bound(p.alpha());
        assert!(
            alg <= bound * exact.objective + 1e-6,
            "seed {seed}: ALG {alg:.3} > {bound:.2} x OPT {:.3}",
            exact.objective
        );
    }
}

#[test]
fn certified_lower_bound_is_below_the_optimum() {
    for seed in 0..60u64 {
        let p = random_problem(seed).to_instance();
        let exact = solve_exact(&p);
        let lb = certified_lower_bound(&p);
        assert!(
            lb <= exact.objective + 1e-6,
            "seed {seed}: LB {lb:.3} exceeds OPT {:.3}",
            exact.objective
        );
        assert!(lb > 0.0, "seed {seed}: trivial bound");
    }
}

#[test]
fn exact_solution_is_itself_feasible() {
    for seed in 0..20u64 {
        let p = random_problem(seed);
        let exact = solve_exact(&p.to_instance());
        // Rebuild as a typed schedule and validate.
        let schedule = hare::core::Schedule {
            start: exact
                .start
                .iter()
                .map(|&s| SimTime::from_secs_f64(s))
                .collect(),
            gpu: exact.machine.clone(),
        };
        schedule
            .validate(&p, SyncMode::Relaxed)
            .unwrap_or_else(|e| panic!("seed {seed}: B&B emitted invalid schedule: {e}"));
        // And its recomputed objective matches the solver's.
        let recomputed = schedule.weighted_completion(&p);
        assert!(
            (recomputed - exact.objective).abs() < 1e-6,
            "seed {seed}: objective mismatch {recomputed} vs {}",
            exact.objective
        );
    }
}

#[test]
fn eq22_and_lemma_statistics_under_the_theorems_assignment_rule() {
    // The Theorem-4 proof chain covers the literal line-12 rule
    // (EarliestAvailable). Under it, Eq. (22) predicts
    // x̃ᵢ + T̃ᵢ ≤ (2+α)Hᵢ for every task. Our relaxation is heuristic, so
    // we check the empirical statistics across 40 random instances: the
    // Eq.-22 bound must hold for the vast majority of tasks and never be
    // violated by a large factor.
    use hare::core::{certify, AssignmentRule, HareScheduler};
    let scheduler = HareScheduler {
        assignment: AssignmentRule::EarliestAvailable,
        ..HareScheduler::default()
    };
    let mut worst_ratio = 0.0f64;
    let mut lemma2_min = 1.0f64;
    for seed in 100..140u64 {
        let p = random_problem(seed);
        let out = scheduler.schedule(&p);
        let report = certify(&p, &out);
        let budget = 2.0 + report.alpha;
        worst_ratio = worst_ratio.max(report.max_finish_over_h / budget);
        lemma2_min = lemma2_min.min(report.lemma2_satisfaction);
        // The end-to-end guarantee always holds against the exact optimum.
        let exact = solve_exact(&p.to_instance());
        assert!(
            report.objective <= approx_ratio_bound(p.alpha()) * exact.objective + 1e-6,
            "seed {seed}: EA rule broke Theorem 4"
        );
    }
    assert!(
        worst_ratio <= 1.0 + 1e-9,
        "Eq. (22) violated: worst (x̃+T̃)/((2+α)H) = {worst_ratio:.3}"
    );
    // Lemma 2's premise needs the relaxation to satisfy constraint (9)
    // exactly per machine; our heuristic relaxation only enforces an
    // aggregated form, so prefix satisfaction is an empirical statistic
    // (instances exist where fewer than half the prefixes satisfy it) —
    // while the end-to-end Theorem-4 ratio above never fails.
    assert!(
        lemma2_min > 0.0,
        "Lemma-2 prefix satisfaction collapsed entirely: {lemma2_min:.2}"
    );
}

#[test]
fn algorithm1_matches_optimum_on_trivial_instances() {
    // Single job, single machine: list scheduling is trivially optimal.
    let p = SchedProblem::new(
        1,
        vec![JobInfo {
            weight: 2.0,
            arrival: SimTime::from_secs(1),
            rounds: 3,
            sync_scale: 1,
            train: vec![SimDuration::from_secs(2)],
            sync: vec![SimDuration::from_millis(500)],
        }],
    );
    let out = hare_schedule(&p);
    let exact = solve_exact(&p.to_instance());
    assert!(
        (out.schedule.weighted_completion(&p) - exact.objective).abs() < 1e-9,
        "trivial instance must be solved exactly"
    );
    // C = 1 + 3*(2+0.5) = 8.5; weighted = 17.
    assert!((exact.objective - 17.0).abs() < 1e-9);
}
