//! Chaos property tests for the fault-injection & recovery subsystem:
//! arbitrary sanitized fault plans — transient and permanent GPU
//! failures, straggler windows, NIC/backbone degradation, checkpoint
//! store outages and latency spikes, optional speculation — thrown at
//! every scheduler, checking the invariants recovery must preserve no
//! matter what the plan looks like:
//!
//! 1. the run completes (`Ok`), every job finishes, never before arrival;
//! 2. gradient conservation: exactly `Σ_jobs rounds × sync_scale`
//!    gradients are accepted into round averages, faults or not — lost
//!    work is re-executed, late duplicates are dropped by the relaxed
//!    quorum rather than double-counted;
//! 3. fault accounting is internally consistent (recoveries never exceed
//!    failures, re-execution and lost work only exist when something
//!    failed or speculated);
//! 4. runs are bit-for-bit deterministic under identical plans.

use hare::baselines::{
    build_simulation, GavelFifo, HareOnline, ReplanBudget, RunOptions, SchedAllox, SchedHomo,
    Scheme, Srtf,
};
use hare::cluster::{Cluster, SimDuration, SimTime};
use hare::core::HareScheduler;
use hare::sim::{
    FaultPlan, GpuFault, NetworkFault, OfflineReplay, SimError, SimReport, SimWorkload,
    SolverDegradation, SpeculationConfig, StorageFault, StorageFaultKind, StragglerWindow,
};
use hare::solver::SolveBudget;
use hare::workload::{testbed_trace, ProfileDb};
use proptest::prelude::*;

/// The paper's testbed: 15 GPUs across 4 machines.
const N_GPUS: usize = 15;
/// Permanent-loss cap: the widest trace gang (`sync_scale` 6) must still
/// fit on the surviving GPUs even while every transient window overlaps.
const MAX_PERMANENT: usize = 3;

fn workload(seed: u64) -> SimWorkload {
    let db = ProfileDb::with_noise(seed, 0.0);
    let mut trace = testbed_trace(seed);
    trace.truncate(4);
    SimWorkload::build(Cluster::testbed15(), trace, &db)
}

fn t(secs: u64) -> SimTime {
    SimTime::from_secs(secs)
}

/// Raw GPU faults sanitized into a valid plan fragment: per-GPU down
/// windows made disjoint (later overlapping windows dropped) and
/// permanent losses capped so the cluster stays schedulable.
fn gpu_faults() -> impl Strategy<Value = Vec<GpuFault>> {
    prop::collection::vec(
        (0usize..N_GPUS, 0u64..2_400, any::<bool>(), 30u64..1_200),
        0..6,
    )
    .prop_map(|raw| {
        let mut faults: Vec<GpuFault> = raw
            .into_iter()
            .map(|(gpu, at, transient, down)| GpuFault {
                gpu,
                at: t(at),
                recover_after: transient.then(|| SimDuration::from_secs(down)),
            })
            .collect();
        faults.sort_by_key(|f| (f.gpu, f.at));
        let mut out: Vec<GpuFault> = Vec::new();
        let mut permanent = 0;
        for f in faults {
            let overlaps = out.iter().any(|p| {
                p.gpu == f.gpu
                    && match p.recover_after {
                        None => true,
                        Some(d) => f.at < p.at + d,
                    }
            });
            if overlaps {
                continue;
            }
            if f.recover_after.is_none() {
                if permanent == MAX_PERMANENT {
                    continue;
                }
                permanent += 1;
            }
            out.push(f);
        }
        out
    })
}

/// Straggler windows; overlaps are legal (the engine takes the worst
/// factor), so only `from < until` and `slowdown ≥ 1` need construction.
fn stragglers() -> impl Strategy<Value = Vec<StragglerWindow>> {
    prop::collection::vec(
        (0usize..N_GPUS, 0u64..4_000, 60u64..1_800, 1.0f64..4.0),
        0..5,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(gpu, from, len, slowdown)| StragglerWindow {
                gpu,
                from: t(from),
                until: t(from + len),
                slowdown,
            })
            .collect()
    })
}

fn network_faults() -> impl Strategy<Value = Vec<NetworkFault>> {
    prop::collection::vec((0usize..5, 0u64..4_000, 60u64..1_500, 0.05f64..1.0), 0..4).prop_map(
        |raw| {
            raw.into_iter()
                .map(|(m, from, len, factor)| NetworkFault {
                    // Machine 4 does not exist: index 4 means the backbone.
                    machine: (m < 4).then_some(m),
                    from: t(from),
                    until: t(from + len),
                    factor,
                })
                .collect()
        },
    )
}

fn storage_faults() -> impl Strategy<Value = Vec<StorageFault>> {
    prop::collection::vec((0u64..3_000, 30u64..600, 1.0f64..5.0, any::<bool>()), 0..3).prop_map(
        |raw| {
            raw.into_iter()
                .map(|(from, len, slow, outage)| StorageFault {
                    from: t(from),
                    until: t(from + len),
                    kind: if outage {
                        StorageFaultKind::Outage
                    } else {
                        StorageFaultKind::Slowdown(slow)
                    },
                })
                .collect()
        },
    )
}

/// Solver brownout windows; overlaps are legal (the engine takes the
/// minimum open factor), so only `from < until` and `factor ∈ (0, 1]`
/// need construction.
fn solver_degradations() -> impl Strategy<Value = Vec<SolverDegradation>> {
    prop::collection::vec((0u64..4_000, 60u64..1_800, 0.0001f64..1.0), 0..3).prop_map(|raw| {
        raw.into_iter()
            .map(|(from, len, factor)| SolverDegradation {
                from: t(from),
                until: t(from + len),
                factor,
            })
            .collect()
    })
}

fn speculation() -> impl Strategy<Value = Option<SpeculationConfig>> {
    (any::<bool>(), 1.2f64..3.0)
        .prop_map(|(on, threshold)| on.then_some(SpeculationConfig { threshold }))
}

/// A full sanitized chaos plan plus the workload seed it runs against.
fn chaos() -> impl Strategy<Value = (u64, FaultPlan)> {
    (
        0u64..48,
        gpu_faults(),
        stragglers(),
        network_faults(),
        storage_faults(),
        solver_degradations(),
        speculation(),
    )
        .prop_map(
            |(
                seed,
                gpu_faults,
                stragglers,
                network_faults,
                storage_faults,
                solver_degradations,
                speculation,
            )| {
                (
                    seed,
                    FaultPlan {
                        gpu_faults,
                        stragglers,
                        network_faults,
                        storage_faults,
                        solver_degradations,
                        speculation,
                    },
                )
            },
        )
}

fn run_one(w: &SimWorkload, plan: &FaultPlan, scheme: Scheme) -> Result<SimReport, SimError> {
    let opts = RunOptions {
        noise: 0.0,
        ..RunOptions::default()
    };
    let sim = build_simulation(scheme, w, opts, plan);
    match scheme {
        Scheme::Hare => {
            let out = HareScheduler::default().schedule(&w.problem);
            sim.run(&mut OfflineReplay::new("Hare", w, &out.schedule))
        }
        Scheme::GavelFifo => sim.run(&mut GavelFifo::new()),
        Scheme::Srtf => sim.run(&mut Srtf::new()),
        Scheme::SchedHomo => sim.run(&mut SchedHomo::new()),
        Scheme::SchedAllox => sim.run(&mut SchedAllox::new()),
    }
}

fn run_online(w: &SimWorkload, plan: &FaultPlan) -> Result<SimReport, SimError> {
    let opts = RunOptions {
        noise: 0.0,
        ..RunOptions::default()
    };
    build_simulation(Scheme::Hare, w, opts, plan).run(&mut HareOnline::new())
}

/// Online Hare on a shoestring solver budget: every replan runs the
/// anytime ladder with almost no pivots/nodes to spend. Returns the
/// policy too so tests can inspect which rungs produced the plans.
fn run_online_tiny_budget(
    w: &SimWorkload,
    plan: &FaultPlan,
) -> Result<(SimReport, HareOnline), SimError> {
    let opts = RunOptions {
        noise: 0.0,
        ..RunOptions::default()
    };
    let mut policy = HareOnline::with_budget(ReplanBudget {
        budget: SolveBudget::capped(1, 1),
        ..ReplanBudget::default()
    });
    let report = build_simulation(Scheme::Hare, w, opts, plan).run(&mut policy)?;
    Ok((report, policy))
}

/// The recovery invariants every completed chaos run must satisfy.
fn check_invariants(w: &SimWorkload, plan: &FaultPlan, report: &SimReport) {
    let n = w.problem.jobs.len();
    assert_eq!(report.completion.len(), n, "{}: jobs lost", report.scheme);
    for (j, info) in w.problem.jobs.iter().enumerate() {
        assert!(
            report.completion[j] >= info.arrival,
            "{}: job {j} completed at {} before arriving at {}",
            report.scheme,
            report.completion[j],
            info.arrival
        );
    }
    assert!(report.weighted_jct.is_finite() && report.weighted_jct > 0.0);

    // Gradient conservation: re-execution and quorum drops must balance
    // to exactly the fault-free count.
    let expected: u64 = w
        .problem
        .jobs
        .iter()
        .map(|j| j.rounds as u64 * j.sync_scale as u64)
        .sum();
    let f = &report.faults;
    assert_eq!(
        f.gradients_accepted, expected,
        "{}: accepted {} gradients, expected {expected}",
        report.scheme, f.gradients_accepted
    );

    // Accounting consistency.
    assert!(f.gpu_recoveries <= f.gpu_failures);
    let transients = plan
        .gpu_faults
        .iter()
        .filter(|g| g.recover_after.is_some())
        .count() as u32;
    assert!(f.gpu_recoveries <= transients);
    let quiet = f.gpu_failures == 0 && f.speculated_tasks == 0;
    if quiet {
        assert_eq!(
            f.reexecuted_tasks, 0,
            "{}: re-exec without cause",
            report.scheme
        );
        assert_eq!(
            f.dropped_gradients, 0,
            "{}: drops without cause",
            report.scheme
        );
        assert!(
            f.lost_work.is_zero(),
            "{}: lost work without cause",
            report.scheme
        );
    }
    if plan.stragglers.is_empty() && plan.speculation.is_none() {
        assert!(f.straggler_delay.is_zero());
    }
    if plan.storage_faults.is_empty() {
        assert!(f.storage_stall.is_zero());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn hare_replay_survives_chaos(case in chaos()) {
        let (seed, plan) = case;
        let w = workload(seed);
        let report = run_one(&w, &plan, Scheme::Hare).expect("chaos run failed");
        check_invariants(&w, &plan, &report);
    }

    #[test]
    fn gavel_fifo_survives_chaos(case in chaos()) {
        let (seed, plan) = case;
        let w = workload(seed);
        let report = run_one(&w, &plan, Scheme::GavelFifo).expect("chaos run failed");
        check_invariants(&w, &plan, &report);
    }

    #[test]
    fn srtf_survives_chaos(case in chaos()) {
        let (seed, plan) = case;
        let w = workload(seed);
        let report = run_one(&w, &plan, Scheme::Srtf).expect("chaos run failed");
        check_invariants(&w, &plan, &report);
    }

    #[test]
    fn sched_homo_survives_chaos(case in chaos()) {
        let (seed, plan) = case;
        let w = workload(seed);
        let report = run_one(&w, &plan, Scheme::SchedHomo).expect("chaos run failed");
        check_invariants(&w, &plan, &report);
    }

    #[test]
    fn sched_allox_survives_chaos(case in chaos()) {
        let (seed, plan) = case;
        let w = workload(seed);
        let report = run_one(&w, &plan, Scheme::SchedAllox).expect("chaos run failed");
        check_invariants(&w, &plan, &report);
    }

    #[test]
    fn hare_online_survives_chaos(case in chaos()) {
        let (seed, plan) = case;
        let w = workload(seed);
        let report = run_online(&w, &plan).expect("chaos run failed");
        check_invariants(&w, &plan, &report);
    }

    /// Graceful degradation under chaos: with a near-zero solve budget the
    /// ladder can never run the relaxation, yet every chaos plan must
    /// still complete with the full recovery invariants intact, served by
    /// the stale-plan/greedy rungs alone.
    #[test]
    fn budgeted_hare_online_survives_chaos_on_a_shoestring(case in chaos()) {
        let (seed, plan) = case;
        let w = workload(seed);
        let (report, policy) = run_online_tiny_budget(&w, &plan).expect("chaos run failed");
        check_invariants(&w, &plan, &report);
        let hits = policy.rung_hits();
        let upper: u64 = hits[..2].iter().map(|(_, n)| n).sum();
        let lower: u64 = hits[2..].iter().map(|(_, n)| n).sum();
        prop_assert_eq!(upper, 0, "exact/relaxation rungs cannot fit in a 1-pivot budget");
        prop_assert!(lower > 0, "every replan must come from a degraded rung");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Identical plan, identical run: the whole fault pipeline (failure
    /// events, straggler integration, quorum drops, recovery rejoins) is
    /// replayable bit for bit.
    #[test]
    fn chaos_runs_are_deterministic(case in chaos()) {
        let (seed, plan) = case;
        let w = workload(seed);
        for scheme in Scheme::ALL {
            let a = run_one(&w, &plan, scheme).expect("chaos run failed");
            let b = run_one(&w, &plan, scheme).expect("chaos run failed");
            assert_eq!(a, b, "{scheme:?} diverged under an identical plan");
        }
        let a = run_online(&w, &plan).expect("chaos run failed");
        let b = run_online(&w, &plan).expect("chaos run failed");
        assert_eq!(a, b, "online Hare diverged under an identical plan");
    }
}
