//! Data-center network model for parameter-server synchronization.
//!
//! The testbed connects machines with 25 Gbps Ethernet (Section 7.1); the
//! Fig.-18 sweep varies that from 10 to 25 Gbps. Gradient synchronization for
//! a round is one push + one pull of the gradient payload per worker; workers
//! sharing a machine share that machine's NIC, and the (sharded) parameter
//! server side can also be made a bottleneck via [`NetworkModel::ps_shards`].

use crate::gpu::MachineId;
use crate::units::{Bandwidth, Bytes, SimDuration};
use serde::{Deserialize, Serialize};

/// How a job's workers exchange gradients each round (Section 8 surveys
/// both families; the paper's system uses the PS scheme).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyncScheme {
    /// Parameter server: each worker pushes and pulls the payload;
    /// colocated workers share their machine's NIC, and the PS side can
    /// bottleneck (the default, as in the paper).
    #[default]
    ParameterServer,
    /// Bandwidth-optimal ring all-reduce: every worker sends/receives
    /// `2(k-1)/k` of the payload; the ring is paced by its slowest link,
    /// and all workers finish together.
    RingAllReduce,
}

/// Network configuration connecting the cluster's machines.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Per-machine NIC bandwidth (full duplex assumed).
    pub nic: Bandwidth,
    /// Intra-machine transport (PCIe peer traffic / host staging).
    pub intra_machine: Bandwidth,
    /// Protocol efficiency: fraction of line rate usable by gradient flows
    /// (TCP + gRPC framing overheads).
    pub efficiency: f64,
    /// Fraction of the raw FP32 parameter size actually shipped per
    /// direction. Production PS stacks ship FP16 gradients, so 0.5 by
    /// default; this also keeps sync time below training time, the paper's
    /// standing assumption (Section 5.1).
    pub gradient_factor: f64,
    /// Number of parameter-server shards the payload is spread across.
    /// More shards raise the PS-side aggregate bandwidth.
    pub ps_shards: u32,
    /// Gradient-exchange scheme.
    pub scheme: SyncScheme,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel {
            nic: Bandwidth::gbps(25.0),
            intra_machine: Bandwidth::gigabytes_per_sec(15.75),
            efficiency: 0.9,
            gradient_factor: 0.5,
            ps_shards: 4,
            scheme: SyncScheme::ParameterServer,
        }
    }
}

impl NetworkModel {
    /// Same model with a different NIC speed (Fig.-18 sweep).
    pub fn with_nic(mut self, nic: Bandwidth) -> Self {
        self.nic = nic;
        self
    }

    /// Bytes shipped per direction per worker for a model with `param_bytes`
    /// of FP32 parameters.
    pub fn payload(&self, param_bytes: Bytes) -> Bytes {
        param_bytes.mul_f64(self.gradient_factor)
    }

    /// Same model with a different sync scheme.
    pub fn with_scheme(mut self, scheme: SyncScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Synchronization time for each worker of one training round, under
    /// the configured [`SyncScheme`].
    ///
    /// `worker_machines[i]` is the machine hosting worker `i`'s GPU.
    /// Returns one duration per worker, in input order.
    pub fn round_sync_times(
        &self,
        param_bytes: Bytes,
        worker_machines: &[MachineId],
    ) -> Vec<SimDuration> {
        self.round_sync_times_contended(param_bytes, worker_machines, 0)
    }

    /// Like [`NetworkModel::round_sync_times`], but with `extra_flows`
    /// unrelated gradient flows contending on every NIC — the cross-job
    /// congestion a busy cluster exhibits (the simulator passes the number
    /// of other jobs currently synchronizing).
    pub fn round_sync_times_contended(
        &self,
        param_bytes: Bytes,
        worker_machines: &[MachineId],
        extra_flows: u32,
    ) -> Vec<SimDuration> {
        self.round_sync_times_degraded(param_bytes, worker_machines, extra_flows, &[], 1.0)
    }

    /// Like [`NetworkModel::round_sync_times_contended`], under NIC
    /// degradation (fault injection): `machine_factors[m]` is the fraction
    /// of machine `m`'s NIC bandwidth still delivered (missing entries =
    /// 1.0), and `backbone` scales every inter-machine link — the PS side
    /// and all cross-machine flows. Factors must lie in (0, 1].
    pub fn round_sync_times_degraded(
        &self,
        param_bytes: Bytes,
        worker_machines: &[MachineId],
        extra_flows: u32,
        machine_factors: &[f64],
        backbone: f64,
    ) -> Vec<SimDuration> {
        match self.scheme {
            SyncScheme::ParameterServer => self.ps_sync_times(
                param_bytes,
                worker_machines,
                extra_flows,
                machine_factors,
                backbone,
            ),
            SyncScheme::RingAllReduce => self.allreduce_sync_times(
                param_bytes,
                worker_machines,
                extra_flows,
                machine_factors,
                backbone,
            ),
        }
    }

    /// PS scheme: every worker pushes and pulls `payload(param_bytes)`; its
    /// achievable rate is the minimum of its machine-NIC fair share and the
    /// PS-side fair share.
    fn ps_sync_times(
        &self,
        param_bytes: Bytes,
        worker_machines: &[MachineId],
        extra_flows: u32,
        machine_factors: &[f64],
        backbone: f64,
    ) -> Vec<SimDuration> {
        assert!(!worker_machines.is_empty(), "sync with zero workers");
        let payload = self.payload(param_bytes);
        let total_workers = worker_machines.len() as u32;

        // Workers per machine (small vectors; avoid a hash map).
        let mut machines: Vec<(MachineId, u32)> = Vec::new();
        for &m in worker_machines {
            match machines.iter_mut().find(|(id, _)| *id == m) {
                Some((_, c)) => *c += 1,
                None => machines.push((m, 1)),
            }
        }

        // PS-side aggregate: shards ride independent NICs, contended by
        // the other jobs' flows as well, throttled with the backbone.
        let ps_side = degrade(
            self.nic
                .mul_f64(self.efficiency)
                .mul_f64(self.ps_shards as f64),
            backbone,
        )
        .shared(total_workers + extra_flows);

        worker_machines
            .iter()
            .map(|m| {
                let colocated = machines
                    .iter()
                    .find(|(id, _)| id == m)
                    .map(|(_, c)| *c)
                    .expect("machine recorded above");
                let factor = nic_factor(machine_factors, *m) * backbone;
                let worker_side = degrade(self.nic.mul_f64(self.efficiency), factor)
                    .shared(colocated + extra_flows);
                let rate = worker_side.min(ps_side);
                // Push + pull.
                rate.transfer_time(payload) * 2
            })
            .collect()
    }

    /// Ring all-reduce: each worker transfers `2(k-1)/k` of the payload.
    /// Ring links between colocated workers run at the intra-machine rate;
    /// links crossing machines share the endpoints' NICs. The whole ring is
    /// paced by its slowest link, so every worker reports the same time.
    fn allreduce_sync_times(
        &self,
        param_bytes: Bytes,
        worker_machines: &[MachineId],
        extra_flows: u32,
        machine_factors: &[f64],
        backbone: f64,
    ) -> Vec<SimDuration> {
        assert!(!worker_machines.is_empty(), "sync with zero workers");
        let k = worker_machines.len();
        if k == 1 {
            // Nothing to exchange with a single worker.
            return vec![SimDuration::ZERO];
        }
        let volume = self
            .payload(param_bytes)
            .mul_f64(2.0 * (k as f64 - 1.0) / k as f64);

        // Per-machine cross-machine ring degree: each machine's NIC carries
        // one flow per ring edge leaving it.
        let mut cross_flows: Vec<(MachineId, u32)> = Vec::new();
        let mut slowest = self.intra_machine;
        for i in 0..k {
            let a = worker_machines[i];
            let b = worker_machines[(i + 1) % k];
            if a != b {
                for m in [a, b] {
                    match cross_flows.iter_mut().find(|(id, _)| *id == m) {
                        Some((_, c)) => *c += 1,
                        None => cross_flows.push((m, 1)),
                    }
                }
            }
        }
        for i in 0..k {
            let a = worker_machines[i];
            let b = worker_machines[(i + 1) % k];
            let link = if a == b {
                self.intra_machine
            } else {
                let flows = |m: MachineId| {
                    cross_flows
                        .iter()
                        .find(|(id, _)| *id == m)
                        .map(|(_, c)| *c)
                        .unwrap_or(1)
                };
                let factor =
                    nic_factor(machine_factors, a).min(nic_factor(machine_factors, b)) * backbone;
                degrade(self.nic.mul_f64(self.efficiency), factor)
                    .shared(flows(a).max(flows(b)) + extra_flows)
            };
            slowest = slowest.min(link);
        }
        vec![slowest.transfer_time(volume); k]
    }

    /// Worst-case (slowest worker) sync time for a round; the barrier time.
    pub fn round_sync_barrier(
        &self,
        param_bytes: Bytes,
        worker_machines: &[MachineId],
    ) -> SimDuration {
        self.round_sync_times(param_bytes, worker_machines)
            .into_iter()
            .max()
            .expect("non-empty workers")
    }
}

/// Remaining NIC fraction of `machine` (missing entries = healthy).
fn nic_factor(machine_factors: &[f64], machine: MachineId) -> f64 {
    machine_factors.get(machine.index()).copied().unwrap_or(1.0)
}

/// Scale a bandwidth by a degradation factor, bypassing the float
/// round-trip entirely when healthy so fault-free runs stay bit-identical.
fn degrade(bw: Bandwidth, factor: f64) -> Bandwidth {
    debug_assert!(factor > 0.0 && factor <= 1.0, "degradation factor {factor}");
    if factor == 1.0 {
        bw
    } else {
        bw.mul_f64(factor)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn m(i: u32) -> MachineId {
        MachineId(i)
    }

    #[test]
    fn lone_worker_uses_full_nic() {
        let net = NetworkModel::default();
        let times = net.round_sync_times(Bytes::mib(100), &[m(0)]);
        assert_eq!(times.len(), 1);
        // payload = 50 MiB, rate = min(22.5 Gbps, 4*22.5/1) = 22.5 Gbps
        let expected = Bandwidth::gbps(22.5).transfer_time(Bytes::mib(50)) * 2;
        assert_eq!(times[0], expected);
    }

    #[test]
    fn colocated_workers_share_nic() {
        let net = NetworkModel::default();
        let alone = net.round_sync_times(Bytes::mib(100), &[m(0)])[0];
        let shared = net.round_sync_times(Bytes::mib(100), &[m(0), m(0)]);
        assert_eq!(shared[0], shared[1]);
        assert!(shared[0] > alone, "sharing a NIC must slow the flow");
    }

    #[test]
    fn spread_workers_hit_ps_side_limit() {
        let net = NetworkModel {
            ps_shards: 1,
            ..NetworkModel::default()
        };
        // 8 workers on 8 machines: worker side is full NIC but the single
        // PS shard splits its NIC 8 ways.
        let machines: Vec<MachineId> = (0..8).map(m).collect();
        let times = net.round_sync_times(Bytes::mib(100), &machines);
        let lone = net.round_sync_times(Bytes::mib(100), &[m(0)])[0];
        assert!(times[0] > lone);
    }

    #[test]
    fn barrier_is_worst_worker() {
        let net = NetworkModel::default();
        let machines = [m(0), m(0), m(0), m(1)];
        let times = net.round_sync_times(Bytes::mib(200), &machines);
        let barrier = net.round_sync_barrier(Bytes::mib(200), &machines);
        assert_eq!(barrier, *times.iter().max().unwrap());
        // The three colocated workers are slower than the lone one.
        assert!(times[0] > times[3]);
    }

    #[test]
    fn faster_nic_shortens_sync() {
        let slow = NetworkModel::default().with_nic(Bandwidth::gbps(10.0));
        let fast = NetworkModel::default().with_nic(Bandwidth::gbps(25.0));
        let machines = [m(0), m(1)];
        assert!(
            slow.round_sync_barrier(Bytes::mib(100), &machines)
                > fast.round_sync_barrier(Bytes::mib(100), &machines)
        );
    }

    #[test]
    fn payload_applies_gradient_factor() {
        let net = NetworkModel::default();
        assert_eq!(net.payload(Bytes::mib(100)), Bytes::mib(50));
    }

    #[test]
    fn allreduce_single_worker_is_free() {
        let net = NetworkModel::default().with_scheme(SyncScheme::RingAllReduce);
        assert_eq!(
            net.round_sync_times(Bytes::mib(100), &[m(0)]),
            vec![SimDuration::ZERO]
        );
    }

    #[test]
    fn allreduce_all_workers_finish_together() {
        let net = NetworkModel::default().with_scheme(SyncScheme::RingAllReduce);
        let times = net.round_sync_times(Bytes::mib(200), &[m(0), m(0), m(1), m(2)]);
        for w in times.windows(2) {
            assert_eq!(w[0], w[1], "ring barrier must be uniform");
        }
        assert!(times[0] > SimDuration::ZERO);
    }

    #[test]
    fn allreduce_volume_approaches_2x_payload() {
        let net = NetworkModel::default().with_scheme(SyncScheme::RingAllReduce);
        // k=2 -> 2*(1)/2 = 1x payload; k=8 -> 2*7/8 = 1.75x payload.
        let two = net.round_sync_times(Bytes::mib(100), &[m(0), m(1)])[0];
        let eight: Vec<MachineId> = (0..8).map(m).collect();
        let eight_t = net.round_sync_times(Bytes::mib(100), &eight)[0];
        assert!(eight_t > two, "larger rings move more data per worker");
    }

    #[test]
    fn intra_machine_ring_is_much_faster() {
        let net = NetworkModel::default().with_scheme(SyncScheme::RingAllReduce);
        let local = net.round_sync_times(Bytes::mib(200), &[m(0), m(0)])[0];
        let cross = net.round_sync_times(Bytes::mib(200), &[m(0), m(1)])[0];
        assert!(
            local < cross,
            "PCIe ring ({local}) should beat the 25Gbps network ({cross})"
        );
    }

    #[test]
    fn allreduce_vs_ps_crossover() {
        // With one PS shard and many spread workers, all-reduce's constant
        // 2(k-1)/k volume beats the PS's k-way incast.
        let machines: Vec<MachineId> = (0..8).map(m).collect();
        let ps = NetworkModel {
            ps_shards: 1,
            ..NetworkModel::default()
        };
        let ar = ps.with_scheme(SyncScheme::RingAllReduce);
        let ps_t = ps
            .round_sync_times(Bytes::mib(400), &machines)
            .into_iter()
            .max()
            .unwrap();
        let ar_t = ar.round_sync_times(Bytes::mib(400), &machines)[0];
        assert!(
            ar_t < ps_t,
            "all-reduce {ar_t} should beat 1-shard PS {ps_t}"
        );
    }

    #[test]
    fn healthy_degraded_path_is_bit_identical() {
        let net = NetworkModel::default();
        let machines = [m(0), m(0), m(1)];
        let plain = net.round_sync_times_contended(Bytes::mib(200), &machines, 2);
        let degraded =
            net.round_sync_times_degraded(Bytes::mib(200), &machines, 2, &[1.0, 1.0], 1.0);
        assert_eq!(plain, degraded);
    }

    #[test]
    fn nic_degradation_slows_only_that_machine() {
        let net = NetworkModel::default();
        let machines = [m(0), m(1)];
        let healthy = net.round_sync_times_contended(Bytes::mib(200), &machines, 0);
        let degraded = net.round_sync_times_degraded(Bytes::mib(200), &machines, 0, &[0.25], 1.0);
        assert!(degraded[0] > healthy[0], "machine 0's worker must slow");
        assert_eq!(degraded[1], healthy[1], "machine 1 is untouched");
    }

    #[test]
    fn backbone_degradation_slows_everyone() {
        let net = NetworkModel::default();
        let machines = [m(0), m(1), m(2)];
        let healthy = net.round_sync_times_contended(Bytes::mib(200), &machines, 0);
        let degraded = net.round_sync_times_degraded(Bytes::mib(200), &machines, 0, &[], 0.5);
        for (h, d) in healthy.iter().zip(&degraded) {
            assert!(d > h, "backbone cut must slow every worker");
        }
    }
}
