//! Fixed-point simulation units.
//!
//! Everything inside the simulator and the scheduler uses **integer
//! microseconds** so that event ordering is exact and runs are bit-for-bit
//! reproducible across platforms. Floating point appears only at the
//! reporting boundary (`as_secs_f64` and friends).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute point on the simulation clock, in microseconds since t=0.
#[derive(
    Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A non-negative span of simulated time, in microseconds.
#[derive(
    Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "unscheduled" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest microsecond.
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0 && s.is_finite(), "negative or non-finite time");
        SimTime((s * 1e6).round() as u64)
    }

    /// Raw microseconds since t=0.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since t=0 as a float (reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Milliseconds since t=0 as a float (reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Span from an earlier instant, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional milliseconds, rounding to the nearest microsecond.
    pub fn from_millis_f64(ms: f64) -> Self {
        debug_assert!(ms >= 0.0 && ms.is_finite(), "negative or non-finite span");
        SimDuration((ms * 1e3).round() as u64)
    }

    /// Construct from fractional seconds, rounding to the nearest microsecond.
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0 && s.is_finite(), "negative or non-finite span");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds (reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Fractional seconds (reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale by a non-negative float, rounding to the nearest microsecond.
    pub fn mul_f64(self, k: f64) -> Self {
        debug_assert!(k >= 0.0 && k.is_finite(), "negative or non-finite scale");
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// Subtraction clamped at zero.
    pub fn saturating_sub(self, rhs: SimDuration) -> Self {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Ratio of two spans as a float; zero denominator yields infinity.
    pub fn ratio(self, denom: SimDuration) -> f64 {
        if denom.0 == 0 {
            f64::INFINITY
        } else {
            self.0 as f64 / denom.0 as f64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics (debug) if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when that is expected.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}us", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

/// A byte count (memory footprints, transfer sizes).
#[derive(
    Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Construct from a raw byte count.
    pub const fn new(b: u64) -> Self {
        Bytes(b)
    }

    /// Construct from kibibytes.
    pub const fn kib(k: u64) -> Self {
        Bytes(k * 1024)
    }

    /// Construct from mebibytes.
    pub const fn mib(m: u64) -> Self {
        Bytes(m * 1024 * 1024)
    }

    /// Construct from gibibytes.
    pub const fn gib(g: u64) -> Self {
        Bytes(g * 1024 * 1024 * 1024)
    }

    /// Raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Mebibytes as a float (reporting only).
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Bytes) -> Option<Bytes> {
        self.0.checked_sub(rhs.0).map(Bytes)
    }

    /// Subtraction clamped at zero.
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// Scale by a non-negative float, rounding to the nearest byte.
    pub fn mul_f64(self, k: f64) -> Bytes {
        debug_assert!(k >= 0.0 && k.is_finite());
        Bytes((self.0 as f64 * k).round() as u64)
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.checked_add(rhs.0).expect("Bytes overflow"))
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        *self = *self + rhs;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        debug_assert!(self.0 >= rhs.0, "Bytes subtraction underflow");
        Bytes(self.0 - rhs.0)
    }
}

impl SubAssign for Bytes {
    fn sub_assign(&mut self, rhs: Bytes) {
        *self = *self - rhs;
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 * 1024 * 1024 {
            write!(f, "{:.2}GiB", self.0 as f64 / (1024.0 * 1024.0 * 1024.0))
        } else if self.0 >= 1024 * 1024 {
            write!(f, "{:.1}MiB", self.as_mib_f64())
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

/// A transfer rate in bytes per second.
///
/// Used both for device interconnects (PCIe, HBM) and for the data-center
/// network (NIC bandwidth). Network speeds are usually quoted in Gbps
/// (decimal bits), hence the [`Bandwidth::gbps`] constructor.
#[derive(
    Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Construct from raw bytes per second.
    pub const fn bytes_per_sec(b: u64) -> Self {
        Bandwidth(b)
    }

    /// Construct from decimal gigabits per second (network convention).
    pub fn gbps(g: f64) -> Self {
        debug_assert!(g > 0.0 && g.is_finite());
        Bandwidth((g * 1e9 / 8.0).round() as u64)
    }

    /// Construct from decimal gigabytes per second (bus convention;
    /// e.g. PCIe 3.0 x16 is quoted as 15.75 GB/s).
    pub fn gigabytes_per_sec(g: f64) -> Self {
        debug_assert!(g > 0.0 && g.is_finite());
        Bandwidth((g * 1e9).round() as u64)
    }

    /// Raw bytes per second.
    pub const fn as_bytes_per_sec(self) -> u64 {
        self.0
    }

    /// Decimal gigabits per second (reporting only).
    pub fn as_gbps(self) -> f64 {
        self.0 as f64 * 8.0 / 1e9
    }

    /// Time to move `bytes` at this rate, rounded up to a whole microsecond.
    ///
    /// Panics if the bandwidth is zero — a zero-rate link is a configuration
    /// error, not a legitimate state.
    pub fn transfer_time(self, bytes: Bytes) -> SimDuration {
        assert!(self.0 > 0, "transfer over a zero-bandwidth link");
        let us = (bytes.as_u64() as u128 * 1_000_000).div_ceil(self.0 as u128);
        SimDuration::from_micros(us.try_into().expect("transfer time overflow"))
    }

    /// Fair share of this link among `flows` concurrent flows.
    pub fn shared(self, flows: u32) -> Bandwidth {
        assert!(flows > 0, "sharing among zero flows");
        Bandwidth(self.0 / flows as u64)
    }

    /// Scale by a non-negative float (e.g. protocol efficiency factor).
    pub fn mul_f64(self, k: f64) -> Bandwidth {
        debug_assert!(k >= 0.0 && k.is_finite());
        Bandwidth((self.0 as f64 * k).round() as u64)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}Gbps", self.as_gbps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrip_micros() {
        let t = SimTime::from_micros(1_234_567);
        assert_eq!(t.as_micros(), 1_234_567);
        assert!((t.as_secs_f64() - 1.234567).abs() < 1e-12);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(2) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 2_500_000);
        let d = t - SimTime::from_secs(1);
        assert_eq!(d, SimDuration::from_millis(1500));
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(3);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(2));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d.mul_f64(2.5), SimDuration::from_millis(250));
        assert_eq!(d * 3, SimDuration::from_millis(300));
        assert_eq!(d / 4, SimDuration::from_millis(25));
    }

    #[test]
    fn duration_sum_and_ratio() {
        let total: SimDuration = [10u64, 20, 30]
            .iter()
            .map(|&ms| SimDuration::from_millis(ms))
            .sum();
        assert_eq!(total, SimDuration::from_millis(60));
        assert!((total.ratio(SimDuration::from_millis(120)) - 0.5).abs() < 1e-12);
        assert!(total.ratio(SimDuration::ZERO).is_infinite());
    }

    #[test]
    fn bytes_constructors() {
        assert_eq!(Bytes::kib(1).as_u64(), 1024);
        assert_eq!(Bytes::mib(1).as_u64(), 1024 * 1024);
        assert_eq!(Bytes::gib(2).as_u64(), 2 * 1024 * 1024 * 1024);
        assert!((Bytes::mib(512).as_mib_f64() - 512.0).abs() < 1e-9);
    }

    #[test]
    fn bytes_checked_ops() {
        let a = Bytes::mib(10);
        let b = Bytes::mib(4);
        assert_eq!(a - b, Bytes::mib(6));
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(b.saturating_sub(a), Bytes::ZERO);
    }

    #[test]
    fn bandwidth_transfer_time() {
        // 1 GB/s moving 1 MB takes ~1000us (rounded up from 1048.576us -> 1049).
        let bw = Bandwidth::gigabytes_per_sec(1.0);
        let t = bw.transfer_time(Bytes::mib(1));
        assert_eq!(t.as_micros(), 1049);
    }

    #[test]
    fn bandwidth_gbps_roundtrip() {
        let bw = Bandwidth::gbps(25.0);
        assert!((bw.as_gbps() - 25.0).abs() < 1e-9);
        // 25 Gbps = 3.125 GB/s
        assert_eq!(bw.as_bytes_per_sec(), 3_125_000_000);
    }

    #[test]
    fn bandwidth_sharing() {
        let bw = Bandwidth::gbps(10.0);
        assert_eq!(bw.shared(4).as_bytes_per_sec(), bw.as_bytes_per_sec() / 4);
    }

    #[test]
    fn transfer_time_rounds_up() {
        // 3 bytes at 2 B/s = 1.5s -> 1_500_000us exactly; 1 byte at 3 B/s
        // = 333333.33us -> rounds up to 333334.
        let bw = Bandwidth::bytes_per_sec(3);
        assert_eq!(
            bw.transfer_time(Bytes::new(1)),
            SimDuration::from_micros(333_334)
        );
    }

    #[test]
    #[should_panic(expected = "zero-bandwidth")]
    fn zero_bandwidth_panics() {
        Bandwidth::bytes_per_sec(0).transfer_time(Bytes::new(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.00ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
        assert_eq!(format!("{}", Bytes::mib(3)), "3.0MiB");
    }
}
