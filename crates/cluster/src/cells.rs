//! Cell partitioning for datacenter-scale simulation.
//!
//! A 10k-GPU simulation cannot run as one flat event loop: per-job ×
//! per-GPU state is quadratic and every event contends on one queue. The
//! sharded engine instead splits the cluster into *cells* — disjoint sets
//! of whole machines, each a self-contained [`Cluster`] — and runs an
//! independent simulation per cell. This module owns the partitioning and
//! the id translation between the global cluster and its cells.
//!
//! Machines are **striped** across cells (global machine `m` lands in cell
//! `m % n_cells`) rather than chunked. Cluster builders lay out machines
//! kind-by-kind, so contiguous chunks would produce single-kind cells;
//! striping gives every cell approximately the global kind mix, which the
//! gateway's heterogeneity-aware routing relies on.
//!
//! Within a cell, machines keep their relative order and GPUs keep their
//! relative (global-id) order, renumbered densely from zero. A 1-cell
//! partition is therefore the identity: its single cell is bit-identical
//! to the source cluster, which is what lets the sharded engine's 1-cell
//! output be compared byte-for-byte against the unsharded engine.

use crate::cluster::Cluster;
use crate::gpu::{Gpu, GpuId, MachineId};

/// One cell of a partitioned cluster: a standalone [`Cluster`] over a
/// subset of the global machines, plus the id maps back to the global
/// space.
#[derive(Clone, Debug)]
pub struct Cell {
    cluster: Cluster,
    global_machines: Vec<MachineId>,
    global_gpus: Vec<GpuId>,
}

impl Cell {
    /// The cell's self-contained cluster (dense local ids).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Global machine id for each local machine id (ascending).
    pub fn global_machines(&self) -> &[MachineId] {
        &self.global_machines
    }

    /// Global GPU id for each local GPU id (ascending).
    pub fn global_gpus(&self) -> &[GpuId] {
        &self.global_gpus
    }

    /// Translate a cell-local GPU id to the global id space.
    pub fn to_global_gpu(&self, local: GpuId) -> GpuId {
        self.global_gpus[local.index()]
    }
}

/// A partition of a [`Cluster`] into machine-disjoint cells.
#[derive(Clone, Debug)]
pub struct CellPartition {
    cells: Vec<Cell>,
    /// Global GPU id → (cell index, cell-local GPU id).
    gpu_home: Vec<(usize, GpuId)>,
}

impl CellPartition {
    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True only for a degenerate partition (never produced by
    /// [`Cluster::partition_cells`], which requires ≥ 1 cell).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// All cells, in cell-index order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// One cell.
    pub fn cell(&self, i: usize) -> &Cell {
        &self.cells[i]
    }

    /// Which cell a global machine belongs to.
    pub fn cell_of_machine(&self, m: MachineId) -> usize {
        m.index() % self.cells.len()
    }

    /// Where a global GPU lives: (cell index, cell-local GPU id).
    pub fn locate_gpu(&self, g: GpuId) -> (usize, GpuId) {
        self.gpu_home[g.index()]
    }
}

impl Cluster {
    /// Partition this cluster into `n_cells` machine-disjoint cells by
    /// striping machines across cells (machine `m` → cell `m % n_cells`).
    /// Every cell must end up with at least one machine, so `n_cells` is
    /// capped by the machine count.
    ///
    /// `partition_cells(1)` reproduces this cluster exactly in its single
    /// cell — the identity the sharded-vs-unsharded golden tests pin.
    pub fn partition_cells(&self, n_cells: usize) -> CellPartition {
        assert!(n_cells >= 1, "need at least one cell");
        assert!(
            n_cells <= self.machine_count(),
            "more cells ({n_cells}) than machines ({})",
            self.machine_count()
        );
        // Group the global GPU list by cell. GPUs arrive in ascending
        // global-id order, so each cell's list is ascending too.
        let mut machines: Vec<Vec<MachineId>> = vec![Vec::new(); n_cells];
        for m in 0..self.machine_count() {
            machines[m % n_cells].push(MachineId(m as u32));
        }
        let mut gpus: Vec<Vec<Gpu>> = vec![Vec::new(); n_cells];
        let mut global: Vec<Vec<GpuId>> = vec![Vec::new(); n_cells];
        let mut gpu_home = Vec::with_capacity(self.gpu_count());
        for g in self.gpus() {
            let cell = g.machine.index() % n_cells;
            // Machines are striped, so global machine m has local index
            // m / n_cells within its cell (ascending order preserved).
            let local_machine = MachineId((g.machine.index() / n_cells) as u32);
            let local_id = GpuId(gpus[cell].len() as u32);
            gpu_home.push((cell, local_id));
            gpus[cell].push(Gpu {
                id: local_id,
                kind: g.kind,
                machine: local_machine,
            });
            global[cell].push(g.id);
        }
        let cells = machines
            .into_iter()
            .zip(gpus)
            .zip(global)
            .map(|((global_machines, gpus), global_gpus)| Cell {
                cluster: Cluster::from_parts(gpus, global_machines.len() as u32, *self.network()),
                global_machines,
                global_gpus,
            })
            .collect();
        CellPartition { cells, gpu_home }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::GpuKind;

    #[test]
    fn one_cell_is_the_identity() {
        let c = Cluster::testbed15();
        let p = c.partition_cells(1);
        assert_eq!(p.len(), 1);
        let cell = p.cell(0);
        assert_eq!(cell.cluster().gpu_count(), c.gpu_count());
        assert_eq!(cell.cluster().machine_count(), c.machine_count());
        for (a, b) in cell.cluster().gpus().iter().zip(c.gpus()) {
            assert_eq!(a, b);
        }
        for g in c.gpu_ids() {
            assert_eq!(p.locate_gpu(g), (0, g));
            assert_eq!(cell.to_global_gpu(g), g);
        }
    }

    #[test]
    fn cells_cover_every_gpu_exactly_once() {
        let c = Cluster::with_heterogeneity(crate::cluster::Heterogeneity::High, 64);
        for n_cells in [1, 2, 3, 5, c.machine_count()] {
            let p = c.partition_cells(n_cells);
            let mut seen = vec![0u32; c.gpu_count()];
            for (ci, cell) in p.cells().iter().enumerate() {
                assert!(cell.cluster().gpu_count() > 0, "cell {ci} is empty");
                for (local, &g) in cell.global_gpus().iter().enumerate() {
                    seen[g.index()] += 1;
                    assert_eq!(p.locate_gpu(g), (ci, GpuId(local as u32)));
                    assert_eq!(cell.cluster().gpu(GpuId(local as u32)).kind, c.gpu(g).kind);
                }
            }
            assert!(seen.iter().all(|&n| n == 1), "{n_cells} cells: {seen:?}");
        }
    }

    #[test]
    fn machines_are_striped_not_chunked() {
        // testbed15: machines 0,1 hold V100s, 2 holds T4s, 3 holds K80/M60.
        // Striping into 2 cells puts {0,2} and {1,3} together, so both
        // cells stay heterogeneous; chunking would give {0,1} all-V100.
        let c = Cluster::testbed15();
        let p = c.partition_cells(2);
        assert_eq!(p.cell(0).global_machines(), &[MachineId(0), MachineId(2)]);
        assert_eq!(p.cell(1).global_machines(), &[MachineId(1), MachineId(3)]);
        assert!(p.cell(0).cluster().kinds_present().len() > 1);
        assert!(p.cell(1).cluster().kinds_present().len() > 1);
        assert_eq!(p.cell_of_machine(MachineId(2)), 0);
        assert_eq!(p.cell_of_machine(MachineId(3)), 1);
    }

    #[test]
    fn cell_local_ids_are_dense_and_machine_local() {
        let c = Cluster::from_counts(&[(GpuKind::V100, 8), (GpuKind::K80, 8)], 2);
        let p = c.partition_cells(3);
        for cell in p.cells() {
            for (i, g) in cell.cluster().gpus().iter().enumerate() {
                assert_eq!(g.id.index(), i);
                assert!(g.machine.index() < cell.cluster().machine_count());
            }
            // Same-machine relationships survive renumbering.
            for (i, &gi) in cell.global_gpus().iter().enumerate() {
                for (j, &gj) in cell.global_gpus().iter().enumerate() {
                    assert_eq!(
                        cell.cluster()
                            .same_machine(GpuId(i as u32), GpuId(j as u32)),
                        c.same_machine(gi, gj)
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "more cells")]
    fn too_many_cells_rejected() {
        let _ = Cluster::testbed15().partition_cells(5);
    }
}
