//! GPU hardware descriptions.
//!
//! The paper's testbed spans four NVIDIA generations — V100, T4, K80 and M60 —
//! all attached over PCIe 3.0 x16 (15.75 GB/s). The specs below combine the
//! public datasheet numbers with the switching-cost components the paper's
//! Section 4 identifies (CUDA context creation/destruction being the dominant
//! ones). Custom GPU kinds can be added through [`GpuSpec`] directly.

use crate::units::{Bandwidth, Bytes, SimDuration};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The GPU generations present in the paper's 15-GPU testbed.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum GpuKind {
    /// NVIDIA Tesla V100 (Volta, 16 GB HBM2). The fastest GPU in the testbed.
    V100,
    /// NVIDIA Tesla T4 (Turing, 16 GB GDDR6).
    T4,
    /// NVIDIA Tesla K80 (Kepler, 12 GB per die). The paper's speedup baseline.
    K80,
    /// NVIDIA Tesla M60 (Maxwell, 8 GB per die).
    M60,
}

impl GpuKind {
    /// All kinds, ordered fastest-first (the order Gavel_FIFO prefers).
    pub const ALL: [GpuKind; 4] = [GpuKind::V100, GpuKind::T4, GpuKind::M60, GpuKind::K80];

    /// Hardware description for this kind.
    pub fn spec(self) -> &'static GpuSpec {
        match self {
            GpuKind::V100 => &V100_SPEC,
            GpuKind::T4 => &T4_SPEC,
            GpuKind::K80 => &K80_SPEC,
            GpuKind::M60 => &M60_SPEC,
        }
    }

    /// Short display name ("V100", "T4", ...).
    pub fn name(self) -> &'static str {
        self.spec().name
    }

    /// Generic relative FP32 throughput against the K80 baseline.
    ///
    /// Individual models deviate from this (that is the whole point of
    /// Fig. 2); the per-model numbers live in `hare-workload`'s profile
    /// database. This generic ratio is used only as a model-agnostic
    /// tie-breaker (e.g. "fastest available GPU" in Gavel_FIFO).
    pub fn generic_speedup(self) -> f64 {
        self.spec().fp32_tflops / GpuKind::K80.spec().fp32_tflops
    }
}

impl fmt::Display for GpuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Static hardware description of a GPU model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Device memory capacity.
    pub memory: Bytes,
    /// Device memory bandwidth (HBM/GDDR).
    pub mem_bandwidth: Bandwidth,
    /// Host↔device link bandwidth. All testbed GPUs use PCIe 3.0 x16.
    pub pcie: Bandwidth,
    /// Peak FP32 throughput in TFLOPS (datasheet).
    pub fp32_tflops: f64,
    /// Time to create a fresh CUDA context + load the driver state.
    ///
    /// This is the dominant cost of a cold task switch (Section 4 / Table 3);
    /// PipeSwitch and Hare hide it by pre-creating contexts.
    pub context_create: SimDuration,
    /// Time to tear down a CUDA context and return its memory.
    pub context_destroy: SimDuration,
    /// cuDNN / framework kernel-autotune cost factor: slower, older parts
    /// take longer to benchmark and compile kernels during cold start.
    pub coldstart_factor: f64,
}

/// PCIe 3.0 x16 as quoted in the paper (Section 7.1).
pub fn pcie3_x16() -> Bandwidth {
    Bandwidth::gigabytes_per_sec(15.75)
}

static V100_SPEC: GpuSpec = GpuSpec {
    name: "V100",
    memory: Bytes::gib(16),
    mem_bandwidth: Bandwidth::bytes_per_sec(900_000_000_000),
    pcie: Bandwidth::bytes_per_sec(15_750_000_000),
    fp32_tflops: 15.7,
    context_create: SimDuration::from_millis(950),
    context_destroy: SimDuration::from_millis(180),
    coldstart_factor: 1.0,
};

static T4_SPEC: GpuSpec = GpuSpec {
    name: "T4",
    memory: Bytes::gib(16),
    mem_bandwidth: Bandwidth::bytes_per_sec(320_000_000_000),
    pcie: Bandwidth::bytes_per_sec(15_750_000_000),
    fp32_tflops: 8.1,
    context_create: SimDuration::from_millis(1050),
    context_destroy: SimDuration::from_millis(200),
    coldstart_factor: 1.15,
};

static K80_SPEC: GpuSpec = GpuSpec {
    name: "K80",
    memory: Bytes::gib(12),
    mem_bandwidth: Bandwidth::bytes_per_sec(240_000_000_000),
    pcie: Bandwidth::bytes_per_sec(15_750_000_000),
    fp32_tflops: 4.1,
    context_create: SimDuration::from_millis(1400),
    context_destroy: SimDuration::from_millis(260),
    coldstart_factor: 1.5,
};

static M60_SPEC: GpuSpec = GpuSpec {
    name: "M60",
    memory: Bytes::gib(8),
    mem_bandwidth: Bandwidth::bytes_per_sec(160_000_000_000),
    pcie: Bandwidth::bytes_per_sec(15_750_000_000),
    fp32_tflops: 4.8,
    context_create: SimDuration::from_millis(1250),
    context_destroy: SimDuration::from_millis(240),
    coldstart_factor: 1.35,
};

/// Identifier of a GPU within a [`crate::cluster::Cluster`]; dense, 0-based.
#[derive(
    Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct GpuId(pub u32);

impl GpuId {
    /// Index into dense per-GPU arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

/// Identifier of a host machine (EC2 instance in the paper's testbed).
#[derive(
    Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct MachineId(pub u32);

impl MachineId {
    /// Index into dense per-machine arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// One physical GPU instance in a cluster.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gpu {
    /// Dense cluster-wide identifier.
    pub id: GpuId,
    /// Hardware generation.
    pub kind: GpuKind,
    /// Host machine this GPU is attached to.
    pub machine: MachineId,
}

impl Gpu {
    /// Hardware description shortcut.
    pub fn spec(&self) -> &'static GpuSpec {
        self.kind.spec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_are_sane() {
        for kind in GpuKind::ALL {
            let s = kind.spec();
            assert!(s.memory >= Bytes::gib(8), "{kind} memory too small");
            assert!(s.fp32_tflops > 0.0);
            assert!(s.context_create > SimDuration::ZERO);
            assert!(s.context_destroy > SimDuration::ZERO);
            assert!(s.coldstart_factor >= 1.0);
            assert_eq!(s.pcie, pcie3_x16(), "{kind} should use PCIe 3.0 x16");
        }
    }

    #[test]
    fn v100_is_fastest_k80_is_baseline() {
        assert!((GpuKind::K80.generic_speedup() - 1.0).abs() < 1e-12);
        for kind in [GpuKind::V100, GpuKind::T4, GpuKind::M60] {
            assert!(kind.generic_speedup() > 1.0, "{kind} should beat K80");
        }
        assert!(GpuKind::V100.generic_speedup() > GpuKind::T4.generic_speedup());
    }

    #[test]
    fn all_is_ordered_fastest_first() {
        let speeds: Vec<f64> = GpuKind::ALL.iter().map(|k| k.generic_speedup()).collect();
        for w in speeds.windows(2) {
            assert!(w[0] >= w[1], "ALL must be fastest-first: {speeds:?}");
        }
    }

    #[test]
    fn memory_capacities_match_datasheets() {
        assert_eq!(GpuKind::V100.spec().memory, Bytes::gib(16));
        assert_eq!(GpuKind::T4.spec().memory, Bytes::gib(16));
        assert_eq!(GpuKind::K80.spec().memory, Bytes::gib(12));
        assert_eq!(GpuKind::M60.spec().memory, Bytes::gib(8));
    }

    #[test]
    fn ids_are_dense() {
        assert_eq!(GpuId(7).index(), 7);
        assert_eq!(MachineId(3).index(), 3);
        assert_eq!(format!("{}", GpuId(2)), "gpu2");
    }
}
