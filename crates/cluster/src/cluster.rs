//! Cluster topology: a set of GPUs spread over host machines.
//!
//! Builders cover the paper's configurations: the exact 15-GPU testbed
//! (8 V100 + 4 T4 + 1 K80 + 2 M60 on 4 EC2 instances, Section 7.1), the
//! homogeneous/mixed clusters of Fig. 5, and the three heterogeneity levels
//! of Fig. 16.

use crate::gpu::{Gpu, GpuId, GpuKind, MachineId};
use crate::network::NetworkModel;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The heterogeneity levels studied in Fig. 16.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Heterogeneity {
    /// Only V100 GPUs.
    Low,
    /// An even mix of V100 and K80.
    Mid,
    /// An even mix of V100, T4, K80 and M60 (the testbed's flavour).
    High,
}

impl Heterogeneity {
    /// The GPU kinds participating at this level.
    pub fn kinds(self) -> &'static [GpuKind] {
        match self {
            Heterogeneity::Low => &[GpuKind::V100],
            Heterogeneity::Mid => &[GpuKind::V100, GpuKind::K80],
            Heterogeneity::High => &[GpuKind::V100, GpuKind::T4, GpuKind::K80, GpuKind::M60],
        }
    }
}

/// A heterogeneous GPU cluster.
///
/// GPU ids are dense (`0..gpu_count`), machine ids dense (`0..machine_count`),
/// so per-GPU and per-machine state can live in plain vectors.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Cluster {
    gpus: Vec<Gpu>,
    machine_count: u32,
    network: NetworkModel,
}

impl Cluster {
    /// Build a cluster from (kind, count) pairs, packing `gpus_per_machine`
    /// GPUs of the same kind onto each machine (mirroring how cloud GPU
    /// instances are provisioned).
    pub fn from_counts(counts: &[(GpuKind, u32)], gpus_per_machine: u32) -> Self {
        assert!(gpus_per_machine > 0, "need at least one GPU per machine");
        let mut gpus = Vec::new();
        let mut machine = 0u32;
        for &(kind, count) in counts {
            let mut placed = 0;
            while placed < count {
                let here = (count - placed).min(gpus_per_machine);
                for _ in 0..here {
                    gpus.push(Gpu {
                        id: GpuId(gpus.len() as u32),
                        kind,
                        machine: MachineId(machine),
                    });
                }
                placed += here;
                machine += 1;
            }
        }
        assert!(!gpus.is_empty(), "empty cluster");
        Cluster {
            gpus,
            machine_count: machine,
            network: NetworkModel::default(),
        }
    }

    /// The paper's 15-GPU testbed: 8 V100, 4 T4, 1 K80, 2 M60 on 4 machines
    /// (V100s on two 4-GPU instances, T4s on one, K80+M60s together).
    pub fn testbed15() -> Self {
        let mut gpus = Vec::with_capacity(15);
        let mut push = |kind, machine: u32| {
            gpus.push(Gpu {
                id: GpuId(gpus.len() as u32),
                kind,
                machine: MachineId(machine),
            });
        };
        for _ in 0..4 {
            push(GpuKind::V100, 0);
        }
        for _ in 0..4 {
            push(GpuKind::V100, 1);
        }
        for _ in 0..4 {
            push(GpuKind::T4, 2);
        }
        push(GpuKind::K80, 3);
        push(GpuKind::M60, 3);
        push(GpuKind::M60, 3);
        Cluster {
            gpus,
            machine_count: 4,
            network: NetworkModel::default(),
        }
    }

    /// A homogeneous cluster of `n` GPUs of one kind, 4 per machine.
    pub fn homogeneous(kind: GpuKind, n: u32) -> Self {
        Cluster::from_counts(&[(kind, n)], 4)
    }

    /// A cluster of `n` GPUs at the given Fig.-16 heterogeneity level,
    /// splitting `n` as evenly as possible across the participating kinds
    /// (earlier kinds absorb the remainder).
    pub fn with_heterogeneity(level: Heterogeneity, n: u32) -> Self {
        let kinds = level.kinds();
        let k = kinds.len() as u32;
        assert!(n >= k, "need at least one GPU per kind");
        let base = n / k;
        let extra = n % k;
        let counts: Vec<(GpuKind, u32)> = kinds
            .iter()
            .enumerate()
            .map(|(i, &kind)| (kind, base + u32::from((i as u32) < extra)))
            .collect();
        Cluster::from_counts(&counts, 4)
    }

    /// Assemble a cluster from pre-built parts. Used by the cell
    /// partitioner, which renumbers an existing cluster's GPUs/machines
    /// into dense per-cell id spaces; callers must hand in dense,
    /// consistent ids (debug-asserted).
    pub(crate) fn from_parts(gpus: Vec<Gpu>, machine_count: u32, network: NetworkModel) -> Self {
        assert!(!gpus.is_empty(), "empty cluster");
        debug_assert!(gpus.iter().enumerate().all(|(i, g)| g.id.index() == i));
        debug_assert!(gpus.iter().all(|g| g.machine.0 < machine_count));
        Cluster {
            gpus,
            machine_count,
            network,
        }
    }

    /// Replace the network model (e.g. for the Fig.-18 bandwidth sweep).
    pub fn with_network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }

    /// The network model connecting the machines.
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// Number of GPUs.
    pub fn gpu_count(&self) -> usize {
        self.gpus.len()
    }

    /// Number of host machines.
    pub fn machine_count(&self) -> usize {
        self.machine_count as usize
    }

    /// All GPUs, ordered by dense id.
    pub fn gpus(&self) -> &[Gpu] {
        &self.gpus
    }

    /// Look up one GPU.
    pub fn gpu(&self, id: GpuId) -> &Gpu {
        &self.gpus[id.index()]
    }

    /// GPU ids only (handy for schedulers).
    pub fn gpu_ids(&self) -> impl Iterator<Item = GpuId> + '_ {
        self.gpus.iter().map(|g| g.id)
    }

    /// Count of GPUs per kind, in a deterministic order.
    pub fn count_by_kind(&self) -> BTreeMap<GpuKind, u32> {
        let mut m = BTreeMap::new();
        for g in &self.gpus {
            *m.entry(g.kind).or_insert(0) += 1;
        }
        m
    }

    /// Distinct kinds present, fastest first.
    pub fn kinds_present(&self) -> Vec<GpuKind> {
        GpuKind::ALL
            .into_iter()
            .filter(|k| self.gpus.iter().any(|g| g.kind == *k))
            .collect()
    }

    /// True if two GPUs share a host machine (their PS traffic does not
    /// cross the data-center network).
    pub fn same_machine(&self, a: GpuId, b: GpuId) -> bool {
        self.gpu(a).machine == self.gpu(b).machine
    }

    /// GPUs of the given kind.
    pub fn gpus_of_kind(&self, kind: GpuKind) -> impl Iterator<Item = &Gpu> + '_ {
        self.gpus.iter().filter(move |g| g.kind == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_matches_paper() {
        let c = Cluster::testbed15();
        assert_eq!(c.gpu_count(), 15);
        assert_eq!(c.machine_count(), 4);
        let counts = c.count_by_kind();
        assert_eq!(counts[&GpuKind::V100], 8);
        assert_eq!(counts[&GpuKind::T4], 4);
        assert_eq!(counts[&GpuKind::K80], 1);
        assert_eq!(counts[&GpuKind::M60], 2);
    }

    #[test]
    fn ids_are_dense_and_consistent() {
        let c = Cluster::testbed15();
        for (i, g) in c.gpus().iter().enumerate() {
            assert_eq!(g.id.index(), i);
            assert_eq!(c.gpu(g.id).id, g.id);
        }
    }

    #[test]
    fn from_counts_packs_machines() {
        let c = Cluster::from_counts(&[(GpuKind::V100, 6), (GpuKind::K80, 3)], 4);
        assert_eq!(c.gpu_count(), 9);
        // 6 V100s -> machines 0 (4) and 1 (2); 3 K80s -> machine 2.
        assert_eq!(c.machine_count(), 3);
        assert_eq!(c.gpu(GpuId(0)).machine, MachineId(0));
        assert_eq!(c.gpu(GpuId(4)).machine, MachineId(1));
        assert_eq!(c.gpu(GpuId(6)).machine, MachineId(2));
    }

    #[test]
    fn heterogeneity_levels_split_evenly() {
        let c = Cluster::with_heterogeneity(Heterogeneity::High, 160);
        let counts = c.count_by_kind();
        for kind in Heterogeneity::High.kinds() {
            assert_eq!(counts[kind], 40);
        }
        let c = Cluster::with_heterogeneity(Heterogeneity::Mid, 161);
        let counts = c.count_by_kind();
        assert_eq!(counts[&GpuKind::V100] + counts[&GpuKind::K80], 161);
        assert!(counts[&GpuKind::V100] - counts[&GpuKind::K80] <= 1);
    }

    #[test]
    fn low_heterogeneity_is_homogeneous() {
        let c = Cluster::with_heterogeneity(Heterogeneity::Low, 16);
        assert_eq!(c.kinds_present(), vec![GpuKind::V100]);
    }

    #[test]
    fn same_machine_detection() {
        let c = Cluster::testbed15();
        assert!(c.same_machine(GpuId(0), GpuId(3)));
        assert!(!c.same_machine(GpuId(0), GpuId(4)));
        assert!(c.same_machine(GpuId(13), GpuId(14))); // the two M60s
    }

    #[test]
    fn gpus_of_kind_filters() {
        let c = Cluster::testbed15();
        assert_eq!(c.gpus_of_kind(GpuKind::V100).count(), 8);
        assert_eq!(c.gpus_of_kind(GpuKind::K80).count(), 1);
    }

    #[test]
    #[should_panic(expected = "empty cluster")]
    fn empty_cluster_rejected() {
        let _ = Cluster::from_counts(&[], 4);
    }
}
