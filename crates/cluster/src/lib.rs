//! Heterogeneous GPU cluster substrate for the Hare reproduction.
//!
//! This crate models the hardware layer the paper's evaluation runs on:
//!
//! * [`units`] — fixed-point simulation units ([`SimTime`], [`SimDuration`],
//!   [`Bytes`], [`Bandwidth`]) used across the whole workspace;
//! * [`gpu`] — the four GPU generations of the paper's testbed (V100, T4,
//!   K80, M60) with datasheet specs and CUDA-context lifecycle costs;
//! * [`cluster`] — cluster topologies, including the exact 15-GPU testbed
//!   and the Fig.-16 heterogeneity levels;
//! * [`network`] — the 25 Gbps data-center network and the parameter-server
//!   synchronization cost model.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod cells;
pub mod cluster;
pub mod gpu;
pub mod network;
pub mod units;

pub use cells::{Cell, CellPartition};
pub use cluster::{Cluster, Heterogeneity};
pub use gpu::{Gpu, GpuId, GpuKind, GpuSpec, MachineId};
pub use network::{NetworkModel, SyncScheme};
pub use units::{Bandwidth, Bytes, SimDuration, SimTime};
