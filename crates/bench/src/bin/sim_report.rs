//! Simulator performance report: writes `BENCH_sim.json` at the repo root.
//!
//! Records sim-only wall-clock and events/sec for every scheme on three
//! cluster scales (small = 15-GPU testbed × 40 jobs, medium = 64 GPUs ×
//! 80 jobs, large = 160 GPUs × 200 jobs), the sim-only time of a
//! multi-seed medium sweep, and the end-to-end time of a fig-suite-shaped
//! experiment (workload builds included). Pre-overhaul numbers, measured
//! with the same methodology at the commit before the hot-path work, are
//! embedded as the `before` block so the file carries its own trajectory.
//!
//! Methodology: "sim-only" times exactly the event loop — for Hare the
//! offline schedule is precomputed outside the timer; baselines construct
//! their (cheap) policy inside it. Workload construction is never timed
//! except in the `fig_suite` entry, which is deliberately end-to-end.
//!
//! The `huge` scenario exercises the sharded datacenter path: a 12k-GPU
//! cluster split into cells, 100k jobs drawn from a lazy arrival stream
//! (never materialized as a global trace), Hare planning within every
//! cell, and the per-cell reports merged into one. `--smoke` runs a
//! reduced-scale variant (512 GPUs, 2k jobs, 8 cells) of the same path.
//!
//! Run with `cargo run --release -p hare-bench --bin sim_report`
//! (`-- --smoke` for the CI-sized variant: small+medium only, short
//! sweep, no fig suite; `-- --check-regression` to additionally fail if
//! measured events/sec fall more than 20% below the committed
//! BENCH_sim.json after normalizing out machine speed).

#![warn(clippy::unwrap_used)]

use hare_baselines::{build_simulation, RunOptions, Scheme};
use hare_cluster::{Cluster, Heterogeneity};
use hare_core::HareScheduler;
use hare_experiments::{sweep_table, testbed_workload, LargeScale};
use hare_sim::{FaultPlan, GatewayConfig, OfflineReplay, ShardedTrace, SimWorkload, Simulation};
use hare_workload::{OpenArrivalConfig, ProfileDb, StreamedTrace};
use std::fmt::Write as _;
use std::time::Instant;

/// Sim-only wall-clock and events processed for one scheme on a workload.
/// Best-of-3 sim-only timing: the engine is deterministic, so every run
/// processes identical events and only the wall clock varies — the min
/// is the least-noisy estimate, which matters for the millisecond-scale
/// scenarios the regression guard compares across machines.
fn sim_only(scheme: Scheme, w: &SimWorkload, seed: u64) -> (f64, u64) {
    let opts = RunOptions {
        seed,
        ..RunOptions::default()
    };
    let plan = FaultPlan::default();
    let mut best = f64::INFINITY;
    let mut events = 0;
    for _ in 0..3 {
        let (secs, n) = match scheme {
            Scheme::Hare => {
                let out = HareScheduler::default().schedule(&w.problem);
                let mut policy = OfflineReplay::new("Hare", w, &out.schedule);
                let t = Instant::now();
                let (_, events) = build_simulation(scheme, w, opts, &plan)
                    .run_counted(&mut policy)
                    .expect("simulation failed");
                (t.elapsed().as_secs_f64(), events)
            }
            _ => {
                let t = Instant::now();
                let sim = build_simulation(scheme, w, opts, &plan);
                let (_, events) = match scheme {
                    Scheme::Hare => unreachable!(),
                    Scheme::GavelFifo => sim.run_counted(&mut hare_baselines::GavelFifo::new()),
                    Scheme::Srtf => sim.run_counted(&mut hare_baselines::Srtf::new()),
                    Scheme::SchedHomo => sim.run_counted(&mut hare_baselines::SchedHomo::new()),
                    Scheme::SchedAllox => sim.run_counted(&mut hare_baselines::SchedAllox::new()),
                }
                .expect("simulation failed");
                (t.elapsed().as_secs_f64(), events)
            }
        };
        best = best.min(secs);
        events = n;
    }
    (best, events)
}

/// Pre-overhaul sim-only seconds (same scenarios, same methodology,
/// measured at the commit before the hot-path work; single-threaded).
fn before_total(scenario: &str) -> Option<f64> {
    match scenario {
        "small" => Some(0.300),
        "medium" => Some(2.007),
        "large" => Some(17.381),
        _ => None,
    }
}

/// The workspace root: walk up from the crate dir so files land at the
/// repo root both under `cargo run` (cwd = workspace root) and direct
/// invocation.
fn workspace_root() -> std::path::PathBuf {
    std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| {
            std::path::Path::new(&d)
                .ancestors()
                .nth(2)
                .expect("crates/bench has a workspace root")
                .to_path_buf()
        })
        .unwrap_or_else(|_| std::path::PathBuf::from("."))
}

/// The `small` scenario's `total_secs` from the committed BENCH_sim.json,
/// if present — the drift baseline for the disabled-tracing check.
fn committed_small_total(root: &std::path::Path) -> Option<f64> {
    let text = std::fs::read_to_string(root.join("BENCH_sim.json")).ok()?;
    let value = serde_json::from_str(&text).ok()?;
    value
        .get("scenarios")?
        .as_array()?
        .iter()
        .find(|s| s.get("name").and_then(|n| n.as_str()) == Some("small"))?
        .get("total_secs")?
        .as_f64()
}

/// Committed per-(scenario, scheme) events/sec from BENCH_sim.json — the
/// baseline for `--check-regression`.
fn committed_events_per_sec(root: &std::path::Path) -> Vec<(String, String, f64)> {
    let Some(text) = std::fs::read_to_string(root.join("BENCH_sim.json")).ok() else {
        return Vec::new();
    };
    let Some(value) = serde_json::from_str(&text).ok() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let scenarios = value
        .get("scenarios")
        .and_then(|s| s.as_array())
        .cloned()
        .unwrap_or_default();
    for scen in &scenarios {
        let Some(sname) = scen.get("name").and_then(|n| n.as_str()) else {
            continue;
        };
        for sch in scen
            .get("schemes")
            .and_then(|s| s.as_array())
            .into_iter()
            .flatten()
        {
            if let (Some(name), Some(eps)) = (
                sch.get("name").and_then(|n| n.as_str()),
                sch.get("events_per_sec")
                    .and_then(serde_json::Value::as_f64),
            ) {
                out.push((sname.to_string(), name.to_string(), eps));
            }
        }
    }
    out
}

/// Runs shorter than this are at the mercy of scheduler jitter even
/// with best-of-3 timing; the regression guard skips them rather than
/// fail CI on timer noise.
const MIN_GUARDED_SECS: f64 = 0.010;

/// Fail (return false) if any measured events/sec falls more than 20%
/// below the committed baseline *after* normalizing out machine speed:
/// each (scenario, scheme) pair's measured/committed ratio is divided by
/// the median ratio, so a uniformly slower or faster machine cancels out
/// and only *relative* hot-path regressions trip the guard. Pairs whose
/// measured run is under `MIN_GUARDED_SECS` are reported but not judged.
fn check_regression(
    committed: &[(String, String, f64)],
    measured: &[(String, String, f64, f64)],
) -> bool {
    let mut ratios: Vec<(String, f64)> = Vec::new();
    for (scen, scheme, eps, secs) in measured {
        if let Some((_, _, base)) = committed
            .iter()
            .find(|(s, n, _)| s == scen && n == scheme)
            .filter(|(_, _, base)| *base > 0.0)
        {
            if *secs < MIN_GUARDED_SECS {
                println!(
                    "check-regression: {scen}/{scheme}: {:.2}x raw — under {MIN_GUARDED_SECS}s, too fast to judge, skipped",
                    eps / base
                );
                continue;
            }
            ratios.push((format!("{scen}/{scheme}"), eps / base));
        }
    }
    if ratios.is_empty() {
        println!("check-regression: no committed baseline to compare against — skipping");
        return true;
    }
    let mut sorted: Vec<f64> = ratios.iter().map(|(_, r)| *r).collect();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    let mut ok = true;
    for (key, ratio) in &ratios {
        let normalized = ratio / median;
        let flag = if normalized < 0.8 {
            ok = false;
            "  <-- REGRESSION (>20% below median)"
        } else {
            ""
        };
        println!("check-regression: {key}: {ratio:.2}x raw, {normalized:.2}x of median{flag}");
    }
    ok
}

/// The sharded datacenter scenario: cells simulated independently, jobs
/// drawn from a lazy arrival stream and routed by the gateway, Hare
/// planning within every cell. Returns the JSON fragment. "sim-only"
/// sums the per-cell event loops; routing, workload builds and the
/// per-cell Hare schedules stay outside the timer, matching the other
/// scenarios' methodology.
fn huge_scenario(smoke: bool) -> String {
    let (n_gpus, n_jobs, n_cells) = if smoke {
        (512u32, 2_000u64, 8usize)
    } else {
        (12_288, 100_000, 192)
    };
    let cluster = Cluster::with_heterogeneity(Heterogeneity::High, n_gpus);
    let counts: Vec<_> = cluster.count_by_kind().into_iter().collect();
    let arrivals = OpenArrivalConfig {
        seed: 11,
        ..OpenArrivalConfig::default()
    }
    .calibrated(&counts);
    let stream = StreamedTrace::new(&arrivals, n_jobs).map(|a| a.spec);
    let t = Instant::now();
    let sharded = ShardedTrace::route(&cluster, n_cells, &GatewayConfig::default(), stream);
    let route_secs = t.elapsed().as_secs_f64();
    let db = ProfileDb::new(7);
    let mut sim_secs = 0.0;
    let mut tasks = 0u64;
    let merged = sharded
        .run_with(|_ci, cell, specs| {
            let w = SimWorkload::build(cell.cluster().clone(), specs.to_vec(), &db);
            tasks += w.problem.n_tasks() as u64;
            let out = HareScheduler::default().schedule(&w.problem);
            let mut policy = OfflineReplay::new("Hare", &w, &out.schedule);
            let timer = Instant::now();
            let r = Simulation::new(&w)
                .with_noise(0.02)
                .with_seed(1)
                .run_counted(&mut policy);
            sim_secs += timer.elapsed().as_secs_f64();
            r
        })
        .expect("huge sharded run failed");
    let eps = merged.events_total as f64 / sim_secs;
    let max_cell_jobs = merged.cells.iter().map(|c| c.jobs).max().unwrap_or(0);
    println!(
        "huge: {n_gpus} gpus, {n_jobs} jobs, {n_cells} cells, {tasks} tasks — \
         route {route_secs:.2}s, sim-only {sim_secs:.2}s, {} events, {eps:.0} events/s \
         (max {max_cell_jobs} jobs in one cell)",
        merged.events_total
    );
    format!(
        "  \"huge\": {{\"gpus\": {n_gpus}, \"jobs\": {n_jobs}, \"cells\": {n_cells}, \
         \"tasks\": {tasks}, \"scheme\": \"Hare\", \"route_secs\": {route_secs:.3}, \
         \"sim_only_secs\": {sim_secs:.3}, \"events\": {}, \"events_per_sec\": {eps:.0}, \
         \"max_cell_jobs\": {max_cell_jobs}, \"makespan_secs\": {:.0}}},\n",
        merged.events_total,
        merged.report.makespan.as_secs_f64()
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let check = std::env::args().any(|a| a == "--check-regression");
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let root = workspace_root();
    let committed_small = committed_small_total(&root);
    let committed_eps = committed_events_per_sec(&root);
    let mut measured_eps: Vec<(String, String, f64, f64)> = Vec::new();

    let medium_cfg = LargeScale {
        n_gpus: 64,
        n_jobs: 80,
        ..LargeScale::default()
    };
    let mut scenarios: Vec<(&str, SimWorkload)> = vec![
        ("small", testbed_workload(1)),
        ("medium", medium_cfg.workload(1)),
    ];
    if !smoke {
        scenarios.push(("large", LargeScale::default().workload(1)));
    }

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"generated_by\": \"cargo run --release -p hare-bench --bin sim_report{}\",",
        if smoke { " -- --smoke" } else { "" }
    );
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    json.push_str(
        "  \"methodology\": \"sim-only = event loop only, best of 3 runs (Hare schedule \
         precomputed outside the timer); events/sec = engine events processed / sim-only secs; \
         fig_suite is end-to-end including workload builds; before = same methodology at the \
         pre-overhaul commit, single-threaded\",\n",
    );
    json.push_str(
        "  \"before\": {\"small_total_secs\": 0.300, \"medium_total_secs\": 2.007, \
         \"large_total_secs\": 17.381, \"large_schemes\": {\"Hare\": 0.114, \
         \"Gavel_FIFO\": 0.361, \"SRTF\": 4.720, \"Sched_Homo\": 4.334, \
         \"Sched_Allox\": 7.852}, \"sweep_sim_only_secs\": 9.042},\n",
    );

    // --- Per-scale, per-scheme sim-only wall-clock + events/sec ------
    json.push_str("  \"scenarios\": [\n");
    let n_scen = scenarios.len();
    let mut small_total = 0.0;
    for (k, (name, w)) in scenarios.iter().enumerate() {
        println!(
            "{name}: {} tasks, {} gpus",
            w.problem.n_tasks(),
            w.cluster.gpu_count()
        );
        let _ = writeln!(
            json,
            "    {{\"name\": \"{name}\", \"gpus\": {}, \"jobs\": {}, \"tasks\": {}, \"schemes\": [",
            w.cluster.gpu_count(),
            w.problem.jobs.len(),
            w.problem.n_tasks()
        );
        let mut total = 0.0;
        for (i, scheme) in Scheme::ALL.iter().enumerate() {
            let (secs, events) = sim_only(*scheme, w, 1);
            total += secs;
            let eps = events as f64 / secs;
            measured_eps.push((name.to_string(), scheme.name().to_string(), eps, secs));
            println!(
                "  {:<12} {secs:.3}s  {events} events  {eps:.0} events/s",
                scheme.name()
            );
            let _ = writeln!(
                json,
                "      {{\"name\": \"{}\", \"secs\": {secs:.4}, \"events\": {events}, \"events_per_sec\": {eps:.0}}}{}",
                scheme.name(),
                if i + 1 < Scheme::ALL.len() { "," } else { "" }
            );
        }
        json.push_str("    ],\n");
        let before = before_total(name);
        let _ = writeln!(json, "    \"total_secs\": {total:.4},");
        match before {
            Some(b) => {
                let _ = writeln!(
                    json,
                    "    \"before_total_secs\": {b:.3}, \"speedup\": {:.1}}}{}",
                    b / total,
                    if k + 1 < n_scen { "," } else { "" }
                );
                println!("  total {total:.3}s (before {b:.3}s, {:.1}x)", b / total);
            }
            None => {
                let _ = writeln!(
                    json,
                    "    \"before_total_secs\": null, \"speedup\": null}}{}",
                    if k + 1 < n_scen { "," } else { "" }
                );
                println!("  total {total:.3}s");
            }
        }
        if *name == "small" {
            small_total = total;
        }
    }
    json.push_str("  ],\n");

    // --- Sharded datacenter scenario ---------------------------------
    json.push_str(&huge_scenario(smoke));

    // --- Tracing overhead --------------------------------------------
    // The observability layer must be zero-cost when disabled. The
    // scenario timings above already run the disabled path (one Option
    // check per engine hook), so comparing the small total against the
    // committed BENCH_sim.json is the drift check; the same run is then
    // repeated with a ChromeTraceSink attached to put the *enabled* cost
    // on the record.
    {
        let (_, w0) = &scenarios[0];
        match committed_small {
            Some(b) => {
                let drift = small_total / b;
                println!(
                    "disabled-tracing check: small total {small_total:.3}s vs committed \
                     {b:.3}s ({drift:.2}x — must stay within noise)"
                );
            }
            None => println!("disabled-tracing check: no committed BENCH_sim.json baseline"),
        }
        let out = HareScheduler::default().schedule(&w0.problem);
        let mut policy = OfflineReplay::new("Hare", w0, &out.schedule);
        let sink = std::sync::Arc::new(hare_sim::ChromeTraceSink::new());
        let opts = RunOptions {
            seed: 1,
            ..RunOptions::default()
        };
        let t = Instant::now();
        let (_, traced_events) = build_simulation(Scheme::Hare, w0, opts, &FaultPlan::default())
            .with_trace(sink.clone())
            .run_counted(&mut policy)
            .expect("traced simulation failed");
        let traced_secs = t.elapsed().as_secs_f64();
        println!(
            "tracing enabled (small, Hare): {traced_secs:.3}s, {} trace events recorded",
            sink.len()
        );
        let _ = writeln!(
            json,
            "  \"trace_overhead\": {{\"scenario\": \"small\", \"disabled_total_secs\": {small_total:.4}, \
             \"committed_total_secs\": {}, \"traced_hare_secs\": {traced_secs:.4}, \
             \"engine_events\": {traced_events}, \"trace_events\": {}}},",
            committed_small.map_or("null".to_string(), |b| format!("{b:.4}")),
            sink.len()
        );
    }

    // --- Multi-seed sweep (sim-only): the parallel-harness workload --
    // Workloads are rebuilt per seed exactly like the sweep binaries do,
    // but only the event loops are timed, matching the `before` number.
    let sweep_seeds: u64 = if smoke { 2 } else { 4 };
    let mut sweep_secs = 0.0;
    for seed in 1..=sweep_seeds {
        let w = medium_cfg.workload(seed);
        for scheme in Scheme::ALL {
            sweep_secs += sim_only(scheme, &w, seed).0;
        }
    }
    let sweep_before = (!smoke).then_some(9.042);
    match sweep_before {
        Some(b) => {
            let _ = writeln!(
                json,
                "  \"sweep\": {{\"scenario\": \"medium\", \"seeds\": {sweep_seeds}, \"sim_only_secs\": {sweep_secs:.4}, \"before_secs\": {b:.3}, \"speedup\": {:.1}}},",
                b / sweep_secs
            );
            println!(
                "sweep(medium, {sweep_seeds} seeds): sim-only {sweep_secs:.3}s (before {b:.3}s, {:.1}x)",
                b / sweep_secs
            );
        }
        None => {
            let _ = writeln!(
                json,
                "  \"sweep\": {{\"scenario\": \"medium\", \"seeds\": {sweep_seeds}, \"sim_only_secs\": {sweep_secs:.4}, \"before_secs\": null, \"speedup\": null}},"
            );
            println!("sweep(medium, {sweep_seeds} seeds): sim-only {sweep_secs:.3}s");
        }
    }

    // --- End-to-end fig-suite time -----------------------------------
    // A fig16-shaped sweep (three heterogeneity points, one seed) through
    // the real experiment harness: workload builds, the shared pool, and
    // table assembly all included.
    if smoke {
        json.push_str("  \"fig_suite\": null\n}\n");
    } else {
        use hare_cluster::Heterogeneity;
        let points: Vec<(String, LargeScale)> = [
            ("Low", Heterogeneity::Low),
            ("Mid", Heterogeneity::Mid),
            ("High", Heterogeneity::High),
        ]
        .into_iter()
        .map(|(l, level)| {
            (
                l.to_string(),
                LargeScale {
                    level,
                    ..LargeScale::default()
                },
            )
        })
        .collect();
        let t = Instant::now();
        let table = sweep_table("heterogeneity", &points, &[1]);
        let secs = t.elapsed().as_secs_f64();
        std::hint::black_box(table);
        let _ = writeln!(
            json,
            "  \"fig_suite\": {{\"what\": \"fig16-shaped sweep, 3 heterogeneity points x 1 seed, end-to-end\", \"secs\": {secs:.2}, \"cores\": {cores}}}\n}}"
        );
        println!("fig suite (fig16-shaped, end-to-end): {secs:.2}s on {cores} core(s)");
    }

    let path = root.join("BENCH_sim.json");
    std::fs::write(&path, &json).expect("write BENCH_sim.json");
    println!("wrote {}", path.display());

    if check && !check_regression(&committed_eps, &measured_eps) {
        eprintln!("events/sec regressed more than 20% against the committed BENCH_sim.json");
        std::process::exit(1);
    }
}
