//! Solver performance report: writes `BENCH_solver.json` at the repo root.
//!
//! Records, for a ladder of relaxation-shaped LPs, the median solve time of
//! the dense two-phase tableau vs the sparse revised simplex (and the
//! speedup); for the Queyranne cut loop, warm-started vs cold pivot counts
//! and times; and for the exact branch-and-bound, node counts and times on
//! the Fig. 1 instance and a 14-task symmetric instance.
//!
//! Run with `cargo run --release -p hare-bench --bin solver_report`.

#![warn(clippy::unwrap_used)]

use hare_solver::{
    fig1_instance, relax, solve_exact, Cmp, Instance, InstanceBuilder, LinearProgram, LpOutcome,
    RelaxOptions,
};
use std::fmt::Write as _;
use std::time::Instant;

const REPS: usize = 9;

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Median wall-clock milliseconds of `f` over [`REPS`] runs.
fn time_ms<T>(mut f: impl FnMut() -> T) -> f64 {
    let samples = (0..REPS)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    median(samples)
}

/// A relaxation-shaped instance: `jobs` jobs × `rounds` rounds × `width`
/// tasks per round on `machines` machines, heterogeneous speeds.
fn instance(jobs: usize, rounds: usize, width: usize, machines: usize) -> Instance {
    let mut b = InstanceBuilder::new(machines);
    for j in 0..jobs {
        let job = b.job(1.0 + (j % 3) as f64, 0.25 * j as f64);
        for r in 0..rounds {
            let tasks: Vec<Vec<f64>> = (0..width)
                .map(|w| {
                    (0..machines)
                        .map(|m| 1.0 + ((j + r + w + m) % 5) as f64 * 0.75)
                        .collect()
                })
                .collect();
            b.round(job, &tasks);
        }
    }
    b.build()
}

/// Build the same LP shape `relax`'s LP mode emits (starts + completions,
/// release/completion/precedence rows) so the dense-vs-revised comparison
/// measures the production workload.
fn relaxation_lp(inst: &Instance) -> LinearProgram {
    let t = inst.n_tasks();
    let n = inst.jobs.len();
    let mut objective = vec![0.0; t + n];
    for (j, job) in inst.jobs.iter().enumerate() {
        objective[t + j] = job.weight;
    }
    let mut lp = LinearProgram::minimize(objective);
    for (i, task) in inst.tasks.iter().enumerate() {
        let rel = inst.jobs[task.job].release;
        if rel > 0.0 {
            lp.constrain(vec![(i, 1.0)], Cmp::Ge, rel);
        }
    }
    for (i, task) in inst.tasks.iter().enumerate() {
        lp.constrain(
            vec![(t + task.job, 1.0), (i, -1.0)],
            Cmp::Ge,
            inst.ps_min(i),
        );
    }
    for (j_idx, job) in inst.jobs.iter().enumerate() {
        for r in 1..job.rounds {
            for i in inst.round_tasks(j_idx, r - 1) {
                let dur = inst.ps_min(i);
                for j in inst.round_tasks(j_idx, r) {
                    lp.constrain(vec![(j, 1.0), (i, -1.0)], Cmp::Ge, dur);
                }
            }
        }
    }
    lp
}

fn obj(outcome: LpOutcome) -> f64 {
    match outcome {
        LpOutcome::Optimal { objective, .. } => objective,
        other => panic!("expected optimal, got {other:?}"),
    }
}

fn main() {
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"generated_by\": \"cargo run --release -p hare-bench --bin solver_report\",\n  \"reps_per_median\": {REPS},"
    );

    // --- Dense vs revised on relaxation-shaped LPs -------------------
    println!("LP ladder (dense vs revised):");
    json.push_str("  \"lp\": [\n");
    let ladder = [
        ("small_30_tasks", instance(10, 3, 1, 3)),
        ("medium_72_tasks", instance(12, 3, 2, 4)),
        ("large_120_tasks", instance(30, 2, 2, 4)),
    ];
    let n_cases = ladder.len();
    for (k, (name, inst)) in ladder.into_iter().enumerate() {
        let lp = relaxation_lp(&inst);
        let dense_ms = time_ms(|| lp.solve_dense());
        let revised_ms = time_ms(|| lp.solve());
        let d = obj(lp.solve_dense());
        let r = obj(lp.solve());
        assert!(
            (d - r).abs() < 1e-6,
            "{name}: solvers disagree ({d} vs {r})"
        );
        let speedup = dense_ms / revised_ms;
        println!(
            "  {name:<16} vars={:<4} rows={:<4} dense {dense_ms:.3} ms, revised {revised_ms:.3} ms ({speedup:.2}x)",
            lp.objective.len(),
            lp.constraints.len(),
        );
        let _ = writeln!(
            json,
            "    {{\"name\": \"{name}\", \"n_vars\": {}, \"n_rows\": {}, \"dense_median_ms\": {dense_ms:.4}, \"revised_median_ms\": {revised_ms:.4}, \"speedup_revised_over_dense\": {speedup:.2}}}{}",
            lp.objective.len(),
            lp.constraints.len(),
            if k + 1 < n_cases { "," } else { "" }
        );
    }
    json.push_str("  ],\n");

    // --- Warm vs cold cut loop ---------------------------------------
    // A contended instance (many jobs, few machines) so separation finds
    // cuts every round and the basis-reuse payoff is visible.
    let mut b = InstanceBuilder::new(2);
    for j in 0..36 {
        let job = b.job(1.0 + (j % 4) as f64, 0.0);
        b.round(job, &[vec![1.0 + (j % 3) as f64 * 0.5, 2.0]]);
    }
    let contended = b.build();
    let warm_opts = RelaxOptions::default();
    let cold_opts = RelaxOptions {
        warm_start: false,
        ..RelaxOptions::default()
    };
    let warm = relax::solve(&contended, &warm_opts);
    let cold = relax::solve(&contended, &cold_opts);
    assert_eq!(warm.mode, cold.mode, "cut counts must match");
    let warm_ms = time_ms(|| relax::solve(&contended, &warm_opts));
    let cold_ms = time_ms(|| relax::solve(&contended, &cold_opts));
    println!(
        "cut loop: {} cuts; warm {} pivots / {warm_ms:.3} ms vs cold {} pivots / {cold_ms:.3} ms \
         (discarded on dense fallback: warm {}, cold {})",
        warm.stats.cuts,
        warm.stats.revised_pivots,
        cold.stats.revised_pivots,
        warm.stats.discarded_pivots,
        cold.stats.discarded_pivots
    );
    let _ = writeln!(
        json,
        "  \"cut_loop\": {{\"instance\": \"contended_36_tasks\", \"cuts\": {}, \"lp_solves\": {}, \"warm_revised_pivots\": {}, \"cold_revised_pivots\": {}, \"warm_discarded_pivots\": {}, \"cold_discarded_pivots\": {}, \"warm_dense_fallbacks\": {}, \"cold_dense_fallbacks\": {}, \"warm_median_ms\": {warm_ms:.4}, \"cold_median_ms\": {cold_ms:.4}}},",
        warm.stats.cuts,
        warm.stats.lp_solves,
        warm.stats.revised_pivots,
        cold.stats.revised_pivots,
        warm.stats.discarded_pivots,
        cold.stats.discarded_pivots,
        warm.stats.dense_fallbacks,
        cold.stats.dense_fallbacks
    );

    // --- Branch and bound --------------------------------------------
    println!("branch-and-bound:");
    json.push_str("  \"bb\": [\n");
    let mut sym = InstanceBuilder::new(2);
    let j1 = sym.job(2.0, 0.0);
    let j2 = sym.job(1.0, 0.0);
    for _ in 0..7 {
        sym.round(j1, &[vec![1.0, 1.0]]);
        sym.round(j2, &[vec![1.5, 1.5]]);
    }
    let bb_cases = [
        ("fig1_9_tasks", fig1_instance()),
        ("symmetric_14_tasks", sym.build()),
    ];
    let n_bb = bb_cases.len();
    for (k, (name, inst)) in bb_cases.into_iter().enumerate() {
        let sol = solve_exact(&inst);
        let ms = time_ms(|| solve_exact(&inst));
        println!("  {name:<20} nodes={:<8} {ms:.3} ms", sol.nodes);
        let _ = writeln!(
            json,
            "    {{\"instance\": \"{name}\", \"n_tasks\": {}, \"nodes\": {}, \"objective\": {:.4}, \"median_ms\": {ms:.4}}}{}",
            inst.n_tasks(),
            sol.nodes,
            sol.objective,
            if k + 1 < n_bb { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");

    // Walk up from the crate dir so the file lands at the repo root both
    // under `cargo run` (cwd = workspace root) and direct invocation.
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| {
            std::path::Path::new(&d)
                .ancestors()
                .nth(2)
                .expect("crates/bench has a workspace root")
                .to_path_buf()
        })
        .unwrap_or_else(|_| std::path::PathBuf::from("."));
    let path = root.join("BENCH_solver.json");
    std::fs::write(&path, &json).expect("write BENCH_solver.json");
    println!("wrote {}", path.display());
}
