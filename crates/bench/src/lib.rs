//! Criterion benchmarks for the Hare workspace (no library code; see the
//! `benches/` directory). Shared helpers live here.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

use hare_cluster::Cluster;
use hare_sim::SimWorkload;
use hare_workload::{ProfileDb, TraceConfig};

/// A deterministic testbed workload of `n_jobs` jobs for benching.
pub fn bench_workload(n_jobs: u32, seed: u64) -> SimWorkload {
    let db = ProfileDb::with_noise(seed, 0.0);
    let trace = TraceConfig {
        n_jobs,
        seed,
        ..TraceConfig::default()
    }
    .generate();
    SimWorkload::build(Cluster::testbed15(), trace, &db)
}
