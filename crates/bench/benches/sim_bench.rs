//! Discrete-event-engine throughput: full-fidelity simulation of the
//! testbed workload under offline replay, and the event-queue hot path.

#![warn(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hare_bench::bench_workload;
use hare_cluster::SimTime;
use hare_sim::{Event, EventQueue, OfflineReplay, Simulation};
use std::hint::black_box;

fn engine_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/replay");
    group.sample_size(10);
    for n_jobs in [10u32, 40] {
        let w = bench_workload(n_jobs, 7);
        let out = hare_core::hare_schedule(&w.problem);
        group.bench_with_input(
            BenchmarkId::from_parameter(w.problem.n_tasks()),
            &w,
            |b, w| {
                b.iter(|| {
                    let mut replay = OfflineReplay::new("Hare", w, &out.schedule);
                    black_box(Simulation::new(w).run(&mut replay).expect("simulation"))
                });
            },
        );
    }
    group.finish();
}

fn event_queue(c: &mut Criterion) {
    c.bench_function("sim/event_queue/push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.push(
                    SimTime::from_micros((i * 7919) % 100_000),
                    Event::TrainDone {
                        task: i as usize,
                        gpu: (i % 16) as usize,
                        gen: 0,
                    },
                );
            }
            while let Some(e) = q.pop() {
                black_box(e);
            }
        });
    });
}

criterion_group!(benches, engine_replay, event_queue);
criterion_main!(benches);
