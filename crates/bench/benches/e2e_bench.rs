//! End-to-end scheme comparison (the Fig.-12 pipeline, sized for a bench):
//! schedule + simulate 16 jobs on the 15-GPU testbed under each scheme.

#![warn(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use hare_baselines::{run_scheme, RunOptions, Scheme};
use hare_bench::bench_workload;
use std::hint::black_box;

fn schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2e/testbed16");
    group.sample_size(10);
    let w = bench_workload(16, 3);
    for scheme in Scheme::ALL {
        group.bench_function(scheme.name(), |b| {
            b.iter(|| black_box(run_scheme(scheme, &w, RunOptions::default())));
        });
    }
    group.finish();
}

criterion_group!(benches, schemes);
criterion_main!(benches);
