//! Scheduling-latency benchmarks: Algorithm 1 end-to-end (relaxation +
//! list scheduling) vs instance size, and the priority-order ablation.

#![warn(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hare_bench::bench_workload;
use hare_core::{AssignmentRule, HareScheduler, PriorityOrder};
use std::hint::black_box;

fn algorithm1_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1/tasks");
    group.sample_size(10);
    for n_jobs in [5u32, 20, 40] {
        let w = bench_workload(n_jobs, 42);
        let tasks = w.problem.n_tasks();
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &w, |b, w| {
            let scheduler = HareScheduler::default();
            b.iter(|| black_box(scheduler.schedule(&w.problem)));
        });
    }
    group.finish();
}

fn priority_orders(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1/order");
    group.sample_size(10);
    let w = bench_workload(20, 42);
    for order in [
        PriorityOrder::Midpoint,
        PriorityOrder::Arrival,
        PriorityOrder::Smith,
    ] {
        group.bench_function(format!("{order:?}"), |b| {
            let scheduler = HareScheduler {
                order,
                ..HareScheduler::default()
            };
            b.iter(|| black_box(scheduler.schedule(&w.problem)));
        });
    }
    group.finish();
}

/// Ablation: the two line-12 GPU-selection rules produce schedules of
/// different quality; this benchmarks their *cost* (quality is measured by
/// `fig14 --assign`).
fn assignment_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1/assignment");
    group.sample_size(10);
    let w = bench_workload(20, 42);
    for assignment in [
        AssignmentRule::EarliestAvailable,
        AssignmentRule::EarliestFinish,
    ] {
        group.bench_function(format!("{assignment:?}"), |b| {
            let scheduler = HareScheduler {
                assignment,
                ..HareScheduler::default()
            };
            b.iter(|| black_box(scheduler.schedule(&w.problem)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    algorithm1_scaling,
    priority_orders,
    assignment_rules
);
criterion_main!(benches);
