//! Solver benchmarks: simplex LPs, Hungarian matching, the Hare_Sched_RL
//! relaxation in both modes, and the exact branch-and-bound certifier.

#![warn(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hare_solver::{
    fig1_instance, min_cost_matching, relax, solve_exact, Cmp, InstanceBuilder, LinearProgram,
    RelaxOptions,
};
use std::hint::black_box;

fn simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/simplex");
    for n in [10usize, 40] {
        // Covering LP: minimize sum(x) s.t. band constraints.
        let mut lp = LinearProgram::minimize(vec![1.0; n]);
        for i in 0..n {
            let j = (i + 1) % n;
            lp.constrain(vec![(i, 1.0), (j, 2.0)], Cmp::Ge, 3.0 + (i % 5) as f64);
        }
        group.bench_with_input(BenchmarkId::new("revised", n), &lp, |b, lp| {
            b.iter(|| black_box(lp.solve()));
        });
        group.bench_with_input(BenchmarkId::new("dense", n), &lp, |b, lp| {
            b.iter(|| black_box(lp.solve_dense()));
        });
    }
    group.finish();
}

fn hungarian(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/hungarian");
    for n in [20usize, 80, 200] {
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| (((i * 31 + j * 17) % 97) as f64) + 1.0)
                    .collect()
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &cost, |b, cost| {
            b.iter(|| black_box(min_cost_matching(cost)));
        });
    }
    group.finish();
}

fn relaxation(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/relaxation");
    group.sample_size(10);
    // LP mode on the toy instance.
    let toy = fig1_instance();
    group.bench_function("lp_mode/fig1", |b| {
        b.iter(|| black_box(relax::solve(&toy, &RelaxOptions::default())));
    });
    // Warm-started vs cold cut loop on a contended instance where the
    // Queyranne separation fires every round.
    let mut contended = InstanceBuilder::new(2);
    for j in 0..36 {
        let job = contended.job(1.0 + (j % 4) as f64, 0.0);
        contended.round(job, &[vec![1.0 + (j % 3) as f64 * 0.5, 2.0]]);
    }
    let contended = contended.build();
    group.bench_function("cut_loop/warm", |b| {
        b.iter(|| black_box(relax::solve(&contended, &RelaxOptions::default())));
    });
    group.bench_function("cut_loop/cold", |b| {
        let opts = RelaxOptions {
            warm_start: false,
            ..RelaxOptions::default()
        };
        b.iter(|| black_box(relax::solve(&contended, &opts)));
    });
    // Combinatorial mode on a synthetic 4000-task instance.
    let mut builder = InstanceBuilder::new(16);
    for j in 0..200 {
        let job = builder.job(1.0 + (j % 5) as f64, j as f64);
        for _ in 0..10 {
            let p: Vec<f64> = (0..16).map(|m| 1.0 + ((j + m) % 7) as f64).collect();
            builder.round(job, &[p.clone(), p]);
        }
    }
    let large = builder.build();
    group.bench_function("combinatorial/4000tasks", |b| {
        let opts = RelaxOptions {
            lp_task_limit: 0,
            ..RelaxOptions::default()
        };
        b.iter(|| black_box(relax::solve(&large, &opts)));
    });
    group.finish();
}

fn branch_and_bound(c: &mut Criterion) {
    c.bench_function("solver/bb/fig1", |b| {
        let inst = fig1_instance();
        b.iter(|| black_box(solve_exact(&inst)));
    });
}

criterion_group!(benches, simplex, hungarian, relaxation, branch_and_bound);
criterion_main!(benches);
