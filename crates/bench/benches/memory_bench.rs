//! Fast-task-switching benchmarks: per-switch cost computation under each
//! protocol (the Table-3 scenario) and speculative-cache planning
//! throughput.

#![warn(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use hare_cluster::{GpuKind, SimDuration};
use hare_memory::{plan_cache, switch_time, PrevTask, SwitchPolicy, SwitchRequest, TaskModelRef};
use hare_workload::{JobId, ModelKind};
use std::hint::black_box;

fn switch_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory/switch_time");
    let req = SwitchRequest {
        gpu: GpuKind::V100,
        prev: Some(PrevTask {
            model: ModelKind::GraphSage,
            step_time: SimDuration::from_millis(55),
        }),
        next: ModelKind::ResNet50,
        cache_hit: false,
    };
    for policy in SwitchPolicy::ALL {
        group.bench_function(policy.name(), |b| {
            b.iter(|| black_box(switch_time(policy, &req)));
        });
    }
    group.finish();
}

fn cache_planning(c: &mut Criterion) {
    c.bench_function("memory/plan_cache/10k", |b| {
        let models = [
            ModelKind::ResNet50,
            ModelKind::BertBase,
            ModelKind::Vgg19,
            ModelKind::GraphSage,
        ];
        let seq: Vec<TaskModelRef> = (0..10_000u32)
            .map(|i| TaskModelRef {
                job: JobId(i % 37),
                model: models[(i % 37) as usize % models.len()],
            })
            .collect();
        b.iter(|| black_box(plan_cache(&seq, GpuKind::V100)));
    });
}

criterion_group!(benches, switch_cost, cache_planning);
criterion_main!(benches);
