//! Property tests for the anytime degradation ladder
//! ([`hare_core::anytime_schedule`]): on arbitrary small healthy
//! instances the ladder is
//!
//! 1. **total** — any budget, even zero, yields a valid plan;
//! 2. **deterministic** — identical inputs produce identical outputs,
//!    bit for bit (the property online replay and the experiment journal
//!    both rely on);
//! 3. **monotone in budget** — a larger budget never yields a worse
//!    planned objective, because each rung is all-or-nothing: raising
//!    the caps only grows the candidate set the best-of selection
//!    minimizes over.

use hare_cluster::{SimDuration, SimTime};
use hare_core::{anytime_schedule, AnytimeOptions, JobInfo, SchedProblem, SyncMode};
use hare_solver::{CancelToken, SolveBudget};
use proptest::prelude::*;

/// Small random healthy problems: 2–4 GPUs, 1–3 jobs, ≤ 2 rounds × ≤ 2
/// tasks per round (≤ 12 tasks, inside the exact rung's task limit).
fn problems() -> impl Strategy<Value = SchedProblem> {
    (2usize..5).prop_flat_map(|n_gpus| {
        prop::collection::vec(
            (
                0.5f64..4.0,
                0u64..4,
                1u32..3,
                1u32..3,
                prop::collection::vec(1.0f64..5.0, n_gpus),
                prop::collection::vec(0.1f64..1.0, n_gpus),
            ),
            1usize..4,
        )
        .prop_map(move |jobs| {
            SchedProblem::new(
                n_gpus,
                jobs.into_iter()
                    .map(
                        |(weight, arrival, rounds, sync_scale, train, sync)| JobInfo {
                            weight,
                            arrival: SimTime::from_secs(arrival),
                            rounds,
                            sync_scale,
                            train: train.into_iter().map(SimDuration::from_secs_f64).collect(),
                            sync: sync.into_iter().map(SimDuration::from_secs_f64).collect(),
                        },
                    )
                    .collect(),
            )
        })
    })
}

/// The budget ladder the monotonicity property walks, weakest first.
fn budgets() -> Vec<SolveBudget> {
    let mut b: Vec<SolveBudget> = [0u64, 10, 100, 1_000, 100_000]
        .iter()
        .map(|&c| SolveBudget::capped(c, c / 2))
        .collect();
    b.push(SolveBudget::UNLIMITED);
    b
}

fn opts() -> AnytimeOptions {
    AnytimeOptions {
        // Enable the exact rung: generated problems stay within its limit.
        exact_task_limit: 16,
        ..AnytimeOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ladder_is_total_and_deterministic(p in problems()) {
        for budget in budgets() {
            let cancel = CancelToken::new();
            let a = anytime_schedule(&p, &opts(), &budget, &cancel, None);
            let b = anytime_schedule(&p, &opts(), &budget, &cancel, None);
            prop_assert_eq!(&a, &b, "identical inputs must replay bit for bit");
            // Totality: whatever the budget, the plan is valid and every
            // attempt is accounted for (one per rung).
            prop_assert!(a.schedule.validate(&p, SyncMode::Relaxed).is_ok());
            prop_assert!(a.provenance.objective.is_finite());
            prop_assert_eq!(a.provenance.attempts.len(), 4);
            prop_assert_eq!(a.h.len(), p.n_tasks());
        }
    }

    #[test]
    fn planned_objective_is_monotone_in_budget(p in problems()) {
        let cancel = CancelToken::new();
        let mut prev = f64::INFINITY;
        for budget in budgets() {
            let out = anytime_schedule(&p, &opts(), &budget, &cancel, None);
            let obj = out.provenance.objective;
            // Each rung is all-or-nothing, so a larger budget only grows
            // the candidate set: the selected minimum cannot regress.
            prop_assert!(
                obj <= prev + 1e-9,
                "objective regressed from {prev} to {obj} as the budget grew"
            );
            prev = obj;
        }
    }
}
