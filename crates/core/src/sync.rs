//! Synchronization semantics (Section 2.2.3).
//!
//! * **Strict scale-fixed** (Tiresias, Gandiva): a round's `|D_r|` tasks
//!   must start simultaneously on `|D_r|` distinct GPUs; if that many GPUs
//!   are not free, the whole round waits.
//! * **Relaxed scale-fixed** (Hare): the task *count* per round stays fixed
//!   (convergence certainty is preserved — the same gradients are averaged)
//!   but tasks may start at different times and even share a GPU
//!   sequentially (Fig. 4(b)).
//!
//! The gang-slot helper implements the strict semantics for the baselines.

use hare_cluster::SimTime;
use serde::{Deserialize, Serialize};

/// Which synchronization scheme a schedule must satisfy.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyncMode {
    /// Gang scheduling: simultaneous start on distinct GPUs.
    Strict,
    /// Hare's relaxed scheme: fixed count, flexible placement.
    Relaxed,
}

/// Find the earliest strict-gang slot: the earliest time `t >= ready` at
/// which `k` GPUs are simultaneously free, given each GPU's next available
/// time. Returns `(start, gpu_indices)` with the `k` earliest-available
/// GPUs (ties broken by index — deterministic).
pub fn find_gang_slot(avail: &[SimTime], k: usize, ready: SimTime) -> (SimTime, Vec<usize>) {
    assert!(
        k >= 1 && k <= avail.len(),
        "gang of {k} on {} GPUs",
        avail.len()
    );
    let mut order: Vec<usize> = (0..avail.len()).collect();
    order.sort_by_key(|&m| (avail[m], m));
    let chosen: Vec<usize> = order[..k].to_vec();
    // The gang can start when the *last* of the k earliest GPUs frees up.
    let start = chosen.iter().map(|&m| avail[m]).max().unwrap().max(ready);
    (start, chosen)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn gang_takes_k_earliest_gpus() {
        let avail = vec![t(5), t(1), t(3), t(2)];
        let (start, gpus) = find_gang_slot(&avail, 2, SimTime::ZERO);
        assert_eq!(gpus, vec![1, 3]);
        assert_eq!(start, t(2));
    }

    #[test]
    fn gang_waits_for_ready_time() {
        let avail = vec![t(1), t(2)];
        let (start, _) = find_gang_slot(&avail, 2, t(10));
        assert_eq!(start, t(10));
    }

    #[test]
    fn fig4_relaxed_vs_strict_start() {
        // Fig. 4: three running tasks finish at 2, 3 and 6; a 3-task job
        // arrives. Strict: start = 6 (all three GPUs free). Relaxed: two
        // tasks can run sequentially on the GPU that frees at 2 — modelled
        // by the schedulers; here we confirm the strict slot is 6.
        let avail = vec![t(2), t(3), t(6)];
        let (strict_start, _) = find_gang_slot(&avail, 3, SimTime::ZERO);
        assert_eq!(strict_start, t(6));
        // A relaxed scheduler could start its first task at 2.
        let (relaxed_first, gpus) = find_gang_slot(&avail, 1, SimTime::ZERO);
        assert_eq!(relaxed_first, t(2));
        assert_eq!(gpus, vec![0]);
    }

    #[test]
    fn full_cluster_gang() {
        let avail = vec![t(4), t(4), t(4)];
        let (start, gpus) = find_gang_slot(&avail, 3, SimTime::ZERO);
        assert_eq!(start, t(4));
        assert_eq!(gpus, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "gang of 4")]
    fn oversized_gang_panics() {
        find_gang_slot(&[t(0); 3], 4, SimTime::ZERO);
    }
}
