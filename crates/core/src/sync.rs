//! Synchronization semantics (Section 2.2.3).
//!
//! * **Strict scale-fixed** (Tiresias, Gandiva): a round's `|D_r|` tasks
//!   must start simultaneously on `|D_r|` distinct GPUs; if that many GPUs
//!   are not free, the whole round waits.
//! * **Relaxed scale-fixed** (Hare): the task *count* per round stays fixed
//!   (convergence certainty is preserved — the same gradients are averaged)
//!   but tasks may start at different times and even share a GPU
//!   sequentially (Fig. 4(b)).
//!
//! The gang-slot helper implements the strict semantics for the baselines.

use hare_cluster::SimTime;
use serde::{Deserialize, Serialize};

/// Which synchronization scheme a schedule must satisfy.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyncMode {
    /// Gang scheduling: simultaneous start on distinct GPUs.
    Strict,
    /// Hare's relaxed scheme: fixed count, flexible placement.
    Relaxed,
}

/// Verdict of offering one gradient to a round's relaxed barrier.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Contribution {
    /// The gradient entered the round's average.
    Accepted {
        /// True when this was the round's `|D_r|`-th gradient — the barrier
        /// releases and the tracker resets for the next round.
        completes_round: bool,
    },
    /// The round (or the whole job) already had its `|D_r|` contributions;
    /// the gradient is discarded. This is the relaxed scheme acting as a
    /// fault-tolerance mechanism: late copies from stragglers, recovered
    /// GPUs or speculative re-execution cannot double-count.
    Dropped,
}

/// The relaxed scale-fixed barrier of Section 2.2.3 as a counting quorum:
/// each round accepts exactly `scale` (`|D_r|`) gradient contributions in
/// arrival order and drops everything beyond — the *count* stays fixed (so
/// convergence certainty is preserved) no matter how many physical
/// executions faults and speculation produce.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuorumTracker {
    scale: u32,
    in_round: u32,
    accepted: u64,
    dropped: u64,
}

impl QuorumTracker {
    /// A tracker for rounds of `scale` contributions.
    pub fn new(scale: u32) -> Self {
        assert!(scale > 0, "quorum of zero");
        QuorumTracker {
            scale,
            in_round: 0,
            accepted: 0,
            dropped: 0,
        }
    }

    /// Offer one gradient. `round_open` is false once the consumer has no
    /// round left to fill (job finished) — everything is then dropped.
    pub fn offer(&mut self, round_open: bool) -> Contribution {
        if !round_open {
            self.dropped += 1;
            return Contribution::Dropped;
        }
        debug_assert!(self.in_round < self.scale);
        self.in_round += 1;
        self.accepted += 1;
        if self.in_round == self.scale {
            self.in_round = 0;
            Contribution::Accepted {
                completes_round: true,
            }
        } else {
            Contribution::Accepted {
                completes_round: false,
            }
        }
    }

    /// Contributions accepted into the current (incomplete) round.
    pub fn pending(&self) -> u32 {
        self.in_round
    }

    /// Total gradients accepted across all rounds.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Total gradients dropped by the quorum.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Find the earliest strict-gang slot: the earliest time `t >= ready` at
/// which `k` GPUs are simultaneously free, given each GPU's next available
/// time. Returns `(start, gpu_indices)` with the `k` earliest-available
/// GPUs (ties broken by index — deterministic).
pub fn find_gang_slot(avail: &[SimTime], k: usize, ready: SimTime) -> (SimTime, Vec<usize>) {
    assert!(
        k >= 1 && k <= avail.len(),
        "gang of {k} on {} GPUs",
        avail.len()
    );
    let mut order: Vec<usize> = (0..avail.len()).collect();
    order.sort_by_key(|&m| (avail[m], m));
    let chosen: Vec<usize> = order[..k].to_vec();
    // The gang can start when the *last* of the k earliest GPUs frees up.
    let start = chosen
        .iter()
        .map(|&m| avail[m])
        .max()
        .expect("k >= 1 gang members: asserted above")
        .max(ready);
    (start, chosen)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn gang_takes_k_earliest_gpus() {
        let avail = vec![t(5), t(1), t(3), t(2)];
        let (start, gpus) = find_gang_slot(&avail, 2, SimTime::ZERO);
        assert_eq!(gpus, vec![1, 3]);
        assert_eq!(start, t(2));
    }

    #[test]
    fn gang_waits_for_ready_time() {
        let avail = vec![t(1), t(2)];
        let (start, _) = find_gang_slot(&avail, 2, t(10));
        assert_eq!(start, t(10));
    }

    #[test]
    fn fig4_relaxed_vs_strict_start() {
        // Fig. 4: three running tasks finish at 2, 3 and 6; a 3-task job
        // arrives. Strict: start = 6 (all three GPUs free). Relaxed: two
        // tasks can run sequentially on the GPU that frees at 2 — modelled
        // by the schedulers; here we confirm the strict slot is 6.
        let avail = vec![t(2), t(3), t(6)];
        let (strict_start, _) = find_gang_slot(&avail, 3, SimTime::ZERO);
        assert_eq!(strict_start, t(6));
        // A relaxed scheduler could start its first task at 2.
        let (relaxed_first, gpus) = find_gang_slot(&avail, 1, SimTime::ZERO);
        assert_eq!(relaxed_first, t(2));
        assert_eq!(gpus, vec![0]);
    }

    #[test]
    fn full_cluster_gang() {
        let avail = vec![t(4), t(4), t(4)];
        let (start, gpus) = find_gang_slot(&avail, 3, SimTime::ZERO);
        assert_eq!(start, t(4));
        assert_eq!(gpus, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "gang of 4")]
    fn oversized_gang_panics() {
        find_gang_slot(&[t(0); 3], 4, SimTime::ZERO);
    }

    #[test]
    fn quorum_accepts_exactly_scale_per_round() {
        let mut q = QuorumTracker::new(3);
        assert_eq!(
            q.offer(true),
            Contribution::Accepted {
                completes_round: false
            }
        );
        assert_eq!(q.pending(), 1);
        assert_eq!(
            q.offer(true),
            Contribution::Accepted {
                completes_round: false
            }
        );
        assert_eq!(
            q.offer(true),
            Contribution::Accepted {
                completes_round: true
            }
        );
        assert_eq!(q.pending(), 0);
        assert_eq!(q.accepted(), 3);
        assert_eq!(q.dropped(), 0);
    }

    #[test]
    fn quorum_drops_after_job_closes() {
        let mut q = QuorumTracker::new(1);
        assert_eq!(
            q.offer(true),
            Contribution::Accepted {
                completes_round: true
            }
        );
        assert_eq!(q.offer(false), Contribution::Dropped);
        assert_eq!(q.offer(false), Contribution::Dropped);
        assert_eq!(q.accepted(), 1);
        assert_eq!(q.dropped(), 2);
    }
}
