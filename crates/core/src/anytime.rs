//! Deadline-budgeted anytime scheduling: the graceful-degradation ladder.
//!
//! A production control plane must produce *some* plan inside its replan
//! window regardless of optimizer health (the discipline of Gavel's
//! round-based policy loop and AlloX's greedy fallback). This module wraps
//! the solvers in `hare-solver` into a four-rung ladder, each rung cheaper
//! and usually worse than the one above:
//!
//! 1. **Exact** — budgeted branch-and-bound (tiny instances, opt-in);
//! 2. **Relaxation** — the warm-started LP/cut (or combinatorial) solve
//!    behind Algorithm 1's midpoint priorities;
//! 3. **StalePlan** — the previous plan's priorities, incrementally
//!    repaired for newly arrived tasks;
//! 4. **Greedy** — the heterogeneity-aware Smith-ratio list order; pure
//!    arithmetic, it cannot fail, so the pipeline always returns a plan.
//!
//! Every rung that completes yields a priority vector; the pipeline
//! list-schedules each and returns the plan with the best *planned*
//! objective, ties going to the highest rung. Rungs are all-or-nothing and
//! deterministic under pivot/node caps, so a bigger budget can only *add*
//! completed rungs — hence the returned objective is monotone in the
//! budget, a property the `anytime_ladder` property tests pin down.
//! [`PlanProvenance`] records why each rung ended the way it did, so
//! reports can attribute quality loss to solver degradation, and its
//! deterministic work total is what the simulator charges as solver
//! latency.

use crate::algorithm::{list_schedule, smith_priorities, AssignmentRule};
use crate::problem::{SchedProblem, TaskIdx};
use crate::schedule::Schedule;
use hare_solver::relax::{self, RelaxMode, RelaxOptions};
use hare_solver::{
    bb, certified_lower_bound, midpoints, CancelToken, SolveBudget, SolveStats, SolveTrace,
};
use serde::{Deserialize, Serialize};

/// Options for the anytime pipeline.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AnytimeOptions {
    /// Relaxation rung options.
    pub relax: RelaxOptions,
    /// GPU selection rule used to list-schedule every rung's priorities.
    pub assignment: AssignmentRule,
    /// Attempt the exact branch-and-bound rung when the instance has at
    /// most this many tasks (clamped to [`bb::MAX_TASKS`]). `0` — the
    /// default — disables the rung, making the relaxation the top rung,
    /// exactly like [`crate::HareScheduler`].
    pub exact_task_limit: usize,
}

/// One rung of the degradation ladder, highest quality first.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Rung {
    /// Budgeted exact branch-and-bound.
    Exact,
    /// Budgeted relaxation (Algorithm 1's midpoints).
    Relaxation,
    /// Previous plan's priorities, incrementally repaired.
    StalePlan,
    /// Smith-ratio greedy list order (never fails).
    Greedy,
}

impl Rung {
    /// All rungs, ladder order.
    pub const ALL: [Rung; 4] = [Rung::Exact, Rung::Relaxation, Rung::StalePlan, Rung::Greedy];

    /// Stable lowercase name for reports and journals.
    pub fn name(&self) -> &'static str {
        match self {
            Rung::Exact => "exact",
            Rung::Relaxation => "relaxation",
            Rung::StalePlan => "stale-plan",
            Rung::Greedy => "greedy",
        }
    }
}

/// How one rung ended.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum RungOutcome {
    /// The rung produced a plan.
    Completed {
        /// Planned Σ wₙCₙ of the rung's list schedule.
        objective: f64,
    },
    /// The rung did not apply; the reason is recorded.
    Skipped(String),
    /// The rung started but its budget tripped before completion.
    Exhausted,
}

/// One ladder step's record.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RungAttempt {
    /// The rung.
    pub rung: Rung,
    /// How it ended.
    pub outcome: RungOutcome,
    /// Deterministic work units charged: B&B nodes or simplex pivots when
    /// the rung ran, a flat per-task charge for the bottom two rungs. An
    /// exhausted rung is charged its full cap — it spent it.
    pub work: u64,
}

/// Why the returned plan is what it is.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlanProvenance {
    /// The rung whose plan was selected.
    pub chosen: Rung,
    /// Every rung's record, ladder order.
    pub attempts: Vec<RungAttempt>,
    /// Relaxation work counters (zeros unless that rung completed).
    pub stats: SolveStats,
    /// Planned objective of the selected plan.
    pub objective: f64,
    /// Total work units consumed by the pipeline — the simulator charges
    /// this as solver latency.
    pub work: u64,
}

/// Priorities carried over from a previous plan for the StalePlan rung:
/// `h[i]` is the stale priority of task `i` of the *current* problem, or
/// `f64::INFINITY` where no stale information exists (newly arrived jobs).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StalePlan {
    /// Stale priority per current task (`INFINITY` = unknown).
    pub h: Vec<f64>,
}

/// The anytime pipeline's product — the same plan shape as
/// [`crate::HareOutput`], plus provenance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AnytimeOutput {
    /// The selected plan's schedule.
    pub schedule: Schedule,
    /// The selected plan's priorities (the currency online Hare dispatches
    /// by).
    pub h: Vec<f64>,
    /// Dispatch order of the selected plan.
    pub pi: Vec<TaskIdx>,
    /// Certified lower bound on the optimal Σ wₙCₙ (budget-independent).
    pub lower_bound: f64,
    /// Ladder record.
    pub provenance: PlanProvenance,
}

/// A completed rung's plan, before selection.
struct Candidate {
    rung: Rung,
    h: Vec<f64>,
    schedule: Schedule,
    pi: Vec<TaskIdx>,
    objective: f64,
}

/// List-schedule a completed rung's priorities and record it.
fn finish(
    p: &SchedProblem,
    opts: &AnytimeOptions,
    rung: Rung,
    h: Vec<f64>,
    work: u64,
    attempts: &mut Vec<RungAttempt>,
    candidates: &mut Vec<Candidate>,
) {
    let (schedule, pi) = list_schedule(p, &h, opts.assignment);
    let objective = schedule.weighted_completion(p);
    attempts.push(RungAttempt {
        rung,
        outcome: RungOutcome::Completed { objective },
        work,
    });
    candidates.push(Candidate {
        rung,
        h,
        schedule,
        pi,
        objective,
    });
}

/// Flat work charge for the StalePlan and Greedy rungs: one linear pass
/// over the tasks, in the same units as pivots/nodes.
fn flat_work(p: &SchedProblem) -> u64 {
    p.n_tasks() as u64
}

/// Run the degradation ladder. Never fails: the Greedy rung is pure
/// arithmetic and ignores the budget (and cancellation), so even a zero
/// budget yields a valid plan — degraded in quality, not in availability.
///
/// With an unlimited `budget` and default `opts` this reproduces
/// [`crate::HareScheduler`]'s relaxation midpoints bit-for-bit whenever the
/// relaxation's plan wins selection (ties go to the higher rung).
pub fn anytime_schedule(
    p: &SchedProblem,
    opts: &AnytimeOptions,
    budget: &SolveBudget,
    cancel: &CancelToken,
    stale: Option<&StalePlan>,
) -> AnytimeOutput {
    anytime_schedule_traced(p, opts, budget, cancel, stale, None)
}

/// [`anytime_schedule`] with solver-phase spans recorded into `trace` on
/// its deterministic work-unit clock: the Exact and Relaxation rungs emit
/// their own fine-grained spans (`"bb_root"`, `"lp_round"`, ...) through
/// the traced solver entry points, and every other attempt — skipped,
/// exhausted, or one of the flat-cost rungs — gets one span named after
/// its rung (detail: 0 = completed, 1 = skipped, 2 = exhausted).
pub fn anytime_schedule_traced(
    p: &SchedProblem,
    opts: &AnytimeOptions,
    budget: &SolveBudget,
    cancel: &CancelToken,
    stale: Option<&StalePlan>,
    trace: Option<&SolveTrace>,
) -> AnytimeOutput {
    p.validate().expect("invalid problem");
    let inst = p.to_instance();
    let mut attempts: Vec<RungAttempt> = Vec::with_capacity(Rung::ALL.len());
    let mut candidates: Vec<Candidate> = Vec::with_capacity(Rung::ALL.len());
    let mut stats = SolveStats::default();
    let greedy = smith_priorities(p);

    // Rung 1: exact branch-and-bound (node_cap axis).
    let exact_limit = opts.exact_task_limit.min(bb::MAX_TASKS);
    if p.n_tasks() > exact_limit {
        attempts.push(RungAttempt {
            rung: Rung::Exact,
            outcome: RungOutcome::Skipped(format!(
                "{} tasks over the exact limit {exact_limit}",
                p.n_tasks()
            )),
            work: 0,
        });
    } else {
        match bb::solve_exact_budgeted_traced(&inst, budget, cancel, trace) {
            Some(sol) => {
                // The exact start times are folded back into the ladder's
                // common currency — midpoint priorities — so dispatch
                // handles every rung uniformly.
                let h = midpoints(&inst, &sol.start);
                finish(
                    p,
                    opts,
                    Rung::Exact,
                    h,
                    sol.nodes,
                    &mut attempts,
                    &mut candidates,
                );
            }
            None => attempts.push(RungAttempt {
                rung: Rung::Exact,
                outcome: RungOutcome::Exhausted,
                work: budget.node_cap,
            }),
        }
    }

    // Rung 2: the relaxation (pivot_cap axis).
    match relax::solve_budgeted_traced(&inst, &opts.relax, budget, cancel, trace) {
        Some(sol) => {
            stats = sol.stats;
            let work = match sol.mode {
                RelaxMode::Lp { .. } => stats.revised_pivots.saturating_add(stats.discarded_pivots),
                RelaxMode::Combinatorial => relax::combinatorial_work(&inst, &opts.relax),
            };
            finish(
                p,
                opts,
                Rung::Relaxation,
                sol.h,
                work,
                &mut attempts,
                &mut candidates,
            );
        }
        None => attempts.push(RungAttempt {
            rung: Rung::Relaxation,
            outcome: RungOutcome::Exhausted,
            work: budget.pivot_cap,
        }),
    }

    // Rung 3: stale-plan reuse with incremental repair.
    match stale {
        None => attempts.push(RungAttempt {
            rung: Rung::StalePlan,
            outcome: RungOutcome::Skipped("no previous plan".into()),
            work: 0,
        }),
        Some(s) if s.h.len() != p.n_tasks() => attempts.push(RungAttempt {
            rung: Rung::StalePlan,
            outcome: RungOutcome::Skipped(format!(
                "stale plan covers {} tasks, problem has {}",
                s.h.len(),
                p.n_tasks()
            )),
            work: 0,
        }),
        Some(s) => {
            let known_max =
                s.h.iter()
                    .copied()
                    .filter(|v| v.is_finite())
                    .fold(f64::NEG_INFINITY, f64::max);
            if !known_max.is_finite() {
                attempts.push(RungAttempt {
                    rung: Rung::StalePlan,
                    outcome: RungOutcome::Skipped("no usable stale entries".into()),
                    work: 0,
                });
            } else {
                // Repair: tasks with no stale priority (newly arrived
                // jobs) slot in after every stale task, ordered among
                // themselves by the greedy key.
                let h: Vec<f64> =
                    s.h.iter()
                        .enumerate()
                        .map(|(i, &v)| {
                            if v.is_finite() {
                                v
                            } else {
                                known_max + 1.0 + greedy[i]
                            }
                        })
                        .collect();
                finish(
                    p,
                    opts,
                    Rung::StalePlan,
                    h,
                    flat_work(p),
                    &mut attempts,
                    &mut candidates,
                );
            }
        }
    }

    // Rung 4: greedy — always completes.
    finish(
        p,
        opts,
        Rung::Greedy,
        greedy,
        flat_work(p),
        &mut attempts,
        &mut candidates,
    );

    // Selection: best planned objective; candidates are in ladder order
    // and the comparison is strict, so ties keep the higher rung.
    let best = candidates
        .into_iter()
        .reduce(|best, c| {
            if c.objective < best.objective {
                c
            } else {
                best
            }
        })
        .expect("the Greedy rung always completes");
    let work = attempts.iter().fold(0u64, |a, r| a.saturating_add(r.work));

    if let Some(tr) = trace {
        // Rung-level spans for every attempt whose work isn't already
        // covered by fine-grained inner spans (a completed Exact or
        // Relaxation rung recorded those through the traced solvers).
        for a in &attempts {
            let inner_traced = matches!(a.rung, Rung::Exact | Rung::Relaxation)
                && matches!(a.outcome, RungOutcome::Completed { .. });
            if !inner_traced {
                let detail = match a.outcome {
                    RungOutcome::Completed { .. } => 0,
                    RungOutcome::Skipped(_) => 1,
                    RungOutcome::Exhausted => 2,
                };
                tr.record(a.rung.name(), a.work, detail);
            }
        }
    }

    AnytimeOutput {
        lower_bound: certified_lower_bound(&inst),
        provenance: PlanProvenance {
            chosen: best.rung,
            attempts,
            stats,
            objective: best.objective,
            work,
        },
        schedule: best.schedule,
        h: best.h,
        pi: best.pi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::hare_schedule;
    use crate::sync::SyncMode;

    fn fig1() -> SchedProblem {
        SchedProblem::fig1()
    }

    /// A heterogeneous 4-GPU instance on which the relaxation's midpoint
    /// plan strictly beats the greedy Smith order (on Fig. 1 the greedy
    /// order happens to win, so selection would mask the relaxation).
    fn hetero4() -> SchedProblem {
        use crate::problem::JobInfo;
        use hare_cluster::{SimDuration, SimTime};
        let secs = |v: &[f64]| -> Vec<SimDuration> {
            v.iter().map(|&s| SimDuration::from_secs_f64(s)).collect()
        };
        SchedProblem::new(
            4,
            vec![
                JobInfo {
                    weight: 1.0,
                    arrival: SimTime::ZERO,
                    rounds: 2,
                    sync_scale: 2,
                    train: secs(&[2.0, 1.0, 3.0, 1.5]),
                    sync: secs(&[0.5, 0.25, 0.5, 0.25]),
                },
                JobInfo {
                    weight: 2.0,
                    arrival: SimTime::ZERO,
                    rounds: 1,
                    sync_scale: 3,
                    train: secs(&[1.0, 2.0, 1.0, 2.0]),
                    sync: secs(&[0.5, 0.5, 0.5, 0.5]),
                },
                JobInfo {
                    weight: 1.5,
                    arrival: SimTime::from_secs(1),
                    rounds: 2,
                    sync_scale: 1,
                    train: secs(&[3.0, 1.5, 2.0, 1.0]),
                    sync: secs(&[0.5, 0.5, 0.5, 0.5]),
                },
            ],
        )
    }

    #[test]
    fn zero_budget_still_returns_a_valid_plan() {
        let p = fig1();
        let out = anytime_schedule(
            &p,
            &AnytimeOptions::default(),
            &SolveBudget::capped(0, 0),
            &CancelToken::new(),
            None,
        );
        assert!(out.schedule.validate(&p, SyncMode::Relaxed).is_ok());
        assert_eq!(out.provenance.chosen, Rung::Greedy);
        // The exhausted relaxation and the skipped rungs are on record.
        assert!(out
            .provenance
            .attempts
            .iter()
            .any(|a| a.rung == Rung::Relaxation && a.outcome == RungOutcome::Exhausted));
        assert_eq!(out.provenance.attempts.len(), Rung::ALL.len());
    }

    #[test]
    fn unlimited_budget_reproduces_hare_scheduler_bit_for_bit() {
        let p = hetero4();
        let today = hare_schedule(&p);
        let out = anytime_schedule(
            &p,
            &AnytimeOptions::default(),
            &SolveBudget::UNLIMITED,
            &CancelToken::new(),
            None,
        );
        assert_eq!(out.provenance.chosen, Rung::Relaxation);
        assert_eq!(out.h, today.h);
        assert_eq!(out.pi, today.pi);
        assert_eq!(out.schedule, today.schedule);
        assert_eq!(out.lower_bound, today.lower_bound);
    }

    #[test]
    fn stale_plan_rung_reuses_and_repairs() {
        let p = fig1();
        // Stale priorities from a full previous solve, with one task's
        // entry poked out as "newly arrived".
        let mut stale_h = hare_schedule(&p).h;
        stale_h[3] = f64::INFINITY;
        let out = anytime_schedule(
            &p,
            &AnytimeOptions::default(),
            &SolveBudget::capped(0, 0), // upper rungs cannot run
            &CancelToken::new(),
            Some(&StalePlan { h: stale_h.clone() }),
        );
        assert!(out.schedule.validate(&p, SyncMode::Relaxed).is_ok());
        let stale_attempt = out
            .provenance
            .attempts
            .iter()
            .find(|a| a.rung == Rung::StalePlan)
            .expect("stale rung recorded");
        assert!(
            matches!(stale_attempt.outcome, RungOutcome::Completed { .. }),
            "{stale_attempt:?}"
        );
        // The repaired entry lands after every stale priority.
        if out.provenance.chosen == Rung::StalePlan {
            let max_known = stale_h
                .iter()
                .copied()
                .filter(|v| v.is_finite())
                .fold(f64::NEG_INFINITY, f64::max);
            assert!(out.h[3] > max_known);
        }
    }

    #[test]
    fn exact_rung_runs_when_enabled_and_wins_selection() {
        let p = fig1();
        let opts = AnytimeOptions {
            exact_task_limit: 16,
            ..AnytimeOptions::default()
        };
        let out = anytime_schedule(
            &p,
            &opts,
            &SolveBudget::UNLIMITED,
            &CancelToken::new(),
            None,
        );
        let exact = out
            .provenance
            .attempts
            .iter()
            .find(|a| a.rung == Rung::Exact)
            .expect("exact rung recorded");
        assert!(matches!(exact.outcome, RungOutcome::Completed { .. }));
        // Selection is best-of: the chosen plan is no worse than any
        // completed rung's plan.
        for a in &out.provenance.attempts {
            if let RungOutcome::Completed { objective } = a.outcome {
                assert!(out.provenance.objective <= objective + 1e-12);
            }
        }
    }

    #[test]
    fn ladder_is_deterministic_and_monotone_in_budget() {
        let p = fig1();
        let opts = AnytimeOptions::default();
        let token = CancelToken::new();
        let mut last_objective = f64::INFINITY;
        for cap in [0u64, 10, 100, 1_000, 100_000] {
            let budget = SolveBudget::capped(cap, cap);
            let a = anytime_schedule(&p, &opts, &budget, &token, None);
            let b = anytime_schedule(&p, &opts, &budget, &token, None);
            assert_eq!(a.provenance.chosen, b.provenance.chosen, "cap {cap}");
            assert_eq!(a.h, b.h, "cap {cap}");
            assert!(
                a.provenance.objective <= last_objective + 1e-12,
                "objective regressed at cap {cap}"
            );
            last_objective = a.provenance.objective;
        }
    }
}
