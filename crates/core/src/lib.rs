//! The core of the Hare reproduction: the `Hare_Sched` problem model,
//! Algorithm 1 with its relaxation-driven midpoint ordering, the relaxed
//! scale-fixed synchronization semantics, schedule validation against
//! constraints (4)–(8), and the Theorem-4 theoretical machinery.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod algorithm;
pub mod anytime;
pub mod gantt;
pub mod problem;
pub mod schedule;
pub mod sync;
pub mod theory;

pub use algorithm::{
    hare_schedule, relaxed_round_assign, AssignmentRule, HareOutput, HareScheduler, PriorityOrder,
};
pub use anytime::{
    anytime_schedule, anytime_schedule_traced, AnytimeOptions, AnytimeOutput, PlanProvenance, Rung,
    RungAttempt, RungOutcome, StalePlan,
};
pub use gantt::render as render_gantt;
pub use problem::{GpuIdx, JobIdx, JobInfo, SchedProblem, TaskIdx, TaskInfo};
pub use schedule::Schedule;
pub use sync::{find_gang_slot, Contribution, QuorumTracker, SyncMode};
pub use theory::{approx_ratio_bound, certify, TheoryReport};
