//! Schedules: the output of every scheduler in this workspace.
//!
//! A schedule fixes each task's start time `x̃ᵢ` and GPU `ỹᵢ`. Validation
//! checks the `Hare_Sched` constraints (4)–(8) plus, optionally, the strict
//! scale-fixed gang property (Section 2.2.3); metric accessors compute the
//! quantities the evaluation reports (weighted JCT, makespan, per-GPU busy
//! time and utilization).

use crate::problem::{GpuIdx, JobIdx, SchedProblem, TaskIdx};
use crate::sync::SyncMode;
use hare_cluster::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A complete task-level schedule.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Start time `x̃ᵢ` per task.
    pub start: Vec<SimTime>,
    /// GPU assignment `ỹᵢ` per task.
    pub gpu: Vec<GpuIdx>,
}

impl Schedule {
    /// An empty (all-zero) schedule shell for `n` tasks.
    pub fn with_capacity(n: usize) -> Self {
        Schedule {
            start: vec![SimTime::ZERO; n],
            gpu: vec![0; n],
        }
    }

    /// Completion time of task `i` *including* synchronization
    /// (`x̃ᵢ + T^c + T^s` on its assigned GPU).
    pub fn task_completion(&self, p: &SchedProblem, i: TaskIdx) -> SimTime {
        self.start[i] + p.train(i, self.gpu[i]) + p.sync(i, self.gpu[i])
    }

    /// Time the GPU is released by task `i` (`x̃ᵢ + T^c`; sync overlaps the
    /// next task, Algorithm 1 line 16).
    pub fn gpu_release(&self, p: &SchedProblem, i: TaskIdx) -> SimTime {
        self.start[i] + p.train(i, self.gpu[i])
    }

    /// Completion time `C_n` of a job: the latest task completion.
    pub fn job_completion(&self, p: &SchedProblem, job: JobIdx) -> SimTime {
        p.tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.job == job)
            .map(|(i, _)| self.task_completion(p, i))
            .max()
            .expect("job has tasks")
    }

    /// The objective: Σ wₙ Cₙ in seconds.
    pub fn weighted_completion(&self, p: &SchedProblem) -> f64 {
        p.jobs
            .iter()
            .enumerate()
            .map(|(n, job)| job.weight * self.job_completion(p, n).as_secs_f64())
            .sum()
    }

    /// Per-job JCT (completion − arrival), the quantity Fig. 13's CDF plots.
    pub fn jcts(&self, p: &SchedProblem) -> Vec<SimDuration> {
        (0..p.jobs.len())
            .map(|n| {
                self.job_completion(p, n)
                    .saturating_since(p.jobs[n].arrival)
            })
            .collect()
    }

    /// Weighted sum of JCTs (sojourn form of the objective).
    pub fn weighted_jct(&self, p: &SchedProblem) -> f64 {
        self.jcts(p)
            .iter()
            .zip(&p.jobs)
            .map(|(jct, job)| job.weight * jct.as_secs_f64())
            .sum()
    }

    /// Latest completion over all jobs.
    pub fn makespan(&self, p: &SchedProblem) -> SimTime {
        (0..p.jobs.len())
            .map(|n| self.job_completion(p, n))
            .max()
            .expect("non-empty problem")
    }

    /// Task indices per GPU, each sorted by start time.
    pub fn gpu_sequences(&self, p: &SchedProblem) -> Vec<Vec<TaskIdx>> {
        let mut seqs = vec![Vec::new(); p.n_gpus];
        for i in 0..p.n_tasks() {
            seqs[self.gpu[i]].push(i);
        }
        for seq in &mut seqs {
            seq.sort_by_key(|&i| (self.start[i], i));
        }
        seqs
    }

    /// Total training time placed on each GPU.
    pub fn busy_time(&self, p: &SchedProblem) -> Vec<SimDuration> {
        let mut busy = vec![SimDuration::ZERO; p.n_gpus];
        for i in 0..p.n_tasks() {
            busy[self.gpu[i]] += p.train(i, self.gpu[i]);
        }
        busy
    }

    /// Busy fraction per GPU over the makespan window.
    pub fn utilization(&self, p: &SchedProblem) -> Vec<f64> {
        let span = self.makespan(p).as_secs_f64();
        self.busy_time(p)
            .iter()
            .map(|b| {
                if span > 0.0 {
                    b.as_secs_f64() / span
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Check constraints (4)–(8) of `Hare_Sched`, plus gang start/distinct
    /// GPUs under [`SyncMode::Strict`]. Returns the first violation found.
    pub fn validate(&self, p: &SchedProblem, mode: SyncMode) -> Result<(), String> {
        if self.start.len() != p.n_tasks() || self.gpu.len() != p.n_tasks() {
            return Err("schedule length mismatch".into());
        }
        // (5): assignment in range.
        for (i, &g) in self.gpu.iter().enumerate() {
            if g >= p.n_gpus {
                return Err(format!("task {i}: GPU {g} out of range"));
            }
        }
        // (4): arrival.
        for i in 0..p.n_tasks() {
            if self.start[i] < p.arrival_of(i) {
                return Err(format!(
                    "task {i}: starts {} before arrival {}",
                    self.start[i],
                    p.arrival_of(i)
                ));
            }
        }
        // (7): round precedence.
        for (j, job) in p.jobs.iter().enumerate() {
            for r in 1..job.rounds {
                let prev_done = p
                    .round_tasks(j, r - 1)
                    .into_iter()
                    .map(|i| self.task_completion(p, i))
                    .max()
                    .expect("every round has at least one task");
                for i in p.round_tasks(j, r) {
                    if self.start[i] < prev_done {
                        return Err(format!(
                            "task {i} (job {j} round {r}): starts {} before round {} completes {}",
                            self.start[i],
                            r - 1,
                            prev_done
                        ));
                    }
                }
            }
        }
        // (8): non-overlap on each GPU (training occupies the GPU; sync
        // overlaps the successor).
        for (g, seq) in self.gpu_sequences(p).iter().enumerate() {
            for w in seq.windows(2) {
                let (a, b) = (w[0], w[1]);
                let release = self.gpu_release(p, a);
                if self.start[b] < release {
                    return Err(format!(
                        "GPU {g}: task {b} starts {} before task {a} releases {}",
                        self.start[b], release
                    ));
                }
            }
        }
        // Strict gangs: simultaneous starts on distinct GPUs.
        if mode == SyncMode::Strict {
            for (j, job) in p.jobs.iter().enumerate() {
                for r in 0..job.rounds {
                    let tasks = p.round_tasks(j, r);
                    let first = self.start[tasks[0]];
                    let mut gpus: Vec<GpuIdx> = Vec::with_capacity(tasks.len());
                    for &i in &tasks {
                        if self.start[i] != first {
                            return Err(format!("job {j} round {r}: strict gang start mismatch"));
                        }
                        if gpus.contains(&self.gpu[i]) {
                            return Err(format!("job {j} round {r}: gang shares a GPU"));
                        }
                        gpus.push(self.gpu[i]);
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    /// The exact-optimal Fig.-1 schedule (total weighted JCT 8.5, as the
    /// paper's Fig. 1(c) reports), found by `hare-solver`'s branch-and-
    /// bound. It showcases both intra-job parallelism and relaxed
    /// scale-fixed stacking: all four J3 tasks run back-to-back on GPU0.
    fn fig1_optimal() -> (SchedProblem, Schedule) {
        let p = SchedProblem::fig1();
        let mut s = Schedule::with_capacity(p.n_tasks());
        let sec = SimTime::from_secs_f64;
        let place = |s: &mut Schedule, i: usize, g: usize, t: f64| {
            s.gpu[i] = g;
            s.start[i] = sec(t);
        };
        // J1 (tasks 0,1): GPU0 [0,1) and GPU1 [0,1.5) -> C1 = 1.5.
        place(&mut s, 0, 0, 0.0);
        place(&mut s, 1, 1, 0.0);
        // J2 (tasks 2,3,4): GPU2 [0,1.5), GPU1 [1.5,3.0), GPU0 [3,4) -> C2 = 4.
        place(&mut s, 2, 2, 0.0);
        place(&mut s, 3, 1, 1.5);
        place(&mut s, 4, 0, 3.0);
        // J3 (tasks 5..8): stacked on GPU0 [1,1.5),[1.5,2),[2,2.5),[2.5,3)
        // -> C3 = 3.
        place(&mut s, 5, 0, 1.0);
        place(&mut s, 6, 0, 1.5);
        place(&mut s, 7, 0, 2.0);
        place(&mut s, 8, 0, 2.5);
        (p, s)
    }

    #[test]
    fn fig1_optimal_is_valid_relaxed_but_not_strict() {
        let (p, s) = fig1_optimal();
        assert!(s.validate(&p, SyncMode::Relaxed).is_ok());
        // J3's rounds share GPU0 with staggered starts — forbidden under
        // strict scale-fixed gang semantics.
        assert!(s.validate(&p, SyncMode::Strict).is_err());
    }

    #[test]
    fn metrics_compute() {
        let (p, s) = fig1_optimal();
        assert!((s.job_completion(&p, 0).as_secs_f64() - 1.5).abs() < 1e-9);
        assert!((s.job_completion(&p, 1).as_secs_f64() - 4.0).abs() < 1e-9);
        assert!((s.job_completion(&p, 2).as_secs_f64() - 3.0).abs() < 1e-9);
        assert!((s.weighted_completion(&p) - 8.5).abs() < 1e-9);
        assert_eq!(s.makespan(&p).as_secs_f64(), 4.0);
        let busy = s.busy_time(&p);
        // GPU0: J1 task (1.0) + J3 4x0.5 (2.0) + J2 round 2 (1.0) = 4.0.
        assert_eq!(busy[0], SimDuration::from_secs(4));
        let seqs = s.gpu_sequences(&p);
        assert_eq!(seqs[0], vec![0, 5, 6, 7, 8, 4]);
        // GPU0 is 100% busy over the makespan.
        assert!((s.utilization(&p)[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_is_detected() {
        let p = SchedProblem::fig1();
        let mut s = Schedule::with_capacity(p.n_tasks());
        // Everything at t=0 on GPU0: massive overlap.
        let err = s.validate(&p, SyncMode::Relaxed).unwrap_err();
        assert!(err.contains("GPU 0") || err.contains("round"), "{err}");
        // Fix one task to start before arrival: arrival check.
        s.start[0] = SimTime::ZERO;
        assert!(s.validate(&p, SyncMode::Relaxed).is_err());
    }

    #[test]
    fn precedence_violation_detected() {
        let p = SchedProblem::fig1();
        let mut s = Schedule::with_capacity(p.n_tasks());
        // Spread tasks over GPUs to avoid overlap, but put J2's rounds all
        // at t=0 on different GPUs — violates (7) (and (8) partly).
        s.gpu = vec![0, 1, 0, 1, 2, 1, 2, 1, 2];
        let err = s.validate(&p, SyncMode::Relaxed).unwrap_err();
        assert!(err.contains("round"), "{err}");
    }

    #[test]
    fn sync_overlaps_successor_on_gpu() {
        // A GPU may start the next task right after T^c even though the
        // previous task's sync is still in flight.
        let sec = |s: f64| SimDuration::from_secs_f64(s);
        let p = SchedProblem::new(
            1,
            vec![
                crate::problem::JobInfo {
                    weight: 1.0,
                    arrival: SimTime::ZERO,
                    rounds: 1,
                    sync_scale: 1,
                    train: vec![sec(2.0)],
                    sync: vec![sec(1.0)],
                },
                crate::problem::JobInfo {
                    weight: 1.0,
                    arrival: SimTime::ZERO,
                    rounds: 1,
                    sync_scale: 1,
                    train: vec![sec(2.0)],
                    sync: vec![sec(0.5)],
                },
            ],
        );
        let s = Schedule {
            start: vec![SimTime::ZERO, SimTime::from_secs(2)],
            gpu: vec![0, 0],
        };
        assert!(s.validate(&p, SyncMode::Relaxed).is_ok());
        assert!((s.job_completion(&p, 0).as_secs_f64() - 3.0).abs() < 1e-9);
        assert!((s.job_completion(&p, 1).as_secs_f64() - 4.5).abs() < 1e-9);
    }
}
