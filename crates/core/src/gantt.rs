//! ASCII Gantt rendering of schedules — the quickest way to *see* what a
//! scheduler decided (GPU preemption, relaxed-sync stacking, idle gaps).

use crate::problem::SchedProblem;
use crate::schedule::Schedule;
use std::fmt::Write as _;

/// Render a schedule as one text row per GPU. Each task is drawn with its
/// job's symbol (`0`–`9`, then `a`–`z`, cycling); `.` is idle time. `width`
/// columns cover `[0, makespan]`.
pub fn render(p: &SchedProblem, s: &Schedule, width: usize) -> String {
    assert!(width >= 10, "unreadably narrow chart");
    let makespan = s.makespan(p).as_secs_f64().max(1e-9);
    let scale = width as f64 / makespan;
    let mut out = String::new();

    for g in 0..p.n_gpus {
        let mut line = vec![b'.'; width];
        for (i, task) in p.tasks.iter().enumerate() {
            if s.gpu[i] != g {
                continue;
            }
            let start = s.start[i].as_secs_f64() * scale;
            let end = s.gpu_release(p, i).as_secs_f64() * scale;
            let from = start as usize;
            // Always at least one cell, so short tasks stay visible.
            let to = (end.ceil() as usize).clamp(from + 1, width);
            let symbol = job_symbol(task.job);
            for c in line.iter_mut().take(to).skip(from.min(width - 1)) {
                *c = symbol;
            }
        }
        let _ = writeln!(
            out,
            "gpu{g:<3}|{}|",
            String::from_utf8(line).expect("gantt rows are ASCII")
        );
    }
    let _ = writeln!(
        out,
        "      0s{}{:.1}s",
        " ".repeat(width.saturating_sub(8)),
        makespan
    );
    out
}

/// Symbol for a job index: 0–9, a–z, then cycling through a–z.
pub fn job_symbol(job: usize) -> u8 {
    if job < 10 {
        b'0' + job as u8
    } else {
        b'a' + ((job - 10) % 26) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::hare_schedule;

    #[test]
    fn renders_one_row_per_gpu_plus_axis() {
        let p = SchedProblem::fig1();
        let out = hare_schedule(&p);
        let chart = render(&p, &out.schedule, 40);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), p.n_gpus + 1);
        for (g, line) in lines.iter().take(p.n_gpus).enumerate() {
            assert!(line.starts_with(&format!("gpu{g}")));
            // Fixed row width: 40 cells plus the frame.
            assert_eq!(line.len(), 6 + 40 + 2);
        }
        assert!(lines[p.n_gpus].trim_end().ends_with('s'));
    }

    #[test]
    fn every_job_appears_and_busy_cells_match_load() {
        let p = SchedProblem::fig1();
        let out = hare_schedule(&p);
        let chart = render(&p, &out.schedule, 60);
        for job in 0..p.jobs.len() {
            let symbol = job_symbol(job) as char;
            assert!(
                chart.contains(symbol),
                "job {job} ({symbol}) missing from chart"
            );
        }
        // Total busy cells roughly match total training volume.
        let busy_cells = chart
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .count()
            // subtract the gpu labels and the axis line characters
            - chart.lines().count() * 4;
        assert!(busy_cells > 10);
    }

    #[test]
    fn symbols_cycle_safely() {
        assert_eq!(job_symbol(0), b'0');
        assert_eq!(job_symbol(9), b'9');
        assert_eq!(job_symbol(10), b'a');
        assert_eq!(job_symbol(35), b'z');
        assert_eq!(job_symbol(36), b'a');
        assert_eq!(job_symbol(36 + 26), b'a');
    }

    #[test]
    #[should_panic(expected = "narrow")]
    fn rejects_tiny_width() {
        let p = SchedProblem::fig1();
        let out = hare_schedule(&p);
        render(&p, &out.schedule, 5);
    }
}
