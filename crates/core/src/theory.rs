//! Theoretical machinery of Section 5.3.
//!
//! * α — the per-task heterogeneity factor of Lemma 3;
//! * the Theorem-4 approximation bound `α(2+α)`;
//! * empirical certificates: Lemma-2 prefix-load checks, Lemma-3 idle-time
//!   checks, the per-task Eq.-(22) check `x̃ᵢ + T̃ᵢ ≤ (2+α)Hᵢ`, and the
//!   end-to-end ratio against the relaxation's certified lower bound (or an
//!   exact optimum when one is available).
//!
//! The integration tests use these to certify that Algorithm 1 stays inside
//! the published bound on exhaustively-solved instances.

use crate::algorithm::HareOutput;
use crate::problem::SchedProblem;
use serde::{Deserialize, Serialize};

/// Theorem 4's approximation ratio for a heterogeneity factor α.
pub fn approx_ratio_bound(alpha: f64) -> f64 {
    assert!(alpha >= 1.0, "alpha is a max of ratios, so >= 1");
    alpha * (2.0 + alpha)
}

/// Empirical certificate of one Algorithm-1 run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TheoryReport {
    /// Heterogeneity factor α of the instance.
    pub alpha: f64,
    /// Theorem-4 bound α(2+α).
    pub ratio_bound: f64,
    /// Achieved objective Σ wₙCₙ (seconds).
    pub objective: f64,
    /// Certified lower bound on the optimum.
    pub lower_bound: f64,
    /// objective / lower_bound (≥ 1; ∞ if the bound is 0).
    pub ratio_vs_lower_bound: f64,
    /// Max over tasks of `(x̃ᵢ + T̃ᵢ) / Hᵢ` — Eq. (22) predicts ≤ 2+α.
    pub max_finish_over_h: f64,
    /// Fraction of (GPU, prefix) pairs satisfying Lemma 2's `load ≤ 2H`.
    pub lemma2_satisfaction: f64,
    /// Max over tasks of `idle-before-task / Hᵢ` — Lemma 3 predicts ≤ α.
    pub max_idle_over_h: f64,
}

/// Build the certificate for an Algorithm-1 output.
pub fn certify(p: &SchedProblem, out: &HareOutput) -> TheoryReport {
    let alpha = p.alpha();
    let objective = out.schedule.weighted_completion(p);
    let lower_bound = out.lower_bound;

    // Eq. (22): x̃ + T̃ (training only, as in the proof) vs H.
    let mut max_finish_over_h = 0.0f64;
    for i in 0..p.n_tasks() {
        let finish = (out.schedule.start[i] + p.train(i, out.schedule.gpu[i])).as_secs_f64();
        let h = out.h[i].max(1e-12);
        max_finish_over_h = max_finish_over_h.max(finish / h);
    }

    // Lemma 2: for each GPU m and each position j in π, the total training
    // load Algorithm 1 has placed on m among π's first j tasks is ≤ 2H_{π(j)}.
    let mut checks = 0u64;
    let mut satisfied = 0u64;
    {
        let mut load = vec![0.0f64; p.n_gpus];
        for &i in &out.pi {
            let m = out.schedule.gpu[i];
            load[m] += p.train(i, m).as_secs_f64();
            checks += 1;
            if load[m] <= 2.0 * out.h[i] + 1e-9 {
                satisfied += 1;
            }
        }
    }
    let lemma2_satisfaction = if checks == 0 {
        1.0
    } else {
        satisfied as f64 / checks as f64
    };

    // Lemma 3: idle time before each task on its GPU vs αH_i.
    let mut max_idle_over_h = 0.0f64;
    for seq in out.schedule.gpu_sequences(p) {
        let mut prev_release = 0.0f64;
        for &i in &seq {
            let start = out.schedule.start[i].as_secs_f64();
            let idle_before = start - prev_release; // cumulative handled per task
            let _ = idle_before;
            prev_release = out.schedule.gpu_release(p, i).as_secs_f64();
        }
        // Lemma 3 bounds the *total* idle before task j on its machine.
        let mut cum_idle = 0.0f64;
        let mut release = 0.0f64;
        for &i in &seq {
            let start = out.schedule.start[i].as_secs_f64();
            cum_idle += (start - release).max(0.0);
            release = out.schedule.gpu_release(p, i).as_secs_f64();
            let h = out.h[i].max(1e-12);
            max_idle_over_h = max_idle_over_h.max(cum_idle / h);
        }
    }

    TheoryReport {
        alpha,
        ratio_bound: approx_ratio_bound(alpha),
        objective,
        lower_bound,
        ratio_vs_lower_bound: if lower_bound > 0.0 {
            objective / lower_bound
        } else {
            f64::INFINITY
        },
        max_finish_over_h,
        lemma2_satisfaction,
        max_idle_over_h,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::hare_schedule;

    #[test]
    fn bound_grows_with_alpha() {
        assert!((approx_ratio_bound(1.0) - 3.0).abs() < 1e-12);
        assert!((approx_ratio_bound(2.0) - 8.0).abs() < 1e-12);
        assert!(approx_ratio_bound(8.0) > approx_ratio_bound(3.0));
    }

    #[test]
    fn fig1_certificate() {
        let p = SchedProblem::fig1();
        let out = hare_schedule(&p);
        let report = certify(&p, &out);
        assert!((report.alpha - 3.0).abs() < 1e-12);
        assert!((report.ratio_bound - 15.0).abs() < 1e-12);
        assert!(report.ratio_vs_lower_bound >= 1.0 - 1e-9);
        assert!(
            report.ratio_vs_lower_bound <= report.ratio_bound + 1e-6,
            "ratio {} exceeds bound {}",
            report.ratio_vs_lower_bound,
            report.ratio_bound
        );
        // Empirical statistic: our heuristic relaxation does not formally
        // guarantee Lemma 2's premise, but most prefixes satisfy it.
        assert!(report.lemma2_satisfaction > 0.6);
        // Eq. (22): x̃ + T̃ <= (2+α)H must hold comfortably here.
        assert!(report.max_finish_over_h <= 2.0 + report.alpha + 1e-9);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn sub_one_alpha_rejected() {
        approx_ratio_bound(0.5);
    }
}
