//! The `Hare_Sched` problem (Section 5.1).
//!
//! A set `N` of jobs runs on a set `M` of heterogeneous GPUs. Job `n` has
//! arrival `a_n`, weight `w_n` and rounds `R_n`; round `r` launches the
//! task set `D_r`, and tasks synchronize through the PS at round
//! boundaries. Training time `T^c_{i,m}` and synchronization time
//! `T^s_{i,m}` are per-GPU; the paper's Fig. 11 justifies dropping the
//! round subscript (times are stable across rounds), so times live on the
//! *job* here and every task of a job shares them.

use hare_cluster::{SimDuration, SimTime};
use hare_solver::{Instance, JobMeta, ProblemError, TaskMeta};
use serde::{Deserialize, Serialize};

/// Index of a GPU in the problem (dense, matches `Cluster` GPU ids).
pub type GpuIdx = usize;
/// Index of a job.
pub type JobIdx = usize;
/// Index of a task in [`SchedProblem::tasks`].
pub type TaskIdx = usize;

/// One job of the scheduling problem.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobInfo {
    /// Objective weight `w_n`.
    pub weight: f64,
    /// Arrival time `a_n`.
    pub arrival: SimTime,
    /// Number of rounds `|R_n|`.
    pub rounds: u32,
    /// Tasks per round `|D_r|` (the fixed synchronization scale).
    pub sync_scale: u32,
    /// Training time of one task on each GPU (`T^c_{i,m}`).
    pub train: Vec<SimDuration>,
    /// Synchronization time of one task on each GPU (`T^s_{i,m}`).
    pub sync: Vec<SimDuration>,
}

/// One task; times are inherited from its job.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskInfo {
    /// Owning job.
    pub job: JobIdx,
    /// Round within the job.
    pub round: u32,
    /// Index within the round (0..sync_scale), for display only.
    pub slot: u32,
}

/// The full scheduling problem.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SchedProblem {
    /// Number of GPUs `|M|`.
    pub n_gpus: usize,
    /// Jobs `N`.
    pub jobs: Vec<JobInfo>,
    /// All tasks `D`, grouped job-major then round-major (dense).
    pub tasks: Vec<TaskInfo>,
}

impl SchedProblem {
    /// Build from jobs, expanding each into `rounds × sync_scale` tasks.
    pub fn new(n_gpus: usize, jobs: Vec<JobInfo>) -> Self {
        assert!(n_gpus > 0, "no GPUs");
        let mut tasks = Vec::new();
        for (j, job) in jobs.iter().enumerate() {
            assert_eq!(job.train.len(), n_gpus, "job {j}: train vector length");
            assert_eq!(job.sync.len(), n_gpus, "job {j}: sync vector length");
            for r in 0..job.rounds {
                for k in 0..job.sync_scale {
                    tasks.push(TaskInfo {
                        job: j,
                        round: r,
                        slot: k,
                    });
                }
            }
        }
        let p = SchedProblem {
            n_gpus,
            jobs,
            tasks,
        };
        p.validate().expect("invalid problem");
        p
    }

    /// Structural validation with a typed error (shared with the solver's
    /// [`Instance`] validation so callers handle one error type).
    pub fn validate(&self) -> Result<(), ProblemError> {
        if self.n_gpus == 0 {
            return Err(ProblemError::NoMachines);
        }
        if self.jobs.is_empty() {
            return Err(ProblemError::NoJobs);
        }
        let bad_job = |j: usize, why: String| -> Result<(), ProblemError> {
            Err(ProblemError::Job { job: j, why })
        };
        for (j, job) in self.jobs.iter().enumerate() {
            if !(job.weight > 0.0 && job.weight.is_finite()) {
                return bad_job(j, format!("weight {}", job.weight));
            }
            if job.rounds == 0 || job.sync_scale == 0 {
                return bad_job(j, "empty rounds/scale".into());
            }
            if job.train.len() != self.n_gpus || job.sync.len() != self.n_gpus {
                return bad_job(j, "time vector length".into());
            }
            if job.train.iter().any(|t| t.is_zero()) {
                return bad_job(j, "zero training time".into());
            }
            // The paper's standing assumption: training dominates sync.
            // Both vectors are non-empty here: their length equals
            // n_gpus, checked > 0 above.
            let t_min = job.train.iter().min().expect("train.len() == n_gpus > 0");
            let s_max = job.sync.iter().max().expect("sync.len() == n_gpus > 0");
            if s_max > t_min {
                return bad_job(
                    j,
                    format!(
                        "sync {s_max} exceeds training {t_min} — violates the paper's assumption"
                    ),
                );
            }
        }
        let expected: usize = self
            .jobs
            .iter()
            .map(|j| (j.rounds * j.sync_scale) as usize)
            .sum();
        if self.tasks.len() != expected {
            return Err(ProblemError::Inconsistent(format!(
                "task count {} != expanded {}",
                self.tasks.len(),
                expected
            )));
        }
        Ok(())
    }

    /// Number of tasks `|D|`.
    pub fn n_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Training time of task `i` on GPU `m`.
    pub fn train(&self, i: TaskIdx, m: GpuIdx) -> SimDuration {
        self.jobs[self.tasks[i].job].train[m]
    }

    /// Synchronization time of task `i` on GPU `m`.
    pub fn sync(&self, i: TaskIdx, m: GpuIdx) -> SimDuration {
        self.jobs[self.tasks[i].job].sync[m]
    }

    /// Arrival of the job owning task `i`.
    pub fn arrival_of(&self, i: TaskIdx) -> SimTime {
        self.jobs[self.tasks[i].job].arrival
    }

    /// Task indices of one (job, round), in slot order.
    pub fn round_tasks(&self, job: JobIdx, round: u32) -> Vec<TaskIdx> {
        // Tasks are dense and job/round-major: compute the base offset.
        let mut base = 0usize;
        for (j, info) in self.jobs.iter().enumerate() {
            if j == job {
                base += (round * info.sync_scale) as usize;
                let scale = info.sync_scale as usize;
                return (base..base + scale).collect();
            }
            base += (info.rounds * info.sync_scale) as usize;
        }
        panic!("job {job} out of range");
    }

    /// The heterogeneity factor α (Lemma 3):
    /// `max_i { T^c_max/T^c_min, T^s_max/T^s_min }`.
    pub fn alpha(&self) -> f64 {
        let mut alpha: f64 = 1.0;
        // Time vectors are non-empty for any validated problem (length
        // n_gpus > 0), so the min/max always exist.
        let micros =
            |d: Option<&SimDuration>| d.expect("time vectors are non-empty").as_micros() as f64;
        for job in &self.jobs {
            let t_max = micros(job.train.iter().max());
            let t_min = micros(job.train.iter().min());
            alpha = alpha.max(t_max / t_min);
            let s_max = micros(job.sync.iter().max());
            let s_min = micros(job.sync.iter().min());
            if s_min > 0.0 {
                alpha = alpha.max(s_max / s_min);
            }
        }
        alpha
    }

    /// Convert to the solver's float instance (seconds).
    pub fn to_instance(&self) -> Instance {
        Instance {
            n_machines: self.n_gpus,
            jobs: self
                .jobs
                .iter()
                .map(|j| JobMeta {
                    weight: j.weight,
                    release: j.arrival.as_secs_f64(),
                    rounds: j.rounds,
                })
                .collect(),
            tasks: self
                .tasks
                .iter()
                .map(|t| {
                    let job = &self.jobs[t.job];
                    TaskMeta {
                        job: t.job,
                        round: t.round,
                        p: job.train.iter().map(|d| d.as_secs_f64()).collect(),
                        s: job.sync.iter().map(|d| d.as_secs_f64()).collect(),
                    }
                })
                .collect(),
        }
    }

    /// The paper's Fig.-1 toy problem (3 jobs, 3 GPUs) in typed form.
    pub fn fig1() -> SchedProblem {
        let secs = |v: &[f64]| -> Vec<SimDuration> {
            v.iter().map(|&s| SimDuration::from_secs_f64(s)).collect()
        };
        let zero = vec![SimDuration::ZERO; 3];
        SchedProblem::new(
            3,
            vec![
                JobInfo {
                    weight: 1.0,
                    arrival: SimTime::ZERO,
                    rounds: 1,
                    sync_scale: 2,
                    train: secs(&[1.0, 1.5, 2.0]),
                    sync: zero.clone(),
                },
                JobInfo {
                    weight: 1.0,
                    arrival: SimTime::ZERO,
                    rounds: 3,
                    sync_scale: 1,
                    train: secs(&[1.0, 1.5, 1.5]),
                    sync: zero.clone(),
                },
                JobInfo {
                    weight: 1.0,
                    arrival: SimTime::ZERO,
                    rounds: 2,
                    sync_scale: 2,
                    train: secs(&[0.5, 1.0, 1.5]),
                    sync: zero,
                },
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_expands_correctly() {
        let p = SchedProblem::fig1();
        assert_eq!(p.n_tasks(), 2 + 3 + 4);
        assert_eq!(p.round_tasks(0, 0), vec![0, 1]);
        assert_eq!(p.round_tasks(1, 2), vec![4]);
        assert_eq!(p.round_tasks(2, 1), vec![7, 8]);
        assert!((p.alpha() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn times_are_shared_within_a_job() {
        let p = SchedProblem::fig1();
        assert_eq!(p.train(7, 0), SimDuration::from_millis(500));
        assert_eq!(p.train(8, 2), SimDuration::from_millis(1500));
        assert_eq!(p.sync(0, 1), SimDuration::ZERO);
    }

    #[test]
    fn to_instance_round_trips_structure() {
        let p = SchedProblem::fig1();
        let inst = p.to_instance();
        assert!(inst.validate().is_ok());
        assert_eq!(inst.n_tasks(), p.n_tasks());
        assert_eq!(inst.jobs.len(), p.jobs.len());
        assert!((inst.alpha() - p.alpha()).abs() < 1e-9);
        assert!((inst.tasks[0].p[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sync_dominating_training_is_rejected() {
        let mut p = SchedProblem::fig1();
        p.jobs[0].sync = vec![SimDuration::from_secs(10); 3];
        assert!(p.validate().is_err());
    }

    #[test]
    fn zero_training_time_rejected() {
        let mut p = SchedProblem::fig1();
        p.jobs[1].train[1] = SimDuration::ZERO;
        assert!(p.validate().is_err());
    }
}
