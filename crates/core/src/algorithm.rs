//! Algorithm 1 — Hare's task scheduling algorithm (Section 5.2).
//!
//! Step 1 solves the `Hare_Sched_RL` relaxation (delegated to
//! `hare-solver`), producing relaxed starts `x̂ᵢ` and midpoints
//! `Hᵢ = maxₘ(x̂ᵢ + ½T^c_{i,m})`. Step 2 sorts tasks by `Hᵢ` and list-
//! schedules them: each task becomes available when its previous round
//! finishes (line 10), goes to the GPU with the earliest available time
//! `φₘ` (line 12), and the GPU is released after training only — the
//! synchronization overlaps the successor (line 16).
//!
//! One engineering note: the paper processes π strictly in `H` order and
//! assumes every predecessor precedes its successors in π. The relaxation
//! guarantees `x̂` respects precedence but not that midpoints do (a later
//! round's task on a much faster set of GPUs can have a smaller `Hᵢ` under
//! high heterogeneity), so this implementation consumes π through a
//! priority queue that releases a task only once its previous round is
//! fully scheduled — identical to the paper's loop whenever π is already
//! topological, and well-defined otherwise.

use crate::problem::{GpuIdx, SchedProblem, TaskIdx};
use crate::schedule::Schedule;
use hare_cluster::SimTime;
use hare_solver::relax::{self, RelaxOptions};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Priority used to build the list-scheduling order π (ablations for the
/// DESIGN.md study; the paper's Hare uses [`PriorityOrder::Midpoint`]).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PriorityOrder {
    /// `Hᵢ` from the relaxation (the paper's Algorithm 1).
    #[default]
    Midpoint,
    /// Job arrival time, then job/round — FIFO-shaped ablation.
    Arrival,
    /// Smith ratio `pᵢ^min / wₙ` — WSPT-shaped ablation without the
    /// relaxation.
    Smith,
}

/// GPU selection rule (line 12).
///
/// Read literally, line 12 (`m* = argminₘ φₘ`) is heterogeneity-blind at
/// placement: on a lightly loaded cluster it parks tasks on K80s while
/// V100s free up microseconds later, and Hare then *loses* to plain
/// heterogeneity-aware FIFO — the opposite of every published result. The
/// published behaviour is reproduced when "earliest available" is read as
/// "earliest able to finish the task" (`argminₘ max(tᵢ, φₘ) + T^c_{i,m}`),
/// which is what this implementation defaults to; the literal rule is kept
/// as an ablation (`fig14 --order` / DESIGN.md §6) and is the variant the
/// Theorem-4 proof's Eq. (21) formally covers.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AssignmentRule {
    /// Line 12 read literally: `m* = argminₘ φₘ`.
    EarliestAvailable,
    /// Earliest-finish-time: `m* = argminₘ max(tᵢ, φₘ) + T^c_{i,m}`.
    #[default]
    EarliestFinish,
}

/// Hare's scheduler (Algorithm 1).
///
/// ```
/// use hare_core::{HareScheduler, SchedProblem, SyncMode};
///
/// let problem = SchedProblem::fig1(); // the paper's 3-job toy example
/// let out = HareScheduler::default().schedule(&problem);
/// assert!(out.schedule.validate(&problem, SyncMode::Relaxed).is_ok());
/// assert!(out.schedule.weighted_completion(&problem) >= out.lower_bound);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HareScheduler {
    /// Relaxation options (LP vs combinatorial threshold etc.).
    pub relax: RelaxOptions,
    /// Priority order for π.
    pub order: PriorityOrder,
    /// GPU selection rule.
    pub assignment: AssignmentRule,
}

/// Everything Algorithm 1 produced, for theory checks and replay.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HareOutput {
    /// The schedule (x̃, ỹ).
    pub schedule: Schedule,
    /// Midpoint priorities `Hᵢ` (seconds), as used for ordering.
    pub h: Vec<f64>,
    /// The order π in which tasks were dispatched.
    pub pi: Vec<TaskIdx>,
    /// Certified lower bound on the optimal Σ wₙCₙ from the relaxation.
    pub lower_bound: f64,
}

impl HareScheduler {
    /// Run Algorithm 1 on a problem.
    pub fn schedule(&self, p: &SchedProblem) -> HareOutput {
        self.schedule_traced(p, None)
    }

    /// [`HareScheduler::schedule`] with relaxation-phase work spans
    /// recorded into `trace` (cut rounds, dense fallbacks, combinatorial
    /// sweeps — see `hare_solver::trace`). The non-Midpoint priority
    /// orders do no solver work and record nothing.
    pub fn schedule_traced(
        &self,
        p: &SchedProblem,
        trace: Option<&hare_solver::SolveTrace>,
    ) -> HareOutput {
        p.validate().expect("invalid problem");
        let priorities = self.priorities(p, trace);
        let (schedule, pi) = list_schedule(p, &priorities, self.assignment);
        // The certified bound is independent of x̂ — compute it directly.
        let lower_bound = hare_solver::certified_lower_bound(&p.to_instance());
        HareOutput {
            schedule,
            h: priorities,
            pi,
            lower_bound,
        }
    }

    /// The priority vector driving π.
    fn priorities(&self, p: &SchedProblem, trace: Option<&hare_solver::SolveTrace>) -> Vec<f64> {
        match self.order {
            PriorityOrder::Midpoint => {
                let sol = relax::solve_traced(&p.to_instance(), &self.relax, trace);
                sol.h
            }
            PriorityOrder::Arrival => p
                .tasks
                .iter()
                .map(|t| p.jobs[t.job].arrival.as_secs_f64() + t.round as f64 * 1e-6)
                .collect(),
            PriorityOrder::Smith => smith_priorities(p),
        }
    }
}

/// Smith-ratio priorities `arrival + pᵢ^min/wₙ + round·10⁻⁶` — the
/// heterogeneity-aware greedy order (WSPT-shaped), shared by the
/// [`PriorityOrder::Smith`] ablation and the anytime pipeline's Greedy
/// rung (`crate::anytime`).
pub(crate) fn smith_priorities(p: &SchedProblem) -> Vec<f64> {
    let inst = p.to_instance();
    (0..p.n_tasks())
        .map(|i| {
            let t = &p.tasks[i];
            p.jobs[t.job].arrival.as_secs_f64()
                + inst.p_min(i) / p.jobs[t.job].weight
                + t.round as f64 * 1e-6
        })
        .collect()
}

/// The Step-2 list scheduler, shared by all priority orders (and by every
/// rung of the anytime pipeline in `crate::anytime`).
///
/// Maintains per-(job, round) scheduling state so a round's tasks become
/// dispatchable exactly when the previous round is fully scheduled; among
/// dispatchable tasks, always pick the smallest priority (ties: task index).
pub(crate) fn list_schedule(
    p: &SchedProblem,
    priority: &[f64],
    rule: AssignmentRule,
) -> (Schedule, Vec<TaskIdx>) {
    let n = p.n_tasks();
    let mut schedule = Schedule::with_capacity(n);
    let mut pi = Vec::with_capacity(n);

    // Per-job: how many tasks of the current round remain unscheduled, and
    // the completion frontier of the previous round (t_i of line 8/10).
    let mut current_round: Vec<u32> = vec![0; p.jobs.len()];
    let mut remaining: Vec<u32> = p.jobs.iter().map(|j| j.sync_scale).collect();
    let mut frontier: Vec<SimTime> = p.jobs.iter().map(|j| j.arrival).collect();

    // GPU available times φ_m.
    let mut phi: Vec<SimTime> = vec![SimTime::ZERO; p.n_gpus];

    // Ready heap keyed by (priority, task) — min-heap via Reverse.
    #[derive(PartialEq)]
    struct Key(f64, TaskIdx);
    impl Eq for Key {}
    impl PartialOrd for Key {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Key {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
        }
    }
    let mut ready: BinaryHeap<Reverse<Key>> = BinaryHeap::new();
    for (j, _) in p.jobs.iter().enumerate() {
        for &i in &p.round_tasks(j, 0) {
            ready.push(Reverse(Key(priority[i], i)));
        }
    }

    while let Some(Reverse(Key(_, i))) = ready.pop() {
        let job = p.tasks[i].job;
        let t_i = frontier[job]; // lines 7–11

        // Line 12: GPU choice.
        let m = match rule {
            AssignmentRule::EarliestAvailable => (0..p.n_gpus)
                .min_by_key(|&m| (phi[m], m))
                .expect("at least one GPU"),
            AssignmentRule::EarliestFinish => (0..p.n_gpus)
                .min_by_key(|&m| (phi[m].max(t_i) + p.train(i, m), m))
                .expect("at least one GPU"),
        };

        // Lines 13–16.
        let start = t_i.max(phi[m]);
        schedule.start[i] = start;
        schedule.gpu[i] = m;
        phi[m] = start + p.train(i, m); // sync overlaps the next task
        pi.push(i);

        // Round bookkeeping: when the round finishes scheduling, release
        // the next round with the real completion frontier.
        remaining[job] -= 1;
        if remaining[job] == 0 {
            let r = current_round[job];
            let done = p
                .round_tasks(job, r)
                .into_iter()
                .map(|k| schedule.task_completion(p, k))
                .max()
                .expect("every round has at least one task");
            frontier[job] = done;
            if r + 1 < p.jobs[job].rounds {
                current_round[job] = r + 1;
                remaining[job] = p.jobs[job].sync_scale;
                for &k in &p.round_tasks(job, r + 1) {
                    ready.push(Reverse(Key(priority[k], k)));
                }
            }
        }
    }

    debug_assert_eq!(pi.len(), n, "all tasks scheduled");
    (schedule, pi)
}

/// Run Algorithm 1 with default options (the paper's configuration).
pub fn hare_schedule(p: &SchedProblem) -> HareOutput {
    HareScheduler::default().schedule(p)
}

#[allow(unused)]
fn _assert_send_sync() {
    fn f<T: Send + Sync>() {}
    f::<HareScheduler>();
}

/// Greedy earliest-finish assignment of a single round of `k` identical
/// tasks given current GPU availabilities — used by baselines that exploit
/// relaxed sync without the relaxation (and by tests). Returns
/// `(start, gpu)` per task.
pub fn relaxed_round_assign(
    p: &SchedProblem,
    job: usize,
    ready: SimTime,
    phi: &mut [SimTime],
) -> Vec<(SimTime, GpuIdx)> {
    let k = p.jobs[job].sync_scale as usize;
    let mut out = Vec::with_capacity(k);
    for _ in 0..k {
        let m = (0..phi.len())
            .min_by_key(|&m| (phi[m].max(ready) + p.jobs[job].train[m], m))
            .expect("problems have at least one GPU");
        let start = phi[m].max(ready);
        phi[m] = start + p.jobs[job].train[m];
        out.push((start, m));
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::sync::SyncMode;
    use hare_cluster::SimDuration;

    #[test]
    fn fig1_schedule_is_valid_and_near_optimal() {
        let p = SchedProblem::fig1();
        let out = hare_schedule(&p);
        assert!(out.schedule.validate(&p, SyncMode::Relaxed).is_ok());
        let obj = out.schedule.weighted_completion(&p);
        // Exact optimum is 8.5 (Fig. 1(c)); heterogeneity-oblivious
        // scheduling gives 10.5. Algorithm 1 must land well under the
        // oblivious result and within the theorem's bound.
        assert!(obj <= 10.5 + 1e-9, "objective {obj}");
        let alpha = p.alpha();
        assert!(
            obj <= alpha * (2.0 + alpha) * 8.5 + 1e-6,
            "Theorem 4 violated: {obj}"
        );
    }

    #[test]
    fn all_orders_produce_valid_schedules() {
        let p = SchedProblem::fig1();
        for order in [
            PriorityOrder::Midpoint,
            PriorityOrder::Arrival,
            PriorityOrder::Smith,
        ] {
            for assignment in [
                AssignmentRule::EarliestAvailable,
                AssignmentRule::EarliestFinish,
            ] {
                let s = HareScheduler {
                    order,
                    assignment,
                    ..HareScheduler::default()
                };
                let out = s.schedule(&p);
                assert!(
                    out.schedule.validate(&p, SyncMode::Relaxed).is_ok(),
                    "{order:?}/{assignment:?}"
                );
                assert_eq!(out.pi.len(), p.n_tasks());
            }
        }
    }

    #[test]
    fn pi_is_topological_per_job() {
        let p = SchedProblem::fig1();
        let out = hare_schedule(&p);
        let mut pos = vec![0usize; p.n_tasks()];
        for (k, &i) in out.pi.iter().enumerate() {
            pos[i] = k;
        }
        for (j, job) in p.jobs.iter().enumerate() {
            for r in 1..job.rounds {
                let max_prev = p
                    .round_tasks(j, r - 1)
                    .into_iter()
                    .map(|i| pos[i])
                    .max()
                    .unwrap();
                let min_cur = p
                    .round_tasks(j, r)
                    .into_iter()
                    .map(|i| pos[i])
                    .min()
                    .unwrap();
                assert!(max_prev < min_cur, "round order violated for job {j}");
            }
        }
    }

    #[test]
    fn sync_overlap_allows_back_to_back_training() {
        // One GPU, one job with 2 rounds and nonzero sync: the GPU may not
        // start round 1 before round 0's sync completes (precedence), but
        // a *different* job's task may use the sync window.
        let sec = |s: f64| SimDuration::from_secs_f64(s);
        let p = SchedProblem::new(
            1,
            vec![
                crate::problem::JobInfo {
                    weight: 1.0,
                    arrival: SimTime::ZERO,
                    rounds: 2,
                    sync_scale: 1,
                    train: vec![sec(2.0)],
                    sync: vec![sec(1.0)],
                },
                crate::problem::JobInfo {
                    weight: 1.0,
                    arrival: SimTime::ZERO,
                    rounds: 1,
                    sync_scale: 1,
                    train: vec![sec(1.0)],
                    sync: vec![sec(0.0)],
                },
            ],
        );
        let out = hare_schedule(&p);
        assert!(out.schedule.validate(&p, SyncMode::Relaxed).is_ok());
        // Total weighted completion: optimal interleaving fills job 0's
        // sync window with job 1 -> C0 = 6, C1 = 3 (obj 9).
        let obj = out.schedule.weighted_completion(&p);
        assert!(
            obj <= 9.0 + 1e-9,
            "expected the sync window used, got {obj}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let p = SchedProblem::fig1();
        let a = hare_schedule(&p);
        let b = hare_schedule(&p);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.pi, b.pi);
    }

    #[test]
    fn relaxed_round_assign_spreads_and_stacks() {
        let p = SchedProblem::fig1();
        // J3 (job 2) has 2 tasks; with GPU0 free now and others busy far
        // out, both stack on GPU0 sequentially.
        let far = SimTime::from_secs(100);
        let mut phi = vec![SimTime::ZERO, far, far];
        let placed = relaxed_round_assign(&p, 2, SimTime::ZERO, &mut phi);
        assert_eq!(placed.len(), 2);
        assert_eq!(placed[0].1, 0);
        assert_eq!(placed[1].1, 0);
        assert!(placed[1].0 > placed[0].0);
    }
}
