//! The `Hare_Sched_RL` relaxation (Section 5.2, Step 1).
//!
//! The paper relaxes the non-preemption constraint (8) into Queyranne's
//! mean-busy-time inequality (9) and solves the resulting mixed-integer
//! quadratic program with CPLEX/Gurobi. Algorithm 1 consumes only the
//! relaxed start times `x̂ᵢ` through the midpoints
//! `Hᵢ = maxₘ (x̂ᵢ + ½T^c_{i,m})`, so any relaxation solution respecting
//! constraints (4)–(7) and the aggregated form of (9) yields a valid
//! priority order.
//!
//! This module provides two interchangeable modes:
//!
//! * **LP mode** (small instances): a real linear program solved with the
//!   in-repo simplex, with aggregated Queyranne *cuts* added by iterative
//!   separation (sorted-prefix heuristic). Each cut
//!   `Σ_{i∈S} p_i^max x_i ≥ (Σ_{i∈S} p_i^min)²/(2M) − ½ Σ_{i∈S} (p_i^max)²`
//!   is valid for every feasible schedule (derivation in DESIGN.md), so the
//!   LP optimum is a certified lower bound on `Hare_Sched`.
//! * **Combinatorial mode** (large instances): a fixed-point sweep that
//!   alternates precedence propagation with an aggregated volume push
//!   mirroring Lemma 2 — O(passes · n log n), used for the 10⁴-task
//!   simulator experiments where a dense simplex would not scale.
//!
//! Both modes also report [`RelaxSolution::lower_bound`], a certified lower
//! bound on the optimal Σ wₙCₙ combining a per-job critical-path bound with
//! the preemptive fast-single-machine (WSPT) bound; `hare-core`'s tests
//! check Algorithm 1 against it and against exact branch-and-bound optima.

use crate::budget::{CancelToken, SolveBudget};
use crate::instance::Instance;
use crate::lp::{Cmp, LinearProgram, LpOutcome, RevisedSimplex};
use crate::trace::SolveTrace;
use serde::{Deserialize, Serialize};

/// Options controlling the relaxation solver.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RelaxOptions {
    /// Use the LP + cut-generation mode when the instance has at most this
    /// many tasks; larger instances use the combinatorial sweep.
    pub lp_task_limit: usize,
    /// Maximum cut-generation iterations in LP mode.
    pub max_cut_rounds: usize,
    /// Sweep passes in combinatorial mode.
    pub passes: usize,
    /// Keep the simplex basis alive across cut rounds (LP mode): each new
    /// cut re-optimizes from the previous optimal basis instead of
    /// re-running both phases from scratch. Off = cold re-solve per round,
    /// kept for A/B measurement and regression tests.
    pub warm_start: bool,
}

impl Default for RelaxOptions {
    fn default() -> Self {
        RelaxOptions {
            lp_task_limit: 120,
            max_cut_rounds: 12,
            passes: 4,
            warm_start: true,
        }
    }
}

/// Work counters from one relaxation solve (LP mode; zeros in
/// combinatorial mode).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolveStats {
    /// Queyranne cuts added before separation converged.
    pub cuts: usize,
    /// Productive revised-simplex pivots: every solve that ran to
    /// optimality, across the initial solve and all cut re-solves.
    pub revised_pivots: u64,
    /// Pivots spent on solves that hit the per-solve pivot budget and were
    /// redone from scratch by the dense fallback — wasted work, kept
    /// separate from [`SolveStats::revised_pivots`] so benchmark
    /// attribution stays honest (dense solves themselves contribute to
    /// neither counter).
    pub discarded_pivots: u64,
    /// LP solves performed (1 + cuts).
    pub lp_solves: usize,
    /// Times the revised simplex exhausted its pivot budget and the
    /// accumulated program was re-solved by the dense ground-truth solver.
    pub dense_fallbacks: usize,
}

/// Which mode produced a solution.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RelaxMode {
    /// Simplex + Queyranne cuts.
    Lp {
        /// Cuts added before convergence.
        cuts: usize,
    },
    /// Fixed-point sweep.
    Combinatorial,
}

/// Solution of the relaxed problem.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RelaxSolution {
    /// Relaxed start time `x̂ᵢ` per task.
    pub x_hat: Vec<f64>,
    /// Midpoint priority `Hᵢ = maxₘ (x̂ᵢ + ½T^c_{i,m})` per task.
    pub h: Vec<f64>,
    /// Certified lower bound on the optimal Σ wₙCₙ of `Hare_Sched`.
    pub lower_bound: f64,
    /// Mode used.
    pub mode: RelaxMode,
    /// Work counters (pivots/cuts) from the solve.
    pub stats: SolveStats,
}

/// Solve the relaxation.
pub fn solve(inst: &Instance, opts: &RelaxOptions) -> RelaxSolution {
    solve_traced(inst, opts, None)
}

/// [`solve`] with per-phase work spans recorded into `trace`: one span
/// per LP cut round (work = pivots spent, detail = cut index), or one
/// flat-cost span for the combinatorial sweep.
pub fn solve_traced(
    inst: &Instance,
    opts: &RelaxOptions,
    trace: Option<&SolveTrace>,
) -> RelaxSolution {
    inst.validate().expect("invalid instance");
    let (x_hat, mode, stats) = if inst.n_tasks() <= opts.lp_task_limit {
        lp_mode(inst, opts, trace)
    } else {
        if let Some(tr) = trace {
            tr.record("combinatorial", combinatorial_work(inst, opts), 0);
        }
        (
            combinatorial_mode(inst, opts),
            RelaxMode::Combinatorial,
            SolveStats::default(),
        )
    };
    let h = midpoints(inst, &x_hat);
    RelaxSolution {
        lower_bound: certified_lower_bound(inst),
        x_hat,
        h,
        mode,
        stats,
    }
}

/// Solve the relaxation under a [`SolveBudget`] and [`CancelToken`].
///
/// `None` means the budget ran out (or cancellation / the deadline fired)
/// before a solution existed. Unlike [`solve`], a budget-capped LP abort
/// does **not** fall back to the dense solver — a budgeted caller wants
/// bounded latency, and the degradation ladder in `hare-core` supplies the
/// next-best plan instead. An unlimited budget delegates to [`solve`]
/// verbatim, so its result is bit-for-bit identical to the unbudgeted path.
///
/// Budget accounting, in simplex-pivot units against `budget.pivot_cap`:
/// LP mode spends real pivots across the initial solve and every cut
/// re-solve combined; combinatorial mode charges the flat, deterministic
/// [`combinatorial_work`] cost up front.
pub fn solve_budgeted(
    inst: &Instance,
    opts: &RelaxOptions,
    budget: &SolveBudget,
    cancel: &CancelToken,
) -> Option<RelaxSolution> {
    solve_budgeted_traced(inst, opts, budget, cancel, None)
}

/// [`solve_budgeted`] with per-phase work spans recorded into `trace`
/// (see [`solve_traced`]). An aborted solve leaves the spans of the
/// rounds that did complete — useful for diagnosing where a budget ran
/// out.
pub fn solve_budgeted_traced(
    inst: &Instance,
    opts: &RelaxOptions,
    budget: &SolveBudget,
    cancel: &CancelToken,
    trace: Option<&SolveTrace>,
) -> Option<RelaxSolution> {
    if cancel.is_cancelled() || budget.deadline_passed() {
        return None;
    }
    if budget.is_unlimited() {
        return Some(solve_traced(inst, opts, trace));
    }
    inst.validate().expect("invalid instance");
    let (x_hat, mode, stats) = if inst.n_tasks() <= opts.lp_task_limit {
        budgeted_lp_mode(inst, opts, budget, cancel, trace)?
    } else {
        if combinatorial_work(inst, opts) > budget.pivot_cap {
            return None;
        }
        if let Some(tr) = trace {
            tr.record("combinatorial", combinatorial_work(inst, opts), 0);
        }
        (
            combinatorial_mode(inst, opts),
            RelaxMode::Combinatorial,
            SolveStats::default(),
        )
    };
    let h = midpoints(inst, &x_hat);
    Some(RelaxSolution {
        lower_bound: certified_lower_bound(inst),
        x_hat,
        h,
        mode,
        stats,
    })
}

/// Deterministic work charge for one combinatorial-mode sweep, in the same
/// units as simplex pivots: each of the `passes` sweeps plus the final
/// precedence pass touches every task once.
pub fn combinatorial_work(inst: &Instance, opts: &RelaxOptions) -> u64 {
    inst.n_tasks() as u64 * (opts.passes as u64 + 1)
}

/// Single-pass, NaN-defensive min/max: one traversal, NaN entries ignored.
/// Returns `None` when `values` is empty or all-NaN.
pub fn min_max(values: &[f64]) -> Option<(f64, f64)> {
    values.iter().fold(None, |acc, &v| {
        if v.is_nan() {
            return acc;
        }
        Some(match acc {
            None => (v, v),
            Some((lo, hi)) => (lo.min(v), hi.max(v)),
        })
    })
}

/// `Hᵢ = maxₘ (x̂ᵢ + ½ T^c_{i,m}) = x̂ᵢ + ½ pᵢ^max`.
pub fn midpoints(inst: &Instance, x_hat: &[f64]) -> Vec<f64> {
    x_hat
        .iter()
        .enumerate()
        .map(|(i, &x)| x + 0.5 * inst.p_max(i))
        .collect()
}

// ---------------------------------------------------------------------
// LP mode
// ---------------------------------------------------------------------

/// Build the base relaxation program. Variables: x_0..x_{T-1} (task
/// starts) then C_0..C_{N-1} (job completions).
fn base_program(inst: &Instance) -> LinearProgram {
    let t = inst.n_tasks();
    let n = inst.jobs.len();
    let mut objective = vec![0.0; t + n];
    for (j, job) in inst.jobs.iter().enumerate() {
        objective[t + j] = job.weight;
    }

    let mut lp = LinearProgram::minimize(objective);
    // (4) release times.
    for (i, task) in inst.tasks.iter().enumerate() {
        let rel = inst.jobs[task.job].release;
        if rel > 0.0 {
            lp.constrain(vec![(i, 1.0)], Cmp::Ge, rel);
        }
    }
    // (6) job completion: C_n - x_i >= min_m (p+s); using the machine
    // minimum keeps the program a relaxation of every assignment.
    for (i, task) in inst.tasks.iter().enumerate() {
        lp.constrain(
            vec![(t + task.job, 1.0), (i, -1.0)],
            Cmp::Ge,
            inst.ps_min(i),
        );
    }
    // (7) round precedence: x_j - x_i >= min_m (p_i + s_i).
    for (j_idx, job) in inst.jobs.iter().enumerate() {
        for r in 1..job.rounds {
            let prev = inst.round_tasks(j_idx, r - 1);
            let cur = inst.round_tasks(j_idx, r);
            for &i in &prev {
                let dur = inst.ps_min(i);
                for &j in &cur {
                    lp.constrain(vec![(j, 1.0), (i, -1.0)], Cmp::Ge, dur);
                }
            }
        }
    }
    lp
}

/// Most violated aggregated Queyranne cut at `x_hat`, found by the
/// sorted-prefix separation heuristic: sort tasks by x̂ and test prefixes
/// of that order. Returns the cut as `(terms, rhs)` for `terms · x ≥ rhs`,
/// or `None` when every prefix is satisfied within tolerance.
fn separate_cut(inst: &Instance, x_hat: &[f64]) -> Option<(Vec<(usize, f64)>, f64)> {
    let t = inst.n_tasks();
    let m = inst.n_machines as f64;
    let mut order: Vec<usize> = (0..t).collect();
    order.sort_by(|&a, &b| x_hat[a].total_cmp(&x_hat[b]));
    let mut sum_pmin = 0.0;
    let mut sum_pmax_sq = 0.0;
    let mut lhs = 0.0;
    let mut best: Option<(usize, f64)> = None; // (prefix length, violation)
    for (k, &i) in order.iter().enumerate() {
        sum_pmin += inst.p_min(i);
        sum_pmax_sq += inst.p_max(i) * inst.p_max(i);
        lhs += inst.p_max(i) * x_hat[i];
        let rhs = sum_pmin * sum_pmin / (2.0 * m) - 0.5 * sum_pmax_sq;
        let violation = rhs - lhs;
        if violation > 1e-6 && best.is_none_or(|(_, v)| violation > v) {
            best = Some((k + 1, violation));
        }
    }
    let (len, _) = best?;
    let set = &order[..len];
    let sum_pmin: f64 = set.iter().map(|&i| inst.p_min(i)).sum();
    let sum_pmax_sq: f64 = set.iter().map(|&i| inst.p_max(i) * inst.p_max(i)).sum();
    let rhs = sum_pmin * sum_pmin / (2.0 * m) - 0.5 * sum_pmax_sq;
    let terms: Vec<(usize, f64)> = set.iter().map(|&i| (i, inst.p_max(i))).collect();
    Some((terms, rhs))
}

fn lp_mode(
    inst: &Instance,
    opts: &RelaxOptions,
    trace: Option<&SolveTrace>,
) -> (Vec<f64>, RelaxMode, SolveStats) {
    let t = inst.n_tasks();
    let mut lp = base_program(inst);

    // One span per LP solve: work = pivots spent on the round (productive
    // or discarded), phase marks whether the dense fallback fired.
    let record_round = |stats: &SolveStats, before: (u64, usize), cut: usize| {
        if let Some(tr) = trace {
            let spent = stats.revised_pivots + stats.discarded_pivots - before.0;
            let phase = if stats.dense_fallbacks > before.1 {
                "lp_dense_fallback"
            } else {
                "lp_round"
            };
            tr.record(phase, spent, cut as u64);
        }
    };
    let snapshot = |stats: &SolveStats| {
        (
            stats.revised_pivots + stats.discarded_pivots,
            stats.dense_fallbacks,
        )
    };

    // Per-solve pivot budget: far above anything a healthy cut round
    // needs, so it only trips on cycling or a pathological cut sequence —
    // in which case the accumulated program is handed to the dense
    // ground-truth solver and the revised simplex is rebuilt fresh.
    const PIVOT_BUDGET: u64 = 20_000;
    fn solve_or_dense(
        simplex: &mut RevisedSimplex,
        lp: &LinearProgram,
        stats: &mut SolveStats,
        t: usize,
    ) -> Vec<f64> {
        let before = simplex.pivots();
        let budget = before.saturating_add(PIVOT_BUDGET);
        let outcome = match simplex.solve_capped(budget) {
            Some(outcome) => {
                stats.revised_pivots += simplex.pivots() - before;
                outcome
            }
            None => {
                // The aborted attempt's pivots were wasted — the dense
                // solver redoes the round from scratch.
                stats.discarded_pivots += simplex.pivots() - before;
                stats.dense_fallbacks += 1;
                *simplex = RevisedSimplex::new(lp);
                lp.solve_dense()
            }
        };
        match outcome {
            LpOutcome::Optimal { x, .. } => x[..t].to_vec(),
            other => panic!("relaxation LP must be solvable, got {other:?}"),
        }
    }

    // One incremental simplex for the whole cut loop: with `warm_start` each
    // added cut re-optimizes from the previous basis (the expensive Phase I
    // runs once, on the initial program, and never again). Every cut is
    // *also* recorded in `lp`, so the dense fallback always sees the full
    // accumulated program.
    let mut simplex = RevisedSimplex::new(&lp);
    let mut stats = SolveStats {
        lp_solves: 1,
        ..SolveStats::default()
    };
    let mut before = snapshot(&stats);
    let mut x_hat = solve_or_dense(&mut simplex, &lp, &mut stats, t);
    record_round(&stats, before, 0);
    let mut cuts = 0usize;

    for _ in 0..opts.max_cut_rounds {
        let Some((terms, rhs)) = separate_cut(inst, &x_hat) else {
            break;
        };
        cuts += 1;
        if opts.warm_start {
            lp.constrain(terms.clone(), Cmp::Ge, rhs);
            simplex.add_constraint(terms, Cmp::Ge, rhs);
        } else {
            // Cold re-solve: the discarded object's pivots were already
            // attributed per solve above.
            lp.constrain(terms, Cmp::Ge, rhs);
            simplex = RevisedSimplex::new(&lp);
        }
        before = snapshot(&stats);
        x_hat = solve_or_dense(&mut simplex, &lp, &mut stats, t);
        record_round(&stats, before, cuts);
        stats.lp_solves += 1;
    }

    stats.cuts = cuts;
    (x_hat, RelaxMode::Lp { cuts }, stats)
}

/// LP mode under a finite budget: `budget.pivot_cap` is a *total* pivot
/// allowance across the initial solve and every cut re-solve, with no
/// dense fallback — exhausting it (or cancellation, or the deadline)
/// aborts the whole solve with `None`.
fn budgeted_lp_mode(
    inst: &Instance,
    opts: &RelaxOptions,
    budget: &SolveBudget,
    cancel: &CancelToken,
    trace: Option<&SolveTrace>,
) -> Option<(Vec<f64>, RelaxMode, SolveStats)> {
    let t = inst.n_tasks();
    let mut lp = base_program(inst);

    let record_round = |stats: &SolveStats, before: u64, cut: usize| {
        if let Some(tr) = trace {
            tr.record("lp_round", stats.revised_pivots - before, cut as u64);
        }
    };

    fn solve_once(
        simplex: &mut RevisedSimplex,
        stats: &mut SolveStats,
        t: usize,
        retired: u64,
        budget: &SolveBudget,
        cancel: &CancelToken,
    ) -> Option<Vec<f64>> {
        let before = simplex.pivots();
        // `retired` pivots were spent on previously discarded simplex
        // objects (cold mode rebuilds one per round); the remaining
        // allowance is an absolute cap for the current object.
        let cap = budget.pivot_cap.saturating_sub(retired);
        let outcome = simplex.solve_under(cap, budget, cancel);
        stats.revised_pivots += simplex.pivots() - before;
        match outcome? {
            LpOutcome::Optimal { x, .. } => Some(x[..t].to_vec()),
            other => panic!("relaxation LP must be solvable, got {other:?}"),
        }
    }

    let mut simplex = RevisedSimplex::new(&lp);
    let mut stats = SolveStats {
        lp_solves: 1,
        ..SolveStats::default()
    };
    let mut retired: u64 = 0;
    let mut before = stats.revised_pivots;
    let mut x_hat = solve_once(&mut simplex, &mut stats, t, retired, budget, cancel)?;
    record_round(&stats, before, 0);
    let mut cuts = 0usize;

    for _ in 0..opts.max_cut_rounds {
        if cancel.is_cancelled() || budget.deadline_passed() {
            return None;
        }
        let Some((terms, rhs)) = separate_cut(inst, &x_hat) else {
            break;
        };
        cuts += 1;
        if opts.warm_start {
            lp.constrain(terms.clone(), Cmp::Ge, rhs);
            simplex.add_constraint(terms, Cmp::Ge, rhs);
        } else {
            lp.constrain(terms, Cmp::Ge, rhs);
            retired = retired.saturating_add(simplex.pivots());
            simplex = RevisedSimplex::new(&lp);
        }
        before = stats.revised_pivots;
        x_hat = solve_once(&mut simplex, &mut stats, t, retired, budget, cancel)?;
        record_round(&stats, before, cuts);
        stats.lp_solves += 1;
    }

    stats.cuts = cuts;
    Some((x_hat, RelaxMode::Lp { cuts }, stats))
}

// ---------------------------------------------------------------------
// Combinatorial mode
// ---------------------------------------------------------------------

fn combinatorial_mode(inst: &Instance, opts: &RelaxOptions) -> Vec<f64> {
    let t = inst.n_tasks();
    let mut x = vec![0.0f64; t];
    for (i, task) in inst.tasks.iter().enumerate() {
        x[i] = inst.jobs[task.job].release;
    }

    // Pre-index rounds for fast precedence propagation.
    let mut rounds: Vec<Vec<Vec<usize>>> = inst
        .jobs
        .iter()
        .map(|j| vec![Vec::new(); j.rounds as usize])
        .collect();
    for (i, task) in inst.tasks.iter().enumerate() {
        rounds[task.job][task.round as usize].push(i);
    }

    let m = inst.n_machines as f64;
    for _ in 0..opts.passes {
        // (4)+(7): forward precedence propagation with machine-minimum
        // durations (a relaxation of any concrete assignment).
        for (j_idx, job_rounds) in rounds.iter().enumerate() {
            let mut frontier = inst.jobs[j_idx].release;
            for round in job_rounds {
                for &i in round {
                    if x[i] < frontier {
                        x[i] = frontier;
                    }
                }
                frontier = round
                    .iter()
                    .map(|&i| x[i] + inst.ps_min(i))
                    .fold(frontier, f64::max);
            }
        }

        // Aggregated volume push mirroring Lemma 2: the j-th smallest
        // midpoint satisfies H_(j) >= (Σ_{k<=j} p̂_k) / (2M), so lift
        // x_i up to that level where the current solution undercuts it.
        // The sweep order carries a Smith-ratio (p/w) tilt: the weighted
        // LP optimum schedules high-weight-density jobs earlier on the
        // aggregated machine, and the tilt reproduces that ordering
        // without solving the LP.
        let mut order: Vec<usize> = (0..t).collect();
        order.sort_by(|&a, &b| {
            let key = |i: usize| {
                x[i] + 0.5 * inst.p_min(i) + inst.p_min(i) / inst.jobs[inst.tasks[i].job].weight
            };
            key(a).total_cmp(&key(b))
        });
        let mut volume = 0.0;
        for &i in &order {
            volume += inst.p_min(i);
            let lift = volume / (2.0 * m) - 0.5 * inst.p_max(i);
            if x[i] < lift {
                x[i] = lift;
            }
        }
    }

    // Final precedence pass so the output always satisfies (4)+(7).
    for (j_idx, job_rounds) in rounds.iter().enumerate() {
        let mut frontier = inst.jobs[j_idx].release;
        for round in job_rounds {
            for &i in round {
                if x[i] < frontier {
                    x[i] = frontier;
                }
            }
            frontier = round
                .iter()
                .map(|&i| x[i] + inst.ps_min(i))
                .fold(frontier, f64::max);
        }
    }
    x
}

// ---------------------------------------------------------------------
// Certified lower bound
// ---------------------------------------------------------------------

/// A lower bound on the optimal Σ wₙCₙ that holds for *every* feasible
/// schedule: the max of
///
/// 1. the **critical-path bound** — job `n` cannot complete before its
///    release plus, per round, the largest machine-minimum task duration;
/// 2. the **fast-single-machine bound** — any M-machine schedule maps to a
///    preemptive schedule on one machine of speed M (processor sharing)
///    with identical completion times, and WSPT is optimal for
///    1|pmtn|ΣwC, so the WSPT value with job lengths Σᵢ pᵢ^min / M bounds
///    the optimum from below (releases relaxed to the common minimum).
pub fn certified_lower_bound(inst: &Instance) -> f64 {
    // (1) critical path.
    let mut path_bound = 0.0;
    for (j_idx, job) in inst.jobs.iter().enumerate() {
        let mut c = job.release;
        for r in 0..job.rounds {
            let round_min = inst
                .round_tasks(j_idx, r)
                .into_iter()
                .map(|i| inst.ps_min(i))
                .fold(0.0, f64::max);
            c += round_min;
        }
        path_bound += job.weight * c;
    }

    // (2) fast single machine + WSPT.
    let m = inst.n_machines as f64;
    let min_release = inst.jobs.iter().map(|j| j.release).fold(f64::MAX, f64::min);
    let mut lens: Vec<(f64, f64)> = inst
        .jobs
        .iter()
        .enumerate()
        .map(|(j_idx, job)| {
            let work: f64 = inst
                .tasks
                .iter()
                .enumerate()
                .filter(|(_, t)| t.job == j_idx)
                .map(|(i, _)| inst.p_min(i))
                .sum();
            (work / m, job.weight)
        })
        .collect();
    // WSPT: descending weight/length.
    lens.sort_by(|a, b| (b.1 / b.0.max(1e-12)).total_cmp(&(a.1 / a.0.max(1e-12))));
    let mut clock = min_release.max(0.0);
    let mut wspt = 0.0;
    for (len, w) in lens {
        clock += len;
        wspt += w * clock;
    }

    path_bound.max(wspt)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::instance::{fig1_instance, InstanceBuilder};

    #[test]
    fn both_modes_satisfy_release_and_precedence() {
        let inst = fig1_instance();
        for opts in [
            RelaxOptions::default(), // LP mode (small instance)
            RelaxOptions {
                lp_task_limit: 0, // force combinatorial
                ..RelaxOptions::default()
            },
        ] {
            let sol = solve(&inst, &opts);
            for (i, task) in inst.tasks.iter().enumerate() {
                assert!(
                    sol.x_hat[i] >= inst.jobs[task.job].release - 1e-9,
                    "release violated"
                );
            }
            for (j_idx, job) in inst.jobs.iter().enumerate() {
                for r in 1..job.rounds {
                    let prev_done = inst
                        .round_tasks(j_idx, r - 1)
                        .into_iter()
                        .map(|i| sol.x_hat[i] + inst.ps_min(i))
                        .fold(0.0, f64::max);
                    for j in inst.round_tasks(j_idx, r) {
                        assert!(
                            sol.x_hat[j] >= prev_done - 1e-6,
                            "precedence violated in {:?}",
                            sol.mode
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lp_mode_adds_cuts_on_contended_instances() {
        // Many unit tasks on one machine: without cuts every x̂ = 0; the
        // volume cuts must push starts apart.
        let mut b = InstanceBuilder::new(1);
        for _ in 0..8 {
            let j = b.job(1.0, 0.0);
            b.round(j, &[vec![1.0]]);
        }
        let inst = b.build();
        let sol = solve(&inst, &RelaxOptions::default());
        match sol.mode {
            RelaxMode::Lp { cuts } => assert!(cuts >= 1, "expected cuts"),
            m => panic!("expected LP mode, got {m:?}"),
        }
        // Midpoints must spread: not all equal.
        let (lo, hi) = min_max(&sol.h).expect("non-empty midpoints");
        let spread = hi - lo;
        assert!(spread > 0.5, "midpoints should spread, got {spread}");
    }

    #[test]
    fn lower_bound_below_any_feasible_schedule_value() {
        // Hand-verifiable: 2 unit-weight jobs, single machine, 1 task each
        // of length 2 and 4. OPT = 2 + 6 = 8 (short first).
        let mut b = InstanceBuilder::new(1);
        let a = b.job(1.0, 0.0);
        let c = b.job(1.0, 0.0);
        b.round(a, &[vec![2.0]]);
        b.round(c, &[vec![4.0]]);
        let inst = b.build();
        let lb = certified_lower_bound(&inst);
        assert!(lb <= 8.0 + 1e-9, "lb {lb} exceeds OPT 8");
        // And it is not trivially zero: the WSPT part gives exactly 8 here.
        assert!((lb - 8.0).abs() < 1e-9, "lb {lb}");
    }

    #[test]
    fn lower_bound_accounts_for_rounds() {
        // One job, 3 rounds of a 1-task round, each 2s on the only machine:
        // C >= 6.
        let mut b = InstanceBuilder::new(1);
        let j = b.job(2.0, 1.0);
        for _ in 0..3 {
            b.round(j, &[vec![2.0]]);
        }
        let inst = b.build();
        let lb = certified_lower_bound(&inst);
        // Path bound: 2 * (1 + 6) = 14.
        assert!((lb - 14.0).abs() < 1e-9, "lb {lb}");
    }

    #[test]
    fn combinatorial_mode_spreads_contended_tasks() {
        let mut b = InstanceBuilder::new(2);
        for _ in 0..40 {
            let j = b.job(1.0, 0.0);
            b.round(j, &[vec![1.0, 1.0]]);
        }
        let inst = b.build();
        let sol = solve(
            &inst,
            &RelaxOptions {
                lp_task_limit: 0,
                ..RelaxOptions::default()
            },
        );
        assert_eq!(sol.mode, RelaxMode::Combinatorial);
        let (_, max_h) = min_max(&sol.h).expect("non-empty midpoints");
        // 40 unit tasks on 2 machines: someone's midpoint must be ≥ ~10
        // (aggregate volume 40 / (2*2)).
        assert!(max_h >= 40.0 / 4.0 - 1e-9, "max midpoint {max_h}");
    }

    #[test]
    fn min_max_is_nan_defensive() {
        assert_eq!(min_max(&[]), None);
        assert_eq!(min_max(&[f64::NAN, f64::NAN]), None);
        assert_eq!(min_max(&[3.0]), Some((3.0, 3.0)));
        assert_eq!(min_max(&[2.0, f64::NAN, -1.0, 5.0]), Some((-1.0, 5.0)));
        assert_eq!(
            min_max(&[f64::NEG_INFINITY, 0.0, f64::INFINITY]),
            Some((f64::NEG_INFINITY, f64::INFINITY))
        );
    }

    #[test]
    fn warm_and_cold_cut_loops_agree_and_warm_pivots_less() {
        let mut b = InstanceBuilder::new(2);
        for k in 0..10 {
            let j = b.job(1.0 + (k % 3) as f64, 0.2 * k as f64);
            b.round(j, &[vec![1.0 + 0.3 * (k % 4) as f64, 2.0]]);
        }
        let inst = b.build();
        let warm = solve(&inst, &RelaxOptions::default());
        let cold = solve(
            &inst,
            &RelaxOptions {
                warm_start: false,
                ..RelaxOptions::default()
            },
        );
        assert_eq!(warm.mode, cold.mode, "same cuts should be separated");
        for (a, b_) in warm.x_hat.iter().zip(&cold.x_hat) {
            assert!((a - b_).abs() < 1e-6, "x̂ diverged: {a} vs {b_}");
        }
        if warm.stats.cuts > 0 {
            assert!(
                warm.stats.revised_pivots < cold.stats.revised_pivots,
                "warm {} pivots vs cold {}",
                warm.stats.revised_pivots,
                cold.stats.revised_pivots
            );
        }
    }

    #[test]
    fn unlimited_budget_reproduces_plain_solve_bit_for_bit() {
        let inst = fig1_instance();
        for opts in [
            RelaxOptions::default(),
            RelaxOptions {
                lp_task_limit: 0,
                ..RelaxOptions::default()
            },
        ] {
            let plain = solve(&inst, &opts);
            let budgeted =
                solve_budgeted(&inst, &opts, &SolveBudget::UNLIMITED, &CancelToken::new())
                    .expect("unlimited budget cannot abort");
            assert_eq!(plain, budgeted);
        }
    }

    #[test]
    fn exhausted_budget_aborts_without_fallback() {
        let inst = fig1_instance();
        let opts = RelaxOptions::default();
        // One pivot is never enough for the relaxation LP.
        assert_eq!(
            solve_budgeted(
                &inst,
                &opts,
                &SolveBudget::capped(1, 0),
                &CancelToken::new()
            ),
            None
        );
        // A cancelled token aborts before any work.
        let cancelled = CancelToken::new();
        cancelled.cancel();
        assert_eq!(
            solve_budgeted(
                &inst,
                &opts,
                &SolveBudget::capped(u64::MAX - 1, 0),
                &cancelled
            ),
            None
        );
    }

    #[test]
    fn generous_finite_budget_matches_unbudgeted_lp_mode() {
        let inst = fig1_instance();
        let opts = RelaxOptions::default();
        let plain = solve(&inst, &opts);
        assert_eq!(plain.stats.dense_fallbacks, 0, "healthy instance");
        let budgeted = solve_budgeted(
            &inst,
            &opts,
            &SolveBudget::capped(1_000_000, 0),
            &CancelToken::new(),
        )
        .expect("budget is plenty");
        // Same pivoting sequence — only the cap differs — so the solution
        // and work counters agree exactly.
        assert_eq!(plain, budgeted);
    }

    #[test]
    fn combinatorial_budget_is_charged_deterministically() {
        let inst = fig1_instance();
        let opts = RelaxOptions {
            lp_task_limit: 0, // force combinatorial
            ..RelaxOptions::default()
        };
        let work = combinatorial_work(&inst, &opts);
        assert_eq!(
            work,
            inst.n_tasks() as u64 * (opts.passes as u64 + 1),
            "cost model"
        );
        let token = CancelToken::new();
        assert_eq!(
            solve_budgeted(&inst, &opts, &SolveBudget::capped(work - 1, 0), &token),
            None,
            "under the charge: abort"
        );
        let sol = solve_budgeted(&inst, &opts, &SolveBudget::capped(work, 0), &token)
            .expect("exactly the charge: runs");
        assert_eq!(sol.mode, RelaxMode::Combinatorial);
        assert_eq!(sol, solve(&inst, &opts));
    }

    #[test]
    fn midpoints_use_worst_machine() {
        let inst = fig1_instance();
        let x = vec![0.0; inst.n_tasks()];
        let h = midpoints(&inst, &x);
        // First task of J1 has p = [1, 1.5, 2] -> H = 1.0.
        let t = inst.round_tasks(0, 0)[0];
        assert!((h[t] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn heavier_jobs_do_not_change_validity() {
        let mut b = InstanceBuilder::new(2);
        let j1 = b.job(5.0, 0.0);
        let j2 = b.job(1.0, 3.0);
        b.round(j1, &[vec![2.0, 3.0], vec![2.0, 3.0]]);
        b.round(j1, &[vec![2.0, 3.0]]);
        b.round(j2, &[vec![1.0, 4.0]]);
        let inst = b.build();
        let sol = solve(&inst, &RelaxOptions::default());
        assert!(sol.lower_bound > 0.0);
        assert_eq!(sol.x_hat.len(), inst.n_tasks());
        assert_eq!(sol.h.len(), inst.n_tasks());
    }
}
