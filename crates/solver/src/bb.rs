//! Exact branch-and-bound for tiny `Hare_Sched` instances.
//!
//! `Hare_Sched` is NP-hard (Theorem 1), but instances with a handful of
//! tasks can be solved exactly by depth-first search over *active*
//! schedules: repeatedly pick any task whose predecessor round is fully
//! scheduled, try every machine, and start it at
//! `max(machine available, task ready)`. Every optimal schedule is
//! reachable this way (left-shifting within machines normalizes any
//! schedule to an active one).
//!
//! The tests and benches use this as ground truth: Algorithm 1's value is
//! compared against the exact optimum to certify the α(2+α) approximation
//! bound of Theorem 4, and the relaxation's `lower_bound` is checked to sit
//! below the optimum.

use crate::instance::Instance;
use serde::{Deserialize, Serialize};

/// An exact optimal schedule.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExactSolution {
    /// Start time per task.
    pub start: Vec<f64>,
    /// Machine per task.
    pub machine: Vec<usize>,
    /// Optimal Σ wₙCₙ.
    pub objective: f64,
    /// Search nodes explored.
    pub nodes: u64,
}

/// Solve exactly. Exponential — intended for ≤ ~9 tasks and ≤ 3 machines;
/// panics above a hard safety limit of 12 tasks.
pub fn solve_exact(inst: &Instance) -> ExactSolution {
    inst.validate().expect("invalid instance");
    assert!(
        inst.n_tasks() <= 12,
        "branch-and-bound limited to 12 tasks; got {}",
        inst.n_tasks()
    );

    let t = inst.n_tasks();
    let mut state = Search {
        inst,
        start: vec![f64::NAN; t],
        machine: vec![usize::MAX; t],
        scheduled: vec![false; t],
        machine_avail: vec![0.0; inst.n_machines],
        job_completion: inst.jobs.iter().map(|j| j.release).collect(),
        best: f64::INFINITY,
        best_start: vec![f64::NAN; t],
        best_machine: vec![usize::MAX; t],
        nodes: 0,
    };
    state.dfs(0);
    assert!(
        state.best.is_finite(),
        "search must find at least one schedule"
    );
    ExactSolution {
        start: state.best_start,
        machine: state.best_machine,
        objective: state.best,
        nodes: state.nodes,
    }
}

struct Search<'a> {
    inst: &'a Instance,
    start: Vec<f64>,
    machine: Vec<usize>,
    scheduled: Vec<bool>,
    machine_avail: Vec<f64>,
    /// Completion frontier per job: release, then max (x+p+s) over the
    /// last fully scheduled round.
    job_completion: Vec<f64>,
    best: f64,
    best_start: Vec<f64>,
    best_machine: Vec<usize>,
    nodes: u64,
}

impl Search<'_> {
    fn dfs(&mut self, scheduled_count: usize) {
        self.nodes += 1;
        if scheduled_count == self.inst.n_tasks() {
            let obj = self.objective();
            if obj < self.best {
                self.best = obj;
                self.best_start.copy_from_slice(&self.start);
                self.best_machine.copy_from_slice(&self.machine);
            }
            return;
        }
        if self.lower_bound() >= self.best - 1e-12 {
            return; // prune
        }

        for i in 0..self.inst.n_tasks() {
            if self.scheduled[i] {
                continue;
            }
            let Some(ready) = self.ready_time(i) else {
                continue;
            };
            for m in 0..self.inst.n_machines {
                let start = self.machine_avail[m].max(ready);
                let p = self.inst.tasks[i].p[m];
                let s = self.inst.tasks[i].s[m];

                // Apply.
                let saved_avail = self.machine_avail[m];
                self.start[i] = start;
                self.machine[i] = m;
                self.scheduled[i] = true;
                // Training occupies the machine; sync overlaps the next
                // task (Algorithm 1 line 16 and the problem's semantics).
                self.machine_avail[m] = start + p;
                let job = self.inst.tasks[i].job;
                let saved_completion = self.job_completion[job];
                self.job_completion[job] = self.job_completion[job].max(start + p + s);

                self.dfs(scheduled_count + 1);

                // Undo.
                self.machine_avail[m] = saved_avail;
                self.job_completion[job] = saved_completion;
                self.scheduled[i] = false;
                self.start[i] = f64::NAN;
                self.machine[i] = usize::MAX;
            }
        }
    }

    /// Ready time of task `i`: release for round 0, else the max completion
    /// (x+p+s) of the previous round — `None` while that round is not fully
    /// scheduled.
    fn ready_time(&self, i: usize) -> Option<f64> {
        let task = &self.inst.tasks[i];
        let release = self.inst.jobs[task.job].release;
        if task.round == 0 {
            return Some(release);
        }
        let mut ready = release;
        for (k, other) in self.inst.tasks.iter().enumerate() {
            if other.job == task.job && other.round == task.round - 1 {
                if !self.scheduled[k] {
                    return None;
                }
                let m = self.machine[k];
                ready = ready.max(self.start[k] + other.p[m] + other.s[m]);
            }
        }
        Some(ready)
    }

    fn objective(&self) -> f64 {
        let mut obj = 0.0;
        for (j, job) in self.inst.jobs.iter().enumerate() {
            let mut c = job.release;
            for (k, task) in self.inst.tasks.iter().enumerate() {
                if task.job == j {
                    let m = self.machine[k];
                    c = c.max(self.start[k] + task.p[m] + task.s[m]);
                }
            }
            obj += job.weight * c;
        }
        obj
    }

    /// Admissible bound on the completed objective: for each job, its
    /// current frontier plus the machine-minimum critical path of its
    /// remaining rounds.
    fn lower_bound(&self) -> f64 {
        let mut bound = 0.0;
        for (j, job) in self.inst.jobs.iter().enumerate() {
            let mut c = self.job_completion[j];
            for r in 0..job.rounds {
                let mut round_remaining = 0.0f64;
                for (k, task) in self.inst.tasks.iter().enumerate() {
                    if task.job == j && task.round == r && !self.scheduled[k] {
                        round_remaining = round_remaining.max(self.inst.ps_min(k));
                    }
                }
                c += round_remaining;
            }
            bound += job.weight * c;
        }
        bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{fig1_instance, InstanceBuilder};

    #[test]
    fn single_task_single_machine() {
        let mut b = InstanceBuilder::new(1);
        let j = b.job(2.0, 1.0);
        b.round(j, &[vec![3.0]]);
        let sol = solve_exact(&b.build());
        assert!((sol.objective - 2.0 * 4.0).abs() < 1e-9);
        assert_eq!(sol.machine, vec![0]);
        assert!((sol.start[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wspt_order_on_one_machine() {
        // Two jobs, lengths 2 and 4, weights 1: short first, OPT = 8.
        let mut b = InstanceBuilder::new(1);
        let a = b.job(1.0, 0.0);
        let c = b.job(1.0, 0.0);
        b.round(a, &[vec![4.0]]);
        b.round(c, &[vec![2.0]]);
        let sol = solve_exact(&b.build());
        assert!((sol.objective - 8.0).abs() < 1e-9);
        // The 2-long task (task index 1) goes first.
        assert!(sol.start[1] < sol.start[0]);
    }

    #[test]
    fn heterogeneous_machines_are_chosen_well() {
        // One task much faster on machine 1.
        let mut b = InstanceBuilder::new(2);
        let j = b.job(1.0, 0.0);
        b.round(j, &[vec![10.0, 1.0]]);
        let sol = solve_exact(&b.build());
        assert_eq!(sol.machine, vec![1]);
        assert!((sol.objective - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rounds_serialize_within_a_job() {
        // 2 rounds of 1 task on 2 machines; second round must wait for
        // first incl. sync.
        let mut b = InstanceBuilder::new(2);
        let j = b.job(1.0, 0.0);
        b.round_with_sync(j, &[vec![2.0, 2.0]], &[vec![1.0, 1.0]]);
        b.round_with_sync(j, &[vec![2.0, 2.0]], &[vec![1.0, 1.0]]);
        let sol = solve_exact(&b.build());
        // C = 2+1 (round 0) + 2+1 (round 1) = 6.
        assert!((sol.objective - 6.0).abs() < 1e-9);
        let second = 1; // task order: round 0 task, then round 1 task
        assert!((sol.start[second] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn fig1_optimum_is_8_5() {
        // The paper's Fig. 1(c): jointly considering GPU heterogeneity and
        // intra-job parallelism gives total JCT 8.5 s — and the paper
        // presents it as the best schedule for the toy example.
        let sol = solve_exact(&fig1_instance());
        assert!(
            (sol.objective - 8.5).abs() < 1e-9,
            "Fig. 1 optimum should be 8.5, got {}",
            sol.objective
        );
    }

    #[test]
    fn parallel_tasks_can_share_a_machine() {
        // Relaxed scale-fixed semantics: a round's 2 tasks may run
        // sequentially on the single fast machine instead of using the
        // very slow second machine.
        let mut b = InstanceBuilder::new(2);
        let j = b.job(1.0, 0.0);
        b.round(j, &[vec![1.0, 100.0], vec![1.0, 100.0]]);
        let sol = solve_exact(&b.build());
        assert!((sol.objective - 2.0).abs() < 1e-9, "got {}", sol.objective);
        assert_eq!(sol.machine, vec![0, 0]);
    }

    #[test]
    fn release_times_are_respected() {
        let mut b = InstanceBuilder::new(1);
        let j = b.job(1.0, 5.0);
        b.round(j, &[vec![1.0]]);
        let sol = solve_exact(&b.build());
        assert!((sol.start[0] - 5.0).abs() < 1e-12);
        assert!((sol.objective - 6.0).abs() < 1e-9);
    }

    #[test]
    fn pruning_does_not_lose_the_optimum() {
        // Cross-check: a 6-task instance solved with and without pruning
        // (pruning disabled by inflating best to infinity is not possible
        // directly, so compare against a brute-force via a permissive bound:
        // we simply verify monotonicity — fewer nodes than the unpruned
        // worst case and a value matching the known optimum).
        let mut b = InstanceBuilder::new(2);
        let j1 = b.job(3.0, 0.0);
        let j2 = b.job(1.0, 0.0);
        b.round(j1, &[vec![2.0, 3.0], vec![2.0, 3.0]]);
        b.round(j2, &[vec![1.0, 1.5]]);
        b.round(j2, &[vec![1.0, 1.5]]);
        let sol = solve_exact(&b.build());
        // j1's two tasks in parallel on both machines completes at 3
        // (machine 1) — or both on machine 0 at 4. Best total weighted:
        // run j2 round 0 on m1 (1.5) in parallel with j1...
        // We fix ground truth by hand-enumeration: the optimum is 3*3 + 1*4 = 13:
        // m0: j1.t0 [0,2), j2.r0 [2,3), j2.r1 [3,4); m1: j1.t1 [0,3).
        assert!((sol.objective - 13.0).abs() < 1e-9, "got {}", sol.objective);
    }

    #[test]
    #[should_panic(expected = "limited to 12 tasks")]
    fn size_guard() {
        let mut b = InstanceBuilder::new(1);
        let j = b.job(1.0, 0.0);
        for _ in 0..13 {
            b.round(j, &[vec![1.0]]);
        }
        solve_exact(&b.build());
    }
}
