//! Exact branch-and-bound for small `Hare_Sched` instances.
//!
//! `Hare_Sched` is NP-hard (Theorem 1), but instances with a handful of
//! tasks can be solved exactly by depth-first search over *active*
//! schedules: repeatedly pick any task whose predecessor round is fully
//! scheduled, try every machine, and start it at
//! `max(machine available, task ready)`. Every optimal schedule is
//! reachable this way (left-shifting within machines normalizes any
//! schedule to an active one).
//!
//! The search is parallel: root-level branches — each (ready task,
//! machine) pair surviving symmetry breaking — are split across scoped
//! threads. Every thread runs an independent DFS over its branches and
//! publishes incumbents to a shared atomic bound (non-negative `f64`
//! objectives compare correctly as `u64` bit patterns, so the bound is a
//! lock-free `fetch_min`). Two symmetry rules shrink the tree:
//!
//! * **identical machines** — machines whose processing/sync columns agree
//!   on every task are interchangeable whenever their availability is also
//!   equal, so only the lowest-indexed representative is branched;
//! * **identical tasks** — tasks of the same job and round with identical
//!   `p`/`s` vectors are interchangeable, so they are forced into index
//!   order.
//!
//! The result is deterministic regardless of thread count: the shared
//! bound only prunes subtrees *strictly* worse than an incumbent (with
//! `1e-12` slack), so every root branch still reports its exact local
//! optimum whenever that optimum ties the global one, and ties are broken
//! by the smallest root-branch index. Only the `nodes` counter varies
//! run-to-run (it depends on how fast the bound propagates).
//!
//! The tests and benches use this as ground truth: Algorithm 1's value is
//! compared against the exact optimum to certify the α(2+α) approximation
//! bound of Theorem 4, and the relaxation's `lower_bound` is checked to sit
//! below the optimum.

use crate::budget::{CancelToken, SolveBudget};
use crate::instance::Instance;
use crate::trace::SolveTrace;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

/// Hard safety limit on instance size for the exact search.
pub const MAX_TASKS: usize = 16;

/// An exact optimal schedule.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExactSolution {
    /// Start time per task.
    pub start: Vec<f64>,
    /// Machine per task.
    pub machine: Vec<usize>,
    /// Optimal Σ wₙCₙ.
    pub objective: f64,
    /// Search nodes explored, summed over all threads. The objective and
    /// schedule are deterministic; this counter alone may vary run-to-run
    /// (bound-propagation timing).
    pub nodes: u64,
}

/// Solve exactly. Exponential — intended for ≤ ~14 tasks and ≤ 4 machines;
/// panics above a hard safety limit of [`MAX_TASKS`] tasks.
pub fn solve_exact(inst: &Instance) -> ExactSolution {
    solve_exact_traced(inst, None)
}

/// [`solve_exact`] recording one `"bb_root"` span per root branch into
/// `trace` (work = nodes explored, detail = branch index). Spans are
/// recorded after the parallel join, in branch-index order, so the span
/// *sequence* is deterministic; per-branch node counts may still vary
/// run-to-run with bound-propagation timing (as documented on
/// [`ExactSolution::nodes`]). The budgeted search is fully deterministic.
pub fn solve_exact_traced(inst: &Instance, trace: Option<&SolveTrace>) -> ExactSolution {
    inst.validate().expect("invalid instance");
    assert!(
        inst.n_tasks() <= MAX_TASKS,
        "branch-and-bound limited to {MAX_TASKS} tasks; got {}",
        inst.n_tasks()
    );

    let sym = Symmetry::analyze(inst);
    let global = AtomicU64::new(f64::INFINITY.to_bits());
    let root = Search::fresh(inst, &sym, &global);
    let branches = root.root_branches();
    assert!(!branches.is_empty(), "instance has no schedulable task");

    let n_threads = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(branches.len());

    // Each root branch is searched independently (fresh local incumbent;
    // cross-branch pruning flows through the shared atomic bound), so the
    // per-branch results do not depend on which thread ran them. Branches
    // are striped round-robin so long and short root subtrees mix.
    let mut per_branch: Vec<(usize, BranchResult)> = thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n_threads);
        for tid in 0..n_threads {
            let sym = &sym;
            let global = &global;
            let branches = &branches;
            handles.push(scope.spawn(move || {
                let mut out = Vec::new();
                for bi in (tid..branches.len()).step_by(n_threads) {
                    let (task, machine) = branches[bi];
                    let mut s = Search::fresh(inst, sym, global);
                    s.apply_and_dfs(task, machine);
                    out.push((
                        bi,
                        BranchResult {
                            objective: s.best,
                            start: s.best_start,
                            machine: s.best_machine,
                            nodes: s.nodes,
                        },
                    ));
                }
                out
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("search thread panicked"))
            .collect()
    });
    per_branch.sort_by_key(|&(bi, _)| bi);

    if let Some(tr) = trace {
        for (bi, r) in &per_branch {
            tr.record("bb_root", r.nodes, *bi as u64);
        }
    }

    // Deterministic reduction: minimum objective, ties to the smallest
    // root-branch index (the sort above fixes the visit order).
    let mut nodes = 1; // the root itself
    let mut winner: Option<&BranchResult> = None;
    for (_, r) in &per_branch {
        nodes += r.nodes;
        if winner.is_none_or(|w| r.objective < w.objective) {
            winner = Some(r);
        }
    }
    let winner = winner.expect("at least one branch");
    assert!(
        winner.objective.is_finite(),
        "search must find at least one schedule"
    );
    ExactSolution {
        start: winner.start.clone(),
        machine: winner.machine.clone(),
        objective: winner.objective,
        nodes,
    }
}

/// [`solve_exact`] under a [`SolveBudget`] and [`CancelToken`]: aborts
/// with `None` once `budget.node_cap` search nodes have been explored, or
/// at the first (periodic) check finding the deadline passed or the token
/// cancelled.
///
/// Unlike [`solve_exact`] the budgeted search is **sequential**: under a
/// finite budget the abort point must be deterministic, and a parallel
/// search's node totals depend on bound-propagation timing across threads.
/// An unlimited budget delegates to the parallel [`solve_exact`] verbatim.
pub fn solve_exact_budgeted(
    inst: &Instance,
    budget: &SolveBudget,
    cancel: &CancelToken,
) -> Option<ExactSolution> {
    solve_exact_budgeted_traced(inst, budget, cancel, None)
}

/// [`solve_exact_budgeted`] recording one `"bb_root"` span per explored
/// root branch into `trace` (work = nodes, detail = branch order). An
/// aborted search keeps the spans of the branches that did complete.
pub fn solve_exact_budgeted_traced(
    inst: &Instance,
    budget: &SolveBudget,
    cancel: &CancelToken,
    trace: Option<&SolveTrace>,
) -> Option<ExactSolution> {
    if cancel.is_cancelled() || budget.deadline_passed() {
        return None;
    }
    if budget.is_unlimited() {
        return Some(solve_exact_traced(inst, trace));
    }
    inst.validate().expect("invalid instance");
    assert!(
        inst.n_tasks() <= MAX_TASKS,
        "branch-and-bound limited to {MAX_TASKS} tasks; got {}",
        inst.n_tasks()
    );

    let sym = Symmetry::analyze(inst);
    let global = AtomicU64::new(f64::INFINITY.to_bits());
    let branches = Search::fresh(inst, &sym, &global).root_branches();
    assert!(!branches.is_empty(), "instance has no schedulable task");

    let mut nodes = 1u64; // the root itself
    let mut best: Option<(f64, Vec<f64>, Vec<usize>)> = None;
    for (bi, (task, machine)) in branches.into_iter().enumerate() {
        let mut s = Search::fresh(inst, &sym, &global);
        s.node_cap = budget.node_cap.saturating_sub(nodes);
        s.budget = Some(budget);
        s.cancel = Some(cancel);
        s.apply_and_dfs(task, machine);
        nodes = nodes.saturating_add(s.nodes);
        if s.aborted {
            return None;
        }
        if let Some(tr) = trace {
            tr.record("bb_root", s.nodes, bi as u64);
        }
        // Ties keep the earlier branch, matching solve_exact's reduction.
        if s.best.is_finite() && best.as_ref().is_none_or(|&(b, _, _)| s.best < b) {
            best = Some((s.best, s.best_start, s.best_machine));
        }
    }
    let (objective, start, machine) = best.expect("search must find at least one schedule");
    Some(ExactSolution {
        start,
        machine,
        objective,
        nodes,
    })
}

struct BranchResult {
    objective: f64,
    start: Vec<f64>,
    machine: Vec<usize>,
    nodes: u64,
}

/// Precomputed symmetry structure of an instance.
struct Symmetry {
    /// For each machine, the smallest machine index with identical `p`/`s`
    /// columns across every task (its symmetry-class representative).
    machine_class: Vec<usize>,
    /// For each task, the lower-indexed tasks of the same job and round
    /// with identical `p`/`s` vectors (its interchangeable twins).
    ident_pred: Vec<Vec<usize>>,
}

impl Symmetry {
    fn analyze(inst: &Instance) -> Symmetry {
        let m = inst.n_machines;
        let machine_class = (0..m)
            .map(|a| {
                (0..a)
                    .find(|&b| {
                        inst.tasks
                            .iter()
                            .all(|t| t.p[a] == t.p[b] && t.s[a] == t.s[b])
                    })
                    .unwrap_or(a)
            })
            .collect();
        let ident_pred = inst
            .tasks
            .iter()
            .enumerate()
            .map(|(i, ti)| {
                (0..i)
                    .filter(|&k| {
                        let tk = &inst.tasks[k];
                        tk.job == ti.job && tk.round == ti.round && tk.p == ti.p && tk.s == ti.s
                    })
                    .collect()
            })
            .collect();
        Symmetry {
            machine_class,
            ident_pred,
        }
    }
}

struct Search<'a> {
    inst: &'a Instance,
    sym: &'a Symmetry,
    /// Shared incumbent bound (f64 bits); non-negative objectives order
    /// correctly under integer comparison, so `fetch_min` maintains it.
    global: &'a AtomicU64,
    start: Vec<f64>,
    machine: Vec<usize>,
    scheduled: Vec<bool>,
    machine_avail: Vec<f64>,
    /// Completion frontier per job: release, then max (x+p+s) over the
    /// last fully scheduled round.
    job_completion: Vec<f64>,
    best: f64,
    best_start: Vec<f64>,
    best_machine: Vec<usize>,
    nodes: u64,
    /// Node budget for this search (remaining from the caller's
    /// [`SolveBudget::node_cap`]); `u64::MAX` in the unbudgeted search.
    node_cap: u64,
    /// Wall-clock/cancel sources, polled periodically ([`solve_exact_budgeted`]).
    budget: Option<&'a SolveBudget>,
    cancel: Option<&'a CancelToken>,
    /// Set when the budget tripped; the search result is then meaningless.
    aborted: bool,
}

impl<'a> Search<'a> {
    fn fresh(inst: &'a Instance, sym: &'a Symmetry, global: &'a AtomicU64) -> Search<'a> {
        let t = inst.n_tasks();
        Search {
            inst,
            sym,
            global,
            start: vec![f64::NAN; t],
            machine: vec![usize::MAX; t],
            scheduled: vec![false; t],
            machine_avail: vec![0.0; inst.n_machines],
            job_completion: inst.jobs.iter().map(|j| j.release).collect(),
            best: f64::INFINITY,
            best_start: vec![f64::NAN; t],
            best_machine: vec![usize::MAX; t],
            nodes: 0,
            node_cap: u64::MAX,
            budget: None,
            cancel: None,
            aborted: false,
        }
    }

    /// Cooperative budget check at one search node. The node cap is exact;
    /// cancellation and the wall-clock deadline are polled every 512 nodes
    /// to keep the per-node cost a counter comparison.
    fn over_budget(&self) -> bool {
        if self.nodes > self.node_cap {
            return true;
        }
        if self.nodes.is_multiple_of(512) {
            if self.cancel.is_some_and(|c| c.is_cancelled()) {
                return true;
            }
            if self.budget.is_some_and(|b| b.deadline_passed()) {
                return true;
            }
        }
        false
    }

    /// Enumerate the root's (task, machine) branches after symmetry
    /// breaking — the unit of work the parallel driver distributes.
    fn root_branches(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.inst.n_tasks() {
            if self.skip_task(i) || self.ready_time(i).is_none() {
                continue;
            }
            for m in 0..self.inst.n_machines {
                if !self.skip_machine(m) {
                    out.push((i, m));
                }
            }
        }
        out
    }

    /// Schedule the root branch, then search its subtree to completion.
    fn apply_and_dfs(&mut self, task: usize, machine: usize) {
        let ready = self.ready_time(task).expect("root branch task is ready");
        self.place(task, machine, ready);
        self.dfs(1);
    }

    /// Identical-task symmetry: skip `i` while an interchangeable twin with
    /// a smaller index is still unscheduled (twins go in index order).
    fn skip_task(&self, i: usize) -> bool {
        self.sym.ident_pred[i].iter().any(|&k| !self.scheduled[k])
    }

    /// Identical-machine symmetry: skip `m` when a lower-indexed machine of
    /// the same class is equally available — placing the task there instead
    /// yields a schedule of identical value.
    fn skip_machine(&self, m: usize) -> bool {
        (0..m).any(|b| {
            self.sym.machine_class[b] == self.sym.machine_class[m]
                && self.machine_avail[b] == self.machine_avail[m]
        })
    }

    fn place(&mut self, i: usize, m: usize, ready: f64) -> (f64, f64) {
        let start = self.machine_avail[m].max(ready);
        let p = self.inst.tasks[i].p[m];
        let s = self.inst.tasks[i].s[m];
        let saved_avail = self.machine_avail[m];
        self.start[i] = start;
        self.machine[i] = m;
        self.scheduled[i] = true;
        // Training occupies the machine; sync overlaps the next task
        // (Algorithm 1 line 16 and the problem's semantics).
        self.machine_avail[m] = start + p;
        let job = self.inst.tasks[i].job;
        let saved_completion = self.job_completion[job];
        self.job_completion[job] = self.job_completion[job].max(start + p + s);
        (saved_avail, saved_completion)
    }

    fn unplace(&mut self, i: usize, m: usize, saved: (f64, f64)) {
        self.machine_avail[m] = saved.0;
        self.job_completion[self.inst.tasks[i].job] = saved.1;
        self.scheduled[i] = false;
        self.start[i] = f64::NAN;
        self.machine[i] = usize::MAX;
    }

    fn dfs(&mut self, scheduled_count: usize) {
        self.nodes += 1;
        if self.over_budget() {
            self.aborted = true;
            return;
        }
        if scheduled_count == self.inst.n_tasks() {
            let obj = self.objective();
            if obj < self.best {
                self.best = obj;
                self.best_start.copy_from_slice(&self.start);
                self.best_machine.copy_from_slice(&self.machine);
                debug_assert!(obj >= 0.0, "objectives must be non-negative");
                self.global.fetch_min(obj.to_bits(), Ordering::Relaxed);
            }
            return;
        }
        let lb = self.lower_bound();
        if lb >= self.best - 1e-12 {
            return; // prune against the thread-local incumbent
        }
        // Prune against the shared bound only when *strictly* worse: a tie
        // must still be found locally so the deterministic reduction sees
        // every branch that attains the optimum.
        let global = f64::from_bits(self.global.load(Ordering::Relaxed));
        if lb >= global + 1e-12 {
            return;
        }

        for i in 0..self.inst.n_tasks() {
            if self.scheduled[i] || self.skip_task(i) {
                continue;
            }
            let Some(ready) = self.ready_time(i) else {
                continue;
            };
            for m in 0..self.inst.n_machines {
                if self.skip_machine(m) {
                    continue;
                }
                let saved = self.place(i, m, ready);
                self.dfs(scheduled_count + 1);
                self.unplace(i, m, saved);
                if self.aborted {
                    return;
                }
            }
        }
    }

    /// Ready time of task `i`: release for round 0, else the max completion
    /// (x+p+s) of the previous round — `None` while that round is not fully
    /// scheduled.
    fn ready_time(&self, i: usize) -> Option<f64> {
        let task = &self.inst.tasks[i];
        let release = self.inst.jobs[task.job].release;
        if task.round == 0 {
            return Some(release);
        }
        let mut ready = release;
        for (k, other) in self.inst.tasks.iter().enumerate() {
            if other.job == task.job && other.round == task.round - 1 {
                if !self.scheduled[k] {
                    return None;
                }
                let m = self.machine[k];
                ready = ready.max(self.start[k] + other.p[m] + other.s[m]);
            }
        }
        Some(ready)
    }

    fn objective(&self) -> f64 {
        let mut obj = 0.0;
        for (j, job) in self.inst.jobs.iter().enumerate() {
            let mut c = job.release;
            for (k, task) in self.inst.tasks.iter().enumerate() {
                if task.job == j {
                    let m = self.machine[k];
                    c = c.max(self.start[k] + task.p[m] + task.s[m]);
                }
            }
            obj += job.weight * c;
        }
        obj
    }

    /// Admissible bound on the completed objective via a per-round
    /// recurrence: round `r` completes no earlier than
    /// `max(done_r, c_{r-1} + rem_r)`, where `done_r` is the exact
    /// completion of its already-scheduled tasks, `rem_r` the largest
    /// machine-minimum duration among its unscheduled ones, and `c_{r-1}`
    /// the bound on the previous round. The `max` matters: remaining tasks
    /// of a *partially* scheduled round run in parallel with its scheduled
    /// part, never after it — adding `rem_r` onto the job frontier instead
    /// (as a naive critical path would) over-estimates and prunes optima.
    fn lower_bound(&self) -> f64 {
        let mut bound = 0.0;
        for (j, job) in self.inst.jobs.iter().enumerate() {
            let mut c = job.release;
            for r in 0..job.rounds {
                let mut done = f64::NEG_INFINITY;
                let mut rem = 0.0f64;
                for (k, task) in self.inst.tasks.iter().enumerate() {
                    if task.job == j && task.round == r {
                        if self.scheduled[k] {
                            let m = self.machine[k];
                            done = done.max(self.start[k] + task.p[m] + task.s[m]);
                        } else {
                            rem = rem.max(self.inst.ps_min(k));
                        }
                    }
                }
                c = done.max(c + rem);
            }
            bound += job.weight * c;
        }
        bound
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::instance::{fig1_instance, InstanceBuilder};
    use crate::relax::certified_lower_bound;

    #[test]
    fn budgeted_search_aborts_and_matches_when_generous() {
        let inst = fig1_instance();
        let token = CancelToken::new();

        // A handful of nodes is nowhere near enough for Fig. 1.
        assert_eq!(
            solve_exact_budgeted(&inst, &SolveBudget::capped(0, 5), &token),
            None
        );
        // A pre-cancelled token aborts before any search.
        let cancelled = CancelToken::new();
        cancelled.cancel();
        assert_eq!(
            solve_exact_budgeted(&inst, &SolveBudget::capped(0, 1 << 40), &cancelled),
            None
        );

        // Generous finite cap: same optimum as the parallel search (the
        // node counter may differ — sequential vs parallel propagation).
        let exact = solve_exact(&inst);
        let budgeted = solve_exact_budgeted(&inst, &SolveBudget::capped(0, 1 << 40), &token)
            .expect("cap is plenty");
        assert_eq!(budgeted.objective, exact.objective);
        assert_eq!(budgeted.start, exact.start);
        assert_eq!(budgeted.machine, exact.machine);

        // Unlimited budget delegates to solve_exact verbatim.
        let unlimited = solve_exact_budgeted(&inst, &SolveBudget::UNLIMITED, &token)
            .expect("unlimited cannot abort");
        assert_eq!(unlimited.objective, exact.objective);
    }

    #[test]
    fn budgeted_search_is_deterministic() {
        let inst = fig1_instance();
        let token = CancelToken::new();
        let budget = SolveBudget::capped(0, 1 << 40);
        let a = solve_exact_budgeted(&inst, &budget, &token).expect("cap is plenty");
        for _ in 0..3 {
            let b = solve_exact_budgeted(&inst, &budget, &token).expect("cap is plenty");
            // Sequential search: even the node counter is reproducible.
            assert_eq!(a, b);
        }
        // And the abort point is too: the largest insufficient cap yields
        // None every time.
        let short = SolveBudget::capped(0, a.nodes - 1);
        assert_eq!(solve_exact_budgeted(&inst, &short, &token), None);
        assert_eq!(solve_exact_budgeted(&inst, &short, &token), None);
    }

    #[test]
    fn single_task_single_machine() {
        let mut b = InstanceBuilder::new(1);
        let j = b.job(2.0, 1.0);
        b.round(j, &[vec![3.0]]);
        let sol = solve_exact(&b.build());
        assert!((sol.objective - 2.0 * 4.0).abs() < 1e-9);
        assert_eq!(sol.machine, vec![0]);
        assert!((sol.start[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wspt_order_on_one_machine() {
        // Two jobs, lengths 2 and 4, weights 1: short first, OPT = 8.
        let mut b = InstanceBuilder::new(1);
        let a = b.job(1.0, 0.0);
        let c = b.job(1.0, 0.0);
        b.round(a, &[vec![4.0]]);
        b.round(c, &[vec![2.0]]);
        let sol = solve_exact(&b.build());
        assert!((sol.objective - 8.0).abs() < 1e-9);
        // The 2-long task (task index 1) goes first.
        assert!(sol.start[1] < sol.start[0]);
    }

    #[test]
    fn heterogeneous_machines_are_chosen_well() {
        // One task much faster on machine 1.
        let mut b = InstanceBuilder::new(2);
        let j = b.job(1.0, 0.0);
        b.round(j, &[vec![10.0, 1.0]]);
        let sol = solve_exact(&b.build());
        assert_eq!(sol.machine, vec![1]);
        assert!((sol.objective - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rounds_serialize_within_a_job() {
        // 2 rounds of 1 task on 2 machines; second round must wait for
        // first incl. sync.
        let mut b = InstanceBuilder::new(2);
        let j = b.job(1.0, 0.0);
        b.round_with_sync(j, &[vec![2.0, 2.0]], &[vec![1.0, 1.0]]);
        b.round_with_sync(j, &[vec![2.0, 2.0]], &[vec![1.0, 1.0]]);
        let sol = solve_exact(&b.build());
        // C = 2+1 (round 0) + 2+1 (round 1) = 6.
        assert!((sol.objective - 6.0).abs() < 1e-9);
        let second = 1; // task order: round 0 task, then round 1 task
        assert!((sol.start[second] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn fig1_optimum_is_8_5() {
        // The paper's Fig. 1(c): jointly considering GPU heterogeneity and
        // intra-job parallelism gives total JCT 8.5 s — and the paper
        // presents it as the best schedule for the toy example.
        let sol = solve_exact(&fig1_instance());
        assert!(
            (sol.objective - 8.5).abs() < 1e-9,
            "Fig. 1 optimum should be 8.5, got {}",
            sol.objective
        );
    }

    #[test]
    fn parallel_tasks_can_share_a_machine() {
        // Relaxed scale-fixed semantics: a round's 2 tasks may run
        // sequentially on the single fast machine instead of using the
        // very slow second machine.
        let mut b = InstanceBuilder::new(2);
        let j = b.job(1.0, 0.0);
        b.round(j, &[vec![1.0, 100.0], vec![1.0, 100.0]]);
        let sol = solve_exact(&b.build());
        assert!((sol.objective - 2.0).abs() < 1e-9, "got {}", sol.objective);
        assert_eq!(sol.machine, vec![0, 0]);
    }

    #[test]
    fn release_times_are_respected() {
        let mut b = InstanceBuilder::new(1);
        let j = b.job(1.0, 5.0);
        b.round(j, &[vec![1.0]]);
        let sol = solve_exact(&b.build());
        assert!((sol.start[0] - 5.0).abs() < 1e-12);
        assert!((sol.objective - 6.0).abs() < 1e-9);
    }

    #[test]
    fn pruning_does_not_lose_the_optimum() {
        // Cross-check: a 6-task instance solved with and without pruning
        // (pruning disabled by inflating best to infinity is not possible
        // directly, so compare against a brute-force via a permissive bound:
        // we simply verify monotonicity — fewer nodes than the unpruned
        // worst case and a value matching the known optimum).
        let mut b = InstanceBuilder::new(2);
        let j1 = b.job(3.0, 0.0);
        let j2 = b.job(1.0, 0.0);
        b.round(j1, &[vec![2.0, 3.0], vec![2.0, 3.0]]);
        b.round(j2, &[vec![1.0, 1.5]]);
        b.round(j2, &[vec![1.0, 1.5]]);
        let sol = solve_exact(&b.build());
        // j1's two tasks in parallel on both machines completes at 3
        // (machine 1) — or both on machine 0 at 4. Best total weighted:
        // run j2 round 0 on m1 (1.5) in parallel with j1...
        // We fix ground truth by hand-enumeration: the optimum is 3*3 + 1*4 = 13:
        // m0: j1.t0 [0,2), j2.r0 [2,3), j2.r1 [3,4); m1: j1.t1 [0,3).
        assert!((sol.objective - 13.0).abs() < 1e-9, "got {}", sol.objective);
    }

    #[test]
    fn determinism_across_repeated_runs() {
        // Thread scheduling must not change the reported schedule.
        let inst = fig1_instance();
        let a = solve_exact(&inst);
        for _ in 0..3 {
            let b = solve_exact(&inst);
            assert_eq!(a.start, b.start);
            assert_eq!(a.machine, b.machine);
            assert_eq!(a.objective, b.objective);
        }
    }

    #[test]
    fn fourteen_tasks_with_symmetry_match_relaxation_bound() {
        // Beyond the old 12-task hard limit: 2 jobs × 7 rounds on two
        // *identical* machines. Round precedence serializes each job, so
        // the optimum runs each job on its own machine and equals the
        // critical-path part of the certified relaxation bound exactly.
        let mut b = InstanceBuilder::new(2);
        let j1 = b.job(2.0, 0.0);
        let j2 = b.job(1.0, 0.0);
        for _ in 0..7 {
            b.round(j1, &[vec![1.0, 1.0]]);
            b.round(j2, &[vec![1.5, 1.5]]);
        }
        let inst = b.build();
        assert_eq!(inst.n_tasks(), 14);
        let sol = solve_exact(&inst);
        // OPT = 2·7 + 1·10.5 = 24.5, which the relaxation bound certifies.
        let lb = certified_lower_bound(&inst);
        assert!(
            (sol.objective - lb).abs() < 1e-9,
            "exact {} vs relaxation bound {lb}",
            sol.objective
        );
        assert!((sol.objective - 24.5).abs() < 1e-9, "got {}", sol.objective);
    }

    #[test]
    fn identical_task_symmetry_preserves_optimum() {
        // 4 interchangeable tasks in one round on 2 identical machines:
        // symmetry breaking must still find the balanced 2+2 split.
        let mut b = InstanceBuilder::new(2);
        let j = b.job(1.0, 0.0);
        b.round(
            j,
            &[
                vec![2.0, 2.0],
                vec![2.0, 2.0],
                vec![2.0, 2.0],
                vec![2.0, 2.0],
            ],
        );
        let sol = solve_exact(&b.build());
        assert!((sol.objective - 4.0).abs() < 1e-9, "got {}", sol.objective);
    }

    #[test]
    #[should_panic(expected = "limited to 16 tasks")]
    fn size_guard() {
        let mut b = InstanceBuilder::new(1);
        let j = b.job(1.0, 0.0);
        for _ in 0..(MAX_TASKS + 1) {
            b.round(j, &[vec![1.0]]);
        }
        solve_exact(&b.build());
    }
}
