//! Solver-phase tracing on a deterministic *work-unit* clock.
//!
//! The solver must stay reproducible across machines and thread counts,
//! so spans are positioned by work done (simplex pivots, B&B nodes,
//! sweep touches) rather than wall-clock. A [`SolveTrace`] keeps a
//! monotone work cursor; each recorded phase advances it by the phase's
//! work, producing a gapless, deterministic lane of spans. The consumer
//! (the online scheduler in `hare-baselines`) drains the spans and
//! forwards them to the simulator's `TraceSink`, anchored at the
//! simulation time of the replan that ran the solver.
//!
//! `hare-solver` cannot depend on `hare-sim` (the dependency points the
//! other way), which is why this is a standalone buffer rather than an
//! implementation of the sim's sink trait.

use std::sync::{Arc, Mutex};

/// One recorded solver phase, in work units.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SolveSpan {
    /// Phase name (`"lp_round"`, `"bb_root"`, `"combinatorial"`,
    /// rung names, ...).
    pub phase: &'static str,
    /// Work-cursor position when the phase started.
    pub start: u64,
    /// Work-cursor position when the phase ended (`start + work`).
    pub end: u64,
    /// Phase-specific detail: cut round, branch index, rung outcome.
    pub detail: u64,
}

/// Shared, clonable span buffer with a monotone work cursor.
///
/// Cheap to clone (an `Arc`); thread-safe because exact B&B runs root
/// branches in parallel — though for determinism the parallel path
/// records its spans *after* the join, in branch-index order.
#[derive(Clone, Debug, Default)]
pub struct SolveTrace {
    inner: Arc<Mutex<Inner>>,
}

#[derive(Debug, Default)]
struct Inner {
    cursor: u64,
    spans: Vec<SolveSpan>,
}

impl SolveTrace {
    /// An empty trace with the cursor at zero.
    pub fn new() -> SolveTrace {
        SolveTrace::default()
    }

    /// Record a phase that did `work` units, advancing the cursor.
    /// Zero-work phases are clamped to one unit so they stay visible.
    pub fn record(&self, phase: &'static str, work: u64, detail: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let start = inner.cursor;
        let end = start + work.max(1);
        inner.cursor = end;
        inner.spans.push(SolveSpan {
            phase,
            start,
            end,
            detail,
        });
    }

    /// Total work recorded so far (the cursor position).
    pub fn cursor(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).cursor
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .spans
            .len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Take the recorded spans, resetting the buffer and cursor — one
    /// drain per replan keeps successive solves independently anchored.
    pub fn drain(&self) -> Vec<SolveSpan> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.cursor = 0;
        std::mem::take(&mut inner.spans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_is_monotone_and_gapless() {
        let t = SolveTrace::new();
        t.record("lp_round", 10, 0);
        t.record("lp_round", 0, 1); // clamped to 1
        t.record("bb_root", 5, 2);
        assert_eq!(t.cursor(), 16);
        let spans = t.drain();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].start, 0);
        assert_eq!(spans[0].end, 10);
        assert_eq!(spans[1].end, 11);
        assert_eq!(spans[2].start, 11);
        assert_eq!(spans[2].end, 16);
        // Drained: cursor and buffer reset.
        assert!(t.is_empty());
        assert_eq!(t.cursor(), 0);
    }

    #[test]
    fn clones_share_the_buffer() {
        let a = SolveTrace::new();
        let b = a.clone();
        a.record("x", 3, 0);
        b.record("y", 4, 0);
        assert_eq!(a.len(), 2);
        assert_eq!(a.cursor(), 7);
    }
}
