//! Linear programming: sparse revised simplex (the fast path) and a dense
//! two-phase tableau (the validation baseline).
//!
//! The paper solves its relaxed scheduling problem with CPLEX/Gurobi; those
//! are unavailable here, so this module provides the LP machinery the
//! relaxation's constraint-generation mode (see [`crate::relax`]) is built
//! on. Two interchangeable solvers share the [`LinearProgram`] /
//! [`LpOutcome`] API:
//!
//! * [`RevisedSimplex`] — a revised primal simplex over *sparse* constraint
//!   columns with an explicitly maintained basis inverse. The relaxation's
//!   rows carry 1–2 nonzeros each, so pricing by `c_j − y·A_j` over sparse
//!   columns does O(nnz) work where the dense tableau spent O(m·width)
//!   flops per iteration. The basis survives [`RevisedSimplex::add_constraint`],
//!   so constraint generation re-optimizes from the previous optimal basis
//!   (a one-row Phase I on the new cut) instead of re-running two full
//!   phases — this is what makes the cut loop in [`crate::relax`] cheap
//!   enough to re-run on every online batch.
//! * [`dense`] — the original textbook two-phase dense tableau, retained
//!   verbatim as ground truth; property tests assert the two agree.
//!
//! Both use Bland's anti-cycling rule, so termination is guaranteed and
//! runs are deterministic. Conventions: minimize `c·x` subject to sparse
//! row constraints with `<=`, `>=` or `=` senses, and `x >= 0`.

use crate::budget::{CancelToken, SolveBudget};
use serde::{Deserialize, Serialize};

/// Constraint sense.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cmp {
    /// `row · x <= rhs`
    Le,
    /// `row · x >= rhs`
    Ge,
    /// `row · x = rhs`
    Eq,
}

/// One sparse constraint row.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// (variable index, coefficient) pairs; indices must be unique.
    pub terms: Vec<(usize, f64)>,
    /// Sense.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program: minimize `objective · x` over `x >= 0`.
///
/// ```
/// use hare_solver::{LinearProgram, LpOutcome, Cmp};
///
/// // minimize x + y  s.t.  x + 2y >= 4,  3x + y >= 6
/// let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
/// lp.constrain(vec![(0, 1.0), (1, 2.0)], Cmp::Ge, 4.0);
/// lp.constrain(vec![(0, 3.0), (1, 1.0)], Cmp::Ge, 6.0);
/// let LpOutcome::Optimal { objective, .. } = lp.solve() else { panic!() };
/// assert!((objective - 2.8).abs() < 1e-6);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LinearProgram {
    /// Objective coefficients; its length fixes the variable count.
    pub objective: Vec<f64>,
    /// Constraint rows.
    pub constraints: Vec<Constraint>,
}

/// Result of solving an LP.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LpOutcome {
    /// Optimal solution found.
    Optimal {
        /// Optimal point.
        x: Vec<f64>,
        /// Optimal objective value.
        objective: f64,
    },
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

impl LinearProgram {
    /// A program over `n_vars` variables with the given minimization
    /// objective.
    pub fn minimize(objective: Vec<f64>) -> Self {
        LinearProgram {
            objective,
            constraints: Vec::new(),
        }
    }

    /// Add one constraint; panics on out-of-range or duplicate indices.
    pub fn constrain(&mut self, terms: Vec<(usize, f64)>, cmp: Cmp, rhs: f64) {
        let n = self.objective.len();
        let mut seen = vec![false; n];
        for &(i, _) in &terms {
            assert!(i < n, "constraint references variable {i} of {n}");
            assert!(!seen[i], "duplicate variable {i} in constraint");
            seen[i] = true;
        }
        self.constraints.push(Constraint { terms, cmp, rhs });
    }

    /// Solve with the sparse revised simplex (the fast path).
    pub fn solve(&self) -> LpOutcome {
        RevisedSimplex::new(self).solve()
    }

    /// Solve with the dense two-phase tableau (validation baseline).
    pub fn solve_dense(&self) -> LpOutcome {
        dense::solve(self)
    }
}

const EPS: f64 = 1e-9;

/// Flip a constraint so its RHS is non-negative; returns (new sense, flipped?).
fn normalized_sense(c: &Constraint) -> (Cmp, bool) {
    if c.rhs >= 0.0 {
        (c.cmp, false)
    } else {
        let flipped = match c.cmp {
            Cmp::Le => Cmp::Ge,
            Cmp::Ge => Cmp::Le,
            Cmp::Eq => Cmp::Eq,
        };
        (flipped, true)
    }
}

// ---------------------------------------------------------------------
// Sparse revised simplex
// ---------------------------------------------------------------------

/// Refactorize (rebuild `B⁻¹` from the basis columns) after
/// `max(REFACTOR_FLOOR, m)` product-form updates, bounding numerical
/// drift. Scaling the interval with the row count keeps the O(m³) rebuild
/// amortized to O(m²) per pivot — the same order as the pivot update.
const REFACTOR_FLOOR: u64 = 64;

/// Role of one standard-form column.
#[derive(Clone, Debug, PartialEq)]
enum Col {
    /// Structural variable with a sparse column (row, coefficient).
    Structural(Vec<(usize, f64)>),
    /// Slack (+1) or surplus (−1) singleton in one row.
    Unit { row: usize, sign: f64 },
    /// Artificial singleton (sign chosen so its basic value is ≥ 0).
    Artificial { row: usize, sign: f64 },
}

/// Incremental sparse revised simplex.
///
/// Construct from a [`LinearProgram`], call [`solve`](Self::solve), then
/// freely interleave [`add_constraint`](Self::add_constraint) and further
/// `solve` calls: each re-solve starts from the previous optimal basis and
/// only spends a one-row Phase I on the newly violated constraint.
///
/// ```
/// use hare_solver::{Cmp, LinearProgram, LpOutcome, RevisedSimplex};
///
/// let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
/// lp.constrain(vec![(0, 1.0), (1, 2.0)], Cmp::Ge, 4.0);
/// let mut simplex = RevisedSimplex::new(&lp);
/// let LpOutcome::Optimal { objective, .. } = simplex.solve() else { panic!() };
/// assert!((objective - 2.0).abs() < 1e-6);
///
/// // Warm re-solve after a cut: the basis is reused.
/// simplex.add_constraint(vec![(0, 3.0), (1, 1.0)], Cmp::Ge, 6.0);
/// let LpOutcome::Optimal { objective, .. } = simplex.solve() else { panic!() };
/// assert!((objective - 2.8).abs() < 1e-6);
/// ```
#[derive(Clone, Debug)]
pub struct RevisedSimplex {
    n_struct: usize,
    objective: Vec<f64>,
    /// Standard-form columns; structural first, then per-row extras.
    cols: Vec<Col>,
    /// Normalized (non-negative) RHS per row.
    rhs: Vec<f64>,
    /// Column basic in each row.
    basis: Vec<usize>,
    /// Whether each column is currently basic.
    in_basis: Vec<bool>,
    /// Explicit basis inverse, row-major `m × m`.
    binv: Vec<Vec<f64>>,
    /// Current basic values `B⁻¹ rhs`, one per row.
    xb: Vec<f64>,
    pivots: u64,
    pivots_since_refactor: u64,
    refactorizations: u64,
    /// Total-pivot budget for [`RevisedSimplex::solve_capped`]
    /// (`u64::MAX` = uncapped).
    pivot_cap: u64,
    /// Wall-clock deadline for [`RevisedSimplex::solve_under`], checked
    /// once per pivot (`None` = no deadline).
    deadline: Option<std::time::Instant>,
    /// Cooperative cancellation for [`RevisedSimplex::solve_under`],
    /// polled once per pivot.
    cancel: Option<CancelToken>,
}

impl RevisedSimplex {
    /// Build the standard form of `lp`. No pivoting happens yet.
    pub fn new(lp: &LinearProgram) -> Self {
        let n_struct = lp.objective.len();
        let mut s = RevisedSimplex {
            n_struct,
            objective: lp.objective.clone(),
            cols: (0..n_struct).map(|_| Col::Structural(Vec::new())).collect(),
            rhs: Vec::new(),
            basis: Vec::new(),
            in_basis: vec![false; n_struct],
            binv: Vec::new(),
            xb: Vec::new(),
            pivots: 0,
            pivots_since_refactor: 0,
            refactorizations: 0,
            pivot_cap: u64::MAX,
            deadline: None,
            cancel: None,
        };
        for c in &lp.constraints {
            s.push_row(c);
        }
        s
    }

    /// Total simplex pivots performed so far (all phases, all re-solves).
    pub fn pivots(&self) -> u64 {
        self.pivots
    }

    /// How many times `B⁻¹` was rebuilt from scratch.
    pub fn refactorizations(&self) -> u64 {
        self.refactorizations
    }

    /// Number of constraint rows currently in the program.
    pub fn n_rows(&self) -> usize {
        self.rhs.len()
    }

    /// Append one row, choosing its basic column so the current point stays
    /// a basis: the row's own slack/surplus when the current solution
    /// satisfies it, otherwise an artificial at the violation amount (to be
    /// driven out by the next [`solve`](Self::solve) — "Phase I on one
    /// row"). `B⁻¹` is extended in O(m²) without disturbing the basis.
    pub fn add_constraint(&mut self, terms: Vec<(usize, f64)>, cmp: Cmp, rhs: f64) {
        for &(i, _) in &terms {
            assert!(i < self.n_struct, "constraint references variable {i}");
        }
        self.push_row(&Constraint { terms, cmp, rhs });
    }

    fn push_row(&mut self, c: &Constraint) {
        let (cmp, flip) = normalized_sense(c);
        let sign = if flip { -1.0 } else { 1.0 };
        let row = self.rhs.len();
        let rhs = sign * c.rhs;

        // Row activity at the *current* point (structural values; all
        // nonbasic structurals sit at 0). Before the first solve the basis
        // is empty, so activity is simply 0 for every row.
        let x = self.structural_values();
        let mut activity = 0.0;
        for &(j, v) in &c.terms {
            activity += sign * v * x[j];
        }

        // Extend the sparse structural columns.
        for &(j, v) in &c.terms {
            let Col::Structural(col) = &mut self.cols[j] else {
                unreachable!("structural ids precede extras")
            };
            col.push((row, sign * v));
        }

        // The row's own slack/surplus column (none for equalities).
        let own = match cmp {
            Cmp::Le => Some(self.push_col(Col::Unit { row, sign: 1.0 })),
            Cmp::Ge => Some(self.push_col(Col::Unit { row, sign: -1.0 })),
            Cmp::Eq => None,
        };

        // Pick the entering basic column for the new row: the slack/surplus
        // when it would sit at a non-negative value, else an artificial
        // whose sign makes its value the (positive) violation.
        let slack_value = match cmp {
            Cmp::Le => rhs - activity,
            Cmp::Ge => activity - rhs,
            Cmp::Eq => -1.0, // always take the artificial path
        };
        let (basic_col, basic_sign, basic_value) = if slack_value >= -EPS {
            let col = own.expect("Eq rows never take the slack path");
            let sign = match cmp {
                Cmp::Le => 1.0,
                _ => -1.0,
            };
            (col, sign, slack_value.max(0.0))
        } else {
            let diff = rhs - activity;
            let sign = if diff >= 0.0 { 1.0 } else { -1.0 };
            let col = self.push_col(Col::Artificial { row, sign });
            (col, sign, diff.abs())
        };

        // Extend B⁻¹: with the new basic column carrying coefficient σ in
        // the new row, B'⁻¹ = [[B⁻¹, 0], [−σ·a_Bᵀ B⁻¹, σ]] where a_B holds
        // the new row's coefficients on the old basic columns.
        let m = row;
        // Nonzero coefficients of the new row on the old basic columns.
        // Before the first solve every basic column is another row's
        // slack/artificial, so this list is empty and the bordering below
        // is O(m) — constructing an n-row program stays O(n·m), not O(n·m²).
        let a_b: Vec<(usize, f64)> = self
            .basis
            .iter()
            .enumerate()
            .filter_map(|(r, &b)| {
                let v = self.coeff_in_row(b, row, &c.terms, sign);
                (v != 0.0).then_some((r, v))
            })
            .collect();
        let mut last = vec![0.0; m + 1];
        if !a_b.is_empty() {
            for (k, lk) in last.iter_mut().take(m).enumerate() {
                let mut dot = 0.0;
                for &(r, ab) in &a_b {
                    dot += ab * self.binv[r][k];
                }
                *lk = -basic_sign * dot;
            }
        }
        last[m] = basic_sign;
        for r in 0..m {
            self.binv[r].push(0.0);
        }
        self.binv.push(last);

        self.rhs.push(rhs);
        self.basis.push(basic_col);
        self.in_basis[basic_col] = true;
        self.xb.push(basic_value);
    }

    fn push_col(&mut self, col: Col) -> usize {
        self.cols.push(col);
        self.in_basis.push(false);
        self.cols.len() - 1
    }

    /// Coefficient of column `col` in `new_row` (whose structural terms are
    /// `terms` scaled by `sign`). Only structural columns can intersect a
    /// freshly added row; every unit/artificial column lives in an older row.
    fn coeff_in_row(&self, col: usize, new_row: usize, terms: &[(usize, f64)], sign: f64) -> f64 {
        match &self.cols[col] {
            Col::Structural(_) => terms
                .iter()
                .find(|&&(j, _)| j == col)
                .map(|&(_, v)| sign * v)
                .unwrap_or(0.0),
            Col::Unit { row, .. } | Col::Artificial { row, .. } => {
                debug_assert_ne!(*row, new_row);
                0.0
            }
        }
    }

    /// Current structural variable values.
    fn structural_values(&self) -> Vec<f64> {
        let mut x = vec![0.0; self.n_struct];
        for (r, &b) in self.basis.iter().enumerate() {
            if b < self.n_struct {
                x[b] = self.xb[r];
            }
        }
        x
    }

    /// Solve from the current basis: a Phase I over any positive artificials
    /// (skipped when none), then Phase II on the real objective. Warm when
    /// called after [`add_constraint`](Self::add_constraint).
    pub fn solve(&mut self) -> LpOutcome {
        self.pivot_cap = u64::MAX;
        self.solve_impl().expect("uncapped solve cannot abort")
    }

    /// [`RevisedSimplex::solve`] under a *total*-pivot budget: returns
    /// `None` when the budget is exhausted before optimality (cycling, or
    /// a pathological cut sequence) — the caller's cue to fall back to the
    /// dense ground-truth solver on the accumulated program. The simplex
    /// state is left mid-flight and should be rebuilt before reuse.
    pub fn solve_capped(&mut self, max_pivots: u64) -> Option<LpOutcome> {
        self.pivot_cap = max_pivots;
        let out = self.solve_impl();
        self.pivot_cap = u64::MAX;
        out
    }

    /// [`RevisedSimplex::solve`] under a full [`SolveBudget`] plus a
    /// [`CancelToken`], all checked cooperatively before every pivot.
    /// `max_pivots` is an absolute *total*-pivot budget with the same
    /// convention as [`RevisedSimplex::solve_capped`] (compare against
    /// [`RevisedSimplex::pivots`]); the budget's own `pivot_cap` is *not*
    /// consulted here — the caller (the cut loop) apportions it across
    /// re-solves. Returns `None` on abort, leaving the simplex mid-flight.
    pub fn solve_under(
        &mut self,
        max_pivots: u64,
        budget: &SolveBudget,
        cancel: &CancelToken,
    ) -> Option<LpOutcome> {
        self.pivot_cap = max_pivots;
        self.deadline = budget.deadline;
        self.cancel = Some(cancel.clone());
        let out = self.solve_impl();
        self.pivot_cap = u64::MAX;
        self.deadline = None;
        self.cancel = None;
        out
    }

    /// Cooperative abort check: cancellation requested or the wall-clock
    /// deadline passed. Both are `None` outside `solve_under`, so plain
    /// solves never pay the `Instant::now()` call.
    fn interrupted(&self) -> bool {
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                return true;
            }
        }
        self.deadline
            .is_some_and(|d| std::time::Instant::now() >= d)
    }

    fn solve_impl(&mut self) -> Option<LpOutcome> {
        // Phase I only if some artificial is basic at a positive value.
        let needs_phase1 = self
            .basis
            .iter()
            .zip(&self.xb)
            .any(|(&b, &v)| matches!(self.cols[b], Col::Artificial { .. }) && v > 1e-7);
        if needs_phase1 {
            let cost: Vec<f64> = self
                .cols
                .iter()
                .map(|c| match c {
                    Col::Artificial { .. } => 1.0,
                    _ => 0.0,
                })
                .collect();
            match self.optimize(&cost, true) {
                SimplexEnd::Optimal(v) if v > 1e-7 => return Some(LpOutcome::Infeasible),
                SimplexEnd::Optimal(_) => {}
                SimplexEnd::Unbounded => unreachable!("phase 1 bounded below by 0"),
                SimplexEnd::Aborted => return None,
            }
            self.expel_artificials();
        }

        let mut cost = vec![0.0; self.cols.len()];
        cost[..self.n_struct].copy_from_slice(&self.objective);
        match self.optimize(&cost, false) {
            SimplexEnd::Optimal(_) => {
                let x = self.structural_values();
                let objective = x.iter().zip(&self.objective).map(|(xi, ci)| xi * ci).sum();
                Some(LpOutcome::Optimal { x, objective })
            }
            SimplexEnd::Unbounded => Some(LpOutcome::Unbounded),
            SimplexEnd::Aborted => None,
        }
    }

    /// Primal simplex with Bland's rule. `allow_artificial` admits
    /// artificial columns into pricing (Phase I only).
    fn optimize(&mut self, cost: &[f64], allow_artificial: bool) -> SimplexEnd {
        let m = self.rhs.len();
        if m == 0 {
            // Unconstrained: optimum 0 unless some objective coefficient is
            // negative (then x_j → ∞ is unbounded).
            if self.objective.iter().any(|&c| c < -EPS) && !allow_artificial {
                return SimplexEnd::Unbounded;
            }
            return SimplexEnd::Optimal(0.0);
        }
        // Duals y = c_B · B⁻¹, computed once and then maintained per pivot:
        // when column j (reduced cost rc) enters at row r, the new duals are
        // y + rc·(row r of the updated B⁻¹) — an O(m) update replacing the
        // O(m²) recomputation. Rebuilt from scratch after refactorization.
        let mut y = self.compute_y(cost);
        loop {
            // Price sparse columns: reduced cost c_j − y·A_j; Bland picks
            // the first improving column index.
            let mut entering = None;
            for (j, col) in self.cols.iter().enumerate() {
                if self.in_basis[j] {
                    continue;
                }
                let red = match col {
                    Col::Structural(terms) => {
                        let mut dot = 0.0;
                        for &(r, v) in terms {
                            dot += y[r] * v;
                        }
                        cost[j] - dot
                    }
                    Col::Unit { row, sign } => cost[j] - y[*row] * sign,
                    Col::Artificial { row, sign } => {
                        if !allow_artificial {
                            continue;
                        }
                        cost[j] - y[*row] * sign
                    }
                };
                if red < -EPS {
                    entering = Some((j, red));
                    break;
                }
            }
            let Some((j, rc)) = entering else {
                let mut obj = 0.0;
                for (r, &b) in self.basis.iter().enumerate() {
                    obj += cost[b] * self.xb[r];
                }
                return SimplexEnd::Optimal(obj);
            };

            // Direction d = B⁻¹ A_j (O(m · nnz_j)).
            let d = self.ftran(j);

            // Ratio test (Bland: smallest basis index on ties).
            let mut leave: Option<usize> = None;
            let mut best = f64::INFINITY;
            for (r, &dr) in d.iter().enumerate() {
                if dr > EPS {
                    let ratio = self.xb[r] / dr;
                    let better = ratio < best - EPS
                        || (ratio < best + EPS
                            && leave.is_some_and(|l| self.basis[r] < self.basis[l]));
                    if better {
                        best = ratio;
                        leave = Some(r);
                    }
                }
            }
            match leave {
                Some(r) => {
                    if self.pivots >= self.pivot_cap || self.interrupted() {
                        return SimplexEnd::Aborted;
                    }
                    let refactors = self.refactorizations;
                    self.pivot(r, j, &d);
                    if self.refactorizations != refactors {
                        y = self.compute_y(cost); // product-form history reset
                    } else {
                        // y' = y + rc · (updated row r of B⁻¹); see above.
                        for (yk, bk) in y.iter_mut().zip(&self.binv[r]) {
                            *yk += rc * bk;
                        }
                    }
                }
                None => return SimplexEnd::Unbounded,
            }
        }
    }

    /// Duals `y = c_B · B⁻¹` from scratch (O(m²), skipping zero-cost rows).
    fn compute_y(&self, cost: &[f64]) -> Vec<f64> {
        let m = self.rhs.len();
        let mut y = vec![0.0; m];
        for (r, &b) in self.basis.iter().enumerate() {
            let cb = cost[b];
            if cb != 0.0 {
                for (yk, bk) in y.iter_mut().zip(&self.binv[r]) {
                    *yk += cb * bk;
                }
            }
        }
        y
    }

    /// `B⁻¹ A_j` for column `j`.
    fn ftran(&self, j: usize) -> Vec<f64> {
        let m = self.rhs.len();
        let mut d = vec![0.0; m];
        match &self.cols[j] {
            Col::Structural(terms) => {
                for &(row, v) in terms {
                    if v != 0.0 {
                        for (dr, brow) in d.iter_mut().zip(&self.binv) {
                            *dr += brow[row] * v;
                        }
                    }
                }
            }
            Col::Unit { row, sign } | Col::Artificial { row, sign } => {
                for (dr, brow) in d.iter_mut().zip(&self.binv) {
                    *dr = brow[*row] * sign;
                }
            }
        }
        d
    }

    /// Product-form update of `B⁻¹` and `x_B` for entering column `j`
    /// leaving at row `r` with direction `d`.
    fn pivot(&mut self, r: usize, j: usize, d: &[f64]) {
        let m = self.rhs.len();
        let piv = d[r];
        debug_assert!(piv.abs() > EPS, "pivot on ~zero element");
        let theta = self.xb[r] / piv;

        let inv = 1.0 / piv;
        for k in 0..m {
            self.binv[r][k] *= inv;
        }
        let pivot_row = self.binv[r].clone();
        for (rr, row) in self.binv.iter_mut().enumerate() {
            if rr != r {
                let factor = d[rr];
                if factor.abs() > EPS {
                    for (v, &p) in row.iter_mut().zip(&pivot_row) {
                        *v -= factor * p;
                    }
                }
            }
        }
        for (rr, xb) in self.xb.iter_mut().enumerate() {
            if rr != r {
                *xb -= d[rr] * theta;
                if *xb < 0.0 && *xb > -1e-9 {
                    *xb = 0.0; // clamp tiny negative drift
                }
            }
        }
        self.xb[r] = theta;

        self.in_basis[self.basis[r]] = false;
        self.basis[r] = j;
        self.in_basis[j] = true;

        self.pivots += 1;
        self.pivots_since_refactor += 1;
        if self.pivots_since_refactor >= REFACTOR_FLOOR.max(m as u64) {
            self.refactorize();
        }
    }

    /// Drive basic artificials out of the basis after Phase I. Rows where no
    /// real column has a nonzero tableau entry are redundant: the artificial
    /// stays basic at 0 and (being excluded from Phase-II pricing) inert.
    fn expel_artificials(&mut self) {
        let m = self.rhs.len();
        for r in 0..m {
            if !matches!(self.cols[self.basis[r]], Col::Artificial { .. }) {
                continue;
            }
            // Tableau row r over column j is (e_r B⁻¹) · A_j.
            let entering = (0..self.cols.len()).find(|&j| {
                if self.in_basis[j] || matches!(self.cols[j], Col::Artificial { .. }) {
                    return false;
                }
                self.row_dot(r, j).abs() > EPS
            });
            if let Some(j) = entering {
                let d = self.ftran(j);
                self.pivot(r, j, &d);
            }
        }
    }

    /// `(e_r B⁻¹) · A_j` — one tableau entry.
    fn row_dot(&self, r: usize, j: usize) -> f64 {
        match &self.cols[j] {
            Col::Structural(terms) => terms.iter().map(|&(row, v)| self.binv[r][row] * v).sum(),
            Col::Unit { row, sign } | Col::Artificial { row, sign } => self.binv[r][*row] * sign,
        }
    }

    /// Rebuild `B⁻¹` (and `x_B`) from the basis columns by Gauss–Jordan
    /// elimination with partial pivoting, clearing accumulated product-form
    /// rounding. O(m³), amortized by [`REFACTOR_EVERY`].
    fn refactorize(&mut self) {
        let m = self.rhs.len();
        // Dense B from the basis columns.
        let mut b = vec![vec![0.0; m]; m];
        for (c, &col) in self.basis.iter().enumerate() {
            match &self.cols[col] {
                Col::Structural(terms) => {
                    for &(row, v) in terms {
                        b[row][c] = v;
                    }
                }
                Col::Unit { row, sign } | Col::Artificial { row, sign } => {
                    b[*row][c] = *sign;
                }
            }
        }
        // Invert via [B | I] -> [I | B⁻¹].
        let mut inv: Vec<Vec<f64>> = (0..m)
            .map(|r| (0..m).map(|c| if r == c { 1.0 } else { 0.0 }).collect())
            .collect();
        for col in 0..m {
            let piv_row = (col..m)
                .max_by(|&a, &b_| b[a][col].abs().total_cmp(&b[b_][col].abs()))
                .expect("non-empty");
            if b[piv_row][col].abs() <= EPS {
                // Basis numerically singular — keep the product-form inverse
                // (still consistent enough for Bland to proceed).
                self.pivots_since_refactor = 0;
                return;
            }
            b.swap(col, piv_row);
            inv.swap(col, piv_row);
            let inv_piv = 1.0 / b[col][col];
            for k in 0..m {
                b[col][k] *= inv_piv;
                inv[col][k] *= inv_piv;
            }
            for r in 0..m {
                if r != col {
                    let f = b[r][col];
                    if f != 0.0 {
                        for k in 0..m {
                            b[r][k] -= f * b[col][k];
                            inv[r][k] -= f * inv[col][k];
                        }
                    }
                }
            }
        }
        // Note basis columns were laid out as B[:, c] = A_{basis[c]}, so the
        // inverse maps straight back.
        self.binv = inv;
        let mut xb = vec![0.0; m];
        for (xr, brow) in xb.iter_mut().zip(&self.binv) {
            for (bk, rk) in brow.iter().zip(&self.rhs) {
                *xr += bk * rk;
            }
            if *xr < 0.0 && *xr > -1e-9 {
                *xr = 0.0;
            }
        }
        self.xb = xb;
        self.pivots_since_refactor = 0;
        self.refactorizations += 1;
    }
}

enum SimplexEnd {
    Optimal(f64),
    Unbounded,
    /// The pivot budget ran out before optimality (revised solver only).
    Aborted,
}

// ---------------------------------------------------------------------
// Dense two-phase tableau (validation baseline)
// ---------------------------------------------------------------------

pub mod dense {
    //! The original dense two-phase tableau simplex, kept as the ground
    //! truth the sparse revised solver is validated against (see the
    //! `dense_revised_agreement` property test in `tests/`).

    use super::{normalized_sense, Cmp, LinearProgram, LpOutcome, SimplexEnd, EPS};

    /// Solve `lp` with the dense tableau.
    pub fn solve(lp: &LinearProgram) -> LpOutcome {
        Tableau::build(lp).solve()
    }

    /// Dense simplex tableau. Columns: structural vars, then slack/surplus,
    /// then artificials, then RHS.
    struct Tableau {
        rows: Vec<Vec<f64>>, // one per constraint
        /// Basis: column index basic in each row.
        basis: Vec<usize>,
        n_struct: usize,
        n_slack: usize,
        n_art: usize,
        objective: Vec<f64>, // structural objective (minimize)
    }

    impl Tableau {
        fn build(lp: &LinearProgram) -> Tableau {
            let n_struct = lp.objective.len();
            let m = lp.constraints.len();

            // Count slack/surplus and artificial columns.
            let mut n_slack = 0;
            let mut n_art = 0;
            for c in &lp.constraints {
                // Normalize to non-negative RHS first; sense may flip.
                let (cmp, _) = normalized_sense(c);
                match cmp {
                    Cmp::Le => n_slack += 1,
                    Cmp::Ge => {
                        n_slack += 1;
                        n_art += 1;
                    }
                    Cmp::Eq => n_art += 1,
                }
            }

            let width = n_struct + n_slack + n_art + 1;
            let mut rows = vec![vec![0.0; width]; m];
            let mut basis = vec![usize::MAX; m];
            let mut slack_at = n_struct;
            let mut art_at = n_struct + n_slack;

            for (r, c) in lp.constraints.iter().enumerate() {
                let (cmp, flip) = normalized_sense(c);
                let sign = if flip { -1.0 } else { 1.0 };
                for &(j, v) in &c.terms {
                    rows[r][j] = sign * v;
                }
                rows[r][width - 1] = sign * c.rhs;
                match cmp {
                    Cmp::Le => {
                        rows[r][slack_at] = 1.0;
                        basis[r] = slack_at;
                        slack_at += 1;
                    }
                    Cmp::Ge => {
                        rows[r][slack_at] = -1.0; // surplus
                        slack_at += 1;
                        rows[r][art_at] = 1.0;
                        basis[r] = art_at;
                        art_at += 1;
                    }
                    Cmp::Eq => {
                        rows[r][art_at] = 1.0;
                        basis[r] = art_at;
                        art_at += 1;
                    }
                }
            }

            Tableau {
                rows,
                basis,
                n_struct,
                n_slack,
                n_art,
                objective: lp.objective.clone(),
            }
        }

        fn width(&self) -> usize {
            self.n_struct + self.n_slack + self.n_art + 1
        }

        fn solve(mut self) -> LpOutcome {
            // Phase 1: minimize the artificial sum (skipped when none exist).
            if self.n_art > 0 {
                let art_lo = self.n_struct + self.n_slack;
                let art_hi = art_lo + self.n_art;
                let mut cost = vec![0.0; self.width() - 1];
                cost[art_lo..art_hi].fill(1.0);
                match self.optimize(&cost, art_hi) {
                    SimplexEnd::Optimal(v) if v > 1e-7 => return LpOutcome::Infeasible,
                    SimplexEnd::Optimal(_) => {}
                    // Phase 1 objective is bounded below by 0.
                    SimplexEnd::Unbounded => unreachable!("phase 1 cannot be unbounded"),
                    SimplexEnd::Aborted => unreachable!("dense solver has no pivot cap"),
                }
                // Drive any artificial still in the basis out (degenerate rows).
                for r in 0..self.rows.len() {
                    if self.basis[r] >= art_lo {
                        let pivot_col = (0..art_lo).find(|&j| self.rows[r][j].abs() > EPS);
                        match pivot_col {
                            Some(j) => self.pivot(r, j),
                            None => {
                                // Redundant row: zero it out; keep artificial
                                // basic at value 0 and forbid re-entry by never
                                // pricing artificial columns in phase 2.
                            }
                        }
                    }
                }
            }

            // Phase 2: original objective; artificial columns are excluded from
            // pricing (column bound art_lo).
            let mut cost = vec![0.0; self.width() - 1];
            cost[..self.n_struct].copy_from_slice(&self.objective);
            let art_lo = self.n_struct + self.n_slack;
            match self.optimize(&cost, art_lo) {
                SimplexEnd::Optimal(obj) => {
                    let mut x = vec![0.0; self.n_struct];
                    let rhs_col = self.width() - 1;
                    for (r, &b) in self.basis.iter().enumerate() {
                        if b < self.n_struct {
                            x[b] = self.rows[r][rhs_col];
                        }
                    }
                    LpOutcome::Optimal { x, objective: obj }
                }
                SimplexEnd::Unbounded => LpOutcome::Unbounded,
                SimplexEnd::Aborted => unreachable!("dense solver has no pivot cap"),
            }
        }

        /// Primal simplex over columns `0..col_limit` with Bland's rule.
        /// Returns the optimal objective value for `cost`.
        fn optimize(&mut self, cost: &[f64], col_limit: usize) -> SimplexEnd {
            let rhs_col = self.width() - 1;
            loop {
                // Reduced costs: c_j - c_B · B^-1 A_j, computed directly from
                // the current tableau (rows are already B^-1 A).
                let mut entering = None;
                for j in 0..col_limit {
                    if self.basis.contains(&j) {
                        continue;
                    }
                    let mut red = cost[j];
                    for (r, &b) in self.basis.iter().enumerate() {
                        let cb = if b < cost.len() { cost[b] } else { 0.0 };
                        if cb != 0.0 {
                            red -= cb * self.rows[r][j];
                        }
                    }
                    if red < -EPS {
                        entering = Some(j); // Bland: first improving column
                        break;
                    }
                }
                let Some(j) = entering else {
                    // Optimal: objective = c_B · x_B.
                    let mut obj = 0.0;
                    for (r, &b) in self.basis.iter().enumerate() {
                        let cb = if b < cost.len() { cost[b] } else { 0.0 };
                        obj += cb * self.rows[r][rhs_col];
                    }
                    return SimplexEnd::Optimal(obj);
                };

                // Ratio test (Bland: smallest basis index tie-break).
                let mut leave: Option<usize> = None;
                let mut best = f64::INFINITY;
                for r in 0..self.rows.len() {
                    let a = self.rows[r][j];
                    if a > EPS {
                        let ratio = self.rows[r][rhs_col] / a;
                        let better = ratio < best - EPS
                            || (ratio < best + EPS
                                && leave.is_some_and(|l| self.basis[r] < self.basis[l]));
                        if better {
                            best = ratio;
                            leave = Some(r);
                        }
                    }
                }
                match leave {
                    Some(r) => self.pivot(r, j),
                    None => return SimplexEnd::Unbounded,
                }
            }
        }

        fn pivot(&mut self, r: usize, j: usize) {
            let piv = self.rows[r][j];
            debug_assert!(piv.abs() > EPS, "pivot on ~zero element");
            let inv = 1.0 / piv;
            for v in &mut self.rows[r] {
                *v *= inv;
            }
            let pivot_row = self.rows[r].clone();
            for (rr, row) in self.rows.iter_mut().enumerate() {
                if rr != r {
                    let factor = row[j];
                    if factor.abs() > EPS {
                        for (v, &p) in row.iter_mut().zip(&pivot_row) {
                            *v -= factor * p;
                        }
                    }
                }
            }
            self.basis[r] = j;
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn assert_opt(outcome: &LpOutcome, want_obj: f64, want_x: Option<&[f64]>) {
        match outcome {
            LpOutcome::Optimal { x, objective } => {
                assert!(
                    (objective - want_obj).abs() < 1e-6,
                    "objective {objective} != {want_obj}"
                );
                if let Some(w) = want_x {
                    for (a, b) in x.iter().zip(w) {
                        assert!((a - b).abs() < 1e-6, "x={x:?} want {w:?}");
                    }
                }
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    /// Run every classic case through both solvers.
    fn solve_both(lp: &LinearProgram) -> (LpOutcome, LpOutcome) {
        (lp.solve(), lp.solve_dense())
    }

    #[test]
    fn simple_maximization_as_min() {
        // max 3a + 5b st a<=4, 2b<=12, 3a+2b<=18  (classic; opt 36 at (2,6))
        let mut lp = LinearProgram::minimize(vec![-3.0, -5.0]);
        lp.constrain(vec![(0, 1.0)], Cmp::Le, 4.0);
        lp.constrain(vec![(1, 2.0)], Cmp::Le, 12.0);
        lp.constrain(vec![(0, 3.0), (1, 2.0)], Cmp::Le, 18.0);
        let (revised, dense) = solve_both(&lp);
        assert_opt(&revised, -36.0, Some(&[2.0, 6.0]));
        assert_opt(&dense, -36.0, Some(&[2.0, 6.0]));
    }

    #[test]
    fn ge_constraints_need_phase1() {
        // min x+y st x+2y>=4, 3x+y>=6 -> opt at intersection (1.6, 1.2), obj 2.8
        let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
        lp.constrain(vec![(0, 1.0), (1, 2.0)], Cmp::Ge, 4.0);
        lp.constrain(vec![(0, 3.0), (1, 1.0)], Cmp::Ge, 6.0);
        let (revised, dense) = solve_both(&lp);
        assert_opt(&revised, 2.8, Some(&[1.6, 1.2]));
        assert_opt(&dense, 2.8, Some(&[1.6, 1.2]));
    }

    #[test]
    fn equality_constraints() {
        // min 2x+3y st x+y=10, x<=4 -> x=4,y=6, obj 26
        let mut lp = LinearProgram::minimize(vec![2.0, 3.0]);
        lp.constrain(vec![(0, 1.0), (1, 1.0)], Cmp::Eq, 10.0);
        lp.constrain(vec![(0, 1.0)], Cmp::Le, 4.0);
        let (revised, dense) = solve_both(&lp);
        assert_opt(&revised, 26.0, Some(&[4.0, 6.0]));
        assert_opt(&dense, 26.0, Some(&[4.0, 6.0]));
    }

    #[test]
    fn detects_infeasibility() {
        let mut lp = LinearProgram::minimize(vec![1.0]);
        lp.constrain(vec![(0, 1.0)], Cmp::Ge, 5.0);
        lp.constrain(vec![(0, 1.0)], Cmp::Le, 3.0);
        assert_eq!(lp.solve(), LpOutcome::Infeasible);
        assert_eq!(lp.solve_dense(), LpOutcome::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        // min -x with only x >= 1: unbounded below.
        let mut lp = LinearProgram::minimize(vec![-1.0]);
        lp.constrain(vec![(0, 1.0)], Cmp::Ge, 1.0);
        assert_eq!(lp.solve(), LpOutcome::Unbounded);
        assert_eq!(lp.solve_dense(), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // x - y <= -2 with min x+y: best is x=0, y=2.
        let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
        lp.constrain(vec![(0, 1.0), (1, -1.0)], Cmp::Le, -2.0);
        let (revised, dense) = solve_both(&lp);
        assert_opt(&revised, 2.0, Some(&[0.0, 2.0]));
        assert_opt(&dense, 2.0, Some(&[0.0, 2.0]));
    }

    #[test]
    fn degenerate_program_terminates() {
        // Multiple redundant constraints through one vertex; Bland's rule
        // must not cycle.
        let mut lp = LinearProgram::minimize(vec![-1.0, -1.0]);
        lp.constrain(vec![(0, 1.0), (1, 1.0)], Cmp::Le, 1.0);
        lp.constrain(vec![(0, 1.0)], Cmp::Le, 1.0);
        lp.constrain(vec![(1, 1.0)], Cmp::Le, 1.0);
        lp.constrain(vec![(0, 2.0), (1, 2.0)], Cmp::Le, 2.0);
        assert_opt(&lp.solve(), -1.0, None);
        assert_opt(&lp.solve_dense(), -1.0, None);
    }

    #[test]
    fn redundant_equalities_are_fine() {
        // x + y = 4 stated twice.
        let mut lp = LinearProgram::minimize(vec![1.0, 2.0]);
        lp.constrain(vec![(0, 1.0), (1, 1.0)], Cmp::Eq, 4.0);
        lp.constrain(vec![(0, 1.0), (1, 1.0)], Cmp::Eq, 4.0);
        assert_opt(&lp.solve(), 4.0, Some(&[4.0, 0.0]));
        assert_opt(&lp.solve_dense(), 4.0, Some(&[4.0, 0.0]));
    }

    #[test]
    fn scheduling_shaped_lp() {
        // min w1*C1 + w2*C2 with C >= x + p, x >= release, and a "machine
        // volume" cut p1*x1 + p2*x2 >= v — the exact shape relax.rs emits.
        // w=(2,1), p=(3,5), releases (0,1), cut 3x1+5x2 >= 7.5.
        let mut lp = LinearProgram::minimize(vec![0.0, 0.0, 2.0, 1.0]); // x1 x2 c1 c2
        lp.constrain(vec![(0, 1.0)], Cmp::Ge, 0.0);
        lp.constrain(vec![(1, 1.0)], Cmp::Ge, 1.0);
        lp.constrain(vec![(2, 1.0), (0, -1.0)], Cmp::Ge, 3.0);
        lp.constrain(vec![(3, 1.0), (1, -1.0)], Cmp::Ge, 5.0);
        lp.constrain(vec![(0, 3.0), (1, 5.0)], Cmp::Ge, 7.5);
        for outcome in [lp.solve(), lp.solve_dense()] {
            match outcome {
                LpOutcome::Optimal { x, objective } => {
                    // Cheapest way to satisfy the cut is pushing x2 (weight 1):
                    // x1=0, x2=1.5 -> obj = 2*3 + 1*(1.5+5) = 12.5.
                    assert!((objective - 12.5).abs() < 1e-6, "obj={objective}");
                    assert!((x[0]).abs() < 1e-6 && (x[1] - 1.5).abs() < 1e-6);
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn capped_solve_aborts_and_dense_fallback_agrees() {
        let mut lp = LinearProgram::minimize(vec![0.0, 0.0, 2.0, 1.0]);
        lp.constrain(vec![(0, 1.0)], Cmp::Ge, 0.0);
        lp.constrain(vec![(1, 1.0)], Cmp::Ge, 1.0);
        lp.constrain(vec![(2, 1.0), (0, -1.0)], Cmp::Ge, 3.0);
        lp.constrain(vec![(3, 1.0), (1, -1.0)], Cmp::Ge, 5.0);
        lp.constrain(vec![(0, 3.0), (1, 5.0)], Cmp::Ge, 7.5);

        // Zero budget: the solve cannot pivot at all.
        let mut s = RevisedSimplex::new(&lp);
        assert_eq!(s.solve_capped(0), None);
        // The fallback path: the dense solver handles the same program.
        assert_opt(&lp.solve_dense(), 12.5, None);
        // A generous budget behaves exactly like the uncapped solve, and
        // the cap does not linger.
        let mut s = RevisedSimplex::new(&lp);
        let capped = s.solve_capped(1_000_000).expect("budget is plenty");
        assert_opt(&capped, 12.5, None);
        let mut u = RevisedSimplex::new(&lp);
        assert_eq!(u.solve(), capped);
    }

    #[test]
    fn budgeted_solve_honors_cancel_and_deadline() {
        let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
        lp.constrain(vec![(0, 1.0), (1, 2.0)], Cmp::Ge, 4.0);
        lp.constrain(vec![(0, 3.0), (1, 1.0)], Cmp::Ge, 6.0);

        // A pre-cancelled token aborts before the first pivot.
        let cancelled = CancelToken::new();
        cancelled.cancel();
        let mut s = RevisedSimplex::new(&lp);
        assert_eq!(
            s.solve_under(u64::MAX, &SolveBudget::UNLIMITED, &cancelled),
            None
        );

        // An already-passed deadline aborts likewise.
        let expired = SolveBudget {
            deadline: Some(std::time::Instant::now() - std::time::Duration::from_millis(1)),
            ..SolveBudget::UNLIMITED
        };
        let mut s = RevisedSimplex::new(&lp);
        assert_eq!(s.solve_under(u64::MAX, &expired, &CancelToken::new()), None);

        // A healthy budget matches the plain solve bit-for-bit, and the
        // budget state does not linger into the next plain solve.
        let mut s = RevisedSimplex::new(&lp);
        let budgeted = s
            .solve_under(u64::MAX, &SolveBudget::UNLIMITED, &CancelToken::new())
            .expect("unlimited budget cannot abort");
        let mut u = RevisedSimplex::new(&lp);
        assert_eq!(u.solve(), budgeted);
        assert_eq!(s.solve(), budgeted);
    }

    #[test]
    fn warm_add_constraint_matches_cold_resolve() {
        // Build the scheduling-shaped LP incrementally: solve, add the
        // volume cut warm, and compare against a cold solve of the full
        // program.
        let mut lp = LinearProgram::minimize(vec![0.0, 0.0, 2.0, 1.0]);
        lp.constrain(vec![(0, 1.0)], Cmp::Ge, 0.0);
        lp.constrain(vec![(1, 1.0)], Cmp::Ge, 1.0);
        lp.constrain(vec![(2, 1.0), (0, -1.0)], Cmp::Ge, 3.0);
        lp.constrain(vec![(3, 1.0), (1, -1.0)], Cmp::Ge, 5.0);

        let mut warm = RevisedSimplex::new(&lp);
        let LpOutcome::Optimal { .. } = warm.solve() else {
            panic!()
        };
        let pivots_before_cut = warm.pivots();
        warm.add_constraint(vec![(0, 3.0), (1, 5.0)], Cmp::Ge, 7.5);
        let LpOutcome::Optimal { x, objective } = warm.solve() else {
            panic!()
        };
        assert!((objective - 12.5).abs() < 1e-6, "warm obj={objective}");
        assert!((x[0]).abs() < 1e-6 && (x[1] - 1.5).abs() < 1e-6);

        lp.constrain(vec![(0, 3.0), (1, 5.0)], Cmp::Ge, 7.5);
        let mut cold = RevisedSimplex::new(&lp);
        let LpOutcome::Optimal {
            objective: cold_obj,
            ..
        } = cold.solve()
        else {
            panic!()
        };
        assert!((objective - cold_obj).abs() < 1e-9);
        // The warm re-solve must be cheaper than re-running everything.
        let warm_resolve_pivots = warm.pivots() - pivots_before_cut;
        assert!(
            warm_resolve_pivots < cold.pivots(),
            "warm {warm_resolve_pivots} vs cold {}",
            cold.pivots()
        );
    }

    #[test]
    fn warm_add_of_satisfied_constraint_is_free() {
        let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
        lp.constrain(vec![(0, 1.0), (1, 2.0)], Cmp::Ge, 4.0);
        let mut s = RevisedSimplex::new(&lp);
        let LpOutcome::Optimal { objective, .. } = s.solve() else {
            panic!()
        };
        assert!((objective - 2.0).abs() < 1e-6);
        let before = s.pivots();
        // Already satisfied by the optimum (y = 2 ≥ 1): slack basis, no work.
        s.add_constraint(vec![(1, 1.0)], Cmp::Le, 5.0);
        let LpOutcome::Optimal { objective, .. } = s.solve() else {
            panic!()
        };
        assert!((objective - 2.0).abs() < 1e-6);
        assert_eq!(s.pivots(), before, "satisfied row must not pivot");
    }

    #[test]
    fn many_warm_cuts_stay_consistent() {
        // Covering LP over 6 vars; add tightening cuts one at a time and
        // verify against cold dense solves at every step.
        let n = 6;
        let mut lp = LinearProgram::minimize(vec![1.0; n]);
        for i in 0..n {
            lp.constrain(vec![(i, 1.0), ((i + 1) % n, 2.0)], Cmp::Ge, 3.0);
        }
        let mut warm = RevisedSimplex::new(&lp);
        warm.solve();
        for round in 0..8 {
            let i = round % n;
            let j = (round + 2) % n;
            let rhs = 2.5 + round as f64 * 0.5;
            let terms = vec![(i, 1.0), (j, 1.5)];
            warm.add_constraint(terms.clone(), Cmp::Ge, rhs);
            let warm_out = warm.solve();
            lp.constrain(terms, Cmp::Ge, rhs);
            let cold_out = lp.solve_dense();
            match (warm_out, cold_out) {
                (
                    LpOutcome::Optimal { objective: a, .. },
                    LpOutcome::Optimal { objective: b, .. },
                ) => {
                    assert!((a - b).abs() < 1e-6, "round {round}: warm {a} vs cold {b}")
                }
                (a, b) => panic!("round {round}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn refactorization_keeps_long_runs_accurate() {
        // Enough pivots to cross REFACTOR_EVERY several times.
        let n = 30;
        let mut lp = LinearProgram::minimize(vec![1.0; n]);
        for i in 0..n {
            let j = (i + 1) % n;
            let k = (i + 7) % n;
            lp.constrain(
                vec![(i, 1.0), (j, 2.0), (k, 0.5)],
                Cmp::Ge,
                3.0 + (i % 5) as f64,
            );
        }
        let mut s = RevisedSimplex::new(&lp);
        let LpOutcome::Optimal { objective, .. } = s.solve() else {
            panic!()
        };
        let LpOutcome::Optimal {
            objective: dense_obj,
            ..
        } = lp.solve_dense()
        else {
            panic!()
        };
        assert!(
            (objective - dense_obj).abs() < 1e-6,
            "revised {objective} vs dense {dense_obj} (pivots {}, refactors {})",
            s.pivots(),
            s.refactorizations()
        );
    }

    #[test]
    fn brute_force_vertex_agreement() {
        // Random-ish small LPs: compare simplex with brute-force vertex
        // enumeration over constraint pairs (2 vars).
        #[allow(clippy::type_complexity)]
        let cases: Vec<(Vec<f64>, Vec<(f64, f64, f64)>)> = vec![
            (
                vec![1.0, 2.0],
                vec![(1.0, 1.0, 3.0), (2.0, 1.0, 4.0), (1.0, 3.0, 6.0)],
            ),
            (
                vec![3.0, 1.0],
                vec![(1.0, 2.0, 2.0), (2.0, 1.0, 2.0), (1.0, 1.0, 1.5)],
            ),
        ];
        for (c, rows) in cases {
            // Constraints are a*x + b*y >= r (covering-type); x,y >= 0.
            let mut lp = LinearProgram::minimize(c.clone());
            for &(a, b, r) in &rows {
                lp.constrain(vec![(0, a), (1, b)], Cmp::Ge, r);
            }
            let got = match lp.solve() {
                LpOutcome::Optimal { objective, .. } => objective,
                other => panic!("{other:?}"),
            };
            // Enumerate candidate vertices: constraint intersections and
            // axis intercepts; keep feasible ones.
            let mut best = f64::INFINITY;
            let mut candidates: Vec<(f64, f64)> = Vec::new();
            for i in 0..rows.len() {
                let (a1, b1, r1) = rows[i];
                candidates.push((r1 / a1, 0.0));
                candidates.push((0.0, r1 / b1));
                for (a2, b2, r2) in rows.iter().skip(i + 1).copied() {
                    let det = a1 * b2 - a2 * b1;
                    if det.abs() > 1e-9 {
                        candidates.push(((r1 * b2 - r2 * b1) / det, (a1 * r2 - a2 * r1) / det));
                    }
                }
            }
            for (x, y) in candidates {
                if x >= -1e-9
                    && y >= -1e-9
                    && rows.iter().all(|&(a, b, r)| a * x + b * y >= r - 1e-9)
                {
                    best = best.min(c[0] * x + c[1] * y);
                }
            }
            assert!((got - best).abs() < 1e-6, "simplex {got} vs brute {best}");
        }
    }
}
