//! Dense two-phase tableau simplex.
//!
//! The paper solves its relaxed scheduling problem with CPLEX/Gurobi; those
//! are unavailable here, so this module provides the LP machinery the
//! relaxation's constraint-generation mode (see [`crate::relax`]) is built
//! on. It is a textbook two-phase primal simplex over a dense tableau with
//! Bland's anti-cycling rule — dependable for the small/medium LPs the
//! relaxation produces, and validated in tests against hand-solvable
//! programs and brute-force vertex enumeration.
//!
//! Conventions: minimize `c·x` subject to sparse row constraints with
//! `<=`, `>=` or `=` senses, and `x >= 0`.

use serde::{Deserialize, Serialize};

/// Constraint sense.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cmp {
    /// `row · x <= rhs`
    Le,
    /// `row · x >= rhs`
    Ge,
    /// `row · x = rhs`
    Eq,
}

/// One sparse constraint row.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// (variable index, coefficient) pairs; indices must be unique.
    pub terms: Vec<(usize, f64)>,
    /// Sense.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program: minimize `objective · x` over `x >= 0`.
///
/// ```
/// use hare_solver::{LinearProgram, LpOutcome, Cmp};
///
/// // minimize x + y  s.t.  x + 2y >= 4,  3x + y >= 6
/// let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
/// lp.constrain(vec![(0, 1.0), (1, 2.0)], Cmp::Ge, 4.0);
/// lp.constrain(vec![(0, 3.0), (1, 1.0)], Cmp::Ge, 6.0);
/// let LpOutcome::Optimal { objective, .. } = lp.solve() else { panic!() };
/// assert!((objective - 2.8).abs() < 1e-6);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LinearProgram {
    /// Objective coefficients; its length fixes the variable count.
    pub objective: Vec<f64>,
    /// Constraint rows.
    pub constraints: Vec<Constraint>,
}

/// Result of solving an LP.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LpOutcome {
    /// Optimal solution found.
    Optimal {
        /// Optimal point.
        x: Vec<f64>,
        /// Optimal objective value.
        objective: f64,
    },
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

impl LinearProgram {
    /// A program over `n_vars` variables with the given minimization
    /// objective.
    pub fn minimize(objective: Vec<f64>) -> Self {
        LinearProgram {
            objective,
            constraints: Vec::new(),
        }
    }

    /// Add one constraint; panics on out-of-range or duplicate indices.
    pub fn constrain(&mut self, terms: Vec<(usize, f64)>, cmp: Cmp, rhs: f64) {
        let n = self.objective.len();
        let mut seen = vec![false; n];
        for &(i, _) in &terms {
            assert!(i < n, "constraint references variable {i} of {n}");
            assert!(!seen[i], "duplicate variable {i} in constraint");
            seen[i] = true;
        }
        self.constraints.push(Constraint { terms, cmp, rhs });
    }

    /// Solve with the two-phase primal simplex.
    pub fn solve(&self) -> LpOutcome {
        Tableau::build(self).solve()
    }
}

const EPS: f64 = 1e-9;

/// Dense simplex tableau. Columns: structural vars, then slack/surplus,
/// then artificials, then RHS.
struct Tableau {
    rows: Vec<Vec<f64>>, // one per constraint
    /// Basis: column index basic in each row.
    basis: Vec<usize>,
    n_struct: usize,
    n_slack: usize,
    n_art: usize,
    objective: Vec<f64>, // structural objective (minimize)
}

impl Tableau {
    fn build(lp: &LinearProgram) -> Tableau {
        let n_struct = lp.objective.len();
        let m = lp.constraints.len();

        // Count slack/surplus and artificial columns.
        let mut n_slack = 0;
        let mut n_art = 0;
        for c in &lp.constraints {
            // Normalize to non-negative RHS first; sense may flip.
            let (cmp, _) = normalized_sense(c);
            match cmp {
                Cmp::Le => n_slack += 1,
                Cmp::Ge => {
                    n_slack += 1;
                    n_art += 1;
                }
                Cmp::Eq => n_art += 1,
            }
        }

        let width = n_struct + n_slack + n_art + 1;
        let mut rows = vec![vec![0.0; width]; m];
        let mut basis = vec![usize::MAX; m];
        let mut slack_at = n_struct;
        let mut art_at = n_struct + n_slack;

        for (r, c) in lp.constraints.iter().enumerate() {
            let (cmp, flip) = normalized_sense(c);
            let sign = if flip { -1.0 } else { 1.0 };
            for &(j, v) in &c.terms {
                rows[r][j] = sign * v;
            }
            rows[r][width - 1] = sign * c.rhs;
            match cmp {
                Cmp::Le => {
                    rows[r][slack_at] = 1.0;
                    basis[r] = slack_at;
                    slack_at += 1;
                }
                Cmp::Ge => {
                    rows[r][slack_at] = -1.0; // surplus
                    slack_at += 1;
                    rows[r][art_at] = 1.0;
                    basis[r] = art_at;
                    art_at += 1;
                }
                Cmp::Eq => {
                    rows[r][art_at] = 1.0;
                    basis[r] = art_at;
                    art_at += 1;
                }
            }
        }

        Tableau {
            rows,
            basis,
            n_struct,
            n_slack,
            n_art,
            objective: lp.objective.clone(),
        }
    }

    fn width(&self) -> usize {
        self.n_struct + self.n_slack + self.n_art + 1
    }

    fn solve(mut self) -> LpOutcome {
        // Phase 1: minimize the artificial sum (skipped when none exist).
        if self.n_art > 0 {
            let art_lo = self.n_struct + self.n_slack;
            let art_hi = art_lo + self.n_art;
            let mut cost = vec![0.0; self.width() - 1];
            cost[art_lo..art_hi].fill(1.0);
            match self.optimize(&cost, art_hi) {
                SimplexEnd::Optimal(v) if v > 1e-7 => return LpOutcome::Infeasible,
                SimplexEnd::Optimal(_) => {}
                // Phase 1 objective is bounded below by 0.
                SimplexEnd::Unbounded => unreachable!("phase 1 cannot be unbounded"),
            }
            // Drive any artificial still in the basis out (degenerate rows).
            for r in 0..self.rows.len() {
                if self.basis[r] >= art_lo {
                    let pivot_col = (0..art_lo).find(|&j| self.rows[r][j].abs() > EPS);
                    match pivot_col {
                        Some(j) => self.pivot(r, j),
                        None => {
                            // Redundant row: zero it out; keep artificial
                            // basic at value 0 and forbid re-entry by never
                            // pricing artificial columns in phase 2.
                        }
                    }
                }
            }
        }

        // Phase 2: original objective; artificial columns are excluded from
        // pricing (column bound art_lo).
        let mut cost = vec![0.0; self.width() - 1];
        cost[..self.n_struct].copy_from_slice(&self.objective);
        let art_lo = self.n_struct + self.n_slack;
        match self.optimize(&cost, art_lo) {
            SimplexEnd::Optimal(obj) => {
                let mut x = vec![0.0; self.n_struct];
                let rhs_col = self.width() - 1;
                for (r, &b) in self.basis.iter().enumerate() {
                    if b < self.n_struct {
                        x[b] = self.rows[r][rhs_col];
                    }
                }
                LpOutcome::Optimal { x, objective: obj }
            }
            SimplexEnd::Unbounded => LpOutcome::Unbounded,
        }
    }

    /// Primal simplex over columns `0..col_limit` with Bland's rule.
    /// Returns the optimal objective value for `cost`.
    fn optimize(&mut self, cost: &[f64], col_limit: usize) -> SimplexEnd {
        let rhs_col = self.width() - 1;
        loop {
            // Reduced costs: c_j - c_B · B^-1 A_j, computed directly from
            // the current tableau (rows are already B^-1 A).
            let mut entering = None;
            for j in 0..col_limit {
                if self.basis.contains(&j) {
                    continue;
                }
                let mut red = cost[j];
                for (r, &b) in self.basis.iter().enumerate() {
                    let cb = if b < cost.len() { cost[b] } else { 0.0 };
                    if cb != 0.0 {
                        red -= cb * self.rows[r][j];
                    }
                }
                if red < -EPS {
                    entering = Some(j); // Bland: first improving column
                    break;
                }
            }
            let Some(j) = entering else {
                // Optimal: objective = c_B · x_B.
                let mut obj = 0.0;
                for (r, &b) in self.basis.iter().enumerate() {
                    let cb = if b < cost.len() { cost[b] } else { 0.0 };
                    obj += cb * self.rows[r][rhs_col];
                }
                return SimplexEnd::Optimal(obj);
            };

            // Ratio test (Bland: smallest basis index tie-break).
            let mut leave: Option<usize> = None;
            let mut best = f64::INFINITY;
            for r in 0..self.rows.len() {
                let a = self.rows[r][j];
                if a > EPS {
                    let ratio = self.rows[r][rhs_col] / a;
                    let better = ratio < best - EPS
                        || (ratio < best + EPS
                            && leave.is_some_and(|l| self.basis[r] < self.basis[l]));
                    if better {
                        best = ratio;
                        leave = Some(r);
                    }
                }
            }
            match leave {
                Some(r) => self.pivot(r, j),
                None => return SimplexEnd::Unbounded,
            }
        }
    }

    fn pivot(&mut self, r: usize, j: usize) {
        let piv = self.rows[r][j];
        debug_assert!(piv.abs() > EPS, "pivot on ~zero element");
        let inv = 1.0 / piv;
        for v in &mut self.rows[r] {
            *v *= inv;
        }
        let pivot_row = self.rows[r].clone();
        for (rr, row) in self.rows.iter_mut().enumerate() {
            if rr != r {
                let factor = row[j];
                if factor.abs() > EPS {
                    for (v, &p) in row.iter_mut().zip(&pivot_row) {
                        *v -= factor * p;
                    }
                }
            }
        }
        self.basis[r] = j;
    }
}

enum SimplexEnd {
    Optimal(f64),
    Unbounded,
}

/// Flip a constraint so its RHS is non-negative; returns (new sense, flipped?).
fn normalized_sense(c: &Constraint) -> (Cmp, bool) {
    if c.rhs >= 0.0 {
        (c.cmp, false)
    } else {
        let flipped = match c.cmp {
            Cmp::Le => Cmp::Ge,
            Cmp::Ge => Cmp::Le,
            Cmp::Eq => Cmp::Eq,
        };
        (flipped, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_opt(outcome: &LpOutcome, want_obj: f64, want_x: Option<&[f64]>) {
        match outcome {
            LpOutcome::Optimal { x, objective } => {
                assert!(
                    (objective - want_obj).abs() < 1e-6,
                    "objective {objective} != {want_obj}"
                );
                if let Some(w) = want_x {
                    for (a, b) in x.iter().zip(w) {
                        assert!((a - b).abs() < 1e-6, "x={x:?} want {w:?}");
                    }
                }
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn simple_maximization_as_min() {
        // max 3a + 5b st a<=4, 2b<=12, 3a+2b<=18  (classic; opt 36 at (2,6))
        let mut lp = LinearProgram::minimize(vec![-3.0, -5.0]);
        lp.constrain(vec![(0, 1.0)], Cmp::Le, 4.0);
        lp.constrain(vec![(1, 2.0)], Cmp::Le, 12.0);
        lp.constrain(vec![(0, 3.0), (1, 2.0)], Cmp::Le, 18.0);
        assert_opt(&lp.solve(), -36.0, Some(&[2.0, 6.0]));
    }

    #[test]
    fn ge_constraints_need_phase1() {
        // min x+y st x+2y>=4, 3x+y>=6 -> opt at intersection (1.6, 1.2), obj 2.8
        let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
        lp.constrain(vec![(0, 1.0), (1, 2.0)], Cmp::Ge, 4.0);
        lp.constrain(vec![(0, 3.0), (1, 1.0)], Cmp::Ge, 6.0);
        assert_opt(&lp.solve(), 2.8, Some(&[1.6, 1.2]));
    }

    #[test]
    fn equality_constraints() {
        // min 2x+3y st x+y=10, x<=4 -> x=4,y=6, obj 26
        let mut lp = LinearProgram::minimize(vec![2.0, 3.0]);
        lp.constrain(vec![(0, 1.0), (1, 1.0)], Cmp::Eq, 10.0);
        lp.constrain(vec![(0, 1.0)], Cmp::Le, 4.0);
        assert_opt(&lp.solve(), 26.0, Some(&[4.0, 6.0]));
    }

    #[test]
    fn detects_infeasibility() {
        let mut lp = LinearProgram::minimize(vec![1.0]);
        lp.constrain(vec![(0, 1.0)], Cmp::Ge, 5.0);
        lp.constrain(vec![(0, 1.0)], Cmp::Le, 3.0);
        assert_eq!(lp.solve(), LpOutcome::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        // min -x with only x >= 1: unbounded below.
        let mut lp = LinearProgram::minimize(vec![-1.0]);
        lp.constrain(vec![(0, 1.0)], Cmp::Ge, 1.0);
        assert_eq!(lp.solve(), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // x - y <= -2 with min x+y: best is x=0, y=2.
        let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
        lp.constrain(vec![(0, 1.0), (1, -1.0)], Cmp::Le, -2.0);
        assert_opt(&lp.solve(), 2.0, Some(&[0.0, 2.0]));
    }

    #[test]
    fn degenerate_program_terminates() {
        // Multiple redundant constraints through one vertex; Bland's rule
        // must not cycle.
        let mut lp = LinearProgram::minimize(vec![-1.0, -1.0]);
        lp.constrain(vec![(0, 1.0), (1, 1.0)], Cmp::Le, 1.0);
        lp.constrain(vec![(0, 1.0)], Cmp::Le, 1.0);
        lp.constrain(vec![(1, 1.0)], Cmp::Le, 1.0);
        lp.constrain(vec![(0, 2.0), (1, 2.0)], Cmp::Le, 2.0);
        assert_opt(&lp.solve(), -1.0, None);
    }

    #[test]
    fn redundant_equalities_are_fine() {
        // x + y = 4 stated twice.
        let mut lp = LinearProgram::minimize(vec![1.0, 2.0]);
        lp.constrain(vec![(0, 1.0), (1, 1.0)], Cmp::Eq, 4.0);
        lp.constrain(vec![(0, 1.0), (1, 1.0)], Cmp::Eq, 4.0);
        assert_opt(&lp.solve(), 4.0, Some(&[4.0, 0.0]));
    }

    #[test]
    fn scheduling_shaped_lp() {
        // min w1*C1 + w2*C2 with C >= x + p, x >= release, and a "machine
        // volume" cut p1*x1 + p2*x2 >= v — the exact shape relax.rs emits.
        // w=(2,1), p=(3,5), releases (0,1), cut 3x1+5x2 >= 7.5.
        let mut lp = LinearProgram::minimize(vec![0.0, 0.0, 2.0, 1.0]); // x1 x2 c1 c2
        lp.constrain(vec![(0, 1.0)], Cmp::Ge, 0.0);
        lp.constrain(vec![(1, 1.0)], Cmp::Ge, 1.0);
        lp.constrain(vec![(2, 1.0), (0, -1.0)], Cmp::Ge, 3.0);
        lp.constrain(vec![(3, 1.0), (1, -1.0)], Cmp::Ge, 5.0);
        lp.constrain(vec![(0, 3.0), (1, 5.0)], Cmp::Ge, 7.5);
        match lp.solve() {
            LpOutcome::Optimal { x, objective } => {
                // Cheapest way to satisfy the cut is pushing x2 (weight 1):
                // x1=0, x2=1.5 -> obj = 2*3 + 1*(1.5+5) = 12.5.
                assert!((objective - 12.5).abs() < 1e-6, "obj={objective}");
                assert!((x[0]).abs() < 1e-6 && (x[1] - 1.5).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn brute_force_vertex_agreement() {
        // Random-ish small LPs: compare simplex with brute-force vertex
        // enumeration over constraint pairs (2 vars).
        #[allow(clippy::type_complexity)]
        let cases: Vec<(Vec<f64>, Vec<(f64, f64, f64)>)> = vec![
            (
                vec![1.0, 2.0],
                vec![(1.0, 1.0, 3.0), (2.0, 1.0, 4.0), (1.0, 3.0, 6.0)],
            ),
            (
                vec![3.0, 1.0],
                vec![(1.0, 2.0, 2.0), (2.0, 1.0, 2.0), (1.0, 1.0, 1.5)],
            ),
        ];
        for (c, rows) in cases {
            // Constraints are a*x + b*y >= r (covering-type); x,y >= 0.
            let mut lp = LinearProgram::minimize(c.clone());
            for &(a, b, r) in &rows {
                lp.constrain(vec![(0, a), (1, b)], Cmp::Ge, r);
            }
            let got = match lp.solve() {
                LpOutcome::Optimal { objective, .. } => objective,
                other => panic!("{other:?}"),
            };
            // Enumerate candidate vertices: constraint intersections and
            // axis intercepts; keep feasible ones.
            let mut best = f64::INFINITY;
            let mut candidates: Vec<(f64, f64)> = Vec::new();
            for i in 0..rows.len() {
                let (a1, b1, r1) = rows[i];
                candidates.push((r1 / a1, 0.0));
                candidates.push((0.0, r1 / b1));
                for (a2, b2, r2) in rows.iter().skip(i + 1).copied() {
                    let det = a1 * b2 - a2 * b1;
                    if det.abs() > 1e-9 {
                        candidates.push(((r1 * b2 - r2 * b1) / det, (a1 * r2 - a2 * r1) / det));
                    }
                }
            }
            for (x, y) in candidates {
                if x >= -1e-9
                    && y >= -1e-9
                    && rows.iter().all(|&(a, b, r)| a * x + b * y >= r - 1e-9)
                {
                    best = best.min(c[0] * x + c[1] * y);
                }
            }
            assert!((got - best).abs() < 1e-6, "simplex {got} vs brute {best}");
        }
    }
}
