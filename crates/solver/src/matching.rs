//! Min-cost bipartite matching (Hungarian algorithm, O(n³)).
//!
//! AlloX [24] schedules jobs by transforming placement into a min-cost
//! bipartite matching between jobs and (machine, position) slots; the
//! `hare-baselines` crate builds that matching on top of this module. The
//! implementation is the classic potentials-based Hungarian algorithm on a
//! dense cost matrix, supporting rectangular instances (rows ≤ cols) by
//! leaving surplus columns unmatched.

use serde::{Deserialize, Serialize};

/// Result of a min-cost assignment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Matching {
    /// `assignment[r]` = column matched to row `r`.
    pub assignment: Vec<usize>,
    /// Total cost of the matching.
    pub cost: f64,
}

/// Solve min-cost assignment on a dense `rows x cols` cost matrix
/// (`cost[r][c]`), `rows <= cols`. Every row is matched to a distinct
/// column minimizing total cost. Costs must be finite.
///
/// ```
/// use hare_solver::min_cost_matching;
/// let cost = vec![vec![10.0, 1.0], vec![1.0, 10.0]];
/// let m = min_cost_matching(&cost);
/// assert_eq!(m.assignment, vec![1, 0]);
/// assert_eq!(m.cost, 2.0);
/// ```
pub fn min_cost_matching(cost: &[Vec<f64>]) -> Matching {
    let n = cost.len();
    assert!(n > 0, "empty matching instance");
    let m = cost[0].len();
    assert!(cost.iter().all(|row| row.len() == m), "ragged cost matrix");
    assert!(n <= m, "need rows <= cols ({n} > {m})");
    assert!(
        cost.iter().flatten().all(|c| c.is_finite()),
        "non-finite cost"
    );

    // Hungarian with potentials; 1-based internal arrays (classic form).
    let inf = f64::INFINITY;
    let mut u = vec![0.0; n + 1];
    let mut v = vec![0.0; m + 1];
    let mut p = vec![0usize; m + 1]; // p[col] = row matched to col (0 = none)
    let mut way = vec![0usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=m {
                if !used[j] {
                    let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![usize::MAX; n];
    for j in 1..=m {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    let total: f64 = assignment
        .iter()
        .enumerate()
        .map(|(r, &c)| cost[r][c])
        .sum();
    Matching {
        assignment,
        cost: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(cost: &[Vec<f64>]) -> f64 {
        // Try all injective row->col maps.
        let n = cost.len();
        let m = cost[0].len();
        let mut best = f64::INFINITY;
        let mut cols: Vec<usize> = (0..m).collect();
        permute(&mut cols, 0, n, &mut |perm| {
            let c: f64 = (0..n).map(|r| cost[r][perm[r]]).sum();
            if c < best {
                best = c;
            }
        });
        best
    }

    fn permute(cols: &mut [usize], k: usize, n: usize, f: &mut impl FnMut(&[usize])) {
        if k == n {
            f(&cols[..n]);
            return;
        }
        for i in k..cols.len() {
            cols.swap(k, i);
            permute(cols, k + 1, n, f);
            cols.swap(k, i);
        }
    }

    #[test]
    fn trivial_identity() {
        let cost = vec![vec![1.0, 9.0], vec![9.0, 1.0]];
        let m = min_cost_matching(&cost);
        assert_eq!(m.assignment, vec![0, 1]);
        assert!((m.cost - 2.0).abs() < 1e-12);
    }

    #[test]
    fn forced_cross_assignment() {
        let cost = vec![vec![10.0, 1.0], vec![1.0, 10.0]];
        let m = min_cost_matching(&cost);
        assert_eq!(m.assignment, vec![1, 0]);
        assert!((m.cost - 2.0).abs() < 1e-12);
    }

    #[test]
    fn square_matches_brute_force() {
        // Deterministic pseudo-random 6x6.
        let mut seed = 12345u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) % 1000) as f64 / 10.0
        };
        for _ in 0..20 {
            let cost: Vec<Vec<f64>> = (0..6).map(|_| (0..6).map(|_| next()).collect()).collect();
            let m = min_cost_matching(&cost);
            let bf = brute_force(&cost);
            assert!(
                (m.cost - bf).abs() < 1e-9,
                "hungarian {} vs brute {bf}",
                m.cost
            );
            // Assignment must be a permutation.
            let mut seen = [false; 6];
            for &c in &m.assignment {
                assert!(!seen[c]);
                seen[c] = true;
            }
        }
    }

    #[test]
    fn rectangular_matches_brute_force() {
        let mut seed = 777u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) % 1000) as f64 / 10.0
        };
        for _ in 0..10 {
            let cost: Vec<Vec<f64>> = (0..4).map(|_| (0..7).map(|_| next()).collect()).collect();
            let m = min_cost_matching(&cost);
            let bf = brute_force(&cost);
            assert!((m.cost - bf).abs() < 1e-9);
        }
    }

    #[test]
    fn negative_costs_are_fine() {
        let cost = vec![vec![-5.0, 2.0], vec![3.0, -4.0]];
        let m = min_cost_matching(&cost);
        assert!((m.cost - (-9.0)).abs() < 1e-12);
    }

    #[test]
    fn allox_shaped_instance() {
        // 3 jobs onto 2 machines x 2 positions = 4 slots: cost of slot
        // (m, k) for job j is k * t[j][m] (completion-position weighting),
        // the AlloX construction.
        let t = [[2.0, 4.0], [3.0, 3.0], [10.0, 1.0]];
        let mut cost = vec![vec![0.0; 4]; 3];
        for (j, tj) in t.iter().enumerate() {
            for machine in 0..2 {
                for pos in 1..=2usize {
                    cost[j][machine * 2 + (pos - 1)] = pos as f64 * tj[machine];
                }
            }
        }
        let m = min_cost_matching(&cost);
        let bf = brute_force(&cost);
        assert!((m.cost - bf).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "rows <= cols")]
    fn too_many_rows_rejected() {
        let cost = vec![vec![1.0], vec![2.0]];
        min_cost_matching(&cost);
    }
}
