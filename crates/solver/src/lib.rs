//! Optimization substrate for the Hare reproduction.
//!
//! The paper leans on commercial solvers (CPLEX/Gurobi) for its relaxed
//! scheduling problem and on min-cost bipartite matching for the AlloX
//! baseline. This crate provides those pieces from scratch:
//!
//! * [`lp`] — sparse revised simplex with warm-started constraint
//!   generation, plus the original dense two-phase tableau as a
//!   validation baseline;
//! * [`matching`] — Hungarian min-cost bipartite matching;
//! * [`instance`] — the task-level scheduling instance both solvers consume;
//! * [`relax`] — the `Hare_Sched_RL` relaxation (LP + Queyranne cuts for
//!   small instances, a combinatorial sweep for large ones) plus a
//!   certified lower bound on the optimum;
//! * [`bb`] — exact branch-and-bound ground truth for tiny instances;
//! * [`budget`] — cooperative solve budgets and cancellation, honored by
//!   every solver above so a solve can be bounded or aborted mid-flight;
//! * [`trace`] — deterministic work-unit span recording for the
//!   observability layer (cut rounds, B&B branches, ladder rungs).

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod bb;
pub mod budget;
pub mod instance;
pub mod lp;
pub mod matching;
pub mod relax;
pub mod trace;

pub use bb::{
    solve_exact, solve_exact_budgeted, solve_exact_budgeted_traced, solve_exact_traced,
    ExactSolution,
};
pub use budget::{CancelToken, SolveBudget};
pub use instance::{fig1_instance, Instance, InstanceBuilder, JobMeta, ProblemError, TaskMeta};
pub use lp::{Cmp, Constraint, LinearProgram, LpOutcome, RevisedSimplex};
pub use matching::{min_cost_matching, Matching};
pub use relax::{
    certified_lower_bound, combinatorial_work, midpoints, min_max, solve_budgeted,
    solve_budgeted_traced, solve_traced, RelaxMode, RelaxOptions, RelaxSolution, SolveStats,
};
pub use trace::{SolveSpan, SolveTrace};
