//! Cooperative solve budgets and cancellation.
//!
//! A production scheduler cannot let one pathological instance stall a
//! replan indefinitely: every solver in this crate — the revised simplex,
//! the Queyranne cut loop, and branch-and-bound — checks a [`SolveBudget`]
//! and a [`CancelToken`] cooperatively (on every pivot, cut round, and
//! search node) so a solve can be bounded up front or aborted mid-flight.
//! An aborted solve returns `None`; callers fall down the degradation
//! ladder (see `hare-core::anytime`) instead of panicking or hanging.
//!
//! Determinism note: `pivot_cap`/`node_cap` are deterministic — the same
//! instance under the same caps always aborts at the same point — while
//! `deadline` and cancellation are wall-clock driven. The simulator only
//! ever uses the caps, so simulated runs stay bit-for-bit reproducible.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A budget for one solve: how much work it may do before aborting.
///
/// The default is unlimited on every axis, under which every budgeted
/// entry point behaves exactly like its unbudgeted counterpart.
#[derive(Copy, Clone, Debug)]
pub struct SolveBudget {
    /// Wall-clock deadline; the solve aborts at the first cooperative
    /// check past it. `None` = no deadline. Nondeterministic by nature —
    /// simulated/replayable callers should use the caps instead.
    pub deadline: Option<Instant>,
    /// Maximum simplex pivots across the whole solve (Phase I + II and
    /// every cut-round re-solve combined). `u64::MAX` = unlimited.
    pub pivot_cap: u64,
    /// Maximum branch-and-bound nodes. `u64::MAX` = unlimited.
    pub node_cap: u64,
}

impl Default for SolveBudget {
    fn default() -> Self {
        SolveBudget::UNLIMITED
    }
}

impl SolveBudget {
    /// No limits: budgeted solves behave exactly like unbudgeted ones.
    pub const UNLIMITED: SolveBudget = SolveBudget {
        deadline: None,
        pivot_cap: u64::MAX,
        node_cap: u64::MAX,
    };

    /// A deterministic cap on pivots and nodes (no wall-clock deadline).
    pub fn capped(pivot_cap: u64, node_cap: u64) -> Self {
        SolveBudget {
            deadline: None,
            pivot_cap,
            node_cap,
        }
    }

    /// True when nothing can ever trip this budget.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.pivot_cap == u64::MAX && self.node_cap == u64::MAX
    }

    /// The budget with every cap scaled by `frac` (clamped to `[0, 1]`);
    /// unlimited axes stay unlimited. This is how the simulator's
    /// `SolverDegradation` fault shrinks a policy's configured budget.
    pub fn scaled(&self, frac: f64) -> Self {
        let frac = frac.clamp(0.0, 1.0);
        let scale = |cap: u64| {
            if cap == u64::MAX {
                u64::MAX
            } else {
                (cap as f64 * frac) as u64
            }
        };
        SolveBudget {
            deadline: self.deadline,
            pivot_cap: scale(self.pivot_cap),
            node_cap: scale(self.node_cap),
        }
    }

    /// Whether the wall-clock deadline (if any) has passed.
    pub fn deadline_passed(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// A shared flag for aborting a solve from another thread mid-flight.
///
/// Cloning shares the flag; every solver in this crate polls it at each
/// cooperative checkpoint (pivot / cut round / search node).
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation; every solve holding a clone aborts at its
    /// next cooperative check.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_is_default_and_scales_to_itself() {
        let b = SolveBudget::default();
        assert!(b.is_unlimited());
        let s = b.scaled(0.25);
        assert_eq!(s.pivot_cap, u64::MAX);
        assert_eq!(s.node_cap, u64::MAX);
        assert!(!b.deadline_passed());
    }

    #[test]
    fn scaling_shrinks_finite_caps() {
        let b = SolveBudget::capped(1000, 40);
        let s = b.scaled(0.5);
        assert_eq!(s.pivot_cap, 500);
        assert_eq!(s.node_cap, 20);
        // Clamped domain: garbage fractions cannot inflate the budget.
        assert_eq!(b.scaled(7.0).pivot_cap, 1000);
        assert_eq!(b.scaled(-1.0).pivot_cap, 0);
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        t.cancel();
        assert!(u.is_cancelled());
    }

    #[test]
    fn past_deadline_is_detected() {
        let b = SolveBudget {
            deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
            ..SolveBudget::UNLIMITED
        };
        assert!(b.deadline_passed());
        assert!(!b.is_unlimited());
    }
}
