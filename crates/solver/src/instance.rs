//! Plain-number scheduling instances.
//!
//! The solver crate works on a minimal, float-valued view of the
//! `Hare_Sched` problem (Section 5.1): jobs with weights, releases and
//! synchronized rounds; tasks with per-machine training times `T^c` and
//! synchronization times `T^s`. `hare-core` converts its typed problem into
//! this form before calling the relaxation or the exact solver.

use serde::{Deserialize, Serialize};

/// A structural defect in a scheduling instance or problem: empty machine
/// or job sets, out-of-domain numbers (NaN, negative, or zero durations),
/// or inconsistent job/round/task bookkeeping. Returned by
/// [`Instance::validate`] (and by `hare-core`'s problem validation) so
/// garbage is rejected with a typed error instead of propagating into the
/// LP.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProblemError {
    /// The machine/GPU set is empty.
    NoMachines,
    /// There are no jobs.
    NoJobs,
    /// A job-level field is out of domain or inconsistent.
    Job {
        /// Offending job index.
        job: usize,
        /// What is wrong with it.
        why: String,
    },
    /// A task-level field is out of domain or inconsistent.
    Task {
        /// Offending task index.
        task: usize,
        /// What is wrong with it.
        why: String,
    },
    /// Bookkeeping across jobs/rounds/tasks is inconsistent.
    Inconsistent(String),
}

impl std::fmt::Display for ProblemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProblemError::NoMachines => write!(f, "no machines"),
            ProblemError::NoJobs => write!(f, "no jobs"),
            ProblemError::Job { job, why } => write!(f, "job {job}: {why}"),
            ProblemError::Task { task, why } => write!(f, "task {task}: {why}"),
            ProblemError::Inconsistent(why) => write!(f, "{why}"),
        }
    }
}

impl std::error::Error for ProblemError {}

/// Per-job metadata.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobMeta {
    /// Objective weight `w_n > 0`.
    pub weight: f64,
    /// Release (arrival) time `a_n >= 0`.
    pub release: f64,
    /// Number of synchronized rounds `|R_n| >= 1`.
    pub rounds: u32,
}

/// Per-task metadata.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TaskMeta {
    /// Owning job (index into [`Instance::jobs`]).
    pub job: usize,
    /// Round within the job, `0..jobs[job].rounds`.
    pub round: u32,
    /// Training time on each machine (`T^c_{i,m}`), length = machine count.
    pub p: Vec<f64>,
    /// Synchronization time on each machine (`T^s_{i,m}`).
    pub s: Vec<f64>,
}

/// A task-level scheduling instance over unrelated machines.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Number of machines (GPUs).
    pub n_machines: usize,
    /// Jobs.
    pub jobs: Vec<JobMeta>,
    /// Tasks, any order; rounds are linked via (`job`, `round`).
    pub tasks: Vec<TaskMeta>,
}

impl Instance {
    /// Validate shape and positivity; returns a typed description of the
    /// first problem found. Rejects NaN, negative, or zero training
    /// durations and empty machine/job sets before they can poison the LP.
    pub fn validate(&self) -> Result<(), ProblemError> {
        if self.n_machines == 0 {
            return Err(ProblemError::NoMachines);
        }
        if self.jobs.is_empty() {
            return Err(ProblemError::NoJobs);
        }
        let bad_job = |job: usize, why: String| Err(ProblemError::Job { job, why });
        let bad_task = |task: usize, why: String| Err(ProblemError::Task { task, why });
        for (j, job) in self.jobs.iter().enumerate() {
            if !(job.weight > 0.0 && job.weight.is_finite()) {
                return bad_job(j, format!("weight {}", job.weight));
            }
            if !(job.release >= 0.0 && job.release.is_finite()) {
                return bad_job(j, format!("release {}", job.release));
            }
            if job.rounds == 0 {
                return bad_job(j, "zero rounds".into());
            }
        }
        let mut seen = vec![vec![0u32; 0]; self.jobs.len()];
        for (j, job) in self.jobs.iter().enumerate() {
            seen[j] = vec![0; job.rounds as usize];
        }
        for (t, task) in self.tasks.iter().enumerate() {
            if task.job >= self.jobs.len() {
                return bad_task(t, format!("job {} out of range", task.job));
            }
            if task.round >= self.jobs[task.job].rounds {
                return bad_task(t, format!("round {} out of range", task.round));
            }
            if task.p.len() != self.n_machines || task.s.len() != self.n_machines {
                return bad_task(t, "wrong machine-vector length".into());
            }
            if task.p.iter().any(|&v| !(v > 0.0 && v.is_finite())) {
                return bad_task(t, "non-positive training time".into());
            }
            if task.s.iter().any(|&v| !(v >= 0.0 && v.is_finite())) {
                return bad_task(t, "negative sync time".into());
            }
            seen[task.job][task.round as usize] += 1;
        }
        for (j, rounds) in seen.iter().enumerate() {
            for (r, &count) in rounds.iter().enumerate() {
                if count == 0 {
                    return Err(ProblemError::Job {
                        job: j,
                        why: format!("round {r} has no tasks"),
                    });
                }
            }
        }
        Ok(())
    }

    /// Fastest training time of task `t` across machines.
    pub fn p_min(&self, t: usize) -> f64 {
        self.tasks[t].p.iter().cloned().fold(f64::MAX, f64::min)
    }

    /// Slowest training time of task `t` across machines.
    pub fn p_max(&self, t: usize) -> f64 {
        self.tasks[t].p.iter().cloned().fold(f64::MIN, f64::max)
    }

    /// Fastest combined training+sync time of task `t` across machines.
    pub fn ps_min(&self, t: usize) -> f64 {
        self.tasks[t]
            .p
            .iter()
            .zip(&self.tasks[t].s)
            .map(|(&p, &s)| p + s)
            .fold(f64::MAX, f64::min)
    }

    /// The heterogeneity factor α of Lemma 3:
    /// `max_i { T^c_max/T^c_min , T^s_max/T^s_min }`.
    pub fn alpha(&self) -> f64 {
        let mut alpha: f64 = 1.0;
        for task in &self.tasks {
            let pmax = task.p.iter().cloned().fold(f64::MIN, f64::max);
            let pmin = task.p.iter().cloned().fold(f64::MAX, f64::min);
            alpha = alpha.max(pmax / pmin);
            let smax = task.s.iter().cloned().fold(f64::MIN, f64::max);
            let smin = task.s.iter().cloned().fold(f64::MAX, f64::min);
            if smin > 0.0 {
                alpha = alpha.max(smax / smin);
            }
        }
        alpha
    }

    /// Task indices of one (job, round).
    pub fn round_tasks(&self, job: usize, round: u32) -> Vec<usize> {
        self.tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.job == job && t.round == round)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of tasks.
    pub fn n_tasks(&self) -> usize {
        self.tasks.len()
    }
}

/// Convenience builder for tests and examples: machines are implicit in the
/// length of each task's time vectors.
pub struct InstanceBuilder {
    n_machines: usize,
    jobs: Vec<JobMeta>,
    tasks: Vec<TaskMeta>,
}

impl InstanceBuilder {
    /// Start an instance over `n_machines` machines.
    pub fn new(n_machines: usize) -> Self {
        InstanceBuilder {
            n_machines,
            jobs: Vec::new(),
            tasks: Vec::new(),
        }
    }

    /// Add a job; returns its index.
    pub fn job(&mut self, weight: f64, release: f64) -> usize {
        self.jobs.push(JobMeta {
            weight,
            release,
            rounds: 0,
        });
        self.jobs.len() - 1
    }

    /// Add one round to `job` with the given per-task time vectors
    /// (`p` per machine; sync times default to zero unless provided).
    pub fn round(&mut self, job: usize, tasks_p: &[Vec<f64>]) -> &mut Self {
        self.round_with_sync(
            job,
            tasks_p,
            &vec![vec![0.0; self.n_machines]; tasks_p.len()],
        )
    }

    /// Add one round with explicit sync times.
    pub fn round_with_sync(
        &mut self,
        job: usize,
        tasks_p: &[Vec<f64>],
        tasks_s: &[Vec<f64>],
    ) -> &mut Self {
        assert_eq!(tasks_p.len(), tasks_s.len());
        let round = self.jobs[job].rounds;
        self.jobs[job].rounds += 1;
        for (p, s) in tasks_p.iter().zip(tasks_s) {
            assert_eq!(p.len(), self.n_machines);
            assert_eq!(s.len(), self.n_machines);
            self.tasks.push(TaskMeta {
                job,
                round,
                p: p.clone(),
                s: s.clone(),
            });
        }
        self
    }

    /// Finish; panics if the instance is invalid.
    pub fn build(self) -> Instance {
        let inst = Instance {
            n_machines: self.n_machines,
            jobs: self.jobs,
            tasks: self.tasks,
        };
        if let Err(e) = inst.validate() {
            panic!("invalid instance: {e}");
        }
        inst
    }
}

/// The paper's Fig.-1 toy instance: 3 jobs, 3 GPUs, single-batch training
/// times from the figure's table. J1: one round of 2 parallel tasks; J2:
/// 3 rounds of 1 task; J3: 2 rounds of 2 tasks ("synchronizes every two
/// tasks"). Used by tests, examples and the `fig1` experiment binary.
pub fn fig1_instance() -> Instance {
    // Single-batch training time per GPU (GPU1, GPU2, GPU3):
    //   J1: [1.0, 1.5, 2.0], J2: [1.0, 1.5, 1.5], J3: [0.5, 1.0, 1.5]
    let mut b = InstanceBuilder::new(3);
    let j1 = b.job(1.0, 0.0);
    let j2 = b.job(1.0, 0.0);
    let j3 = b.job(1.0, 0.0);
    b.round(j1, &[vec![1.0, 1.5, 2.0], vec![1.0, 1.5, 2.0]]);
    for _ in 0..3 {
        b.round(j2, &[vec![1.0, 1.5, 1.5]]);
    }
    for _ in 0..2 {
        b.round(j3, &[vec![0.5, 1.0, 1.5], vec![0.5, 1.0, 1.5]]);
    }
    b.build()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_instances() {
        let inst = fig1_instance();
        assert!(inst.validate().is_ok());
        assert_eq!(inst.n_tasks(), 2 + 3 + 4);
        assert_eq!(inst.jobs[2].rounds, 2);
        assert_eq!(inst.round_tasks(2, 1).len(), 2);
    }

    #[test]
    fn alpha_of_fig1() {
        let inst = fig1_instance();
        // J3's 1.5/0.5 = 3 dominates.
        assert!((inst.alpha() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn p_min_max() {
        let inst = fig1_instance();
        let t = inst.round_tasks(0, 0)[0];
        assert_eq!(inst.p_min(t), 1.0);
        assert_eq!(inst.p_max(t), 2.0);
        assert_eq!(inst.ps_min(t), 1.0);
    }

    #[test]
    fn validation_catches_missing_round_tasks() {
        let inst = Instance {
            n_machines: 1,
            jobs: vec![JobMeta {
                weight: 1.0,
                release: 0.0,
                rounds: 2,
            }],
            tasks: vec![TaskMeta {
                job: 0,
                round: 0,
                p: vec![1.0],
                s: vec![0.0],
            }],
        };
        let err = inst.validate().unwrap_err();
        assert!(err.to_string().contains("round 1"), "{err}");
    }

    #[test]
    fn validation_catches_bad_times() {
        let mut inst = fig1_instance();
        inst.tasks[0].p[1] = 0.0;
        assert!(matches!(
            inst.validate(),
            Err(ProblemError::Task { task: 0, .. })
        ));
        let mut inst2 = fig1_instance();
        inst2.tasks[0].s[0] = -1.0;
        assert!(inst2.validate().is_err());
        let mut inst3 = fig1_instance();
        inst3.tasks[1].p[0] = f64::NAN;
        assert!(inst3.validate().is_err());
        let empty = Instance {
            n_machines: 0,
            jobs: vec![],
            tasks: vec![],
        };
        assert_eq!(empty.validate(), Err(ProblemError::NoMachines));
    }
}
