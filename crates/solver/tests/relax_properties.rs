//! Property tests on the relaxation solver: structural feasibility of x̂,
//! lower-bound validity against greedy feasible schedules, and mode
//! agreement on shared invariants.

use hare_solver::{certified_lower_bound, relax, Instance, JobMeta, RelaxOptions, TaskMeta};
use proptest::prelude::*;

fn instances() -> impl Strategy<Value = Instance> {
    let job = (1u32..=3, 1usize..=2, 1u32..=5, 0.0f64..5.0);
    (1usize..=3, prop::collection::vec(job, 1..=4)).prop_flat_map(|(n_machines, jobs_meta)| {
        // Per-task machine times in [0.5, 8.0].
        let total_tasks: usize = jobs_meta
            .iter()
            .map(|&(rounds, scale, _, _)| rounds as usize * scale)
            .sum();
        let times =
            prop::collection::vec(prop::collection::vec(0.5f64..8.0, n_machines), total_tasks);
        times.prop_map(move |times| {
            let mut tasks = Vec::new();
            let mut idx = 0;
            let mut jobs = Vec::new();
            for (j, &(rounds, scale, weight, release)) in jobs_meta.iter().enumerate() {
                jobs.push(JobMeta {
                    weight: weight as f64,
                    release,
                    rounds,
                });
                for r in 0..rounds {
                    for _ in 0..scale {
                        tasks.push(TaskMeta {
                            job: j,
                            round: r,
                            p: times[idx].clone(),
                            s: vec![0.1; n_machines],
                        });
                        idx += 1;
                    }
                }
            }
            Instance {
                n_machines,
                jobs,
                tasks,
            }
        })
    })
}

/// A trivially feasible schedule: every task on machine 0, in topological
/// order, back to back. Returns its Σ wC.
fn greedy_feasible_objective(inst: &Instance) -> f64 {
    let mut clock: f64 = 0.0;
    let mut completion = vec![0.0f64; inst.jobs.len()];
    // Jobs one after another, rounds in order.
    for (j, job) in inst.jobs.iter().enumerate() {
        clock = clock.max(job.release);
        for r in 0..job.rounds {
            let mut round_done = clock;
            for t in inst.round_tasks(j, r) {
                let start = clock;
                clock = start + inst.tasks[t].p[0];
                round_done = round_done.max(clock + inst.tasks[t].s[0]);
            }
            clock = round_done;
        }
        completion[j] = clock;
    }
    inst.jobs
        .iter()
        .zip(&completion)
        .map(|(job, &c)| job.weight * c)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn relaxed_starts_respect_release_and_precedence(inst in instances()) {
        for opts in [
            RelaxOptions::default(),
            RelaxOptions { lp_task_limit: 0, ..RelaxOptions::default() },
        ] {
            let sol = relax::solve(&inst, &opts);
            prop_assert_eq!(sol.x_hat.len(), inst.n_tasks());
            for (i, task) in inst.tasks.iter().enumerate() {
                prop_assert!(sol.x_hat[i] >= inst.jobs[task.job].release - 1e-6);
                prop_assert!(sol.h[i] >= sol.x_hat[i]);
            }
            for (j, job) in inst.jobs.iter().enumerate() {
                for r in 1..job.rounds {
                    let prev_done = inst
                        .round_tasks(j, r - 1)
                        .into_iter()
                        .map(|i| sol.x_hat[i] + inst.ps_min(i))
                        .fold(0.0f64, f64::max);
                    for i in inst.round_tasks(j, r) {
                        prop_assert!(
                            sol.x_hat[i] >= prev_done - 1e-6,
                            "precedence violated in mode {:?}", sol.mode
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lower_bound_is_below_any_feasible_schedule(inst in instances()) {
        let lb = certified_lower_bound(&inst);
        let feasible = greedy_feasible_objective(&inst);
        prop_assert!(lb <= feasible + 1e-6, "LB {} above a feasible value {}", lb, feasible);
        prop_assert!(lb > 0.0);
    }

    #[test]
    fn alpha_is_at_least_one_and_finite(inst in instances()) {
        let a = inst.alpha();
        prop_assert!(a >= 1.0 && a.is_finite());
    }
}
