//! Cross-validation of the two LP solvers and the warm-started cut loop.
//!
//! * The sparse revised simplex and the dense two-phase tableau must agree
//!   (objective within 1e-6) on randomized relaxation-shaped LPs — the
//!   exact row structure `relax`'s LP mode emits (release rows, completion
//!   rows, precedence rows, volume cuts: 1–2 structural nonzeros each).
//! * Warm-started cut rounds (basis kept alive across Queyranne cuts) must
//!   produce the same midpoint priority order `Hᵢ` as cold re-solves on
//!   the seed instances, since Algorithm 1 consumes only that order.

use hare_solver::{
    fig1_instance, relax, Cmp, Instance, InstanceBuilder, JobMeta, LinearProgram, LpOutcome,
    RelaxOptions, TaskMeta,
};
use proptest::prelude::*;

/// Random relaxation-shaped instances (small enough for LP mode).
fn instances() -> impl Strategy<Value = Instance> {
    let job = (1u32..=3, 1usize..=2, 1u32..=5, 0.0f64..5.0);
    (1usize..=4, prop::collection::vec(job, 1..=5)).prop_flat_map(|(n_machines, jobs_meta)| {
        let total_tasks: usize = jobs_meta
            .iter()
            .map(|&(rounds, scale, _, _)| rounds as usize * scale)
            .sum();
        let times =
            prop::collection::vec(prop::collection::vec(0.5f64..8.0, n_machines), total_tasks);
        times.prop_map(move |times| {
            let mut tasks = Vec::new();
            let mut idx = 0;
            let mut jobs = Vec::new();
            for (j, &(rounds, scale, weight, release)) in jobs_meta.iter().enumerate() {
                jobs.push(JobMeta {
                    weight: weight as f64,
                    release,
                    rounds,
                });
                for r in 0..rounds {
                    for _ in 0..scale {
                        tasks.push(TaskMeta {
                            job: j,
                            round: r,
                            p: times[idx].clone(),
                            s: vec![0.1; n_machines],
                        });
                        idx += 1;
                    }
                }
            }
            Instance {
                n_machines,
                jobs,
                tasks,
            }
        })
    })
}

/// The LP `relax`'s LP mode builds: task starts then job completions, with
/// release / completion / precedence rows, plus an optional volume cut.
fn relaxation_lp(inst: &Instance, with_cut: bool) -> LinearProgram {
    let t = inst.n_tasks();
    let n = inst.jobs.len();
    let mut objective = vec![0.0; t + n];
    for (j, job) in inst.jobs.iter().enumerate() {
        objective[t + j] = job.weight;
    }
    let mut lp = LinearProgram::minimize(objective);
    for (i, task) in inst.tasks.iter().enumerate() {
        let rel = inst.jobs[task.job].release;
        if rel > 0.0 {
            lp.constrain(vec![(i, 1.0)], Cmp::Ge, rel);
        }
    }
    for (i, task) in inst.tasks.iter().enumerate() {
        lp.constrain(
            vec![(t + task.job, 1.0), (i, -1.0)],
            Cmp::Ge,
            inst.ps_min(i),
        );
    }
    for (j_idx, job) in inst.jobs.iter().enumerate() {
        for r in 1..job.rounds {
            for i in inst.round_tasks(j_idx, r - 1) {
                let dur = inst.ps_min(i);
                for j in inst.round_tasks(j_idx, r) {
                    lp.constrain(vec![(j, 1.0), (i, -1.0)], Cmp::Ge, dur);
                }
            }
        }
    }
    if with_cut {
        // Aggregated Queyranne volume cut over all tasks.
        let m = inst.n_machines as f64;
        let sum_pmin: f64 = (0..t).map(|i| inst.p_min(i)).sum();
        let sum_pmax_sq: f64 = (0..t).map(|i| inst.p_max(i) * inst.p_max(i)).sum();
        let rhs = sum_pmin * sum_pmin / (2.0 * m) - 0.5 * sum_pmax_sq;
        lp.constrain((0..t).map(|i| (i, inst.p_max(i))).collect(), Cmp::Ge, rhs);
    }
    lp
}

/// Task indices ordered by midpoint priority, ties broken by index — the
/// order Algorithm 1 actually consumes.
fn midpoint_order(h: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..h.len()).collect();
    order.sort_by(|&a, &b| h[a].total_cmp(&h[b]).then(a.cmp(&b)));
    order
}

fn assert_same_priority_order(inst: &Instance, label: &str) {
    let warm = relax::solve(inst, &RelaxOptions::default());
    let cold = relax::solve(
        inst,
        &RelaxOptions {
            warm_start: false,
            ..RelaxOptions::default()
        },
    );
    assert_eq!(warm.mode, cold.mode, "{label}: cut counts diverged");
    for (i, (a, b)) in warm.x_hat.iter().zip(&cold.x_hat).enumerate() {
        assert!(
            (a - b).abs() < 1e-6,
            "{label}: x̂[{i}] diverged: warm {a} vs cold {b}"
        );
    }
    assert_eq!(
        midpoint_order(&warm.h),
        midpoint_order(&cold.h),
        "{label}: midpoint priority order diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn revised_and_dense_agree_on_relaxation_lps(
        inst in instances(),
        with_cut in any::<bool>(),
    ) {
        let lp = relaxation_lp(&inst, with_cut);
        match (lp.solve(), lp.solve_dense()) {
            (
                LpOutcome::Optimal { objective: r, x: rx },
                LpOutcome::Optimal { objective: d, x: dx },
            ) => {
                prop_assert!(
                    (r - d).abs() < 1e-6,
                    "objectives diverged: revised {} vs dense {}", r, d
                );
                prop_assert_eq!(rx.len(), dx.len());
            }
            (a, b) => prop_assert!(false, "outcomes diverged: {:?} vs {:?}", a, b),
        }
    }
}

#[test]
fn warm_cut_rounds_preserve_midpoint_order_on_seed_instances() {
    assert_same_priority_order(&fig1_instance(), "fig1");

    // The contended single-machine seed instance that forces cuts
    // (mirrors `lp_mode_adds_cuts_on_contended_instances`).
    let mut b = InstanceBuilder::new(1);
    for _ in 0..8 {
        let j = b.job(1.0, 0.0);
        b.round(j, &[vec![1.0]]);
    }
    assert_same_priority_order(&b.build(), "contended_8");

    // Heterogeneous two-machine seed instance with rounds and releases
    // (mirrors `heavier_jobs_do_not_change_validity`).
    let mut b = InstanceBuilder::new(2);
    let j1 = b.job(5.0, 0.0);
    let j2 = b.job(1.0, 3.0);
    b.round(j1, &[vec![2.0, 3.0], vec![2.0, 3.0]]);
    b.round(j1, &[vec![2.0, 3.0]]);
    b.round(j2, &[vec![1.0, 4.0]]);
    assert_same_priority_order(&b.build(), "weighted_hetero");
}
