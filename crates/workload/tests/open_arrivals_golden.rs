//! Golden fixture for open-arrival generation: the first 32 arrivals of
//! one pinned config per arrival process, in the canonical line format.
//!
//! The fixture proves two things:
//! * **per-seed determinism across PRs** — regenerating the pinned
//!   streams must reproduce the committed bytes exactly;
//! * **serial ≡ parallel** — generating the same stream concurrently
//!   from many threads (each iterator owns its RNG) yields byte-identical
//!   output, so harness parallelism can never perturb a workload.
//!
//! To regenerate after an *intentional* generator change:
//! `HARE_BLESS=1 cargo test -p hare-workload --test open_arrivals_golden`

#![allow(clippy::unwrap_used)]

use hare_cluster::SimDuration;
use hare_workload::{ArrivalProcess, OpenArrivalConfig};

const FIXTURE: &str = include_str!("fixtures/open_arrivals.golden");
const TAKE: usize = 32;

/// The pinned configs, one per process, labelled for the fixture header.
fn pinned() -> Vec<(&'static str, OpenArrivalConfig)> {
    let base = OpenArrivalConfig {
        load_factor: 1.2,
        capacity_jobs_per_sec: 0.04,
        n_tenants: 4,
        hot_share: 0.5,
        seed: 0xfeed,
        ..OpenArrivalConfig::default()
    };
    vec![
        ("poisson", base),
        (
            "bursty",
            OpenArrivalConfig {
                process: ArrivalProcess::Bursty {
                    on_fraction: 0.25,
                    boost: 3.0,
                    mean_cycle: SimDuration::from_secs(600),
                },
                ..base
            },
        ),
        (
            "diurnal",
            OpenArrivalConfig {
                process: ArrivalProcess::Diurnal {
                    period: SimDuration::from_secs(3600),
                    amplitude: 0.9,
                },
                ..base
            },
        ),
    ]
}

fn render() -> String {
    let mut out = String::new();
    for (label, cfg) in pinned() {
        out.push_str(&format!("# {label}\n"));
        for a in cfg.stream().take(TAKE) {
            out.push_str(&a.canonical_line());
            out.push('\n');
        }
    }
    out
}

#[test]
fn arrival_streams_match_the_committed_fixture() {
    let got = render();
    if std::env::var_os("HARE_BLESS").is_some() {
        std::fs::write(
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/tests/fixtures/open_arrivals.golden"
            ),
            &got,
        )
        .unwrap();
        return;
    }
    assert_eq!(
        got, FIXTURE,
        "open-arrival stream drifted from the golden fixture; if the \
         generator changed intentionally, re-bless with HARE_BLESS=1"
    );
}

#[test]
fn parallel_streams_are_byte_identical_to_serial() {
    let serial = render();
    // Race eight full regenerations; every one must match the serial
    // bytes exactly (each stream owns its RNG — no shared state).
    let hands: Vec<_> = (0..8).map(|_| std::thread::spawn(render)).collect();
    for h in hands {
        assert_eq!(h.join().unwrap(), serial);
    }
}
