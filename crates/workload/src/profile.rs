//! The task profiler and its history database (Section 3).
//!
//! Hare's preparation stage profiles each (job, GPU kind) pair by training a
//! small slice of data, and caches the result in a database because jobs are
//! repeatedly re-submitted ("some models are periodically re-trained").
//! This module reproduces both halves: a deterministic *measurement model*
//! (ideal batch time from the model spec plus small per-measurement noise —
//! Fig. 11 shows round times are stable to within a few percent) and a
//! thread-safe history database with hit/miss accounting.

use crate::model::ModelKind;
use hare_cluster::{GpuKind, SimDuration};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Key identifying one profiling measurement.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProfileKey {
    /// Model being profiled.
    pub model: ModelKind,
    /// GPU kind it was profiled on.
    pub gpu: GpuKind,
    /// Mini-batch size used.
    pub batch_size: u32,
}

/// One profiling result: what the scheduler knows about a (model, GPU) pair.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Expected mini-batch training time.
    pub batch_time: SimDuration,
    /// Expected GPU utilization while training (input-pipeline capped).
    pub utilization: f64,
    /// Relative round-to-round standard deviation observed while profiling.
    pub noise_frac: f64,
}

/// Thread-safe profiling database with measurement caching.
///
/// `profile()` first consults the cache; on a miss it "runs" the profiling
/// measurement (three warm-up batches plus ten timed batches, the usual
/// practice) and records the result. The number of *simulated* profiling
/// batches is reported by [`ProfileDb::profiling_cost`] so experiments can
/// account for preparation-stage overhead.
#[derive(Debug)]
pub struct ProfileDb {
    cache: RwLock<HashMap<ProfileKey, Profile>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Round-to-round noise level injected into measurements.
    noise_frac: f64,
    seed: u64,
}

/// Number of batches one profiling run trains (3 warm-up + 10 timed).
pub const PROFILING_BATCHES: u32 = 13;

impl ProfileDb {
    /// A database with the paper-calibrated noise level (±2%, Fig. 11).
    pub fn new(seed: u64) -> Self {
        ProfileDb::with_noise(seed, 0.02)
    }

    /// A database with custom measurement noise (0 disables it; useful for
    /// exact-arithmetic tests).
    pub fn with_noise(seed: u64, noise_frac: f64) -> Self {
        assert!((0.0..0.5).contains(&noise_frac), "unreasonable noise level");
        ProfileDb {
            cache: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            noise_frac,
            seed,
        }
    }

    /// Profile a (model, GPU, batch) triple, consulting the history database
    /// first. Deterministic for a given database seed.
    pub fn profile(&self, model: ModelKind, gpu: GpuKind, batch_size: u32) -> Profile {
        let key = ProfileKey {
            model,
            gpu,
            batch_size,
        };
        if let Some(p) = self.cache.read().expect("profile cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *p;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let measured = self.measure(key);
        // Double-checked: another thread may have inserted meanwhile — keep
        // the first measurement so all readers agree forever after.
        let mut w = self.cache.write().expect("profile cache poisoned");
        *w.entry(key).or_insert(measured)
    }

    /// The measurement itself: ideal time from the model spec, perturbed by
    /// the mean of `PROFILING_BATCHES - 3` noisy timed batches.
    fn measure(&self, key: ProfileKey) -> Profile {
        let ideal_ms = key.model.batch_ms_at(key.gpu, key.batch_size);
        let mut rng = SmallRng::seed_from_u64(self.seed ^ key_hash(key));
        let timed = (PROFILING_BATCHES - 3) as usize;
        let mean_noise: f64 = (0..timed)
            .map(|_| gaussian(&mut rng) * self.noise_frac)
            .sum::<f64>()
            / timed as f64;
        let measured_ms = ideal_ms * (1.0 + mean_noise).max(0.5);
        Profile {
            batch_time: SimDuration::from_millis_f64(measured_ms),
            utilization: key.model.utilization(key.gpu),
            noise_frac: self.noise_frac,
        }
    }

    /// A per-round training-time series (Fig. 11): the ideal time plus
    /// independent per-round noise. Deterministic in (db seed, inputs).
    pub fn round_series(
        &self,
        model: ModelKind,
        gpu: GpuKind,
        batch_size: u32,
        rounds: u32,
    ) -> Vec<SimDuration> {
        let ideal_ms = model.batch_ms_at(gpu, batch_size);
        let key = ProfileKey {
            model,
            gpu,
            batch_size,
        };
        let mut rng = SmallRng::seed_from_u64(self.seed ^ key_hash(key) ^ 0x5eed);
        (0..rounds)
            .map(|_| {
                let ms = ideal_ms * (1.0 + gaussian(&mut rng) * self.noise_frac).max(0.1);
                SimDuration::from_millis_f64(ms)
            })
            .collect()
    }

    /// Simulated wall-clock cost of the profiling runs performed so far
    /// (cache misses only — the whole point of the history database).
    pub fn profiling_cost(&self) -> SimDuration {
        let misses = self.misses.load(Ordering::Relaxed);
        // Approximate: a profiling batch costs about the K80 time of an
        // average workload model (~500 ms).
        SimDuration::from_millis(misses * PROFILING_BATCHES as u64 * 500)
    }

    /// (cache hits, cache misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Drop every cached measurement of `model` (all GPU kinds and batch
    /// sizes). The paper's limitation section notes that autoML-style jobs
    /// change hyper-parameters or even model structure mid-stream; when
    /// that happens the historical profiles are stale and the next
    /// `profile()` must re-measure. Returns the number of entries dropped.
    pub fn invalidate(&self, model: ModelKind) -> usize {
        let mut w = self.cache.write().expect("profile cache poisoned");
        let before = w.len();
        w.retain(|k, _| k.model != model);
        before - w.len()
    }
}

fn key_hash(key: ProfileKey) -> u64 {
    // Small deterministic mixer (FNV-style) — stable across platforms,
    // unlike `DefaultHasher`.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |b: u64| {
        h ^= b;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(key.model as u64 + 1);
    mix(key.gpu as u64 + 101);
    mix(key.batch_size as u64 + 10_007);
    h
}

/// Standard normal via Box–Muller (rand 0.8 ships no normal distribution
/// without `rand_distr`, which is outside the approved dependency set).
pub fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 > f64::EPSILON {
            let u2: f64 = rng.gen();
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn profile_is_cached_and_deterministic() {
        let db = ProfileDb::new(42);
        let a = db.profile(ModelKind::ResNet50, GpuKind::V100, 64);
        let b = db.profile(ModelKind::ResNet50, GpuKind::V100, 64);
        assert_eq!(a, b);
        assert_eq!(db.stats(), (1, 1));

        // A fresh database with the same seed reproduces the measurement.
        let db2 = ProfileDb::new(42);
        assert_eq!(db2.profile(ModelKind::ResNet50, GpuKind::V100, 64), a);
    }

    #[test]
    fn measurement_is_close_to_ideal() {
        let db = ProfileDb::new(7);
        for m in ModelKind::WORKLOAD {
            for g in GpuKind::ALL {
                let p = db.profile(m, g, m.spec().batch_size);
                let ideal = m.batch_ms(g);
                let measured = p.batch_time.as_millis_f64();
                let rel = (measured - ideal).abs() / ideal;
                assert!(rel < 0.05, "{m} on {g}: {rel:.3} off ideal");
            }
        }
    }

    #[test]
    fn zero_noise_is_exact() {
        let db = ProfileDb::with_noise(1, 0.0);
        let p = db.profile(ModelKind::GraphSage, GpuKind::K80, 16);
        assert_eq!(
            p.batch_time,
            SimDuration::from_millis_f64(ModelKind::GraphSage.batch_ms(GpuKind::K80))
        );
    }

    #[test]
    fn round_series_is_stable_like_fig11() {
        let db = ProfileDb::new(3);
        let series = db.round_series(ModelKind::Vgg19, GpuKind::V100, 128, 200);
        assert_eq!(series.len(), 200);
        let ms: Vec<f64> = series.iter().map(|d| d.as_millis_f64()).collect();
        let mean = ms.iter().sum::<f64>() / ms.len() as f64;
        let var = ms.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / ms.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv < 0.04, "round times should be stable, cv={cv:.4}");
        // But not perfectly constant — there is real noise.
        assert!(cv > 0.005, "expected some noise, cv={cv:.5}");
    }

    #[test]
    fn different_gpus_get_independent_measurements() {
        let db = ProfileDb::new(9);
        let v = db.profile(ModelKind::BertBase, GpuKind::V100, 32);
        let k = db.profile(ModelKind::BertBase, GpuKind::K80, 32);
        assert!(k.batch_time > v.batch_time * 5);
    }

    #[test]
    fn profiling_cost_counts_misses_only() {
        let db = ProfileDb::new(11);
        assert!(db.profiling_cost().is_zero());
        db.profile(ModelKind::FastGcn, GpuKind::T4, 128);
        db.profile(ModelKind::FastGcn, GpuKind::T4, 128);
        db.profile(ModelKind::FastGcn, GpuKind::T4, 128);
        let (hits, misses) = db.stats();
        assert_eq!((hits, misses), (2, 1));
        assert_eq!(
            db.profiling_cost(),
            SimDuration::from_millis(PROFILING_BATCHES as u64 * 500)
        );
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SmallRng::seed_from_u64(99);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn invalidation_forces_remeasurement() {
        let db = ProfileDb::new(8);
        db.profile(ModelKind::BertBase, GpuKind::V100, 32);
        db.profile(ModelKind::BertBase, GpuKind::K80, 32);
        db.profile(ModelKind::Vgg19, GpuKind::V100, 128);
        assert_eq!(db.invalidate(ModelKind::BertBase), 2);
        // BERT re-measures (a miss); VGG still hits.
        db.profile(ModelKind::BertBase, GpuKind::V100, 32);
        db.profile(ModelKind::Vgg19, GpuKind::V100, 128);
        let (hits, misses) = db.stats();
        assert_eq!(hits, 1);
        assert_eq!(misses, 4);
        // Re-measurement with the same seed reproduces the original value.
        let fresh = ProfileDb::new(8);
        assert_eq!(
            db.profile(ModelKind::BertBase, GpuKind::V100, 32),
            fresh.profile(ModelKind::BertBase, GpuKind::V100, 32)
        );
    }

    #[test]
    fn concurrent_profiling_agrees() {
        let db = ProfileDb::new(5);
        let results: Vec<Profile> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| db.profile(ModelKind::Transformer, GpuKind::T4, 128)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }
}
