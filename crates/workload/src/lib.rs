//! DML workload substrate for the Hare reproduction: the Table-2 model zoo
//! with per-GPU performance profiles (Fig. 2), the profiler + history
//! database of Section 3, job descriptions, and Google-trace-like workload
//! generation (Section 7.1).

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod arrivals;
pub mod csv;
pub mod job;
pub mod model;
pub mod profile;
pub mod trace;

pub use arrivals::{
    estimate_capacity_jobs_per_sec, ArrivalProcess, ArrivalStream, OpenArrival, OpenArrivalConfig,
    StreamedTrace,
};
pub use csv::{parse_model, trace_from_csv, trace_to_csv};
pub use job::{JobId, JobSpec};
pub use model::{alpha_over, Domain, ModelKind, ModelSpec};
pub use profile::{gaussian, Profile, ProfileDb, ProfileKey};
pub use trace::{large_scale_trace, testbed_trace, DomainMix, TraceConfig};
