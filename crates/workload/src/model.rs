//! The deep-learning models of the paper's workload (Table 2), plus
//! ResNet152 which the motivation experiments (Figs. 5–6) train.
//!
//! Each model carries the constants the rest of the system consumes:
//! parameter/activation footprints (memory manager), layer-group counts
//! (pipelined transfer), per-GPU relative speedups (Fig. 2), cold-start
//! framework-initialization costs (Table 3 "Default" switching), and
//! input-pipeline utilization caps (Figs. 3/6/8).
//!
//! The absolute batch times are synthesized from the paper's published
//! measurements: the Fig. 2 speedups are quoted directly (ResNet50 is 2x on
//! T4 and 7x on V100 over the K80 baseline; GraphSAGE only ~2x even on
//! V100), the rest are interpolated from the model's FLOPs class.

use hare_cluster::{Bytes, GpuKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Application domain, used for the workload-mix experiments (Fig. 17).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Computer vision (VGG-19, ResNet50, Inception V3).
    Cv,
    /// Natural language processing (BERT-base, Transformer).
    Nlp,
    /// Speech recognition (DeepSpeech).
    Speech,
    /// Recommendation / graph learning (FastGCN, GraphSAGE).
    Rec,
}

impl Domain {
    /// All domains in Table-2 order.
    pub const ALL: [Domain; 4] = [Domain::Cv, Domain::Nlp, Domain::Speech, Domain::Rec];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Domain::Cv => "CV",
            Domain::Nlp => "NLP",
            Domain::Speech => "Speech",
            Domain::Rec => "Rec",
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The models used in the paper's experiments.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// VGG-19 on Cifar10, batch 128 (Table 2).
    Vgg19,
    /// ResNet50 on Cifar100, batch 64 (Table 2).
    ResNet50,
    /// Inception V3 on Cifar100, batch 32 (Table 2).
    InceptionV3,
    /// BERT-base on SQuAD, batch 32 (Table 2).
    BertBase,
    /// Transformer on WMT16, batch 128 (Table 2).
    Transformer,
    /// DeepSpeech on CommonVoice, batch 8 (Table 2).
    DeepSpeech,
    /// FastGCN on Cora, batch 128 (Table 2).
    FastGcn,
    /// GraphSAGE on Cora, batch 16 (Table 2).
    GraphSage,
    /// ResNet152 — not in Table 2, but trained in the motivation study
    /// (Figs. 5 and 6).
    ResNet152,
}

/// Static description of one model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Display name matching the paper's tables.
    pub name: &'static str,
    /// Application domain.
    pub domain: Domain,
    /// Dataset name (Table 2).
    pub dataset: &'static str,
    /// Default mini-batch size (Table 2).
    pub batch_size: u32,
    /// FP32 parameter footprint (also the PS gradient payload basis).
    pub param_bytes: Bytes,
    /// Peak activation/workspace footprint at the default batch size.
    pub activation_bytes: Bytes,
    /// Number of layer groups used by pipelined model transmission
    /// (PipeSwitch-style grouping).
    pub layer_groups: u32,
    /// Mini-batch training time on the K80 baseline at the default batch
    /// size, in milliseconds (Fig. 2's denominator).
    pub k80_batch_ms: f64,
    /// Speedup over K80 on [V100, T4, M60] (Fig. 2).
    pub speedup: [f64; 3],
    /// Cold-start framework initialization (CUDA module load, cuDNN
    /// autotune, op graph build) on V100, in ms. This dominates the
    /// "Default" switching cost of Table 3 and scales with the GPU's
    /// `coldstart_factor`.
    pub framework_init_ms: f64,
    /// Per-switch software overhead of the pipelined runtimes (IPC, hook
    /// installation, allocator handoff) in ms — larger for models with many
    /// small tensors (BERT, Transformer). Table 3's PipeSwitch row.
    pub hook_overhead_ms: f64,
    /// GPU utilization cap on [V100, T4, M60, K80] imposed by the input
    /// pipeline (Fig. 3: GraphSAGE keeps a V100 under 30%).
    pub utilization: [f64; 4],
}

impl ModelKind {
    /// The eight Table-2 models (the workload generator draws from these).
    pub const WORKLOAD: [ModelKind; 8] = [
        ModelKind::Vgg19,
        ModelKind::ResNet50,
        ModelKind::InceptionV3,
        ModelKind::BertBase,
        ModelKind::Transformer,
        ModelKind::DeepSpeech,
        ModelKind::FastGcn,
        ModelKind::GraphSage,
    ];

    /// Every model, including ResNet152.
    pub const ALL: [ModelKind; 9] = [
        ModelKind::Vgg19,
        ModelKind::ResNet50,
        ModelKind::InceptionV3,
        ModelKind::BertBase,
        ModelKind::Transformer,
        ModelKind::DeepSpeech,
        ModelKind::FastGcn,
        ModelKind::GraphSage,
        ModelKind::ResNet152,
    ];

    /// Static description.
    pub fn spec(self) -> &'static ModelSpec {
        match self {
            ModelKind::Vgg19 => &VGG19,
            ModelKind::ResNet50 => &RESNET50,
            ModelKind::InceptionV3 => &INCEPTION_V3,
            ModelKind::BertBase => &BERT_BASE,
            ModelKind::Transformer => &TRANSFORMER,
            ModelKind::DeepSpeech => &DEEP_SPEECH,
            ModelKind::FastGcn => &FAST_GCN,
            ModelKind::GraphSage => &GRAPH_SAGE,
            ModelKind::ResNet152 => &RESNET152,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        self.spec().name
    }

    /// Application domain.
    pub fn domain(self) -> Domain {
        self.spec().domain
    }

    /// Table-2 models belonging to `domain`.
    pub fn of_domain(domain: Domain) -> Vec<ModelKind> {
        ModelKind::WORKLOAD
            .into_iter()
            .filter(|m| m.domain() == domain)
            .collect()
    }

    /// Ideal (noise-free) mini-batch training time in milliseconds on a GPU
    /// kind at the model's default batch size.
    pub fn batch_ms(self, gpu: GpuKind) -> f64 {
        let s = self.spec();
        s.k80_batch_ms / speedup_on(s, gpu)
    }

    /// Fig.-2 speedup over the K80 baseline.
    pub fn speedup(self, gpu: GpuKind) -> f64 {
        speedup_on(self.spec(), gpu)
    }

    /// Input-pipeline utilization cap on a GPU kind (0..=1).
    pub fn utilization(self, gpu: GpuKind) -> f64 {
        let s = self.spec();
        match gpu {
            GpuKind::V100 => s.utilization[0],
            GpuKind::T4 => s.utilization[1],
            GpuKind::M60 => s.utilization[2],
            GpuKind::K80 => s.utilization[3],
        }
    }

    /// Batch-time scaling when running a non-default batch size: a fixed
    /// launch/IO component (~15%) plus a per-sample component.
    pub fn batch_ms_at(self, gpu: GpuKind, batch_size: u32) -> f64 {
        assert!(batch_size > 0, "zero batch size");
        let base = self.batch_ms(gpu);
        let scale = batch_size as f64 / self.spec().batch_size as f64;
        base * (0.15 + 0.85 * scale)
    }
}

fn speedup_on(s: &ModelSpec, gpu: GpuKind) -> f64 {
    match gpu {
        GpuKind::V100 => s.speedup[0],
        GpuKind::T4 => s.speedup[1],
        GpuKind::M60 => s.speedup[2],
        GpuKind::K80 => 1.0,
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

static VGG19: ModelSpec = ModelSpec {
    name: "VGG19",
    domain: Domain::Cv,
    dataset: "Cifar10",
    batch_size: 128,
    param_bytes: Bytes::mib(548),
    activation_bytes: Bytes::mib(1500),
    layer_groups: 16,
    k80_batch_ms: 410.0,
    speedup: [6.0, 2.6, 1.5],
    framework_init_ms: 1750.0,
    hook_overhead_ms: 0.7,
    utilization: [0.97, 0.95, 0.92, 0.90],
};

static RESNET50: ModelSpec = ModelSpec {
    name: "ResNet50",
    domain: Domain::Cv,
    dataset: "Cifar100",
    batch_size: 64,
    param_bytes: Bytes::mib(98),
    activation_bytes: Bytes::mib(1200),
    layer_groups: 16,
    k80_batch_ms: 350.0,
    speedup: [7.0, 2.0, 1.4],
    framework_init_ms: 4400.0,
    hook_overhead_ms: 2.6,
    utilization: [0.98, 0.96, 0.93, 0.95],
};

static INCEPTION_V3: ModelSpec = ModelSpec {
    name: "InceptionV3",
    domain: Domain::Cv,
    dataset: "Cifar100",
    batch_size: 32,
    param_bytes: Bytes::mib(92),
    activation_bytes: Bytes::mib(1000),
    layer_groups: 14,
    k80_batch_ms: 310.0,
    speedup: [6.2, 2.3, 1.5],
    framework_init_ms: 6250.0,
    hook_overhead_ms: 2.9,
    utilization: [0.95, 0.94, 0.91, 0.92],
};

static BERT_BASE: ModelSpec = ModelSpec {
    name: "Bert_base",
    domain: Domain::Nlp,
    dataset: "SQuAD",
    batch_size: 32,
    param_bytes: Bytes::mib(420),
    activation_bytes: Bytes::mib(3000),
    layer_groups: 14,
    k80_batch_ms: 1150.0,
    speedup: [8.0, 2.8, 1.4],
    framework_init_ms: 7450.0,
    hook_overhead_ms: 9.5,
    utilization: [0.96, 0.95, 0.92, 0.93],
};

static TRANSFORMER: ModelSpec = ModelSpec {
    name: "Transformer",
    domain: Domain::Nlp,
    dataset: "WMT16",
    batch_size: 128,
    param_bytes: Bytes::mib(235),
    activation_bytes: Bytes::mib(2500),
    layer_groups: 12,
    k80_batch_ms: 900.0,
    speedup: [7.2, 2.5, 1.4],
    framework_init_ms: 3700.0,
    hook_overhead_ms: 8.0,
    utilization: [0.95, 0.94, 0.90, 0.91],
};

static DEEP_SPEECH: ModelSpec = ModelSpec {
    name: "DeepSpeech",
    domain: Domain::Speech,
    dataset: "ComVoice",
    batch_size: 8,
    param_bytes: Bytes::mib(145),
    activation_bytes: Bytes::mib(1200),
    layer_groups: 8,
    k80_batch_ms: 600.0,
    speedup: [4.8, 1.9, 1.3],
    framework_init_ms: 3570.0,
    hook_overhead_ms: 6.5,
    utilization: [0.88, 0.90, 0.87, 0.90],
};

static FAST_GCN: ModelSpec = ModelSpec {
    name: "FastGCN",
    domain: Domain::Rec,
    dataset: "Cora",
    batch_size: 128,
    param_bytes: Bytes::mib(3),
    activation_bytes: Bytes::mib(200),
    layer_groups: 2,
    k80_batch_ms: 130.0,
    speedup: [2.4, 1.5, 1.2],
    framework_init_ms: 3780.0,
    hook_overhead_ms: 1.9,
    utilization: [0.34, 0.52, 0.70, 0.80],
};

static GRAPH_SAGE: ModelSpec = ModelSpec {
    name: "GraphSAGE",
    domain: Domain::Rec,
    dataset: "Cora",
    batch_size: 16,
    param_bytes: Bytes::mib(2),
    activation_bytes: Bytes::mib(150),
    layer_groups: 2,
    k80_batch_ms: 110.0,
    speedup: [2.0, 1.4, 1.15],
    framework_init_ms: 3660.0,
    hook_overhead_ms: 1.5,
    utilization: [0.28, 0.45, 0.65, 0.82],
};

static RESNET152: ModelSpec = ModelSpec {
    name: "ResNet152",
    domain: Domain::Cv,
    dataset: "Cifar100",
    batch_size: 32,
    param_bytes: Bytes::mib(230),
    activation_bytes: Bytes::mib(2000),
    layer_groups: 24,
    k80_batch_ms: 800.0,
    speedup: [6.8, 2.1, 1.4],
    framework_init_ms: 5200.0,
    hook_overhead_ms: 3.4,
    utilization: [0.97, 0.95, 0.92, 0.94],
};

/// The largest per-task heterogeneity ratio α over a set of GPU kinds —
/// the quantity Lemma 3 and Theorem 4 are parameterized by.
pub fn alpha_over(kinds: &[GpuKind]) -> f64 {
    assert!(!kinds.is_empty());
    ModelKind::WORKLOAD
        .into_iter()
        .map(|m| {
            let times: Vec<f64> = kinds.iter().map(|&k| m.batch_ms(k)).collect();
            let max = times.iter().cloned().fold(f64::MIN, f64::max);
            let min = times.iter().cloned().fold(f64::MAX, f64::min);
            max / min
        })
        .fold(1.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_quoted_speedups_hold() {
        // "Training the ResNet50 model can be sped up by 2x on a T4 GPU,
        // while with 7x significant speedup on a V100 GPU."
        assert_eq!(ModelKind::ResNet50.speedup(GpuKind::T4), 2.0);
        assert_eq!(ModelKind::ResNet50.speedup(GpuKind::V100), 7.0);
        // "GraphSAGE can only be sped up by about 2x, even on the most
        // advanced V100 GPU."
        assert_eq!(ModelKind::GraphSage.speedup(GpuKind::V100), 2.0);
        // K80 is the baseline for everything.
        for m in ModelKind::ALL {
            assert_eq!(m.speedup(GpuKind::K80), 1.0);
        }
    }

    #[test]
    fn batch_time_is_monotone_in_speedup() {
        for m in ModelKind::ALL {
            assert!(m.batch_ms(GpuKind::V100) < m.batch_ms(GpuKind::K80));
            assert!(m.batch_ms(GpuKind::T4) < m.batch_ms(GpuKind::K80));
        }
    }

    #[test]
    fn graphsage_starves_fast_gpus() {
        // Fig. 3: utilization of a V100 training GraphSAGE is < 30%.
        assert!(ModelKind::GraphSage.utilization(GpuKind::V100) < 0.30);
        // ...but the slow K80 stays busy.
        assert!(ModelKind::GraphSage.utilization(GpuKind::K80) > 0.75);
        // Compute-bound models keep every GPU busy.
        assert!(ModelKind::ResNet50.utilization(GpuKind::V100) > 0.9);
    }

    #[test]
    fn table2_metadata() {
        assert_eq!(ModelKind::Vgg19.spec().batch_size, 128);
        assert_eq!(ModelKind::ResNet50.spec().batch_size, 64);
        assert_eq!(ModelKind::InceptionV3.spec().batch_size, 32);
        assert_eq!(ModelKind::BertBase.spec().batch_size, 32);
        assert_eq!(ModelKind::Transformer.spec().batch_size, 128);
        assert_eq!(ModelKind::DeepSpeech.spec().batch_size, 8);
        assert_eq!(ModelKind::FastGcn.spec().batch_size, 128);
        assert_eq!(ModelKind::GraphSage.spec().batch_size, 16);
        assert_eq!(ModelKind::of_domain(Domain::Cv).len(), 3);
        assert_eq!(ModelKind::of_domain(Domain::Nlp).len(), 2);
        assert_eq!(ModelKind::of_domain(Domain::Speech).len(), 1);
        assert_eq!(ModelKind::of_domain(Domain::Rec).len(), 2);
    }

    #[test]
    fn batch_scaling_has_fixed_component() {
        let m = ModelKind::ResNet50;
        let half = m.batch_ms_at(GpuKind::V100, 32);
        let full = m.batch_ms_at(GpuKind::V100, 64);
        let double = m.batch_ms_at(GpuKind::V100, 128);
        assert!((full - m.batch_ms(GpuKind::V100)).abs() < 1e-9);
        // Halving the batch does not halve the time; doubling less than doubles.
        assert!(half > full / 2.0);
        assert!(double < full * 2.0);
        assert!(half < full && full < double);
    }

    #[test]
    fn alpha_reflects_heterogeneity() {
        let homo = alpha_over(&[GpuKind::V100]);
        assert!((homo - 1.0).abs() < 1e-12);
        let mid = alpha_over(&[GpuKind::V100, GpuKind::K80]);
        let high = alpha_over(&[GpuKind::V100, GpuKind::T4, GpuKind::K80, GpuKind::M60]);
        assert!(mid > 1.0);
        assert!(high >= mid);
        // BERT's 8x V100-vs-K80 gap dominates.
        assert!((high - 8.0).abs() < 1e-9);
    }

    #[test]
    fn footprints_fit_every_gpu() {
        // Every single model must fit on the smallest GPU (M60, 8 GiB),
        // otherwise the speculative memory manager could never place it.
        for m in ModelKind::ALL {
            let s = m.spec();
            let need = s.param_bytes + s.activation_bytes;
            assert!(
                need < Bytes::gib(8),
                "{m} footprint {need} exceeds the smallest GPU"
            );
        }
    }
}
