//! Workload-trace generation.
//!
//! The paper drives its simulator with task traces collected on the testbed
//! and job arrivals from the Google cluster trace. The real Google trace is
//! not available offline, so arrivals come from a seeded *bursty* renewal
//! process (a hyper-exponential mixture whose squared coefficient of
//! variation ≈ 3, matching the published trace's burstiness); everything
//! else — the 25%-per-domain job mix, per-domain training loads, weights —
//! follows Section 7.1.

use crate::job::{JobId, JobSpec};
use crate::model::{Domain, ModelKind};
use hare_cluster::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Fractions of jobs per domain (CV, NLP, Speech, Rec); must sum to 1.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DomainMix {
    /// Fractions in [`Domain::ALL`] order.
    pub fractions: [f64; 4],
}

impl Default for DomainMix {
    /// The paper's default: every domain gets 25% of the jobs.
    fn default() -> Self {
        DomainMix {
            fractions: [0.25; 4],
        }
    }
}

impl DomainMix {
    /// A mix emphasising one domain at `frac`, splitting the remainder
    /// evenly — the Fig.-17 sweep ("we then increase one of them and keep
    /// others the same" relative shares).
    pub fn emphasising(domain: Domain, frac: f64) -> Self {
        assert!((0.0..=1.0).contains(&frac));
        let rest = (1.0 - frac) / 3.0;
        let mut fractions = [rest; 4];
        let idx = Domain::ALL
            .iter()
            .position(|&d| d == domain)
            .expect("Domain::ALL lists every variant");
        fractions[idx] = frac;
        DomainMix { fractions }
    }

    /// Fraction for one domain.
    pub fn fraction(&self, domain: Domain) -> f64 {
        let idx = Domain::ALL
            .iter()
            .position(|&d| d == domain)
            .expect("Domain::ALL lists every variant");
        self.fractions[idx]
    }

    fn validate(&self) {
        let sum: f64 = self.fractions.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "domain mix must sum to 1, got {sum}"
        );
        assert!(self.fractions.iter().all(|&f| f >= 0.0));
    }
}

/// Configuration of a synthetic workload trace.
///
/// ```
/// use hare_workload::TraceConfig;
///
/// let jobs = TraceConfig { n_jobs: 8, seed: 1, ..Default::default() }.generate();
/// assert_eq!(jobs.len(), 8);
/// // Deterministic: the same config always yields the same trace.
/// assert_eq!(jobs, TraceConfig { n_jobs: 8, seed: 1, ..Default::default() }.generate());
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of jobs to generate.
    pub n_jobs: u32,
    /// Domain mix (defaults to 25% each).
    pub mix: DomainMix,
    /// Mean inter-arrival time between jobs.
    pub mean_interarrival: SimDuration,
    /// Burstiness: probability that the next gap is a short intra-burst gap.
    /// 0 gives a plain Poisson process.
    pub burstiness: f64,
    /// Batch-size multiplier applied to every job's Table-2 default
    /// (the Fig.-19 sweep; 1.0 is B₀).
    pub batch_scale: f64,
    /// RNG seed; two configs with equal fields generate identical traces.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            n_jobs: 40,
            mix: DomainMix::default(),
            mean_interarrival: SimDuration::from_secs(20),
            burstiness: 0.75,
            batch_scale: 1.0,
            seed: 0xa11ce,
        }
    }
}

impl TraceConfig {
    /// Generate the trace: `n_jobs` jobs sorted by arrival time with dense
    /// ids in arrival order.
    pub fn generate(&self) -> Vec<JobSpec> {
        self.mix.validate();
        assert!(self.n_jobs > 0, "empty trace");
        assert!((0.0..1.0).contains(&self.burstiness));
        assert!(self.batch_scale > 0.0 && self.batch_scale.is_finite());

        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut t = SimTime::ZERO;
        let mut jobs = Vec::with_capacity(self.n_jobs as usize);
        for i in 0..self.n_jobs {
            let domain = self.draw_domain(&mut rng);
            let model = draw_model(domain, &mut rng);
            let (rounds, batches) = draw_load(domain, &mut rng);
            let sync_scale = draw_sync_scale(&mut rng);
            let weight = rng.gen_range(1..=5) as f64;
            let batch_size =
                ((model.spec().batch_size as f64 * self.batch_scale).round() as u32).max(1);
            // A batch-size change does not change how much data a task
            // trains: bigger batches mean fewer iterations (Fig. 19's
            // premise — otherwise batch size would just scale total work).
            let batches = ((batches as f64 / self.batch_scale).round() as u32).max(1);
            jobs.push(
                JobSpec::new(JobId(i), model, rounds, sync_scale)
                    .arriving_at(t)
                    .with_weight(weight)
                    .with_batch_size(batch_size)
                    .with_batches_per_task(batches),
            );
            t += self.draw_gap(&mut rng);
        }
        jobs
    }

    fn draw_domain(&self, rng: &mut SmallRng) -> Domain {
        draw_domain(&self.mix, rng)
    }

    /// Hyper-exponential inter-arrival gap: with probability `burstiness`
    /// a short intra-burst gap, otherwise a long inter-burst gap; the
    /// mixture mean equals `mean_interarrival`.
    fn draw_gap(&self, rng: &mut SmallRng) -> SimDuration {
        let mean = self.mean_interarrival.as_secs_f64();
        let q = self.burstiness;
        // Short gaps at 20% of the mean; the long branch absorbs the rest so
        // that q*short + (1-q)*long = mean.
        let short = 0.2 * mean;
        let long = (mean - q * short) / (1.0 - q);
        let branch_mean = if rng.gen::<f64>() < q { short } else { long };
        SimDuration::from_secs_f64(exponential(rng, branch_mean))
    }
}

/// Draw a domain according to `mix` (shared with the open-arrival
/// generator in [`crate::arrivals`] so closed traces and open streams
/// sample jobs from one distribution).
pub(crate) fn draw_domain(mix: &DomainMix, rng: &mut SmallRng) -> Domain {
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, &f) in mix.fractions.iter().enumerate() {
        acc += f;
        if u < acc {
            return Domain::ALL[i];
        }
    }
    *Domain::ALL.last().expect("Domain::ALL is non-empty")
}

pub(crate) fn draw_model(domain: Domain, rng: &mut SmallRng) -> ModelKind {
    let models = ModelKind::of_domain(domain);
    models[rng.gen_range(0..models.len())]
}

/// Per-domain training load: NLP jobs carry "more training rounds and more
/// training time" (Section 7.3, Fig. 17), Rec jobs the least.
pub(crate) fn draw_load(domain: Domain, rng: &mut SmallRng) -> (u32, u32) {
    let (rounds_lo, rounds_hi, batches_lo, batches_hi) = match domain {
        Domain::Cv => (24, 60, 30, 70),
        Domain::Nlp => (40, 100, 40, 90),
        Domain::Speech => (30, 80, 30, 70),
        Domain::Rec => (16, 48, 20, 50),
    };
    (
        rng.gen_range(rounds_lo..=rounds_hi),
        rng.gen_range(batches_lo..=batches_hi),
    )
}

/// Synchronization scale |D_r|: mostly small gangs with an occasional wide
/// job (the wide tail is what makes gang schedulers' head-of-line blocking
/// expensive in practice).
pub(crate) fn draw_sync_scale(rng: &mut SmallRng) -> u32 {
    const CHOICES: [u32; 8] = [1, 1, 2, 2, 2, 3, 4, 6];
    CHOICES[rng.gen_range(0..CHOICES.len())]
}

pub(crate) fn exponential(rng: &mut SmallRng, mean: f64) -> f64 {
    let u: f64 = rng.gen();
    -mean * (1.0 - u).ln()
}

/// Canonical workload for the testbed experiments (Figs. 12–13): 40 jobs,
/// default mix, arrivals over roughly the first quarter hour.
pub fn testbed_trace(seed: u64) -> Vec<JobSpec> {
    TraceConfig {
        n_jobs: 40,
        seed,
        ..TraceConfig::default()
    }
    .generate()
}

/// Canonical large-scale workload for the simulator experiments
/// (Figs. 14–19): denser arrivals, configurable size and mix.
pub fn large_scale_trace(n_jobs: u32, mix: DomainMix, seed: u64) -> Vec<JobSpec> {
    TraceConfig {
        n_jobs,
        mix,
        mean_interarrival: SimDuration::from_secs(5),
        seed,
        ..TraceConfig::default()
    }
    .generate()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic() {
        let a = TraceConfig::default().generate();
        let b = TraceConfig::default().generate();
        assert_eq!(a, b);
        let c = TraceConfig {
            seed: 1,
            ..TraceConfig::default()
        }
        .generate();
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_are_sorted_and_ids_dense() {
        let jobs = TraceConfig::default().generate();
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, JobId(i as u32));
            assert!(j.validate().is_ok());
        }
        for w in jobs.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
    }

    #[test]
    fn default_mix_is_roughly_uniform() {
        let jobs = TraceConfig {
            n_jobs: 4000,
            ..TraceConfig::default()
        }
        .generate();
        for d in Domain::ALL {
            let frac =
                jobs.iter().filter(|j| j.model.domain() == d).count() as f64 / jobs.len() as f64;
            assert!((frac - 0.25).abs() < 0.03, "{d}: {frac:.3}");
        }
    }

    #[test]
    fn emphasised_mix_shifts_fractions() {
        let mix = DomainMix::emphasising(Domain::Nlp, 0.55);
        assert!((mix.fraction(Domain::Nlp) - 0.55).abs() < 1e-12);
        assert!((mix.fractions.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let jobs = TraceConfig {
            n_jobs: 4000,
            mix,
            ..TraceConfig::default()
        }
        .generate();
        let nlp = jobs
            .iter()
            .filter(|j| j.model.domain() == Domain::Nlp)
            .count() as f64
            / jobs.len() as f64;
        assert!((nlp - 0.55).abs() < 0.03, "nlp={nlp:.3}");
    }

    #[test]
    fn interarrival_mean_matches_config() {
        let cfg = TraceConfig {
            n_jobs: 5000,
            mean_interarrival: SimDuration::from_secs(10),
            ..TraceConfig::default()
        };
        let jobs = cfg.generate();
        let span = jobs.last().unwrap().arrival.as_secs_f64();
        let mean = span / (jobs.len() - 1) as f64;
        assert!((mean - 10.0).abs() < 1.0, "observed mean gap {mean:.2}s");
    }

    #[test]
    fn bursty_arrivals_have_high_variance() {
        let bursty = TraceConfig {
            n_jobs: 5000,
            burstiness: 0.75,
            ..TraceConfig::default()
        }
        .generate();
        let poisson = TraceConfig {
            n_jobs: 5000,
            burstiness: 0.0,
            ..TraceConfig::default()
        }
        .generate();
        let cv2 = |jobs: &[JobSpec]| {
            let gaps: Vec<f64> = jobs
                .windows(2)
                .map(|w| (w[1].arrival - w[0].arrival).as_secs_f64())
                .collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        let b = cv2(&bursty);
        let p = cv2(&poisson);
        assert!(
            b > 2.0,
            "bursty trace should have CV^2 well above 1, got {b:.2}"
        );
        assert!(
            (p - 1.0).abs() < 0.25,
            "poisson trace should have CV^2 ~ 1, got {p:.2}"
        );
    }

    #[test]
    fn nlp_jobs_are_heavier_rec_lighter() {
        let jobs = TraceConfig {
            n_jobs: 4000,
            ..TraceConfig::default()
        }
        .generate();
        let mean_rounds = |d: Domain| {
            let v: Vec<u32> = jobs
                .iter()
                .filter(|j| j.model.domain() == d)
                .map(|j| j.rounds)
                .collect();
            v.iter().sum::<u32>() as f64 / v.len() as f64
        };
        assert!(mean_rounds(Domain::Nlp) > mean_rounds(Domain::Cv));
        assert!(mean_rounds(Domain::Rec) < mean_rounds(Domain::Cv));
    }

    #[test]
    fn batch_scale_applies_to_every_job() {
        let jobs = TraceConfig {
            n_jobs: 100,
            batch_scale: 2.0,
            ..TraceConfig::default()
        }
        .generate();
        for j in &jobs {
            assert_eq!(j.batch_size, j.model.spec().batch_size * 2);
        }
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_mix_is_rejected() {
        let cfg = TraceConfig {
            mix: DomainMix {
                fractions: [0.5, 0.5, 0.5, 0.5],
            },
            ..TraceConfig::default()
        };
        cfg.generate();
    }
}
