//! DML job descriptions.
//!
//! A job `n` trains one model for `rounds` synchronized training rounds; each
//! round launches `sync_scale` parallel tasks (the set `D_r` of the paper),
//! and each task trains `batches_per_task` mini-batches before pushing
//! gradients to the job's parameter server. The relaxed scale-fixed scheme
//! keeps `sync_scale` constant across rounds but does *not* require that many
//! simultaneously free GPUs (Section 2.2.3).

use crate::model::ModelKind;
use hare_cluster::{GpuKind, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense job identifier.
#[derive(
    Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct JobId(pub u32);

impl JobId {
    /// Index into dense per-job arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "J{}", self.0)
    }
}

/// One DML training job.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Dense identifier (index into the trace).
    pub id: JobId,
    /// Model being trained.
    pub model: ModelKind,
    /// Mini-batch size (defaults to the Table-2 value for the model).
    pub batch_size: u32,
    /// Number of synchronized training rounds `|R_n|`.
    pub rounds: u32,
    /// Parallel tasks per round `|D_r|` (the fixed synchronization scale).
    pub sync_scale: u32,
    /// Mini-batches each task trains before synchronizing.
    pub batches_per_task: u32,
    /// Job weight `w_n` in the Σ wₙCₙ objective.
    pub weight: f64,
    /// Arrival time `a_n`.
    pub arrival: SimTime,
}

impl JobSpec {
    /// A job with the model's default batch size, weight 1, arriving at t=0.
    pub fn new(id: JobId, model: ModelKind, rounds: u32, sync_scale: u32) -> Self {
        JobSpec {
            id,
            model,
            batch_size: model.spec().batch_size,
            rounds,
            sync_scale,
            batches_per_task: 50,
            weight: 1.0,
            arrival: SimTime::ZERO,
        }
    }

    /// Builder: arrival time.
    pub fn arriving_at(mut self, t: SimTime) -> Self {
        self.arrival = t;
        self
    }

    /// Builder: weight.
    pub fn with_weight(mut self, w: f64) -> Self {
        assert!(w > 0.0, "non-positive job weight");
        self.weight = w;
        self
    }

    /// Builder: batch size.
    pub fn with_batch_size(mut self, b: u32) -> Self {
        assert!(b > 0, "zero batch size");
        self.batch_size = b;
        self
    }

    /// Builder: mini-batches per task.
    pub fn with_batches_per_task(mut self, b: u32) -> Self {
        assert!(b > 0, "zero batches per task");
        self.batches_per_task = b;
        self
    }

    /// Total number of tasks this job expands into.
    pub fn task_count(&self) -> u32 {
        self.rounds * self.sync_scale
    }

    /// Ideal (noise-free) training time of one of this job's tasks on a GPU
    /// kind, in milliseconds.
    pub fn task_ms(&self, gpu: GpuKind) -> f64 {
        self.model.batch_ms_at(gpu, self.batch_size) * self.batches_per_task as f64
    }

    /// Best-case sequential work: all tasks on the fastest kind available,
    /// ignoring synchronization — a lower bound used by SRTF-style policies.
    pub fn best_case_ms(&self, kinds: &[GpuKind]) -> f64 {
        assert!(!kinds.is_empty());
        let best = kinds
            .iter()
            .map(|&k| self.task_ms(k))
            .fold(f64::MAX, f64::min);
        best * self.rounds as f64
    }

    /// Basic validity checks (positive rounds/scales, sane sizes).
    pub fn validate(&self) -> Result<(), String> {
        if self.rounds == 0 {
            return Err(format!("{}: zero rounds", self.id));
        }
        if self.sync_scale == 0 {
            return Err(format!("{}: zero sync scale", self.id));
        }
        if self.batch_size == 0 {
            return Err(format!("{}: zero batch size", self.id));
        }
        if self.batches_per_task == 0 {
            return Err(format!("{}: zero batches per task", self.id));
        }
        if !(self.weight > 0.0 && self.weight.is_finite()) {
            return Err(format!("{}: invalid weight {}", self.id, self.weight));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let j = JobSpec::new(JobId(3), ModelKind::BertBase, 10, 2)
            .arriving_at(SimTime::from_secs(5))
            .with_weight(2.5)
            .with_batch_size(16)
            .with_batches_per_task(20);
        assert_eq!(j.id, JobId(3));
        assert_eq!(j.task_count(), 20);
        assert_eq!(j.arrival, SimTime::from_secs(5));
        assert_eq!(j.weight, 2.5);
        assert!(j.validate().is_ok());
    }

    #[test]
    fn task_time_scales_with_batches() {
        let j = JobSpec::new(JobId(0), ModelKind::ResNet50, 5, 1).with_batches_per_task(100);
        let per_batch = ModelKind::ResNet50.batch_ms(GpuKind::V100);
        assert!((j.task_ms(GpuKind::V100) - per_batch * 100.0).abs() < 1e-9);
    }

    #[test]
    fn best_case_uses_fastest_kind() {
        let j = JobSpec::new(JobId(0), ModelKind::ResNet50, 10, 2);
        let hetero = j.best_case_ms(&[GpuKind::K80, GpuKind::V100]);
        let v100_only = j.best_case_ms(&[GpuKind::V100]);
        assert!((hetero - v100_only).abs() < 1e-9);
        assert!(hetero < j.best_case_ms(&[GpuKind::K80]));
    }

    #[test]
    fn validation_catches_degenerate_jobs() {
        let good = JobSpec::new(JobId(0), ModelKind::Vgg19, 1, 1);
        assert!(good.validate().is_ok());
        let mut bad = good;
        bad.rounds = 0;
        assert!(bad.validate().is_err());
        let mut bad = good;
        bad.weight = f64::NAN;
        assert!(bad.validate().is_err());
    }
}
