//! Plain-text (CSV) trace exchange.
//!
//! The paper's simulator is *trace-driven*: it replays task traces
//! collected from the testbed. This module lets users persist and reload
//! job traces as a simple CSV, so real cluster logs can be fed to the
//! schedulers without recompiling. Hand-rolled (no CSV crate): the format
//! has a fixed schema and no quoting needs.
//!
//! Schema (header required):
//! `job,model,batch_size,rounds,sync_scale,batches_per_task,weight,arrival_us`

use crate::job::{JobId, JobSpec};
use crate::model::ModelKind;
use hare_cluster::SimTime;
use std::fmt::Write as _;

/// Header line of the trace schema.
pub const HEADER: &str =
    "job,model,batch_size,rounds,sync_scale,batches_per_task,weight,arrival_us";

/// Serialize a trace to CSV.
pub fn trace_to_csv(jobs: &[JobSpec]) -> String {
    let mut out = String::with_capacity(64 * (jobs.len() + 1));
    out.push_str(HEADER);
    out.push('\n');
    for j in jobs {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{}",
            j.id.0,
            j.model.name(),
            j.batch_size,
            j.rounds,
            j.sync_scale,
            j.batches_per_task,
            j.weight,
            j.arrival.as_micros()
        );
    }
    out
}

/// Parse a trace from CSV. Jobs are re-indexed densely in file order (the
/// `job` column is informational); arrival order is enforced.
pub fn trace_from_csv(text: &str) -> Result<Vec<JobSpec>, String> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == HEADER => {}
        Some((_, h)) => return Err(format!("bad header: {h:?} (expected {HEADER:?})")),
        None => return Err("empty trace file".into()),
    }
    let mut jobs = Vec::new();
    for (lineno, line) in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 8 {
            return Err(format!("line {}: expected 8 fields", lineno + 1));
        }
        let model = parse_model(fields[1])
            .ok_or_else(|| format!("line {}: unknown model {:?}", lineno + 1, fields[1]))?;
        let parse_u32 = |i: usize, name: &str| -> Result<u32, String> {
            fields[i]
                .trim()
                .parse()
                .map_err(|_| format!("line {}: bad {name} {:?}", lineno + 1, fields[i]))
        };
        let weight: f64 = fields[6]
            .trim()
            .parse()
            .map_err(|_| format!("line {}: bad weight {:?}", lineno + 1, fields[6]))?;
        let arrival_us: u64 = fields[7]
            .trim()
            .parse()
            .map_err(|_| format!("line {}: bad arrival {:?}", lineno + 1, fields[7]))?;
        let spec = JobSpec::new(
            JobId(jobs.len() as u32),
            model,
            parse_u32(3, "rounds")?,
            parse_u32(4, "sync_scale")?,
        )
        .with_batch_size(parse_u32(2, "batch_size")?)
        .with_batches_per_task(parse_u32(5, "batches_per_task")?)
        .with_weight(weight)
        .arriving_at(SimTime::from_micros(arrival_us));
        spec.validate()
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        jobs.push(spec);
    }
    if jobs.is_empty() {
        return Err("trace has no jobs".into());
    }
    for w in jobs.windows(2) {
        if w[1].arrival < w[0].arrival {
            return Err(format!(
                "arrivals out of order: {} after {}",
                w[1].id, w[0].id
            ));
        }
    }
    Ok(jobs)
}

/// Model lookup by (case-insensitive) display name.
pub fn parse_model(name: &str) -> Option<ModelKind> {
    ModelKind::ALL
        .into_iter()
        .find(|m| m.name().eq_ignore_ascii_case(name.trim()))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::trace::testbed_trace;

    #[test]
    fn roundtrip_preserves_everything() {
        let jobs = testbed_trace(9);
        let csv = trace_to_csv(&jobs);
        let parsed = trace_from_csv(&csv).unwrap();
        assert_eq!(jobs, parsed);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let csv = format!("{HEADER}\n# comment\n\n0,ResNet50,64,10,2,50,1.5,12345\n");
        let jobs = trace_from_csv(&csv).unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].model, ModelKind::ResNet50);
        assert_eq!(jobs[0].weight, 1.5);
        assert_eq!(jobs[0].arrival.as_micros(), 12345);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(trace_from_csv("").unwrap_err().contains("empty"));
        assert!(trace_from_csv("a,b\n").unwrap_err().contains("bad header"));
        let bad_model = format!("{HEADER}\n0,NotAModel,64,10,2,50,1,0\n");
        assert!(trace_from_csv(&bad_model)
            .unwrap_err()
            .contains("unknown model"));
        let bad_rounds = format!("{HEADER}\n0,ResNet50,64,zero,2,50,1,0\n");
        assert!(trace_from_csv(&bad_rounds).unwrap_err().contains("rounds"));
        let invalid = format!("{HEADER}\n0,ResNet50,64,0,2,50,1,0\n");
        assert!(trace_from_csv(&invalid).unwrap_err().contains("rounds"));
        let disorder = format!("{HEADER}\n0,ResNet50,64,1,1,50,1,100\n1,ResNet50,64,1,1,50,1,50\n");
        assert!(trace_from_csv(&disorder)
            .unwrap_err()
            .contains("out of order"));
    }

    #[test]
    fn model_names_parse_case_insensitively() {
        assert_eq!(parse_model("graphsage"), Some(ModelKind::GraphSage));
        assert_eq!(parse_model(" Bert_base "), Some(ModelKind::BertBase));
        assert_eq!(parse_model("resnet152"), Some(ModelKind::ResNet152));
        assert_eq!(parse_model("gpt4"), None);
    }
}
