//! Open-loop arrival generation for the continuous-service mode.
//!
//! The closed traces of [`crate::trace`] materialize a fixed job list up
//! front; a production scheduler instead absorbs an *open* stream whose
//! offered rate does not care whether the cluster keeps up. This module
//! generates such streams lazily — one arrival at a time, never a
//! materialized trace — from three classic processes:
//!
//! * **Poisson** — memoryless, the M/G baseline;
//! * **Bursty** — an MMPP-style on/off modulated Poisson process: long
//!   quiet phases punctuated by high-rate bursts, same long-run mean rate;
//! * **Diurnal** — sinusoidal rate modulation (a day/night cycle),
//!   sampled by thinning against the peak rate.
//!
//! The offered rate is a *load-factor dial*: `rate = load_factor ×
//! capacity_jobs_per_sec`, where capacity comes from
//! [`estimate_capacity_jobs_per_sec`] (or any estimate the caller trusts).
//! `load_factor > 1` is sustained overload by construction.
//!
//! Everything is seeded and deterministic: the same
//! [`OpenArrivalConfig`] yields a byte-identical stream whether iterated
//! on one thread or many (each iterator owns its RNG), a property the
//! golden-fixture test pins down.

use crate::job::{JobId, JobSpec};
use crate::trace::{draw_domain, draw_load, draw_model, draw_sync_scale, exponential, DomainMix};
use hare_cluster::{GpuKind, SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The arrival process shaping *when* jobs arrive (the job bodies are
/// drawn from the same per-domain distributions as [`crate::TraceConfig`]).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at the configured mean rate.
    Poisson,
    /// MMPP-style on/off modulation: during an *on* phase the rate is
    /// `boost ×` the mean, during *off* phases it drops so the long-run
    /// mean rate is unchanged.
    Bursty {
        /// Fraction of time spent in the on (burst) phase, in (0, 1).
        on_fraction: f64,
        /// Rate multiplier during bursts; must satisfy
        /// `boost ≤ 1 / on_fraction` so the off-phase rate stays ≥ 0.
        boost: f64,
        /// Mean duration of one on+off cycle.
        mean_cycle: SimDuration,
    },
    /// Sinusoidal day/night modulation:
    /// `rate(t) = mean × (1 + amplitude·sin(2πt/period))`.
    Diurnal {
        /// Cycle length (a "day").
        period: SimDuration,
        /// Peak-to-mean swing, in [0, 1).
        amplitude: f64,
    },
}

/// Configuration of an open arrival stream.
///
/// ```
/// use hare_workload::{ArrivalProcess, OpenArrivalConfig};
///
/// let cfg = OpenArrivalConfig {
///     load_factor: 0.5,
///     capacity_jobs_per_sec: 0.1,
///     seed: 7,
///     ..OpenArrivalConfig::default()
/// };
/// let first: Vec<_> = cfg.stream().take(5).collect();
/// // Deterministic: same config, same stream.
/// let again: Vec<_> = cfg.stream().take(5).collect();
/// assert_eq!(first, again);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OpenArrivalConfig {
    /// Arrival process shape.
    pub process: ArrivalProcess,
    /// Offered load relative to `capacity_jobs_per_sec`; > 1 is sustained
    /// overload.
    pub load_factor: f64,
    /// Estimated cluster service capacity in jobs/second (see
    /// [`estimate_capacity_jobs_per_sec`]).
    pub capacity_jobs_per_sec: f64,
    /// Domain mix of the generated jobs.
    pub mix: DomainMix,
    /// Batch-size multiplier (as in [`crate::TraceConfig`]).
    pub batch_scale: f64,
    /// Number of tenants submitting jobs.
    pub n_tenants: u32,
    /// Fraction of arrivals funneled to tenant 0 *before* the uniform
    /// draw over all tenants (0 = uniform). A hot tenant exercises the
    /// fair-share quota machinery.
    pub hot_share: f64,
    /// RNG seed; equal configs generate identical streams.
    pub seed: u64,
}

impl Default for OpenArrivalConfig {
    fn default() -> Self {
        OpenArrivalConfig {
            process: ArrivalProcess::Poisson,
            load_factor: 0.8,
            capacity_jobs_per_sec: 0.05,
            mix: DomainMix::default(),
            batch_scale: 1.0,
            n_tenants: 4,
            hot_share: 0.0,
            seed: 0x0b5e12,
        }
    }
}

/// One arrival of the open stream: the job plus the tenant submitting it.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OpenArrival {
    /// The job; `spec.arrival` is the arrival instant, ids are dense in
    /// arrival order.
    pub spec: JobSpec,
    /// Submitting tenant, in `0..n_tenants`.
    pub tenant: u32,
}

impl OpenArrival {
    /// Canonical single-line encoding, the golden-fixture format: every
    /// field that determines scheduling behaviour, tab-separated, with
    /// the arrival in integer microseconds and the weight in bit-exact
    /// hex — byte-identical across platforms.
    pub fn canonical_line(&self) -> String {
        let s = &self.spec;
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:016x}",
            s.id.0,
            s.arrival.as_micros(),
            self.tenant,
            s.model,
            s.rounds,
            s.sync_scale,
            s.batches_per_task,
            s.batch_size,
            s.weight.to_bits(),
        )
    }
}

impl OpenArrivalConfig {
    /// Default sample count for [`estimate_capacity_jobs_per_sec`]: enough
    /// draws that the mean job body is stable across seeds, small enough
    /// that calibration stays instant. One named constant instead of a
    /// magic `128` at every call site — calibrations that should agree
    /// byte-for-byte (serve loop, recovery round-trips, scheduler tests)
    /// must sample identically, or their capacity estimates (and thus
    /// every downstream arrival time) silently diverge.
    pub const CAPACITY_SAMPLES: u32 = 128;

    /// Offered arrival rate in jobs/second.
    pub fn rate_jobs_per_sec(&self) -> f64 {
        self.load_factor * self.capacity_jobs_per_sec
    }

    /// Calibrate `capacity_jobs_per_sec` against a cluster's GPU census
    /// with the default sample count — the common call-site shape of
    /// [`estimate_capacity_jobs_per_sec`].
    pub fn calibrated(mut self, kinds: &[(GpuKind, u32)]) -> Self {
        self.capacity_jobs_per_sec =
            estimate_capacity_jobs_per_sec(kinds, &self, Self::CAPACITY_SAMPLES);
        self
    }

    /// The lazy, infinite arrival stream. Each call returns a fresh
    /// iterator from the seed — streams are independent and identical.
    pub fn stream(&self) -> ArrivalStream {
        assert!(
            self.load_factor > 0.0 && self.load_factor.is_finite(),
            "load factor must be positive"
        );
        assert!(
            self.capacity_jobs_per_sec > 0.0 && self.capacity_jobs_per_sec.is_finite(),
            "capacity must be positive"
        );
        assert!(self.n_tenants > 0, "need at least one tenant");
        assert!((0.0..=1.0).contains(&self.hot_share));
        assert!(self.batch_scale > 0.0 && self.batch_scale.is_finite());
        if let ArrivalProcess::Bursty {
            on_fraction, boost, ..
        } = self.process
        {
            assert!((0.0..1.0).contains(&on_fraction) && on_fraction > 0.0);
            assert!(
                boost >= 1.0 && boost <= 1.0 / on_fraction,
                "burst boost must keep the off-phase rate non-negative"
            );
        }
        if let ArrivalProcess::Diurnal { amplitude, .. } = self.process {
            assert!((0.0..1.0).contains(&amplitude));
        }
        ArrivalStream {
            cfg: *self,
            rng: SmallRng::seed_from_u64(self.seed),
            t: SimTime::ZERO,
            next_id: 0,
            phase_on: false,
            phase_end: SimTime::ZERO,
        }
    }
}

/// Infinite iterator over [`OpenArrival`]s; owns its RNG, so concurrent
/// streams from the same config never interfere.
#[derive(Clone, Debug)]
pub struct ArrivalStream {
    cfg: OpenArrivalConfig,
    rng: SmallRng,
    t: SimTime,
    next_id: u32,
    /// MMPP phase state (bursty process only); streams start *off*.
    phase_on: bool,
    phase_end: SimTime,
}

impl ArrivalStream {
    /// Resumable cursor: the number of arrivals emitted so far. A fresh
    /// stream fast-forwarded to another stream's cursor produces exactly
    /// the arrivals the other stream would produce next — the property
    /// the serve-mode crash snapshots rely on (the RNG itself is not
    /// serialized; the cursor is).
    pub fn cursor(&self) -> u64 {
        self.next_id as u64
    }

    /// Draw and discard arrivals until `cursor() == n`. Panics if the
    /// stream is already past `n` — a cursor cannot rewind.
    pub fn fast_forward(&mut self, n: u64) {
        assert!(self.cursor() <= n, "arrival cursor cannot rewind");
        while self.cursor() < n {
            let _ = self.next();
        }
    }

    /// Advance `self.t` to the next arrival instant.
    fn advance(&mut self) {
        let rate = self.cfg.rate_jobs_per_sec();
        match self.cfg.process {
            ArrivalProcess::Poisson => {
                let gap = exponential(&mut self.rng, 1.0 / rate);
                self.t += SimDuration::from_secs_f64(gap);
            }
            ArrivalProcess::Bursty {
                on_fraction,
                boost,
                mean_cycle,
            } => {
                // Explicit two-state MMPP. Within a phase arrivals are
                // Poisson at the phase rate; a candidate gap crossing the
                // phase boundary is discarded and redrawn in the next
                // phase — valid because the exponential is memoryless.
                let rate_on = rate * boost;
                let rate_off = rate * (1.0 - on_fraction * boost) / (1.0 - on_fraction);
                loop {
                    if self.t >= self.phase_end {
                        self.phase_on = !self.phase_on;
                        let mean_phase = mean_cycle.as_secs_f64()
                            * if self.phase_on {
                                on_fraction
                            } else {
                                1.0 - on_fraction
                            };
                        let len = exponential(&mut self.rng, mean_phase);
                        self.phase_end += SimDuration::from_secs_f64(len);
                        continue;
                    }
                    let phase_rate = if self.phase_on { rate_on } else { rate_off };
                    if phase_rate <= 0.0 {
                        self.t = self.phase_end;
                        continue;
                    }
                    let gap =
                        SimDuration::from_secs_f64(exponential(&mut self.rng, 1.0 / phase_rate));
                    if self.t + gap <= self.phase_end {
                        self.t += gap;
                        return;
                    }
                    self.t = self.phase_end;
                }
            }
            ArrivalProcess::Diurnal { period, amplitude } => {
                // Thinning (Lewis–Shedler) against the peak rate: draw
                // candidates at rate_max, accept with rate(t)/rate_max.
                let rate_max = rate * (1.0 + amplitude);
                loop {
                    let gap = exponential(&mut self.rng, 1.0 / rate_max);
                    self.t += SimDuration::from_secs_f64(gap);
                    let phase =
                        2.0 * std::f64::consts::PI * self.t.as_secs_f64() / period.as_secs_f64();
                    let rate_t = rate * (1.0 + amplitude * phase.sin());
                    let u: f64 = self.rng.gen();
                    if u * rate_max < rate_t {
                        return;
                    }
                }
            }
        }
    }
}

impl Iterator for ArrivalStream {
    type Item = OpenArrival;

    fn next(&mut self) -> Option<OpenArrival> {
        self.advance();
        let cfg = &self.cfg;
        let tenant = {
            let u: f64 = self.rng.gen();
            if u < cfg.hot_share {
                0
            } else {
                self.rng.gen_range(0..cfg.n_tenants)
            }
        };
        let domain = draw_domain(&cfg.mix, &mut self.rng);
        let model = draw_model(domain, &mut self.rng);
        let (rounds, batches) = draw_load(domain, &mut self.rng);
        let sync_scale = draw_sync_scale(&mut self.rng);
        let weight = self.rng.gen_range(1..=5) as f64;
        let batch_size = ((model.spec().batch_size as f64 * cfg.batch_scale).round() as u32).max(1);
        let batches = ((batches as f64 / cfg.batch_scale).round() as u32).max(1);
        let id = JobId(self.next_id);
        self.next_id += 1;
        Some(OpenArrival {
            spec: JobSpec::new(id, model, rounds, sync_scale)
                .arriving_at(self.t)
                .with_weight(weight)
                .with_batch_size(batch_size)
                .with_batches_per_task(batches),
            tenant,
        })
    }
}

/// A bounded, lazily-generated job trace: the first `n` arrivals of an
/// open stream, yielded one at a time.
///
/// This is the bridge between the serve-mode arrival generators and the
/// batch engine at datacenter scale: a 100k-job trace is never
/// materialized as one allocation — the sharded-simulation gateway pulls
/// arrivals from this iterator and appends each spec to its routed cell
/// only, so peak memory tracks the per-cell partitions, not
/// `jobs × GPUs` matrices over the whole fleet. Ids are dense in arrival
/// order (inherited from [`ArrivalStream`]), which is exactly the global
/// job-id space the shard layer's merged report is indexed by.
#[derive(Clone, Debug)]
pub struct StreamedTrace {
    stream: ArrivalStream,
    remaining: u64,
}

impl StreamedTrace {
    /// The first `n_jobs` arrivals of `cfg`'s stream.
    pub fn new(cfg: &OpenArrivalConfig, n_jobs: u64) -> Self {
        StreamedTrace {
            stream: cfg.stream(),
            remaining: n_jobs,
        }
    }

    /// Arrivals emitted so far (the underlying stream cursor).
    pub fn cursor(&self) -> u64 {
        self.stream.cursor()
    }

    /// Arrivals still to come.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl Iterator for StreamedTrace {
    type Item = OpenArrival;

    fn next(&mut self) -> Option<OpenArrival> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.stream.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = usize::try_from(self.remaining).unwrap_or(usize::MAX);
        (n, Some(n))
    }
}

/// Estimate cluster capacity in jobs/second for the load-factor dial:
/// sample `sample_n` jobs from the config's distributions and divide the
/// cluster's aggregate single-GPU throughput by the mean sequential work
/// of one job. Deterministic in (config, kinds, sample_n); intentionally
/// crude — the dial needs a stable reference point, not a queueing model.
pub fn estimate_capacity_jobs_per_sec(
    kinds: &[(GpuKind, u32)],
    cfg: &OpenArrivalConfig,
    sample_n: u32,
) -> f64 {
    assert!(!kinds.is_empty() && sample_n > 0);
    let probe = OpenArrivalConfig {
        // The probe only samples job *bodies*; any positive rate works.
        load_factor: 1.0,
        capacity_jobs_per_sec: 1.0,
        ..*cfg
    };
    // Mean sequential service time per job, per GPU kind.
    let mut per_kind_secs = vec![0.0f64; kinds.len()];
    for a in probe.stream().take(sample_n as usize) {
        for (i, &(kind, _)) in kinds.iter().enumerate() {
            per_kind_secs[i] += a.spec.task_ms(kind) * a.spec.task_count() as f64 / 1000.0;
        }
    }
    let mut capacity = 0.0;
    for (i, &(_, count)) in kinds.iter().enumerate() {
        let mean = per_kind_secs[i] / sample_n as f64;
        capacity += count as f64 / mean;
    }
    capacity
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn cfg(process: ArrivalProcess) -> OpenArrivalConfig {
        OpenArrivalConfig {
            process,
            load_factor: 1.0,
            capacity_jobs_per_sec: 0.5,
            seed: 42,
            ..OpenArrivalConfig::default()
        }
    }

    fn bursty() -> ArrivalProcess {
        ArrivalProcess::Bursty {
            on_fraction: 0.25,
            boost: 3.0,
            mean_cycle: SimDuration::from_secs(400),
        }
    }

    fn diurnal() -> ArrivalProcess {
        ArrivalProcess::Diurnal {
            period: SimDuration::from_secs(2000),
            amplitude: 0.8,
        }
    }

    #[test]
    fn streams_are_deterministic_and_monotone() {
        for p in [ArrivalProcess::Poisson, bursty(), diurnal()] {
            let a: Vec<_> = cfg(p).stream().take(200).collect();
            let b: Vec<_> = cfg(p).stream().take(200).collect();
            assert_eq!(a, b);
            for (i, w) in a.windows(2).enumerate() {
                assert!(w[0].spec.arrival <= w[1].spec.arrival);
                assert_eq!(w[0].spec.id, JobId(i as u32), "dense ids in order");
            }
            for x in &a {
                assert!(x.spec.validate().is_ok());
                assert!(x.tenant < cfg(p).n_tenants);
            }
        }
    }

    #[test]
    fn fast_forward_resumes_streams_bit_exactly() {
        for p in [ArrivalProcess::Poisson, bursty(), diurnal()] {
            let c = cfg(p);
            let reference: Vec<_> = c.stream().take(120).collect();
            for k in [0u64, 1, 57, 100] {
                let mut resumed = c.stream();
                resumed.fast_forward(k);
                assert_eq!(resumed.cursor(), k);
                let tail: Vec<_> = resumed.take(120 - k as usize).collect();
                assert_eq!(tail, reference[k as usize..], "{p:?} cursor {k}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot rewind")]
    fn fast_forward_rejects_rewinding() {
        let mut s = cfg(ArrivalProcess::Poisson).stream();
        s.fast_forward(5);
        s.fast_forward(2);
    }

    #[test]
    fn mean_rate_tracks_the_load_dial() {
        // All three processes share the configured long-run mean rate.
        for p in [ArrivalProcess::Poisson, bursty(), diurnal()] {
            let c = cfg(p); // rate 0.5/s -> mean gap 2s
            let n = 20_000;
            let last = c.stream().nth(n - 1).unwrap().spec.arrival;
            let mean_gap = last.as_secs_f64() / (n - 1) as f64;
            assert!(
                (mean_gap - 2.0).abs() < 0.2,
                "{p:?}: mean gap {mean_gap:.3}s, want ~2s"
            );
        }
    }

    #[test]
    fn bursty_is_burstier_than_poisson() {
        let cv2 = |p: ArrivalProcess| {
            let arr: Vec<f64> = cfg(p)
                .stream()
                .take(20_000)
                .map(|a| a.spec.arrival.as_secs_f64())
                .collect();
            let gaps: Vec<f64> = arr.windows(2).map(|w| w[1] - w[0]).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        let p = cv2(ArrivalProcess::Poisson);
        let b = cv2(bursty());
        assert!((p - 1.0).abs() < 0.15, "poisson CV^2 ~ 1, got {p:.2}");
        assert!(b > 1.5, "bursty CV^2 well above 1, got {b:.2}");
    }

    #[test]
    fn diurnal_rate_peaks_and_troughs() {
        // Count arrivals in the first half-period (sin > 0, peak) vs the
        // second (sin < 0, trough): the peak half must see clearly more.
        let c = cfg(diurnal());
        let period = 2000.0;
        let mut peak = 0u32;
        let mut trough = 0u32;
        for a in c.stream().take(50_000) {
            let t = a.spec.arrival.as_secs_f64() % period;
            if t < period / 2.0 {
                peak += 1;
            } else {
                trough += 1;
            }
        }
        assert!(
            peak as f64 > trough as f64 * 1.5,
            "peak {peak} vs trough {trough}"
        );
    }

    #[test]
    fn hot_share_skews_tenant_zero() {
        let c = OpenArrivalConfig {
            hot_share: 0.6,
            n_tenants: 4,
            ..cfg(ArrivalProcess::Poisson)
        };
        let n = 10_000;
        let hot = c.stream().take(n).filter(|a| a.tenant == 0).count();
        // 0.6 direct + 0.4/4 uniform = 70% expected.
        let frac = hot as f64 / n as f64;
        assert!((frac - 0.7).abs() < 0.03, "hot-tenant share {frac:.3}");
    }

    #[test]
    fn capacity_estimate_is_positive_and_scales_with_gpus() {
        let c = cfg(ArrivalProcess::Poisson);
        let one = estimate_capacity_jobs_per_sec(&[(GpuKind::V100, 1)], &c, 128);
        let four = estimate_capacity_jobs_per_sec(&[(GpuKind::V100, 4)], &c, 128);
        assert!(one > 0.0);
        assert!((four / one - 4.0).abs() < 1e-9, "linear in GPU count");
        let slow = estimate_capacity_jobs_per_sec(&[(GpuKind::K80, 1)], &c, 128);
        assert!(slow < one, "K80 serves fewer jobs/sec than V100");
    }

    #[test]
    #[should_panic(expected = "off-phase rate")]
    fn over_boosted_burst_is_rejected() {
        let c = cfg(ArrivalProcess::Bursty {
            on_fraction: 0.5,
            boost: 3.0,
            mean_cycle: SimDuration::from_secs(100),
        });
        let _ = c.stream();
    }
}
