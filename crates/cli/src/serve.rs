//! `hare serve` — the continuous-service mode against an open arrival
//! stream, with overload control and graceful SIGTERM drain.
//!
//! The command runs [`hare_sim::ServeLoop`] on a live (optionally
//! wall-clock-paced) simulation: open arrivals pass admission control,
//! a queue scheduler plans at every decision epoch under the brownout
//! controller's budget, and SIGTERM/SIGINT trigger a graceful drain —
//! admission stops, the pending queue is shed, in-flight jobs finish,
//! the journal and the final JSON report are flushed, and the process
//! exits 0. That drain path is exercised by the CI smoke step.
//!
//! With `--wal FILE` every state transition is write-ahead logged
//! (snapshot-compacted every `--snapshot-every` epochs), so a crash —
//! injected via `--crash-at N` or a real SIGKILL — leaves a log that
//! `--recover` resumes from deterministically: the recovered report is
//! byte-identical to an uninterrupted run (DESIGN.md §13). The CI
//! kill-and-recover step diffs exactly that. `--lease-timeout S` turns
//! on lease-based GPU liveness: silently-dead workers are detected by
//! missed heartbeats and their in-flight jobs requeued with backoff.

use crate::args::Options;
use hare_baselines::{LadderServe, SrtfServe};
use hare_cluster::{SimDuration, SimTime};
use hare_experiments::Journal;
use hare_sim::{
    LeaseConfig, QueueScheduler, RecoveryError, SchedulerCrash, ServeConfig, ServeLoop,
    ServeReport, WalOptions,
};
use hare_workload::{estimate_capacity_jobs_per_sec, ArrivalProcess, OpenArrivalConfig};
use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the signal handler; checked by the serve loop at every epoch.
static STOP: AtomicBool = AtomicBool::new(false);

/// Route SIGTERM and SIGINT to a graceful drain instead of sudden death.
/// Raw `signal(2)` via the C runtime — no external crates; storing to an
/// atomic is async-signal-safe.
#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        STOP.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// Parse `--process poisson|bursty|diurnal` with the sweep's canonical
/// shape parameters.
fn process(opts: &Options) -> Result<ArrivalProcess, String> {
    match opts.get("process", "poisson") {
        "poisson" => Ok(ArrivalProcess::Poisson),
        "bursty" => Ok(ArrivalProcess::Bursty {
            on_fraction: 0.25,
            boost: 3.0,
            mean_cycle: SimDuration::from_secs(600),
        }),
        "diurnal" => Ok(ArrivalProcess::Diurnal {
            period: SimDuration::from_secs(3600),
            amplitude: 0.9,
        }),
        other => Err(format!("unknown arrival process {other:?}")),
    }
}

/// Build the serve configuration from the command line.
fn config(opts: &Options) -> Result<ServeConfig, String> {
    let cluster = opts.cluster()?;
    let load: f64 = opts.num("load", 0.8)?;
    if !(load > 0.0 && load.is_finite()) {
        return Err("--load must be positive".into());
    }
    let seed: u64 = opts.num("seed", 1)?;
    let horizon_secs: u64 = if opts.has("smoke") {
        600
    } else {
        opts.num("horizon", 3_600)?
    };
    if horizon_secs == 0 {
        return Err("--horizon must be positive".into());
    }
    let mut arrivals = OpenArrivalConfig {
        process: process(opts)?,
        load_factor: load,
        mix: opts.mix()?,
        seed,
        ..OpenArrivalConfig::default()
    };
    let counts: Vec<_> = cluster.count_by_kind().into_iter().collect();
    arrivals.capacity_jobs_per_sec = estimate_capacity_jobs_per_sec(&counts, &arrivals, 256);
    let mut cfg = ServeConfig {
        arrivals,
        horizon: SimTime::from_secs(horizon_secs),
        ..ServeConfig::default()
    };
    if opts.has("unthrottled") {
        cfg = cfg.unthrottled();
    }
    if opts.has("lease-timeout") {
        let timeout: u64 = opts.num("lease-timeout", 60)?;
        if timeout == 0 {
            return Err("--lease-timeout must be positive".into());
        }
        cfg.lease = Some(LeaseConfig {
            heartbeat: SimDuration::from_secs(opts.num("heartbeat", 10)?),
            timeout: SimDuration::from_secs(timeout),
            ..LeaseConfig::default()
        });
    } else if opts.has("heartbeat") {
        return Err("--heartbeat needs --lease-timeout (leases are off without it)".into());
    }
    if opts.has("crash-at") {
        let at_epoch: u64 = opts.num("crash-at", 0)?;
        if at_epoch == 0 {
            return Err("--crash-at must be a decision epoch >= 1".into());
        }
        cfg.faults.crash = Some(SchedulerCrash { at_epoch });
    }
    Ok(cfg)
}

/// Human-readable run summary (the JSON carries the full registry).
fn print_summary(report: &ServeReport, stopped: bool) {
    let c = &report.counters;
    println!(
        "serve [{}]: drained at {} ({})",
        report.scheme,
        report.end,
        if stopped { "signal" } else { "horizon" }
    );
    println!(
        "  offered {}  admitted {}  rejected {}  deferred {}  drained {}  shed {}  completed {}",
        c.offered,
        c.admitted,
        c.rejected(),
        c.deferrals,
        c.drained,
        c.shed,
        report.completed
    );
    if report.requeued + report.lease_expiries + report.lease_rejoins + report.lease_lost > 0 {
        println!(
            "  leases: {} expiries  {} rejoins  {} requeues  {} jobs lost",
            report.lease_expiries, report.lease_rejoins, report.requeued, report.lease_lost
        );
    }
    println!(
        "  decisions {}  ({:.4}/s)  latency p50 {:.3}s  p99 {:.3}s",
        report.decisions,
        report.decisions_per_sec,
        report.latency_quantile(0.5).unwrap_or(0.0),
        report.latency_quantile(0.99).unwrap_or(0.0),
    );
    let rungs: Vec<String> = report
        .rung_hits
        .iter()
        .map(|(r, n)| format!("{r}:{n}"))
        .collect();
    println!(
        "  queue max {}  shed-at-drain {}  min budget {:.2}  rungs [{}]",
        report.queue_depth_max,
        report.queue_depth_at_drain,
        report.min_budget_level,
        rungs.join(" ")
    );
    if !c.conserved() {
        // Cannot happen (property-tested); keep the loud check anyway.
        eprintln!("warning: admission conservation violated: {c:?}");
    }
}

/// Print the cells of a serve journal and exit.
fn replay_journal(path: &str) -> Result<(), String> {
    let journal = Journal::open(path).map_err(|e| format!("cannot open journal {path:?}: {e}"))?;
    println!("journal {path}: {} completed cell(s)", journal.len());
    Ok(())
}

/// Entry point for `hare serve`.
pub fn serve(opts: &Options) -> Result<(), String> {
    if opts.has("replay-journal") {
        return replay_journal(opts.get("replay-journal", ""));
    }
    let cfg = config(opts)?;
    let cluster = opts.cluster()?;
    let seed: u64 = opts.num("seed", 1)?;
    let pace_ms: u64 = opts.num("pace-ms", 0)?;
    let pace = (pace_ms > 0).then(|| std::time::Duration::from_millis(pace_ms));
    let wal_path = opts.get("wal", "").to_string();
    let recover = opts.has("recover");
    let snapshot_every: u64 = opts.num("snapshot-every", 20)?;
    if snapshot_every == 0 {
        return Err("--snapshot-every must be >= 1".into());
    }
    if recover && wal_path.is_empty() {
        return Err("--recover needs --wal FILE (the log to recover from)".into());
    }
    if opts.has("crash-at") && wal_path.is_empty() {
        return Err("--crash-at needs --wal FILE (a crash without a WAL is unrecoverable)".into());
    }
    install_signal_handlers();

    let mut ladder;
    let mut srtf;
    let scheduler: &mut dyn QueueScheduler = match opts.get("scheduler", "ladder") {
        "ladder" => {
            ladder = LadderServe::new();
            &mut ladder
        }
        "srtf" => {
            srtf = SrtfServe::new();
            &mut srtf
        }
        other => return Err(format!("unknown scheduler {other:?}")),
    };

    eprintln!(
        "serving load {:.2} ({:.4} jobs/s offered) on {} GPUs; horizon {}; \
         SIGTERM/SIGINT drain gracefully",
        cfg.arrivals.load_factor,
        cfg.arrivals.rate_jobs_per_sec(),
        cluster.gpu_count(),
        cfg.horizon,
    );
    let serve_loop = ServeLoop::new(cluster, cfg);
    let report = if wal_path.is_empty() {
        serve_loop.run_with_stop(scheduler, &STOP, pace)
    } else {
        let mut wal = WalOptions::new(&wal_path);
        wal.snapshot_every = snapshot_every;
        if recover {
            let (report, stats) = serve_loop
                .recover(scheduler, &wal, &STOP, pace)
                .map_err(|e| format!("recovery from {wal_path:?} failed: {e}"))?;
            eprintln!(
                "recovered from {wal_path}: resumed at {}, {} WAL record(s) replayed",
                stats.resumed_at, stats.replayed
            );
            report
        } else {
            match serve_loop.run_with_wal(scheduler, &wal, &STOP, pace) {
                Ok(report) => report,
                Err(e @ RecoveryError::InjectedCrash { .. }) => {
                    return Err(format!(
                        "{e}; the WAL at {wal_path:?} is ready for --recover"
                    ));
                }
                Err(e) => return Err(format!("serve with WAL {wal_path:?} failed: {e}")),
            }
        }
    };
    let stopped = STOP.load(Ordering::SeqCst);
    print_summary(&report, stopped);

    // Flush the final cell durably before exiting: key by configuration
    // so a later identical run can find (or audit) this result.
    if opts.has("journal") {
        let path = opts.get("journal", "");
        if path.is_empty() {
            return Err("--journal needs a file path".into());
        }
        let mut journal =
            Journal::open(path).map_err(|e| format!("cannot open journal {path:?}: {e}"))?;
        let scenario = format!(
            "serve load={:.2} process={} {}",
            opts.num::<f64>("load", 0.8)?,
            opts.get("process", "poisson"),
            if stopped { "sigterm" } else { "horizon" }
        );
        let note = format!(
            "completed={} shed={} rejected={} p99={:.3}",
            report.completed,
            report.counters.shed,
            report.counters.rejected(),
            report.latency_quantile(0.99).unwrap_or(0.0)
        );
        journal
            .record(
                &Journal::key(&report.scheme, &scenario, seed),
                report.mean_jct_secs,
                &note,
            )
            .map_err(|e| format!("cannot write journal {path:?}: {e}"))?;
    }

    let json = report.to_json();
    let out = opts.get("out", "");
    if out.is_empty() {
        println!("{json}");
    } else {
        std::fs::write(out, &json).map_err(|e| format!("cannot write {out:?}: {e}"))?;
        println!("wrote report JSON to {out}");
    }
    Ok(())
}
