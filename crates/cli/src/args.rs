//! Minimal dependency-free argument parsing for the `hare` binary.

use hare_cluster::{Bandwidth, Cluster, Heterogeneity, NetworkModel};
use hare_workload::Domain;
use std::collections::BTreeMap;

/// Parsed `--key value` options plus positional arguments.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Options {
    flags: BTreeMap<String, String>,
    positional: Vec<String>,
}

impl Options {
    /// Parse an argument list (without the program name). `--key value`
    /// pairs become flags; bare `--key` stores an empty string; everything
    /// else is positional.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Options, String> {
        let mut out = Options::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if key.is_empty() {
                    return Err("empty flag name".into());
                }
                let value = iter.next_if(|v| !v.starts_with("--")).unwrap_or_default();
                if out.flags.insert(key.to_string(), value).is_some() {
                    return Err(format!("duplicate flag --{key}"));
                }
            } else {
                out.positional.push(arg);
            }
        }
        Ok(out)
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// String flag with default.
    pub fn get<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.flags.get(key).map(|s| s.as_str()).unwrap_or(default)
    }

    /// Presence of a bare flag.
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    /// Numeric flag with default.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad value {v:?}")),
        }
    }

    /// Build the cluster from `--cluster testbed|low:N|mid:N|high:N` and
    /// `--bandwidth <Gbps>`.
    pub fn cluster(&self) -> Result<Cluster, String> {
        let spec = self.get("cluster", "testbed");
        let cluster = match spec.split_once(':') {
            None if spec == "testbed" => Cluster::testbed15(),
            Some((level, n)) => {
                let n: u32 = n.parse().map_err(|_| format!("bad GPU count {n:?}"))?;
                let level = match level {
                    "low" => Heterogeneity::Low,
                    "mid" => Heterogeneity::Mid,
                    "high" => Heterogeneity::High,
                    other => return Err(format!("unknown heterogeneity {other:?}")),
                };
                Cluster::with_heterogeneity(level, n)
            }
            _ => return Err(format!("unknown cluster spec {spec:?}")),
        };
        let gbps: f64 = self.num("bandwidth", 25.0)?;
        if gbps <= 0.0 {
            return Err("--bandwidth must be positive".into());
        }
        Ok(cluster.with_network(NetworkModel::default().with_nic(Bandwidth::gbps(gbps))))
    }

    /// Parse `--mix cv=0.25,nlp=0.25,speech=0.25,rec=0.25`.
    pub fn mix(&self) -> Result<hare_workload::DomainMix, String> {
        let Some(spec) = self.flags.get("mix") else {
            return Ok(hare_workload::DomainMix::default());
        };
        let mut fractions = [0.25f64; 4];
        for part in spec.split(',') {
            let (name, value) = part
                .split_once('=')
                .ok_or_else(|| format!("bad mix entry {part:?}"))?;
            let idx = match name {
                "cv" => 0,
                "nlp" => 1,
                "speech" => 2,
                "rec" => 3,
                other => return Err(format!("unknown domain {other:?}")),
            };
            fractions[idx] = value
                .parse()
                .map_err(|_| format!("bad fraction {value:?}"))?;
        }
        let sum: f64 = fractions.iter().sum();
        if (sum - 1.0).abs() > 1e-9 {
            return Err(format!("mix must sum to 1, got {sum}"));
        }
        let _ = Domain::ALL; // domains documented in --help
        Ok(hare_workload::DomainMix { fractions })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Options {
        Options::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn flags_and_positionals() {
        let o = parse("compare --jobs 40 --csv --seed 7");
        assert_eq!(o.positional(), ["compare"]);
        assert_eq!(o.num::<u32>("jobs", 0).unwrap(), 40);
        assert_eq!(o.num::<u64>("seed", 0).unwrap(), 7);
        assert!(o.has("csv"));
        assert!(!o.has("missing"));
        assert_eq!(o.num::<u32>("missing", 9).unwrap(), 9);
    }

    #[test]
    fn cluster_specs() {
        assert_eq!(parse("x").cluster().unwrap().gpu_count(), 15);
        let c = parse("x --cluster high:32").cluster().unwrap();
        assert_eq!(c.gpu_count(), 32);
        assert_eq!(c.kinds_present().len(), 4);
        let c = parse("x --cluster low:8 --bandwidth 10").cluster().unwrap();
        assert_eq!(c.kinds_present().len(), 1);
        assert!((c.network().nic.as_gbps() - 10.0).abs() < 1e-9);
        assert!(parse("x --cluster weird:3").cluster().is_err());
        assert!(parse("x --cluster high:x").cluster().is_err());
    }

    #[test]
    fn mix_parsing() {
        let m = parse("x --mix cv=0.4,nlp=0.3,speech=0.2,rec=0.1")
            .mix()
            .unwrap();
        assert_eq!(m.fractions, [0.4, 0.3, 0.2, 0.1]);
        assert!(parse("x --mix cv=0.9").mix().is_err()); // sums to 1.65
        assert!(parse("x --mix foo=1").mix().is_err());
        assert_eq!(
            parse("x").mix().unwrap(),
            hare_workload::DomainMix::default()
        );
    }

    #[test]
    fn duplicate_flags_rejected() {
        let err = Options::parse(["--a".into(), "1".into(), "--a".into(), "2".into()]).unwrap_err();
        assert!(err.contains("duplicate"));
    }
}
