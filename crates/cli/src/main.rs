//! `hare` — command-line interface to the Hare scheduler and simulator.
//!
//! ```text
//! hare compare  [--cluster testbed|low:N|mid:N|high:N] [--jobs N] [--seed S]
//!               [--bandwidth Gbps] [--mix cv=..,nlp=..,speech=..,rec=..]
//!               [--input FILE.csv] [--online] [--timeslice]
//!               [--trace FILE.json]          # Chrome trace of Hare_Online
//! hare schedule [same workload flags]      # print Hare's plan per GPU
//! hare export   [workload flags] --out FILE.csv     # write the trace CSV
//! hare profile                              # the Fig.-2 profile table
//! hare switch --from MODEL --to MODEL [--gpu KIND]   # switching costs
//! hare serve  [--load F] [--process poisson|bursty|diurnal] [--horizon S]
//!             [--scheduler ladder|srtf] [--unthrottled] [--pace-ms N]
//!             [--journal FILE] [--out FILE] [--smoke]   # continuous service
//!             [--wal FILE] [--snapshot-every N] [--recover] [--crash-at N]
//!             [--lease-timeout S] [--heartbeat S]       # crash tolerance
//! hare shard  [workload flags] [--cells N] [--scheme S] [--stream]
//!                                            # sharded datacenter run
//! ```

#![warn(clippy::unwrap_used)]

mod args;
mod serve;

use args::Options;
use hare_baselines::{run_all, HareOnline, RunOptions, TimeSlice};
use hare_cluster::{GpuKind, SimDuration};
use hare_core::HareScheduler;
use hare_memory::{switch_time, PrevTask, SwitchPolicy, SwitchRequest};
use hare_sim::{ChromeTraceSink, SimWorkload, Simulation};
use hare_workload::{ModelKind, ProfileDb, TraceConfig};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let opts = match Options::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => return fail(&e),
    };
    let result = match opts.positional().first().map(|s| s.as_str()) {
        Some("compare") => compare(&opts),
        Some("schedule") => schedule(&opts),
        Some("export") => export(&opts),
        Some("profile") => profile(),
        Some("switch") => switching(&opts),
        Some("serve") => serve::serve(&opts),
        Some("shard") => shard(&opts),
        Some(other) => Err(format!("unknown command {other:?}")),
        None => {
            print!("{HELP}");
            Ok(())
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&e),
    }
}

const HELP: &str = "\
hare — DML job scheduling on heterogeneous GPUs (HPDC '22 reproduction)

commands:
  compare    run all five schemes (plus --online / --timeslice) on a workload
  schedule   print Hare's Algorithm-1 plan for a workload (--gantt to draw it)
  export     write the generated workload trace as CSV (--out FILE)
  profile    per-model, per-GPU batch-time profile table (Fig. 2)
  switch     task-switching cost between two models (--from, --to, --gpu)
  serve      continuous-service mode: open arrivals, admission control,
             brownout under overload, graceful SIGTERM/SIGINT drain
  shard      datacenter-scale sharded run: partition the cluster into
             cells, gateway-route jobs, simulate each cell independently

workload flags (compare/schedule/export):
  --cluster testbed|low:N|mid:N|high:N   (default testbed = 15 mixed GPUs)
  --jobs N        number of jobs            (default 20)
  --seed S        trace + noise seed        (default 1)
  --bandwidth G   NIC speed in Gbps         (default 25)
  --mix cv=F,nlp=F,speech=F,rec=F          (default 0.25 each)
  --input FILE    load jobs from a CSV trace instead of generating them

observability (compare):
  --trace FILE    write a Chrome trace-event JSON of an online-Hare run
                  (task/sync spans per GPU + solver phases; open it at
                  ui.perfetto.dev or chrome://tracing)

serve flags:
  --load F        offered load as a fraction of estimated capacity (0.8)
  --process P     poisson | bursty | diurnal                    (poisson)
  --horizon S     stop admitting after S simulated seconds        (3600)
  --scheduler S   ladder (anytime degradation ladder) | srtf    (ladder)
  --unthrottled   disable admission caps and brownout (baseline mode)
  --pace-ms N     wall-clock ms per decision epoch (live pacing; 0=off)
  --journal FILE  append the final cell durably; --replay-journal FILE
  --out FILE      write the JSON report to FILE instead of stdout
  --smoke         short run (600 s horizon) for CI

shard flags (plus the workload flags above):
  --cells N       number of machine-disjoint cells          (default 2)
  --scheme S      hare|gavel|srtf|homo|allox                (default hare)
  --stream        draw jobs from the open arrival stream (lazy, never a
                  materialized global trace) instead of the closed trace;
                  --jobs N is the stream length

serve crash tolerance:
  --wal FILE      write-ahead log every transition; group-committed per epoch
  --snapshot-every N   compact the WAL into a full snapshot every N epochs (20)
  --recover       resume from --wal FILE after a crash; the recovered report
                  is byte-identical to an uninterrupted run
  --crash-at N    inject a scheduler crash at decision epoch N (needs --wal)
  --lease-timeout S    lease-based GPU liveness: expire a worker S s after
                  its last heartbeat, requeue its job with backoff
  --heartbeat S   worker heartbeat interval for leases              (10)
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{HELP}");
    ExitCode::FAILURE
}

fn trace(opts: &Options) -> Result<Vec<hare_workload::JobSpec>, String> {
    if opts.has("input") {
        let path = opts.get("input", "");
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
        return hare_workload::trace_from_csv(&text);
    }
    let n_jobs: u32 = opts.num("jobs", 20)?;
    if n_jobs == 0 {
        return Err("--jobs must be positive".into());
    }
    let seed: u64 = opts.num("seed", 1)?;
    Ok(TraceConfig {
        n_jobs,
        mix: opts.mix()?,
        seed,
        ..TraceConfig::default()
    }
    .generate())
}

fn workload(opts: &Options) -> Result<SimWorkload, String> {
    let cluster = opts.cluster()?;
    let seed: u64 = opts.num("seed", 1)?;
    let db = ProfileDb::new(seed);
    Ok(SimWorkload::build(cluster, trace(opts)?, &db))
}

fn export(opts: &Options) -> Result<(), String> {
    let jobs = trace(opts)?;
    let csv = hare_workload::trace_to_csv(&jobs);
    let out = opts.get("out", "");
    if out.is_empty() {
        print!("{csv}");
    } else {
        std::fs::write(out, csv).map_err(|e| format!("cannot write {out:?}: {e}"))?;
        println!("wrote {} jobs to {out}", jobs.len());
    }
    Ok(())
}

fn compare(opts: &Options) -> Result<(), String> {
    let w = workload(opts)?;
    let seed: u64 = opts.num("seed", 1)?;
    println!(
        "{} jobs / {} tasks on {} GPUs ({} machines)\n",
        w.problem.jobs.len(),
        w.problem.n_tasks(),
        w.cluster.gpu_count(),
        w.cluster.machine_count()
    );
    let mut reports = run_all(
        &w,
        RunOptions {
            seed,
            ..RunOptions::default()
        },
    );
    if opts.has("online") {
        let online = Simulation::new(&w)
            .with_seed(seed)
            .run(&mut HareOnline::new())
            .expect("simulation");
        reports.insert(1, online);
    }
    if opts.has("timeslice") {
        // Time slicing ships with its natural fast-switching runtime (it
        // switches constantly), like Hare.
        let ts = Simulation::new(&w)
            .with_seed(seed)
            .run(&mut TimeSlice::new())
            .expect("simulation");
        reports.push(ts);
    }
    let hare = reports[0].weighted_jct;
    println!(
        "{:<12} {:>13} {:>9} {:>11} {:>10} {:>9}",
        "scheme", "weighted JCT", "vs Hare", "mean JCT", "makespan", "util"
    );
    for r in &reports {
        println!(
            "{:<12} {:>13.0} {:>8.2}x {:>10.0}s {:>10} {:>8.0}%",
            r.scheme,
            r.weighted_jct,
            r.weighted_jct / hare,
            r.mean_jct(),
            r.makespan.to_string(),
            r.mean_utilization() * 100.0
        );
    }
    if opts.has("trace") {
        let path = opts.get("trace", "");
        if path.is_empty() {
            return Err("--trace needs an output path".into());
        }
        write_chrome_trace(&w, seed, path)?;
    }
    Ok(())
}

/// Run one traced online-Hare pass and write the Chrome trace-event JSON.
/// A dedicated pass (rather than tracing the comparison runs above) keeps
/// the comparison itself on the zero-instrumentation fast path.
fn write_chrome_trace(w: &SimWorkload, seed: u64, path: &str) -> Result<(), String> {
    let sink = Arc::new(ChromeTraceSink::new());
    let report = Simulation::new(w)
        .with_seed(seed)
        .with_trace(sink.clone())
        .run(&mut HareOnline::new().with_trace(sink.clone()))
        .expect("simulation");
    std::fs::write(path, sink.to_chrome_json())
        .map_err(|e| format!("cannot write {path:?}: {e}"))?;
    println!(
        "\nwrote Chrome trace of {} ({} events) to {path}",
        report.scheme,
        sink.len()
    );
    Ok(())
}

/// `hare shard`: partition the cluster into cells, route the workload
/// through the gateway, simulate every cell independently, and print the
/// per-cell accounting plus the merged global report.
fn shard(opts: &Options) -> Result<(), String> {
    use hare_baselines::{run_scheme_sharded, Scheme};
    use hare_sim::{GatewayConfig, ShardedTrace};

    let cluster = opts.cluster()?;
    let n_cells: usize = opts.num("cells", 2)?;
    if n_cells == 0 {
        return Err("--cells must be positive".into());
    }
    if n_cells > cluster.machine_count() {
        return Err(format!(
            "--cells {n_cells} exceeds the cluster's {} machines",
            cluster.machine_count()
        ));
    }
    let scheme = match opts.get("scheme", "hare") {
        s if s.eq_ignore_ascii_case("hare") => Scheme::Hare,
        s if s.eq_ignore_ascii_case("gavel") => Scheme::GavelFifo,
        s if s.eq_ignore_ascii_case("srtf") => Scheme::Srtf,
        s if s.eq_ignore_ascii_case("homo") => Scheme::SchedHomo,
        s if s.eq_ignore_ascii_case("allox") => Scheme::SchedAllox,
        other => return Err(format!("unknown scheme {other:?}")),
    };
    let seed: u64 = opts.num("seed", 1)?;
    let gw = GatewayConfig::default();
    let sharded = if opts.has("stream") {
        let n_jobs: u64 = opts.num("jobs", 20u64)?;
        if n_jobs == 0 {
            return Err("--jobs must be positive".into());
        }
        let counts: Vec<_> = cluster.count_by_kind().into_iter().collect();
        let arrivals = hare_workload::OpenArrivalConfig {
            seed,
            mix: opts.mix()?,
            ..hare_workload::OpenArrivalConfig::default()
        }
        .calibrated(&counts);
        let stream = hare_workload::StreamedTrace::new(&arrivals, n_jobs).map(|a| a.spec);
        ShardedTrace::route(&cluster, n_cells, &gw, stream)
    } else {
        ShardedTrace::route(&cluster, n_cells, &gw, trace(opts)?)
    };
    println!(
        "{} jobs routed over {} cells ({} GPUs, {} machines)\n",
        sharded.n_jobs(),
        n_cells,
        cluster.gpu_count(),
        cluster.machine_count()
    );
    let db = ProfileDb::new(seed);
    let merged = run_scheme_sharded(
        scheme,
        &sharded,
        &db,
        RunOptions {
            seed,
            ..RunOptions::default()
        },
    );
    println!(
        "{:<6} {:>6} {:>6} {:>10} {:>12}",
        "cell", "jobs", "gpus", "events", "makespan"
    );
    for c in &merged.cells {
        println!(
            "{:<6} {:>6} {:>6} {:>10} {:>12}",
            c.cell,
            c.jobs,
            c.gpus,
            c.events,
            c.makespan.to_string()
        );
    }
    let r = &merged.report;
    println!(
        "\n{}: weighted JCT {:.0}, mean JCT {:.0}s, makespan {}, {} events total",
        r.scheme,
        r.weighted_jct,
        r.mean_jct(),
        r.makespan,
        merged.events_total
    );
    Ok(())
}

fn schedule(opts: &Options) -> Result<(), String> {
    let w = workload(opts)?;
    let out = HareScheduler::default().schedule(&w.problem);
    println!(
        "Algorithm 1: {} tasks, planned weighted completion {:.1}s, lower bound {:.1}s\n",
        w.problem.n_tasks(),
        out.schedule.weighted_completion(&w.problem),
        out.lower_bound
    );
    for (g, seq) in out.schedule.gpu_sequences(&w.problem).iter().enumerate() {
        let gpu = &w.cluster.gpus()[g];
        let busy = out.schedule.busy_time(&w.problem)[g];
        println!(
            "gpu{g} ({}): {} tasks, {} busy — first 8: {:?}",
            gpu.kind,
            seq.len(),
            busy,
            &seq[..seq.len().min(8)]
        );
    }
    if opts.has("gantt") {
        println!(
            "\n{}",
            hare_core::render_gantt(&w.problem, &out.schedule, 100)
        );
    }
    Ok(())
}

fn profile() -> Result<(), String> {
    let db = ProfileDb::new(1);
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8}  (ms per default batch)",
        "model", "V100", "T4", "M60", "K80"
    );
    for model in ModelKind::WORKLOAD {
        let t = |g| {
            db.profile(model, g, model.spec().batch_size)
                .batch_time
                .as_millis_f64()
        };
        println!(
            "{:<12} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            model.to_string(),
            t(GpuKind::V100),
            t(GpuKind::T4),
            t(GpuKind::M60),
            t(GpuKind::K80)
        );
    }
    Ok(())
}

fn switching(opts: &Options) -> Result<(), String> {
    let parse_model = |name: &str| {
        ModelKind::ALL
            .into_iter()
            .find(|m| m.name().eq_ignore_ascii_case(name))
            .ok_or_else(|| format!("unknown model {name:?}"))
    };
    let from = parse_model(opts.get("from", "GraphSAGE"))?;
    let to = parse_model(opts.get("to", "ResNet50"))?;
    let gpu = match opts.get("gpu", "V100") {
        s if s.eq_ignore_ascii_case("v100") => GpuKind::V100,
        s if s.eq_ignore_ascii_case("t4") => GpuKind::T4,
        s if s.eq_ignore_ascii_case("k80") => GpuKind::K80,
        s if s.eq_ignore_ascii_case("m60") => GpuKind::M60,
        other => return Err(format!("unknown GPU kind {other:?}")),
    };
    println!("switch {from} -> {to} on {gpu}:");
    for policy in SwitchPolicy::ALL {
        let b = switch_time(
            policy,
            &SwitchRequest {
                gpu,
                prev: Some(PrevTask {
                    model: from,
                    step_time: SimDuration::from_millis_f64(from.batch_ms(gpu)),
                }),
                next: to,
                cache_hit: false,
            },
        );
        println!("  {:<11} {}", policy.name(), b.total());
    }
    Ok(())
}
