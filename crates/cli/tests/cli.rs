//! End-to-end tests of the `hare` binary.

use std::process::Command;

fn hare(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_hare"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn help_without_args() {
    let (stdout, _, ok) = hare(&[]);
    assert!(ok);
    assert!(stdout.contains("commands:"));
    assert!(stdout.contains("compare"));
}

#[test]
fn unknown_command_fails_with_help() {
    let (_, stderr, ok) = hare(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn profile_prints_all_models() {
    let (stdout, _, ok) = hare(&["profile"]);
    assert!(ok);
    for model in ["VGG19", "GraphSAGE", "Bert_base"] {
        assert!(stdout.contains(model), "missing {model} in:\n{stdout}");
    }
}

#[test]
fn switch_reports_three_protocols() {
    let (stdout, _, ok) = hare(&["switch", "--from", "graphsage", "--to", "resnet50"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("Default"));
    assert!(stdout.contains("PipeSwitch"));
    assert!(stdout.contains("Hare"));
}

#[test]
fn switch_rejects_unknown_model() {
    let (_, stderr, ok) = hare(&["switch", "--from", "gpt9"]);
    assert!(!ok);
    assert!(stderr.contains("unknown model"));
}

#[test]
fn export_then_compare_roundtrip() {
    let dir = std::env::temp_dir().join(format!("hare-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("trace.csv");
    let csv_str = csv.to_str().unwrap();

    let (stdout, _, ok) = hare(&["export", "--jobs", "6", "--seed", "9", "--out", csv_str]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("wrote 6 jobs"));

    let (stdout, stderr, ok) = hare(&["compare", "--input", csv_str, "--cluster", "mid:8"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("Hare"));
    assert!(stdout.contains("Sched_Allox"));
    assert!(stdout.contains("6 jobs"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compare_trace_emits_valid_chrome_json() {
    let dir = std::env::temp_dir().join(format!("hare-cli-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let json = dir.join("trace.json");
    let json_str = json.to_str().unwrap();

    let (stdout, stderr, ok) = hare(&[
        "compare",
        "--jobs",
        "6",
        "--seed",
        "3",
        "--cluster",
        "mid:6",
        "--trace",
        json_str,
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("wrote Chrome trace"), "{stdout}");

    let text = std::fs::read_to_string(&json).unwrap();
    let value = serde_json::from_str(&text).expect("trace must be valid JSON");
    let events = value
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
        .collect();
    // Task spans from the simulator and phase spans from the solver must
    // both be present — the trace covers the whole pipeline.
    assert!(
        names.iter().any(|n| n.starts_with("train ")),
        "no task spans in {names:?}"
    );
    assert!(
        names.iter().any(|n| n.starts_with("replan ")),
        "no solver replan spans in {names:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn schedule_prints_per_gpu_sequences() {
    let (stdout, _, ok) = hare(&["schedule", "--jobs", "4", "--cluster", "low:4"]);
    assert!(ok);
    assert!(stdout.contains("Algorithm 1:"));
    assert!(stdout.contains("gpu0 (V100)"));
    assert!(stdout.contains("gpu3"));
}

#[test]
fn bad_flags_produce_errors() {
    let (_, stderr, ok) = hare(&["compare", "--jobs", "0"]);
    assert!(!ok);
    assert!(stderr.contains("--jobs"));
    let (_, stderr, ok) = hare(&["compare", "--cluster", "ultra:4"]);
    assert!(!ok);
    assert!(stderr.contains("unknown heterogeneity"));
}
