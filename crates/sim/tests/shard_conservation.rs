//! Property tests for the shard gateway: routing is a conservation law.
//!
//! Whatever the cluster shape, cell count, gateway weights, and trace,
//! every arrival must land in exactly one cell, per-cell job counts must
//! sum to the global count, and the routing tables must be mutually
//! consistent (route_of and the per-cell inverse agree). A smaller number
//! of full end-to-end cases additionally runs Hare in every cell and
//! checks the merged report completes each routed job.

use hare_cluster::{Cluster, GpuKind, SimTime};
use hare_core::HareScheduler;
use hare_sim::{GatewayConfig, OfflineReplay, ShardedTrace, SimWorkload, Simulation};
use hare_workload::{large_scale_trace, DomainMix, JobId, ProfileDb};
use proptest::prelude::*;

/// Cluster shapes with distinct kind mixes and machine counts.
fn cluster_strategy() -> impl Strategy<Value = Cluster> {
    (0usize..3, 1u32..=4).prop_map(|(shape, m)| match shape {
        0 => Cluster::testbed15(),
        1 => Cluster::from_counts(&[(GpuKind::V100, (m + 1) * 4)], 4),
        _ => Cluster::from_counts(&[(GpuKind::V100, m * 4), (GpuKind::K80, m * 4)], 4),
    })
}

fn gateway_strategy() -> impl Strategy<Value = GatewayConfig> {
    (0.0f64..4.0, 0.0f64..4.0, 0.0f64..2.0).prop_map(|(w_load, w_het, w_aff)| GatewayConfig {
        w_load,
        w_het,
        w_aff,
    })
}

proptest::proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn routing_conserves_every_arrival(
        cluster in cluster_strategy(),
        n_cells_raw in 1usize..6,
        n_jobs in 1u32..80,
        seed in 0u64..1_000,
        gw in gateway_strategy(),
    ) {
        let n_cells = n_cells_raw.min(cluster.machine_count());
        let jobs = large_scale_trace(n_jobs, DomainMix::default(), seed);
        let sharded = ShardedTrace::route(&cluster, n_cells, &gw, jobs.clone());

        // Cell counts sum to the global job count.
        prop_assert_eq!(sharded.n_jobs(), jobs.len());
        let routed: usize = sharded.cell_specs().iter().map(Vec::len).sum();
        prop_assert_eq!(routed, jobs.len());

        // Every arrival is in exactly one cell, with consistent tables:
        // route_of(g) points at a spec that matches the original job, and
        // local ids are dense per cell.
        for (global, spec) in jobs.iter().enumerate() {
            let (c, l) = sharded.route_of(global);
            prop_assert!(c < n_cells);
            let routed = &sharded.cell_specs()[c][l];
            prop_assert_eq!(routed.id, JobId(l as u32));
            prop_assert_eq!(routed.model, spec.model);
            prop_assert_eq!(routed.arrival, spec.arrival);
            prop_assert_eq!(routed.rounds, spec.rounds);
            prop_assert_eq!(routed.sync_scale, spec.sync_scale);
        }
        for specs in sharded.cell_specs() {
            for (l, spec) in specs.iter().enumerate() {
                prop_assert_eq!(spec.id, JobId(l as u32));
            }
        }

        // Determinism: the same inputs route the same way.
        let again = ShardedTrace::route(&cluster, n_cells, &gw, jobs);
        for g in 0..sharded.n_jobs() {
            prop_assert_eq!(sharded.route_of(g), again.route_of(g));
        }
    }
}

proptest::proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// End to end: Hare plans within every cell and the merged report
    /// completes every routed job exactly once.
    #[test]
    fn sharded_hare_completes_every_routed_job(
        n_cells in 1usize..4,
        n_jobs in 4u32..16,
        seed in 0u64..50,
    ) {
        let cluster = Cluster::testbed15();
        let db = ProfileDb::new(7);
        let jobs = large_scale_trace(n_jobs, DomainMix::default(), seed);
        let sharded = ShardedTrace::route(&cluster, n_cells, &GatewayConfig::default(), jobs);
        let merged = sharded
            .run_with(|_ci, cell, specs| {
                let w = SimWorkload::build(cell.cluster().clone(), specs.to_vec(), &db);
                let out = HareScheduler::default().schedule(&w.problem);
                let mut policy = OfflineReplay::new("Hare", &w, &out.schedule);
                Simulation::new(&w).with_noise(0.0).run_counted(&mut policy)
            })
            .expect("sharded run failed");
        prop_assert_eq!(merged.report.completion.len(), n_jobs as usize);
        prop_assert!(merged.report.completion.iter().all(|&c| c > SimTime::ZERO));
        prop_assert_eq!(&merged.report.scheme, "Hare");
        let cell_jobs: usize = merged.cells.iter().map(|c| c.jobs).sum();
        prop_assert_eq!(cell_jobs, n_jobs as usize);
        prop_assert!(merged.events_total > 0);
    }
}
