//! Property tests pinning the contract of the dependency-free JSON
//! serializers: `SimReport::to_json` and `MetricsRegistry::to_json` must
//! produce *valid* JSON for every input — including NaN/infinite floats
//! (serialized as `null`), hostile scheme names (quotes, backslashes,
//! control characters), empty reports, and reports produced by real runs
//! under random fault plans. Validity is checked by re-parsing with the
//! strict `serde_json` parser.

#![allow(clippy::unwrap_used)]

use hare_cluster::{Bytes, Cluster, SimDuration, SimTime};
use hare_sim::{
    FaultMetrics, FaultPlan, GpuFault, GpuReport, MetricsRegistry, SimReport, SimWorkload,
    Simulation, StragglerWindow, UtilSpan,
};
use hare_workload::{testbed_trace, ProfileDb};
use proptest::prelude::*;

/// Every f64 bit pattern: NaNs (quiet and signaling), ±inf, subnormals,
/// -0.0 — the serializer must stay total over all of them.
fn wild_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(f64::from_bits)
}

/// Strings that stress the JSON escaper: quotes, backslashes, control
/// characters, and multi-byte scalars.
fn wild_string() -> impl Strategy<Value = String> {
    prop::collection::vec(0u32..0xD800, 0..16).prop_map(|codes| {
        codes
            .into_iter()
            .map(|c| char::from_u32(c).unwrap_or('\u{fffd}'))
            .collect()
    })
}

fn arb_report() -> impl Strategy<Value = SimReport> {
    let parts = (
        wild_string(),
        prop::collection::vec(any::<u64>(), 0..6),
        prop::collection::vec(wild_f64(), 0..6),
        (wild_f64(), wild_f64(), any::<u64>()),
        prop::collection::vec((any::<u64>(), any::<u32>()), 0..4),
        (any::<bool>(), prop::collection::vec(wild_f64(), 0..4)),
    );
    parts.prop_map(
        |(scheme, times, weights, (wc, wjct, makespan), gpus, (with_tl, levels))| SimReport {
            scheme,
            completion: times.iter().map(|&t| SimTime::from_micros(t)).collect(),
            jct: times.iter().map(|&t| SimDuration::from_micros(t)).collect(),
            weights,
            weighted_completion: wc,
            weighted_jct: wjct,
            makespan: SimTime::from_micros(makespan),
            gpus: gpus
                .iter()
                .map(|&(us, n)| GpuReport {
                    busy: SimDuration::from_micros(us),
                    effective_busy: SimDuration::from_micros(us / 2),
                    switching: SimDuration::from_micros(us / 3),
                    switch_count: n,
                    cache_hits: n / 2,
                })
                .collect(),
            storage_fetched: Bytes::new(makespan),
            storage_local_hits: makespan / 7,
            faults: FaultMetrics::default(),
            timelines: with_tl.then(|| {
                vec![levels
                    .iter()
                    .enumerate()
                    .map(|(i, &level)| UtilSpan {
                        from: SimTime::from_micros(i as u64),
                        to: SimTime::from_micros(i as u64 + 1),
                        level,
                    })
                    .collect()]
            }),
            metrics: MetricsRegistry::default(),
        },
    )
}

fn assert_valid_json(what: &str, text: &str) {
    if let Err(e) = serde_json::from_str(text) {
        panic!("{what} produced invalid JSON ({e}):\n{text}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `SimReport::to_json` is total: any field contents — hostile scheme
    /// strings, non-finite floats, empty vectors — still parse.
    #[test]
    fn report_json_always_parses(report in arb_report()) {
        assert_valid_json("SimReport::to_json", &report.to_json());
    }

    /// Same for the metrics registry, whose gauge values and histogram
    /// sums are f64 (a NaN gauge must render as null, not `NaN`).
    #[test]
    fn registry_json_always_parses(
        entries in prop::collection::vec((wild_string(), wild_f64(), 0u64..1_000_000), 0..8)
    ) {
        let mut reg = MetricsRegistry::new();
        for (name, v, n) in &entries {
            reg.add(name, *n);
            reg.set_gauge(name, *v);
            reg.observe(name, &[1.0, 10.0], *v);
        }
        assert_valid_json("MetricsRegistry::to_json", &reg.to_json());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// End-to-end: reports from real simulations under random fault plans
    /// (transient/permanent failures, stragglers) serialize to valid JSON,
    /// and so do their filled metrics registries.
    #[test]
    fn fault_run_reports_serialize_to_valid_json(
        case in (
            1u64..6,
            prop::collection::vec((0usize..15, 60u64..900, any::<bool>(), 60u64..600), 0..3),
            prop::collection::vec((0usize..15, 0u64..300, 1u64..600), 0..2),
        )
    ) {
        let (seed, faults, stragglers) = case;
        let db = ProfileDb::with_noise(seed, 0.0);
        let mut trace = testbed_trace(seed);
        trace.truncate(4);
        let w = SimWorkload::build(Cluster::testbed15(), trace, &db);

        let mut plan = FaultPlan::default();
        for (i, &(gpu, at, transient, down)) in faults.iter().enumerate() {
            // Space the windows out so transient windows never overlap a
            // permanent loss of the same GPU (plan validity).
            plan.gpu_faults.push(GpuFault {
                gpu: (gpu + i) % 15,
                at: SimTime::from_secs(at + i as u64 * 2_000),
                recover_after: transient.then(|| SimDuration::from_secs(down)),
            });
        }
        for &(gpu, from, len) in &stragglers {
            plan.stragglers.push(StragglerWindow {
                gpu,
                from: SimTime::from_secs(from),
                until: SimTime::from_secs(from + len),
                slowdown: 2.0,
            });
        }
        let report = Simulation::new(&w)
            .with_seed(seed)
            .with_fault_plan(&plan)
            .run(&mut hare_baselines_stub::policy())
            .expect("simulation");
        assert_valid_json("SimReport::to_json (fault run)", &report.to_json());
        assert_valid_json("MetricsRegistry::to_json (fault run)", &report.metrics.to_json());
    }
}

/// hare-sim cannot depend on hare-baselines (dependency direction), so the
/// fault-plan property drives the engine with a minimal greedy policy:
/// every ready task goes to the first idle GPU.
mod hare_baselines_stub {
    use hare_sim::{Policy, SimView};

    #[derive(Debug, Default)]
    pub struct FirstFit;

    impl Policy for FirstFit {
        fn name(&self) -> String {
            "FirstFit".into()
        }
        fn dispatch(&mut self, view: &SimView<'_>, out: &mut Vec<(usize, usize)>) {
            for (&task, &gpu) in view.ready.iter().zip(view.idle_gpus.iter()) {
                out.push((task, gpu));
            }
        }
    }

    pub fn policy() -> FirstFit {
        FirstFit
    }
}
