//! Property test: crash recovery is byte-exact under *random* serve
//! configurations. For arbitrary load, horizon, crash epoch, snapshot
//! cadence, lease setting, and arrival seed, a run that crashes at the
//! injected epoch and is then recovered from its WAL must produce a
//! [`ServeReport`] equal — down to the JSON rendering — to the same
//! configuration run without any crash. The scheduler under test is
//! deliberately *stateful* (its dispatch order depends on a counter that
//! only survives through `save_state`/`load_state`), so a broken
//! scheduler-state round-trip shows up as divergence, not silence.

#![allow(clippy::unwrap_used)]

use hare_cluster::{Cluster, SimTime};
use hare_sim::{
    LeaseConfig, PendingJob, PlanOutcome, QueueScheduler, RecoveryError, SchedulerCrash,
    ServeConfig, ServeLoop, SilentWorkerFault, WalOptions,
};
use hare_workload::{estimate_capacity_jobs_per_sec, OpenArrivalConfig};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A stateful scheduler: every plan rotates the dispatch order by a
/// persistent counter, so two runs agree only if that counter is carried
/// across the crash by the snapshot's scheduler-state section.
#[derive(Default)]
struct Rotor {
    turns: u64,
}

impl QueueScheduler for Rotor {
    fn name(&self) -> &'static str {
        "Rotor"
    }

    fn plan(&mut self, window: &[&PendingJob], _cluster: &Cluster, _frac: f64) -> PlanOutcome {
        self.turns += 1;
        let n = window.len();
        let shift = (self.turns as usize) % n;
        PlanOutcome {
            order: (0..n).map(|i| (i + shift) % n).collect(),
            work: 10 * n as u64 + self.turns % 7,
            rung: "rotor",
        }
    }

    fn save_state(&self) -> String {
        self.turns.to_string()
    }

    fn load_state(&mut self, state: &str) {
        self.turns = state.parse().expect("rotor snapshot state");
    }
}

/// A fresh WAL path per proptest case (cases run in one process).
fn tmp_wal() -> std::path::PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let mut p = std::env::temp_dir();
    p.push(format!("hare-recovery-prop-{}-{n}.wal", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn config(load: f64, horizon_secs: u64, seed: u64, leases: bool) -> ServeConfig {
    let cluster = Cluster::testbed15();
    let mut arrivals = OpenArrivalConfig {
        load_factor: load,
        seed,
        ..OpenArrivalConfig::default()
    };
    let counts: Vec<_> = cluster.count_by_kind().into_iter().collect();
    arrivals.capacity_jobs_per_sec =
        estimate_capacity_jobs_per_sec(&counts, &arrivals, OpenArrivalConfig::CAPACITY_SAMPLES);
    let mut cfg = ServeConfig {
        arrivals,
        horizon: SimTime::from_secs(horizon_secs),
        ..ServeConfig::default()
    };
    if leases {
        cfg.lease = Some(LeaseConfig::default());
        // A cluster-wide blackout in the middle third of the horizon:
        // leases expire, in-flight work requeues with backoff, workers
        // rejoin — all of it state the snapshot must carry.
        cfg.faults.silent_workers = (0..cluster.gpu_count())
            .map(|gpu| SilentWorkerFault {
                gpu,
                from: SimTime::from_secs(horizon_secs / 3),
                until: Some(SimTime::from_secs(2 * horizon_secs / 3)),
            })
            .collect();
    }
    cfg
}

proptest::proptest! {
    // Each case runs three full simulations; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn crash_recovery_is_byte_exact_for_random_configs(
        load_pct in 40u32..180,
        horizon_secs in 300u64..900,
        crash_epoch in 1u64..160,
        snapshot_every in 1u64..30,
        leases in any::<bool>(),
        seed in 1u64..1000,
    ) {
        let load = f64::from(load_pct) / 100.0;
        let cfg = config(load, horizon_secs, seed, leases);
        let golden =
            ServeLoop::new(Cluster::testbed15(), cfg.clone()).run(&mut Rotor::default());

        let mut crashed_cfg = cfg;
        crashed_cfg.faults.crash = Some(SchedulerCrash { at_epoch: crash_epoch });
        let path = tmp_wal();
        let mut wal = WalOptions::new(&path);
        wal.snapshot_every = snapshot_every;
        let stop = AtomicBool::new(false);
        let serve = ServeLoop::new(Cluster::testbed15(), crashed_cfg);
        // A crash epoch past the drain leaves a *completed* WAL; recovery
        // must replay that to the same report too, so both arms proceed.
        match serve.run_with_wal(&mut Rotor::default(), &wal, &stop, None) {
            Ok(report) => prop_assert_eq!(&report, &golden),
            Err(RecoveryError::InjectedCrash { .. }) => {}
            Err(e) => panic!("WAL run failed: {e}"),
        }
        // Recover with a cold scheduler: its counter must come back from
        // the snapshot, not survive in memory.
        let (recovered, _stats) = serve
            .recover(&mut Rotor::default(), &wal, &stop, None)
            .unwrap_or_else(|e| panic!("recovery failed: {e}"));
        std::fs::remove_file(&path).unwrap();
        prop_assert_eq!(&recovered, &golden);
        prop_assert_eq!(recovered.to_json(), golden.to_json());
    }
}
