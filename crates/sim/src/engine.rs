//! The trace-driven discrete-event simulator (Section 7.1).
//!
//! The engine executes a [`SimWorkload`] under a [`Policy`], charging
//!
//! * realized task durations — the expected (profiled) time perturbed by
//!   per-task noise at the Fig.-11-calibrated level,
//! * task-switching latency from the `hare-memory` protocol state machines
//!   (with a live speculative cache per GPU under the Hare protocol),
//! * gradient-synchronization barriers from the per-job parameter servers
//!   over the contended network model.
//!
//! Fault injection rides on a [`FaultPlan`]: GPU outages (transient ones
//! rejoin through [`crate::event::Event::GpuRecovery`]), straggler
//! slowdown windows (piecewise-integrated into wall-clock), NIC
//! degradation (fed into the bandwidth-sharing sync model), and
//! checkpoint-store faults (stalling first-touch fetches). Work lost to a
//! failure is re-executed — the unacknowledged round is not silently free
//! — and late/duplicate gradients are dropped by the relaxed scale-fixed
//! quorum. All of it is tallied in [`crate::metrics::FaultMetrics`].
//!
//! Runs are bit-for-bit deterministic in (workload, policy, seed, plan);
//! the paper's testbed-vs-simulator comparison (Fig. 12) is reproduced by
//! comparing a full-fidelity run against [`planned_report`] — the
//! scheduler's own noise-free expectation.

use crate::build::SimWorkload;
use crate::dense::DenseSet;
use crate::event::{Event, EventQueue};
use crate::faults::{FaultPlan, GpuFault, SimError, SlowdownProfile};
use crate::metrics::{FaultMetrics, GpuReport, SimReport, UtilSpan};
use crate::policy::{Policy, SimView};
use crate::ps::ParameterServer;
use crate::registry::MetricsRegistry;
use crate::storage::CheckpointStore;
use crate::trace::{SimInstant, SinkHandle, TaskPhase, TraceSink};
use hare_cluster::{SimDuration, SimTime};
use hare_core::Schedule;
use hare_memory::{PrevTask, SpeculativeCache, SwitchPolicy, SwitchRequest, TaskModelRef};
use hare_workload::gaussian;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct Simulation<'a> {
    workload: &'a SimWorkload,
    switch_policy: SwitchPolicy,
    noise_frac: f64,
    seed: u64,
    record_timelines: bool,
    faults: FaultPlan,
    storage: CheckpointStore,
    /// Observer for execution tracing; `None` (the default) keeps the
    /// event hot path to a single branch per hook.
    trace: Option<SinkHandle>,
}

impl<'a> Simulation<'a> {
    /// A full-fidelity simulation: Hare switching, ±2% duration noise.
    pub fn new(workload: &'a SimWorkload) -> Self {
        Simulation {
            workload,
            switch_policy: SwitchPolicy::Hare,
            noise_frac: 0.02,
            seed: 0,
            record_timelines: false,
            faults: FaultPlan::default(),
            storage: CheckpointStore::default(),
            trace: None,
        }
    }

    /// Attach a [`TraceSink`] observing task/switch/sync spans and
    /// lifecycle instants. Tracing never feeds back into the simulation;
    /// the golden-snapshot suite pins that reports are byte-identical
    /// with and without a sink attached.
    pub fn with_trace(mut self, sink: std::sync::Arc<dyn TraceSink>) -> Self {
        self.trace = Some(SinkHandle(sink));
        self
    }

    /// Select the task-switching protocol charged at each switch.
    pub fn with_switch_policy(mut self, p: SwitchPolicy) -> Self {
        self.switch_policy = p;
        self
    }

    /// Set the realized-duration noise level (0 = exact expected times).
    pub fn with_noise(mut self, frac: f64) -> Self {
        assert!((0.0..0.5).contains(&frac));
        self.noise_frac = frac;
        self
    }

    /// Set the noise seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Record per-GPU utilization timelines (Figs. 3/6/8); costs memory.
    pub fn with_timelines(mut self) -> Self {
        self.record_timelines = true;
        self
    }

    /// Replace the shared checkpoint store (Fig. 9's HDFS): first access
    /// of a job on a machine fetches its checkpoint at the store's shared
    /// bandwidth; later accesses hit the machine-local copy.
    pub fn with_storage(mut self, storage: CheckpointStore) -> Self {
        self.storage = storage;
        self
    }

    /// Inject a permanent GPU failure at `at`: the GPU leaves service
    /// forever; a task running there is re-executed elsewhere (its
    /// gradient had not reached the PS). The policy is notified through
    /// [`crate::policy::Policy::on_gpu_failure`]. Malformed injections
    /// (out-of-range GPU, overlapping outages) surface as
    /// [`SimError::InvalidFaultPlan`] from [`Simulation::run`].
    pub fn with_gpu_failure(mut self, at: SimTime, gpu: usize) -> Self {
        self.faults.gpu_faults.push(GpuFault {
            gpu,
            at,
            recover_after: None,
        });
        self
    }

    /// Inject a transient GPU failure at `at`: the GPU is down for
    /// `recover_after`, then rejoins with cold caches; the policy hears
    /// about it via [`crate::policy::Policy::on_gpu_recovery`].
    pub fn with_transient_gpu_failure(
        mut self,
        at: SimTime,
        gpu: usize,
        recover_after: SimDuration,
    ) -> Self {
        self.faults.gpu_faults.push(GpuFault {
            gpu,
            at,
            recover_after: Some(recover_after),
        });
        self
    }

    /// Merge a whole [`FaultPlan`] into the simulation (event lists are
    /// appended to anything injected so far; a speculation config in
    /// `plan` wins over a previously set one). The plan is borrowed —
    /// callers running the same plan across many simulations share one
    /// copy. Validated at [`Simulation::run`].
    pub fn with_fault_plan(mut self, plan: &FaultPlan) -> Self {
        self.faults.gpu_faults.extend_from_slice(&plan.gpu_faults);
        self.faults.stragglers.extend_from_slice(&plan.stragglers);
        self.faults
            .network_faults
            .extend_from_slice(&plan.network_faults);
        self.faults
            .storage_faults
            .extend_from_slice(&plan.storage_faults);
        self.faults
            .solver_degradations
            .extend_from_slice(&plan.solver_degradations);
        self.faults.speculation = plan.speculation.or(self.faults.speculation);
        self
    }

    /// Run a policy to completion and report. Fails up front on a
    /// malformed fault plan, and during the run if the policy breaks the
    /// dispatch contract or stops dispatching with jobs outstanding.
    pub fn run(&self, policy: &mut dyn Policy) -> Result<SimReport, SimError> {
        self.run_counted(policy).map(|(report, _)| report)
    }

    /// Like [`Simulation::run`], additionally returning the number of
    /// events the engine processed — the denominator for events-per-second
    /// throughput reporting (see the `sim_report` bench binary).
    pub fn run_counted(&self, policy: &mut dyn Policy) -> Result<(SimReport, u64), SimError> {
        self.faults.validate(
            self.workload.cluster.gpu_count(),
            self.workload.cluster.machine_count(),
        )?;
        Engine::new(self, policy).run()
    }
}

/// What a GPU is working on right now.
#[derive(Copy, Clone, Debug)]
struct Current {
    task: usize,
    /// End of training (MAX while still switching).
    train_end: SimTime,
    /// Accounted busy/effective-busy to roll back on failure.
    busy: SimDuration,
    effective: SimDuration,
}

/// Task lifecycle.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum TaskState {
    Pending,
    Ready,
    Running,
    Done,
}

struct Engine<'a, 'b> {
    cfg: &'a Simulation<'a>,
    policy: &'b mut dyn Policy,
    queue: EventQueue,
    task_state: Vec<TaskState>,
    ready: DenseSet,
    idle: DenseSet,
    /// Cached ascending snapshots of `ready`/`idle` handed to the policy
    /// (the dispatch view wants slices). Rebuilt only when the backing
    /// set's version moved — the `u64::MAX` sentinel forces the first
    /// build.
    ready_snap: Vec<usize>,
    ready_snap_version: u64,
    idle_snap: Vec<usize>,
    idle_snap_version: u64,
    /// Reusable assignment out-buffer for [`Policy::dispatch`].
    assign_buf: Vec<(usize, usize)>,
    /// Reusable per-machine NIC-factor buffer for degraded syncs.
    net_scratch: Vec<f64>,
    /// Per-GPU sequence number of the pending occupancy event
    /// (`SwitchDone` or `TrainDone`), so a failure can cancel it in the
    /// queue instead of letting it surface and be gen-checked. Only used
    /// for cancellation when speculation is off: a stale `TrainDone`
    /// doubles as a speculation probe at its pop time (see
    /// [`Engine::run`]), and cancelling it would change when twins launch.
    inflight: Vec<Option<u64>>,
    /// Last task that ran on each GPU (for switch costs).
    prev_task: Vec<Option<usize>>,
    /// When the current switch+train occupation began, per GPU.
    occupied_since: Vec<SimTime>,
    caches: Vec<SpeculativeCache>,
    ps: Vec<ParameterServer>,
    arrived: Vec<bool>,
    synced_rounds: Vec<u32>,
    completion: Vec<Option<SimTime>>,
    jobs_done: usize,
    /// Jobs with a synchronization barrier currently in flight (for
    /// cross-job network contention).
    active_syncs: u32,
    /// GPUs currently out of service.
    failed: Vec<bool>,
    /// Per-GPU occupancy generation, bumped on every failure: events
    /// scheduled under an older generation are stale and ignored, which
    /// keeps transient recovery sound (a recovered GPU must not be
    /// confused by echoes of its pre-failure work).
    gen: Vec<u32>,
    /// When each currently-failed GPU went down (for recovery latency).
    fail_time: Vec<Option<SimTime>>,
    /// Straggler slowdown profile per GPU, compiled once from the plan's
    /// windows so hot-path lookups are a binary search instead of a scan.
    slow: Vec<SlowdownProfile>,
    /// Live executions per task (2 while a speculation twin runs).
    running_copies: Vec<u32>,
    /// Tasks already granted a speculative copy (at most one per task).
    speculated: Vec<bool>,
    /// Tasks whose first execution was killed by a failure — their next
    /// completion is re-executed work, not first-time work.
    reexec: Vec<bool>,
    /// Jobs whose in-flight round absorbed a re-executed or speculative
    /// gradient (consumed into `FaultMetrics::degraded_rounds` when the
    /// round's barrier completes).
    round_tainted: Vec<bool>,
    /// Fault accounting accumulated during the run.
    fm: FaultMetrics,
    /// Checkpoint store state.
    store: CheckpointStore,
    /// GPUs whose in-flight switch includes a storage fetch.
    fetching: Vec<bool>,
    active_fetches: u32,
    /// Task currently occupying each GPU, with its training end time and
    /// accounted durations (for failure rollback).
    current: Vec<Option<Current>>,
    gpus: Vec<GpuReport>,
    timelines: Option<Vec<Vec<UtilSpan>>>,
    now: SimTime,
    /// Events popped and handled (stale/cancelled pops included) — the
    /// denominator for events-per-second throughput reporting.
    events_processed: u64,
}

impl<'a, 'b> Engine<'a, 'b> {
    fn new(cfg: &'a Simulation<'a>, policy: &'b mut dyn Policy) -> Self {
        let w = cfg.workload;
        let n_gpus = w.cluster.gpu_count();
        let n_jobs = w.problem.jobs.len();
        let mut queue = EventQueue::new();
        for (job, info) in w.problem.jobs.iter().enumerate() {
            queue.push(info.arrival, Event::JobArrival { job });
        }
        for f in &cfg.faults.gpu_faults {
            queue.push(f.at, Event::GpuFailure { gpu: f.gpu });
            if let Some(down) = f.recover_after {
                queue.push(f.at + down, Event::GpuRecovery { gpu: f.gpu });
            }
        }
        let ps = w
            .problem
            .jobs
            .iter()
            .enumerate()
            .map(|(j, info)| {
                ParameterServer::new(
                    j,
                    info.sync_scale,
                    info.rounds,
                    w.specs[j].model.spec().param_bytes,
                )
            })
            .collect();
        let mut store = cfg.storage.clone();
        store.set_faults(&cfg.faults.storage_faults);
        Engine {
            cfg,
            policy,
            queue,
            task_state: vec![TaskState::Pending; w.problem.n_tasks()],
            ready: DenseSet::new(w.problem.n_tasks()),
            idle: DenseSet::full(n_gpus),
            ready_snap: Vec::new(),
            ready_snap_version: u64::MAX,
            idle_snap: Vec::new(),
            idle_snap_version: u64::MAX,
            assign_buf: Vec::new(),
            net_scratch: Vec::new(),
            inflight: vec![None; n_gpus],
            prev_task: vec![None; n_gpus],
            occupied_since: vec![SimTime::ZERO; n_gpus],
            caches: w
                .cluster
                .gpus()
                .iter()
                .map(|g| SpeculativeCache::new(g.kind))
                .collect(),
            ps,
            arrived: vec![false; n_jobs],
            synced_rounds: vec![0; n_jobs],
            completion: vec![None; n_jobs],
            jobs_done: 0,
            active_syncs: 0,
            failed: vec![false; n_gpus],
            gen: vec![0; n_gpus],
            fail_time: vec![None; n_gpus],
            slow: (0..n_gpus)
                .map(|g| SlowdownProfile::new(&cfg.faults.straggler_windows(g)))
                .collect(),
            running_copies: vec![0; w.problem.n_tasks()],
            speculated: vec![false; w.problem.n_tasks()],
            reexec: vec![false; w.problem.n_tasks()],
            round_tainted: vec![false; n_jobs],
            fm: FaultMetrics::default(),
            store,
            fetching: vec![false; n_gpus],
            active_fetches: 0,
            current: vec![None; n_gpus],
            gpus: vec![GpuReport::default(); n_gpus],
            timelines: cfg.record_timelines.then(|| vec![Vec::new(); n_gpus]),
            now: SimTime::ZERO,
            events_processed: 0,
        }
    }

    fn run(mut self) -> Result<(SimReport, u64), SimError> {
        let n_jobs = self.cfg.workload.problem.jobs.len();
        let speculating = self.cfg.faults.speculation.is_some();
        while self.jobs_done < n_jobs {
            let Some((t, event)) = self.queue.pop() else {
                return Err(SimError::Deadlock {
                    at: self.now,
                    jobs_done: self.jobs_done,
                    jobs: n_jobs,
                    ready: self.ready.len(),
                    idle: self.idle.len(),
                });
            };
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.events_processed += 1;
            self.handle(event);
            // A switch completing changes nothing a policy can observe: the
            // GPU stays occupied (training starts), the ready set is
            // untouched, and a prior dispatch already ran this view to its
            // fixpoint — so the dispatch offer is skipped. Shipped policies
            // either always place when both sets are non-empty (the fixpoint
            // then has one of them empty) or never read the clock and
            // mutate idempotently on an unchanged view; the golden-fixture
            // suite pins the equivalence.
            if !matches!(event, Event::SwitchDone { .. }) {
                self.dispatch()?;
            }
            // A gradient landing is the moment a round can drop to "one
            // missing" — the trigger for speculative re-execution. Only
            // GPUs the policy left idle are used.
            if speculating {
                if let Event::TrainDone { task, .. } = event {
                    let job = self.cfg.workload.problem.tasks[task].job;
                    self.maybe_speculate(job);
                }
            }
        }
        let events = self.events_processed;
        Ok((self.report(), events))
    }

    fn handle(&mut self, event: Event) {
        let w = self.cfg.workload;
        match event {
            Event::JobArrival { job } => {
                self.arrived[job] = true;
                if let Some(ts) = &self.cfg.trace {
                    ts.instant(SimInstant::JobArrival { job }, None, self.now);
                }
                for i in w.round_range(job, 0) {
                    debug_assert_eq!(self.task_state[i], TaskState::Pending);
                    self.task_state[i] = TaskState::Ready;
                    self.ready.insert(i);
                }
            }
            Event::SwitchDone { task, gpu, gen } => {
                if self.failed[gpu] || gen != self.gen[gpu] {
                    return; // stale: the GPU failed after scheduling this
                }
                if self.fetching[gpu] {
                    self.fetching[gpu] = false;
                    self.active_fetches -= 1;
                }
                // Training begins; realized duration = expected × noise,
                // stretched through any straggler windows it overlaps.
                let expected = w.problem.train(task, gpu);
                let nominal = self.realized(task, expected);
                let realized = if self.slow[gpu].is_trivial() {
                    nominal
                } else {
                    self.slow[gpu]
                        .finish_over(self.now, nominal)
                        .saturating_since(self.now)
                };
                self.fm.straggler_delay += realized.saturating_sub(nominal);
                self.gpus[gpu].busy += realized;
                let model = w.task_model(task);
                let kind = w.cluster.gpus()[gpu].kind;
                self.gpus[gpu].effective_busy += realized.mul_f64(model.utilization(kind));
                if let Some(ts) = &self.cfg.trace {
                    let job = w.problem.tasks[task].job;
                    ts.task_span(
                        TaskPhase::Switch,
                        gpu,
                        task,
                        job,
                        self.occupied_since[gpu],
                        self.now,
                    );
                }
                if let Some(tl) = &mut self.timelines {
                    tl[gpu].push(UtilSpan {
                        from: self.occupied_since[gpu],
                        to: self.now,
                        level: 0.0, // switching
                    });
                    tl[gpu].push(UtilSpan {
                        from: self.now,
                        to: self.now + realized,
                        level: model.utilization(kind),
                    });
                }
                if let Some(cur) = &mut self.current[gpu] {
                    debug_assert_eq!(cur.task, task);
                    cur.train_end = self.now + realized;
                    cur.busy = realized;
                    cur.effective = realized.mul_f64(model.utilization(kind));
                }
                let seq = self
                    .queue
                    .push(self.now + realized, Event::TrainDone { task, gpu, gen });
                self.inflight[gpu] = Some(seq);
            }
            Event::TrainDone { task, gpu, gen } => {
                if self.failed[gpu] || gen != self.gen[gpu] {
                    return; // stale: the GPU failed after scheduling this
                }
                self.inflight[gpu] = None;
                let Some(cur) = self.current[gpu].take() else {
                    return;
                };
                debug_assert_eq!(cur.task, task);
                self.prev_task[gpu] = Some(task);
                self.idle.insert(gpu);
                self.running_copies[task] -= 1;
                let job = w.problem.tasks[task].job;
                if let Some(ts) = &self.cfg.trace {
                    // Recorded before the duplicate-gradient check so a
                    // losing speculation twin's (wasted) run still shows.
                    let from = SimTime::from_micros(self.now.as_micros() - cur.busy.as_micros());
                    ts.task_span(TaskPhase::Train, gpu, task, job, from, self.now);
                }
                if self.task_state[task] == TaskState::Done {
                    // A speculation twin already delivered this gradient:
                    // this copy's entire run is waste, and its gradient is
                    // dropped — the round cannot double-count.
                    self.fm.lost_work += cur.busy;
                    self.fm.dropped_gradients += 1;
                    return;
                }
                self.task_state[task] = TaskState::Done;
                if self.reexec[task] {
                    // This completion re-executed work a failure destroyed.
                    self.reexec[task] = false;
                    self.fm.reexec_work += cur.busy;
                    self.fm.reexecuted_tasks += 1;
                    self.round_tainted[job] = true;
                }
                if self.speculated[task] {
                    self.round_tainted[job] = true;
                }
                let machine = w.cluster.gpus()[gpu].machine;
                let mut factors = std::mem::take(&mut self.net_scratch);
                let backbone = self.fill_net_factors(&mut factors);
                let outcome = match backbone {
                    None => self.ps[job].push_gradient_contended(
                        self.now,
                        machine,
                        w.cluster.network(),
                        self.active_syncs,
                    ),
                    Some(backbone) => self.ps[job].push_gradient_degraded(
                        self.now,
                        machine,
                        w.cluster.network(),
                        self.active_syncs,
                        &factors,
                        backbone,
                    ),
                };
                self.net_scratch = factors;
                if let Some(outcome) = outcome {
                    self.active_syncs += 1;
                    if self.round_tainted[job] {
                        self.round_tainted[job] = false;
                        self.fm.degraded_rounds += 1;
                    }
                    if let Some(ts) = &self.cfg.trace {
                        ts.sync_span(job, outcome.round as usize, self.now, outcome.done_at);
                    }
                    self.queue.push(
                        outcome.done_at,
                        Event::SyncDone {
                            job,
                            round: outcome.round,
                        },
                    );
                }
            }
            Event::GpuFailure { gpu } => {
                if self.failed[gpu] {
                    return; // plan validation forbids this; stay safe
                }
                self.failed[gpu] = true;
                self.gen[gpu] += 1;
                self.fail_time[gpu] = Some(self.now);
                self.fm.gpu_failures += 1;
                if let Some(ts) = &self.cfg.trace {
                    ts.instant(SimInstant::GpuFailure, Some(gpu), self.now);
                }
                self.idle.remove(gpu);
                // Drop the GPU's pending occupancy event from the queue —
                // but only when speculation is off: popping a stale
                // `TrainDone` is also a speculation probe (see `run`), and
                // removing it would change when twins launch. With
                // speculation on, the generation check drops it at pop.
                if let Some(seq) = self.inflight[gpu].take() {
                    if self.cfg.faults.speculation.is_none() {
                        self.queue.cancel(seq);
                    }
                }
                if self.fetching[gpu] {
                    self.fetching[gpu] = false;
                    self.active_fetches -= 1;
                }
                // A running task is lost: roll back the un-run part of its
                // accounting (the elapsed part stays — that compute really
                // burned, and is what re-execution pays for again) and
                // return it to the ready set unless a speculation twin is
                // still alive (its gradient never reached the PS, so the
                // PS state is untouched).
                let mut requeued = Vec::new();
                if let Some(cur) = self.current[gpu].take() {
                    if cur.train_end != SimTime::MAX {
                        let unrun = cur.train_end.saturating_since(self.now).min(cur.busy);
                        let elapsed = cur.busy.saturating_sub(unrun);
                        let frac = unrun.ratio(cur.busy).min(1.0);
                        self.gpus[gpu].busy -= unrun;
                        self.gpus[gpu].effective_busy -= cur.effective.mul_f64(frac);
                        self.fm.lost_work += elapsed;
                    }
                    self.running_copies[cur.task] -= 1;
                    if self.task_state[cur.task] != TaskState::Done
                        && self.running_copies[cur.task] == 0
                    {
                        self.task_state[cur.task] = TaskState::Ready;
                        self.ready.insert(cur.task);
                        self.reexec[cur.task] = true;
                        if let Some(ts) = &self.cfg.trace {
                            ts.instant(SimInstant::Preempt { task: cur.task }, Some(gpu), self.now);
                        }
                        requeued.push(cur.task);
                    }
                }
                self.policy.on_gpu_failure(gpu, &requeued);
            }
            Event::GpuRecovery { gpu } => {
                if !self.failed[gpu] {
                    return;
                }
                self.failed[gpu] = false;
                self.idle.insert(gpu);
                // The executor restarted: no resident model, cold cache.
                self.prev_task[gpu] = None;
                self.caches[gpu] = SpeculativeCache::new(w.cluster.gpus()[gpu].kind);
                self.fm.gpu_recoveries += 1;
                if let Some(down_at) = self.fail_time[gpu].take() {
                    self.fm.recovery_latency += self.now.saturating_since(down_at);
                }
                if let Some(ts) = &self.cfg.trace {
                    ts.instant(SimInstant::GpuRecovery, Some(gpu), self.now);
                }
                self.policy.on_gpu_recovery(gpu);
            }
            Event::SyncDone { job, round } => {
                debug_assert_eq!(self.synced_rounds[job], round);
                self.active_syncs -= 1;
                self.synced_rounds[job] = round + 1;
                if round + 1 == w.problem.jobs[job].rounds {
                    self.completion[job] = Some(self.now);
                    self.jobs_done += 1;
                    if let Some(ts) = &self.cfg.trace {
                        ts.instant(SimInstant::JobComplete { job }, None, self.now);
                    }
                    // The job will never run again: release its cached
                    // models and garbage-collect its checkpoints.
                    for cache in &mut self.caches {
                        cache.retire_job(hare_workload::JobId(job as u32));
                    }
                    self.store.evict_job(job);
                } else {
                    for i in w.round_range(job, round + 1) {
                        debug_assert_eq!(self.task_state[i], TaskState::Pending);
                        self.task_state[i] = TaskState::Ready;
                        self.ready.insert(i);
                    }
                }
            }
        }
    }

    /// NIC degradation factors active right now, written into `out` (one
    /// entry per machine, reset to 1.0). Returns the backbone fraction
    /// when any fault is open, or `None` when the network is healthy (the
    /// fast path — fault-free runs never fill the buffer).
    fn fill_net_factors(&self, out: &mut Vec<f64>) -> Option<f64> {
        let nf = &self.cfg.faults.network_faults;
        if nf.is_empty() {
            return None;
        }
        out.clear();
        out.resize(self.cfg.workload.cluster.machine_count(), 1.0);
        let mut backbone = 1.0f64;
        let mut any = false;
        for f in nf {
            if f.from <= self.now && self.now < f.until {
                any = true;
                match f.machine {
                    Some(m) => out[m] = out[m].min(f.factor),
                    None => backbone = backbone.min(f.factor),
                }
            }
        }
        any.then_some(backbone)
    }

    /// Speculative re-execution (fault-tolerance through the relaxed
    /// quorum): when `job`'s round is waiting on exactly one gradient and
    /// the GPU computing it is straggling past the configured threshold,
    /// clone the task onto the fastest idle GPU. First copy to finish
    /// wins; the loser's gradient is dropped.
    fn maybe_speculate(&mut self, job: usize) {
        let Some(spec) = self.cfg.faults.speculation else {
            return;
        };
        if self.idle.is_empty() || self.ps[job].missing() != 1 {
            return;
        }
        let w = self.cfg.workload;
        let round = self.ps[job].current_round();
        for task in w.round_range(job, round) {
            if self.task_state[task] != TaskState::Running
                || self.speculated[task]
                || self.running_copies[task] != 1
            {
                continue;
            }
            let running_on = (0..self.failed.len())
                .find(|&g| !self.failed[g] && self.current[g].is_some_and(|c| c.task == task));
            let Some(gpu) = running_on else {
                continue;
            };
            if self.slow[gpu].slowdown_at(self.now) < spec.threshold {
                continue;
            }
            let target = self
                .idle
                .iter()
                .min_by_key(|&g| (w.problem.train(task, g), g));
            if let Some(target) = target {
                self.idle.remove(target);
                self.speculated[task] = true;
                self.fm.speculated_tasks += 1;
                self.start_task(task, target);
            }
            return;
        }
    }

    fn dispatch(&mut self) -> Result<(), SimError> {
        if self.ready.is_empty() || self.idle.is_empty() {
            return Ok(());
        }
        // Loop-invariant in `now`; hoisted out of the fixpoint iteration.
        let solver_budget_frac = self.cfg.faults.solver_frac_at(self.now);
        loop {
            if self.ready.is_empty() || self.idle.is_empty() {
                return Ok(());
            }
            if self.ready_snap_version != self.ready.version() {
                self.ready.collect_into(&mut self.ready_snap);
                self.ready_snap_version = self.ready.version();
            }
            if self.idle_snap_version != self.idle.version() {
                self.idle.collect_into(&mut self.idle_snap);
                self.idle_snap_version = self.idle.version();
            }
            let view = SimView {
                now: self.now,
                workload: self.cfg.workload,
                ready: &self.ready_snap,
                idle_gpus: &self.idle_snap,
                synced_rounds: &self.synced_rounds,
                arrived: &self.arrived,
                solver_budget_frac,
            };
            let mut assignments = std::mem::take(&mut self.assign_buf);
            self.policy.dispatch(&view, &mut assignments);
            if assignments.is_empty() {
                self.assign_buf = assignments;
                return Ok(());
            }
            for &(task, gpu) in &assignments {
                if !self.ready.remove(task) {
                    return Err(SimError::PolicyViolation(format!(
                        "policy dispatched non-ready task {task}"
                    )));
                }
                if !self.idle.remove(gpu) {
                    return Err(SimError::PolicyViolation(format!(
                        "policy dispatched to non-idle GPU {gpu}"
                    )));
                }
                self.start_task(task, gpu);
            }
            assignments.clear();
            self.assign_buf = assignments;
        }
    }

    fn start_task(&mut self, task: usize, gpu: usize) {
        let w = self.cfg.workload;
        self.task_state[task] = TaskState::Running;
        self.running_copies[task] += 1;
        let gen = self.gen[gpu];
        let job = w.problem.tasks[task].job;
        let model = w.task_model(task);
        let kind = w.cluster.gpus()[gpu].kind;

        // Consecutive tasks of the same job share the GPU context and the
        // resident model (Section 3: "several consecutive tasks on a GPU
        // belong to the same job and they share the same GPU context,
        // leading to low switching overhead") — under every runtime. Only
        // a dispatch round-trip is charged, and it is not counted as a
        // task switch.
        self.current[gpu] = Some(Current {
            task,
            train_end: SimTime::MAX,
            busy: SimDuration::ZERO,
            effective: SimDuration::ZERO,
        });
        if self.prev_task[gpu].map(|t| w.problem.tasks[t].job) == Some(job) {
            if self.cfg.switch_policy == SwitchPolicy::Hare {
                // Keep the cache bookkeeping consistent (always a hit).
                let hit = self.caches[gpu].admit(TaskModelRef {
                    job: hare_workload::JobId(job as u32),
                    model,
                });
                debug_assert!(hit, "same-job successor must be resident");
            }
            let sw = SimDuration::from_micros(500);
            self.gpus[gpu].switching += sw;
            self.occupied_since[gpu] = self.now;
            let seq = self
                .queue
                .push(self.now + sw, Event::SwitchDone { task, gpu, gen });
            self.inflight[gpu] = Some(seq);
            return;
        }

        let cache_hit = match self.cfg.switch_policy {
            SwitchPolicy::Hare => self.caches[gpu].admit(TaskModelRef {
                job: hare_workload::JobId(job as u32),
                model,
            }),
            _ => false,
        };
        let prev = self.prev_task[gpu].map(|t| PrevTask {
            model: w.task_model(t),
            step_time: w.step_time(t, gpu),
        });
        let breakdown = hare_memory::switch_time(
            self.cfg.switch_policy,
            &SwitchRequest {
                gpu: kind,
                prev,
                next: model,
                cache_hit,
            },
        );
        // First touch of this job on the machine pulls its checkpoint from
        // the shared store (Fig. 9's HDFS); later touches are machine-local.
        let machine = w.cluster.gpus()[gpu].machine;
        let fetch = self.store.access_at(
            self.now,
            job,
            machine,
            w.specs[job].model.spec().param_bytes,
            self.active_fetches,
        );
        if !fetch.is_zero() {
            self.fetching[gpu] = true;
            self.active_fetches += 1;
        }
        let sw = breakdown.total() + fetch;
        self.gpus[gpu].switching += sw;
        self.gpus[gpu].switch_count += 1;
        if cache_hit {
            self.gpus[gpu].cache_hits += 1;
        }
        self.occupied_since[gpu] = self.now;
        let seq = self
            .queue
            .push(self.now + sw, Event::SwitchDone { task, gpu, gen });
        self.inflight[gpu] = Some(seq);
    }

    /// Deterministic per-task noisy duration.
    fn realized(&self, task: usize, expected: SimDuration) -> SimDuration {
        if self.cfg.noise_frac == 0.0 {
            return expected;
        }
        let mut rng = SmallRng::seed_from_u64(
            self.cfg
                .seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(task as u64),
        );
        let factor = (1.0 + gaussian(&mut rng) * self.cfg.noise_frac).max(0.5);
        expected.mul_f64(factor)
    }

    fn report(self) -> SimReport {
        let w = self.cfg.workload;
        let completion: Vec<SimTime> = self
            .completion
            .iter()
            .map(|c| c.expect("all jobs complete"))
            .collect();
        let stats = crate::metrics::completion_stats(&completion, &w.problem.jobs);
        let mut faults = self.fm;
        for ps in &self.ps {
            faults.gradients_accepted += ps.accepted();
            faults.dropped_gradients += ps.dropped();
        }
        faults.storage_stall = self.store.stalled();
        // Registry filled by the shared helper (also used by the sharded
        // merge) — excluded from `SimReport::to_json` so golden fixtures
        // are unaffected.
        let metrics =
            crate::metrics::sim_registry(self.events_processed, &self.gpus, &faults, &stats);
        SimReport {
            scheme: self.policy.name(),
            makespan: stats.makespan,
            completion,
            jct: stats.jct,
            weights: stats.weights,
            weighted_completion: stats.weighted_completion,
            weighted_jct: stats.weighted_jct,
            gpus: self.gpus,
            storage_fetched: self.store.fetched(),
            storage_local_hits: self.store.local_hits(),
            faults,
            timelines: self.timelines,
            metrics,
        }
    }
}

/// The scheduler's own expectation of a schedule (no noise, no switching,
/// uncontended sync estimates) packaged as a [`SimReport`] — the
/// "simulator" column of the paper's Fig.-12 accuracy comparison.
pub fn planned_report(workload: &SimWorkload, schedule: &Schedule, name: &str) -> SimReport {
    let p = &workload.problem;
    let completion: Vec<SimTime> = (0..p.jobs.len())
        .map(|n| schedule.job_completion(p, n))
        .collect();
    let stats = crate::metrics::completion_stats(&completion, &p.jobs);
    let busy = schedule.busy_time(p);
    SimReport {
        scheme: name.to_string(),
        makespan: stats.makespan,
        weighted_completion: stats.weighted_completion,
        weighted_jct: stats.weighted_jct,
        completion,
        jct: stats.jct,
        weights: stats.weights,
        gpus: busy
            .into_iter()
            .map(|b| GpuReport {
                busy: b,
                effective_busy: b,
                ..GpuReport::default()
            })
            .collect(),
        storage_fetched: hare_cluster::Bytes::ZERO,
        storage_local_hits: 0,
        faults: FaultMetrics::default(),
        timelines: None,
        metrics: MetricsRegistry::default(),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::faults::StragglerWindow;
    use crate::policy::OfflineReplay;
    use hare_cluster::Cluster;
    use hare_workload::{testbed_trace, ProfileDb};

    fn workload(n_jobs: usize) -> SimWorkload {
        let db = ProfileDb::with_noise(1, 0.0);
        let mut trace = testbed_trace(11);
        trace.truncate(n_jobs);
        SimWorkload::build(Cluster::testbed15(), trace, &db)
    }

    fn run_hare(w: &SimWorkload, noise: f64, seed: u64) -> SimReport {
        let out = hare_core::hare_schedule(&w.problem);
        let mut replay = OfflineReplay::new("Hare", w, &out.schedule);
        Simulation::new(w)
            .with_noise(noise)
            .with_seed(seed)
            .run(&mut replay)
            .expect("simulation")
    }

    /// Σ rounds × sync_scale — the exact number of gradients every
    /// completed run must accept, faults or not.
    fn expected_gradients(w: &SimWorkload) -> u64 {
        w.problem
            .jobs
            .iter()
            .map(|j| j.rounds as u64 * j.sync_scale as u64)
            .sum()
    }

    #[test]
    fn completes_all_jobs() {
        let w = workload(6);
        let report = run_hare(&w, 0.02, 3);
        assert_eq!(report.completion.len(), 6);
        assert_eq!(report.jct.len(), 6);
        assert!(report.weighted_completion > 0.0);
        for (c, job) in report.completion.iter().zip(&w.problem.jobs) {
            assert!(*c >= job.arrival);
        }
        assert_eq!(
            report.faults,
            FaultMetrics {
                gradients_accepted: expected_gradients(&w),
                ..FaultMetrics::default()
            }
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let w = workload(5);
        let a = run_hare(&w, 0.02, 42);
        let b = run_hare(&w, 0.02, 42);
        assert_eq!(a, b);
        let c = run_hare(&w, 0.02, 43);
        assert_ne!(a.weighted_completion, c.weighted_completion);
    }

    #[test]
    fn noise_free_run_tracks_plan_closely() {
        // The paper's Fig.-12 check: simulator vs testbed within 5%. With
        // noise off, the only divergence from the plan is switching cost
        // and sync contention.
        let w = workload(8);
        let out = hare_core::hare_schedule(&w.problem);
        let planned = planned_report(&w, &out.schedule, "plan");
        let mut replay = OfflineReplay::new("Hare", &w, &out.schedule);
        let simulated = Simulation::new(&w)
            .with_noise(0.0)
            .run(&mut replay)
            .expect("simulation");
        let gap = (simulated.weighted_completion - planned.weighted_completion).abs()
            / planned.weighted_completion;
        assert!(gap < 0.05, "plan-vs-sim gap {gap:.3} exceeds 5%");
    }

    #[test]
    fn switching_protocol_changes_overhead() {
        // 10 jobs (not 6): enough rounds recur per GPU that the speculative
        // cache provably gets traffic on this trace seed.
        let w = workload(10);
        let run = |policy| {
            let out = hare_core::hare_schedule(&w.problem);
            let mut replay = OfflineReplay::new("Hare", &w, &out.schedule);
            Simulation::new(&w)
                .with_noise(0.0)
                .with_switch_policy(policy)
                .run(&mut replay)
                .expect("simulation")
        };
        let hare = run(SwitchPolicy::Hare);
        let pipe = run(SwitchPolicy::PipeSwitch);
        let default = run(SwitchPolicy::Default);
        assert!(hare.total_switching() < pipe.total_switching());
        assert!(pipe.total_switching() < default.total_switching());
        // Default's multi-second switches must hurt completion times.
        assert!(default.weighted_completion > hare.weighted_completion);
        // Hare's speculative cache actually hits.
        let (switches, hits) = hare.switch_stats();
        assert!(switches > 0);
        assert!(hits > 0, "expected cache hits across rounds");
    }

    #[test]
    fn timelines_cover_busy_time() {
        let w = workload(4);
        let out = hare_core::hare_schedule(&w.problem);
        let mut replay = OfflineReplay::new("Hare", &w, &out.schedule);
        let report = Simulation::new(&w)
            .with_noise(0.0)
            .with_timelines()
            .run(&mut replay)
            .expect("simulation");
        let tl = report.timelines.as_ref().expect("timelines recorded");
        for (g, spans) in tl.iter().enumerate() {
            let train_time: SimDuration = spans
                .iter()
                .filter(|s| s.level > 0.0)
                .map(|s| s.to - s.from)
                .sum();
            assert_eq!(
                train_time, report.gpus[g].busy,
                "GPU {g} timeline disagrees with busy accounting"
            );
            for w2 in spans.windows(2) {
                assert!(w2[0].to <= w2[1].from, "overlapping spans on GPU {g}");
            }
        }
    }

    #[test]
    fn work_conservation_with_zero_noise() {
        // With noise off, each GPU's accounted busy time must equal the
        // sum of the expected training times of the tasks placed on it.
        let w = workload(6);
        let out = hare_core::hare_schedule(&w.problem);
        let mut replay = OfflineReplay::new("Hare", &w, &out.schedule);
        let report = Simulation::new(&w)
            .with_noise(0.0)
            .run(&mut replay)
            .expect("simulation");
        let total_busy: SimDuration = report.gpus.iter().map(|g| g.busy).sum();
        // The replayed placement can differ from the plan, but total work
        // across GPUs of the same kind is conserved... compute directly
        // from the simulation's own placement via the timeline-free
        // identity: every task ran exactly once somewhere, so total busy
        // must sit between the min-kind and max-kind serializations.
        let min_total: SimDuration = (0..w.problem.n_tasks())
            .map(|i| {
                (0..w.cluster.gpu_count())
                    .map(|g| w.problem.train(i, g))
                    .min()
                    .unwrap()
            })
            .sum();
        let max_total: SimDuration = (0..w.problem.n_tasks())
            .map(|i| {
                (0..w.cluster.gpu_count())
                    .map(|g| w.problem.train(i, g))
                    .max()
                    .unwrap()
            })
            .sum();
        assert!(total_busy >= min_total && total_busy <= max_total);
        // And replay preserves the planned placement exactly, so equality
        // with the plan's busy time holds per GPU.
        assert_eq!(
            report.gpus.iter().map(|g| g.busy).collect::<Vec<_>>(),
            out.schedule.busy_time(&w.problem)
        );
    }

    #[test]
    fn gpu_failure_is_survived_by_replay() {
        let w = workload(6);
        let out = hare_core::hare_schedule(&w.problem);
        let baseline = {
            let mut replay = OfflineReplay::new("Hare", &w, &out.schedule);
            Simulation::new(&w)
                .with_noise(0.0)
                .run(&mut replay)
                .expect("simulation")
        };
        // Kill the busiest GPU shortly into the run.
        let victim = out
            .schedule
            .busy_time(&w.problem)
            .iter()
            .enumerate()
            .max_by_key(|(_, b)| **b)
            .map(|(g, _)| g)
            .unwrap();
        let mut replay = OfflineReplay::new("Hare", &w, &out.schedule);
        let failed = Simulation::new(&w)
            .with_noise(0.0)
            .with_gpu_failure(SimTime::from_secs(30), victim)
            .run(&mut replay)
            .expect("simulation");
        // All jobs still complete; losing a GPU cannot help.
        assert_eq!(failed.completion.len(), 6);
        assert!(failed.weighted_completion >= baseline.weighted_completion);
        // The dead GPU did no work after the failure beyond what it had
        // completed: its busy time is at most the baseline's.
        assert!(failed.gpus[victim].busy <= baseline.gpus[victim].busy);
        assert_eq!(failed.faults.gpu_failures, 1);
        assert_eq!(failed.faults.gpu_recoveries, 0);
        // Every gradient still arrived exactly once.
        assert_eq!(failed.faults.gradients_accepted, expected_gradients(&w));
    }

    #[test]
    fn failure_of_idle_gpu_only_removes_capacity() {
        let w = workload(5);
        let out = hare_core::hare_schedule(&w.problem);
        // Fail a GPU before anything arrives on it.
        let idle_victim = 14; // the last M60 sees little early work
        let mut replay = OfflineReplay::new("Hare", &w, &out.schedule);
        let report = Simulation::new(&w)
            .with_noise(0.0)
            .with_gpu_failure(SimTime::ZERO, idle_victim)
            .run(&mut replay)
            .expect("simulation");
        assert_eq!(report.completion.len(), 5);
        assert!(report.gpus[idle_victim].busy.is_zero());
        assert!(report.faults.lost_work.is_zero());
        assert_eq!(report.faults.reexecuted_tasks, 0);
    }

    #[test]
    fn failures_are_deterministic() {
        let w = workload(6);
        let run = || {
            let out = hare_core::hare_schedule(&w.problem);
            let mut replay = OfflineReplay::new("Hare", &w, &out.schedule);
            Simulation::new(&w)
                .with_seed(9)
                .with_gpu_failure(SimTime::from_secs(10), 0)
                .with_gpu_failure(SimTime::from_secs(50), 3)
                .run(&mut replay)
                .expect("simulation")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn malformed_fault_plans_error_instead_of_panicking() {
        let w = workload(3);
        // Out-of-range GPU index.
        let out = hare_core::hare_schedule(&w.problem);
        let mut replay = OfflineReplay::new("Hare", &w, &out.schedule);
        let err = Simulation::new(&w)
            .with_gpu_failure(SimTime::from_secs(1), 99)
            .run(&mut replay)
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidFaultPlan(_)));
        // Duplicate failure of an already-dead GPU.
        let mut replay = OfflineReplay::new("Hare", &w, &out.schedule);
        let err = Simulation::new(&w)
            .with_gpu_failure(SimTime::from_secs(1), 2)
            .with_gpu_failure(SimTime::from_secs(2), 2)
            .run(&mut replay)
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidFaultPlan(_)));
    }

    #[test]
    fn transient_failure_recovers_and_reexecutes_only_unacknowledged_work() {
        let w = workload(6);
        let out = hare_core::hare_schedule(&w.problem);
        let victim = out
            .schedule
            .busy_time(&w.problem)
            .iter()
            .enumerate()
            .max_by_key(|(_, b)| **b)
            .map(|(g, _)| g)
            .unwrap();
        let at = SimTime::from_secs(30);
        let down = SimDuration::from_secs(60);

        let mut replay = OfflineReplay::new("Hare", &w, &out.schedule);
        let permanent = Simulation::new(&w)
            .with_noise(0.0)
            .with_gpu_failure(at, victim)
            .run(&mut replay)
            .expect("simulation");
        let mut replay = OfflineReplay::new("Hare", &w, &out.schedule);
        let transient = Simulation::new(&w)
            .with_noise(0.0)
            .with_transient_gpu_failure(at, victim, down)
            .run(&mut replay)
            .expect("simulation");

        // The GPU rejoined and was put back to work.
        assert_eq!(transient.faults.gpu_recoveries, 1);
        assert_eq!(transient.faults.recovery_latency, down);
        assert!(
            transient.gpus[victim].busy > permanent.gpus[victim].busy,
            "recovered GPU must do work after rejoining"
        );
        // Getting the GPU back cannot hurt.
        assert!(transient.weighted_completion <= permanent.weighted_completion);

        // Re-execution covers exactly the unacknowledged work: at most the
        // one task that was mid-flight, and acknowledged rounds are never
        // re-run — the accepted gradient count matches a fault-free run
        // exactly (no double-counting, nothing free).
        assert!(transient.faults.reexecuted_tasks <= 1);
        assert_eq!(
            transient.faults.reexecuted_tasks > 0,
            !transient.faults.reexec_work.is_zero()
        );
        assert_eq!(transient.faults.gradients_accepted, expected_gradients(&w));
        assert_eq!(transient.faults.dropped_gradients, 0);

        // Determinism with recovery in the mix.
        let mut replay = OfflineReplay::new("Hare", &w, &out.schedule);
        let again = Simulation::new(&w)
            .with_noise(0.0)
            .with_transient_gpu_failure(at, victim, down)
            .run(&mut replay)
            .expect("simulation");
        assert_eq!(transient, again);
    }

    #[test]
    fn stragglers_stretch_wall_clock_but_lose_nothing() {
        let w = workload(5);
        let out = hare_core::hare_schedule(&w.problem);
        let baseline = {
            let mut replay = OfflineReplay::new("Hare", &w, &out.schedule);
            Simulation::new(&w)
                .with_noise(0.0)
                .run(&mut replay)
                .expect("simulation")
        };
        let victim = out
            .schedule
            .busy_time(&w.problem)
            .iter()
            .enumerate()
            .max_by_key(|(_, b)| **b)
            .map(|(g, _)| g)
            .unwrap();
        let plan = FaultPlan {
            stragglers: vec![StragglerWindow {
                gpu: victim,
                from: SimTime::ZERO,
                until: SimTime::from_secs(1_000_000),
                slowdown: 3.0,
            }],
            ..FaultPlan::default()
        };
        let mut replay = OfflineReplay::new("Hare", &w, &out.schedule);
        let straggled = Simulation::new(&w)
            .with_noise(0.0)
            .with_fault_plan(&plan)
            .run(&mut replay)
            .expect("simulation");
        assert!(straggled.faults.straggler_delay > SimDuration::ZERO);
        assert!(straggled.weighted_completion > baseline.weighted_completion);
        // Nothing is lost or re-executed — just slower.
        assert!(straggled.faults.lost_work.is_zero());
        assert_eq!(straggled.faults.gradients_accepted, expected_gradients(&w));
        // The straggling GPU's busy time includes the slowdown.
        assert!(straggled.gpus[victim].busy >= baseline.gpus[victim].busy);
    }

    #[test]
    fn network_degradation_slows_completion() {
        let w = workload(5);
        let out = hare_core::hare_schedule(&w.problem);
        let baseline = {
            let mut replay = OfflineReplay::new("Hare", &w, &out.schedule);
            Simulation::new(&w)
                .with_noise(0.0)
                .run(&mut replay)
                .expect("simulation")
        };
        let plan = FaultPlan {
            network_faults: vec![crate::faults::NetworkFault {
                machine: None,
                from: SimTime::ZERO,
                until: SimTime::from_secs(1_000_000),
                factor: 0.1,
            }],
            ..FaultPlan::default()
        };
        let mut replay = OfflineReplay::new("Hare", &w, &out.schedule);
        let degraded = Simulation::new(&w)
            .with_noise(0.0)
            .with_fault_plan(&plan)
            .run(&mut replay)
            .expect("simulation");
        assert!(
            degraded.weighted_completion > baseline.weighted_completion,
            "a 10× backbone cut must slow the barriers"
        );
        assert_eq!(degraded.faults.gradients_accepted, expected_gradients(&w));
    }

    #[test]
    fn arrivals_gate_execution() {
        let w = workload(5);
        let report = run_hare(&w, 0.0, 0);
        // No job may complete before its arrival + its critical path.
        for (n, job) in w.problem.jobs.iter().enumerate() {
            let min_round = job.train.iter().min().unwrap();
            let lower = job.arrival + *min_round * job.rounds as u64;
            assert!(
                report.completion[n] >= lower,
                "job {n} completed impossibly early"
            );
        }
    }
}
