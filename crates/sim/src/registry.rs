//! Run-scoped metrics registry: named counters, gauges, and fixed-bucket
//! histograms attached to every [`crate::SimReport`].
//!
//! The registry is filled once, when the engine builds its report — never
//! on the event hot path — so it adds nothing to simulation cost. It is
//! deliberately *excluded* from [`crate::SimReport::to_json`]: that
//! serializer is the golden-snapshot fixture format, pinned byte-for-byte
//! across PRs, while the registry is free to grow new series. Render it
//! separately with [`MetricsRegistry::to_json`].
//!
//! All maps are `BTreeMap`s so iteration (and therefore JSON output) is
//! deterministic, matching the rest of the repo's bit-reproducibility
//! discipline.

use crate::metrics::{push_f64, push_json_str};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A fixed-bucket histogram: `bounds[i]` is the inclusive upper edge of
/// bucket `i`, and one extra overflow bucket catches everything above the
/// last bound (including non-finite observations, which have no
/// meaningful position on the axis).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` entries; the last is the overflow bucket.
    counts: Vec<u64>,
    /// Total observations, including overflow.
    count: u64,
    /// Sum of the *finite* observations (NaN would poison the sum).
    sum: f64,
}

impl Histogram {
    /// A histogram with the given ascending, finite bucket upper edges.
    pub fn new(bounds: &[f64]) -> Histogram {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be ascending and finite"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    /// Record one observation. Non-finite values land in the overflow
    /// bucket and are kept out of the running sum.
    pub fn record(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        if v.is_finite() {
            self.sum += v;
        }
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of the finite observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// The `q`-quantile (`q ∈ [0, 1]`) estimated by linear interpolation
    /// inside the bucket holding the target rank — the Prometheus
    /// `histogram_quantile` convention. The first bucket interpolates
    /// from 0 (or from its upper edge when that edge is negative: these
    /// histograms carry non-negative metrics). A rank landing in the
    /// overflow bucket is clamped to the last finite edge — the estimate
    /// is then a lower bound, which is the honest answer for "p99 of a
    /// tail we stopped resolving". `None` when the histogram is empty or
    /// has no finite buckets.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 || self.bounds.is_empty() {
            return None;
        }
        // Target rank in [1, count]; q = 0 means the first observation.
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cum += n;
            if cum < target {
                continue;
            }
            if i == self.bounds.len() {
                // Overflow: clamp to the last finite edge.
                return Some(self.bounds[self.bounds.len() - 1]);
            }
            let hi = self.bounds[i];
            let lo = if i == 0 {
                hi.min(0.0)
            } else {
                self.bounds[i - 1]
            };
            // Position of the target rank inside this bucket, in (0, 1].
            let into = (target - (cum - n)) as f64 / n as f64;
            return Some(lo + (hi - lo) * into);
        }
        None
    }

    /// Per-bucket counts (`bounds.len() + 1` entries, overflow last) —
    /// the serve snapshot's raw view of the histogram.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Rebuild a histogram from `bounds`, per-bucket `counts`, and the
    /// finite-observation `sum` (the inverse of [`Histogram::counts`] +
    /// [`Histogram::sum`]; the total count is implied by the buckets).
    /// `None` when the counts length does not match the bounds.
    pub fn from_parts(bounds: &[f64], counts: Vec<u64>, sum: f64) -> Option<Histogram> {
        if counts.len() != bounds.len() + 1 {
            return None;
        }
        let count = counts.iter().sum();
        Some(Histogram {
            bounds: bounds.to_vec(),
            counts,
            count,
            sum,
        })
    }

    /// `(upper_bound, count)` pairs; the final pair has `None` as its
    /// bound — the overflow bucket.
    pub fn buckets(&self) -> impl Iterator<Item = (Option<f64>, u64)> + '_ {
        self.bounds
            .iter()
            .map(|&b| Some(b))
            .chain(std::iter::once(None))
            .zip(self.counts.iter().copied())
    }
}

/// Named counters, gauges, and histograms for one simulation run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `by` to a counter, creating it at zero on first touch.
    pub fn add(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Increment a counter by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Set a gauge to `v` (last write wins).
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Attach a fully-built histogram under `name` (last write wins).
    /// Used when a subsystem keeps its own histogram on a hot path and
    /// hands it over wholesale at report time, preserving its bucket
    /// layout exactly.
    pub fn insert_histogram(&mut self, name: &str, h: Histogram) {
        self.histograms.insert(name.to_string(), h);
    }

    /// Record `v` into the named histogram, creating it with `bounds` on
    /// first touch (later calls ignore `bounds` — buckets are fixed).
    pub fn observe(&mut self, name: &str, bounds: &[f64], v: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .record(v);
    }

    /// A counter's value (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value, when set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, when it exists.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Deterministic JSON rendering (sorted keys via `BTreeMap`; gauge
    /// values go through the same total float writer as the report, so
    /// non-finite gauges serialize as `null` rather than corrupting the
    /// document).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_json_str(&mut s, k);
            let _ = write!(s, ":{v}");
        }
        s.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_json_str(&mut s, k);
            s.push(':');
            push_f64(&mut s, *v);
        }
        s.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_json_str(&mut s, k);
            let _ = write!(s, ":{{\"count\":{},\"sum\":", h.count);
            push_f64(&mut s, h.sum);
            s.push_str(",\"buckets\":[");
            for (j, (bound, count)) in h.buckets().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str("{\"le\":");
                match bound {
                    Some(b) => push_f64(&mut s, b),
                    None => s.push_str("null"),
                }
                let _ = write!(s, ",\"count\":{count}}}");
            }
            s.push_str("]}");
        }
        s.push_str("}}");
        s
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut r = MetricsRegistry::new();
        assert!(r.is_empty());
        r.inc("events");
        r.add("events", 4);
        r.set_gauge("util", 0.5);
        r.set_gauge("util", 0.75);
        assert_eq!(r.counter("events"), 5);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("util"), Some(0.75));
        assert!(!r.is_empty());
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        for v in [0.5, 0.9, 5.0, 100.0, f64::NAN, f64::INFINITY] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets, vec![(Some(1.0), 2), (Some(10.0), 1), (None, 3)]);
        assert!((h.sum() - 106.4).abs() < 1e-9, "NaN/inf stay out of sum");
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let h = Histogram::new(&[1.0, 2.0]);
        assert_eq!(h.quantile(0.5), None);
        let no_buckets = Histogram::new(&[]);
        assert_eq!(no_buckets.quantile(0.5), None);
    }

    #[test]
    fn quantile_interpolates_inside_a_single_bucket() {
        // 4 observations, all in the (0, 10] bucket: ranks sit at
        // 2.5, 5, 7.5, 10 under linear interpolation from the 0 edge.
        let mut h = Histogram::new(&[10.0]);
        for _ in 0..4 {
            h.record(3.0);
        }
        assert_eq!(h.quantile(0.0), Some(2.5), "q=0 is the first rank");
        assert_eq!(h.quantile(0.5), Some(5.0));
        assert_eq!(h.quantile(1.0), Some(10.0));
    }

    #[test]
    fn quantile_interpolates_across_buckets() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        // 2 in (0,1], 6 in (1,2], 2 in (2,4].
        for v in [0.5, 0.5, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5, 3.0, 3.0] {
            h.record(v);
        }
        // p50: rank 5 is the 3rd of 6 in (1,2] -> 1 + 3/6.
        assert_eq!(h.quantile(0.5), Some(1.5));
        // p90: rank 9 is the 1st of 2 in (2,4] -> 2 + 1/2 * 2.
        assert_eq!(h.quantile(0.9), Some(3.0));
        // p10: rank 1 is the 1st of 2 in (0,1].
        assert_eq!(h.quantile(0.1), Some(0.5));
    }

    #[test]
    fn quantile_clamps_overflow_to_the_last_edge() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.record(0.5);
        h.record(1e9);
        h.record(f64::INFINITY);
        assert_eq!(h.quantile(0.99), Some(10.0), "overflow clamps");
        // Rank 1 is the only observation of (0, 1]: interpolation puts
        // a bucket's last rank at its upper edge.
        assert_eq!(h.quantile(0.1), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_rejects_bad_q() {
        let _ = Histogram::new(&[1.0]).quantile(1.5);
    }

    #[test]
    fn json_is_valid_even_with_non_finite_gauges() {
        let mut r = MetricsRegistry::new();
        r.inc("c");
        r.set_gauge("bad", f64::NAN);
        r.set_gauge("worse", f64::NEG_INFINITY);
        r.observe("h", &[1.0], f64::INFINITY);
        let json = r.to_json();
        let v = serde_json::from_str(&json).expect("registry JSON parses");
        assert!(v.get("gauges").unwrap().get("bad").unwrap().is_null());
        assert_eq!(
            v.get("counters").unwrap().get("c").unwrap().as_u64(),
            Some(1)
        );
    }

    #[test]
    fn empty_registry_serializes() {
        let json = MetricsRegistry::new().to_json();
        assert!(serde_json::from_str(&json).is_ok());
    }
}
