//! Simulation reports: the quantities the paper's evaluation plots.

use hare_cluster::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Per-GPU accounting.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct GpuReport {
    /// Time spent computing (training steps).
    pub busy: SimDuration,
    /// Computing time weighted by the running model's SM-utilization cap —
    /// what `nvidia-smi` style utilization plots (Figs. 3/6/8) show.
    pub effective_busy: SimDuration,
    /// Time spent in task switches.
    pub switching: SimDuration,
    /// Number of task switches performed.
    pub switch_count: u32,
    /// Speculative-cache hits among those switches.
    pub cache_hits: u32,
}

/// One utilization interval of a GPU's timeline (only recorded when the
/// simulation asks for timelines).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UtilSpan {
    /// Interval start.
    pub from: SimTime,
    /// Interval end.
    pub to: SimTime,
    /// Utilization level in [0, 1] (0 = idle/switching, model cap while
    /// training).
    pub level: f64,
}

/// Fault-injection and recovery accounting of one run (all zero in a
/// fault-free simulation).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultMetrics {
    /// GPU failure events that took effect.
    pub gpu_failures: u32,
    /// Transient failures that recovered (GPU rejoined the ready set).
    pub gpu_recoveries: u32,
    /// Sum of failure-to-rejoin downtimes across recovered GPUs.
    pub recovery_latency: SimDuration,
    /// Compute wall-clock thrown away: partial runs killed by failures
    /// plus speculation copies that lost their race.
    pub lost_work: SimDuration,
    /// Wall-clock of full task re-executions forced by failures (the
    /// unacknowledged work, re-run elsewhere — not silently free).
    pub reexec_work: SimDuration,
    /// Tasks that executed again after a failure killed their first run.
    pub reexecuted_tasks: u32,
    /// Rounds whose barrier was fed by at least one re-executed or
    /// speculative gradient — rounds that degraded to the relaxed quorum.
    pub degraded_rounds: u32,
    /// Gradients dropped (relaxed quorum already had `|D_r|` contributions,
    /// or a duplicate finished after its twin).
    pub dropped_gradients: u64,
    /// Gradients accepted into round averages — exactly
    /// `Σ_jobs rounds × sync_scale` in every completed run, faults or not.
    pub gradients_accepted: u64,
    /// Speculative task copies launched against stragglers.
    pub speculated_tasks: u32,
    /// Extra wall-clock added to training by straggler slowdown windows.
    pub straggler_delay: SimDuration,
    /// Extra wall-clock added to checkpoint fetches by storage faults.
    pub storage_stall: SimDuration,
}

/// Everything one simulation run produced.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Policy name.
    pub scheme: String,
    /// Completion time per job.
    pub completion: Vec<SimTime>,
    /// JCT (completion − arrival) per job.
    pub jct: Vec<SimDuration>,
    /// Job weights (copied for weighted aggregates).
    pub weights: Vec<f64>,
    /// Σ wₙ Cₙ in seconds — the paper's objective.
    pub weighted_completion: f64,
    /// Σ wₙ (Cₙ − aₙ) in seconds.
    pub weighted_jct: f64,
    /// Latest completion.
    pub makespan: SimTime,
    /// Per-GPU accounting.
    pub gpus: Vec<GpuReport>,
    /// Bytes fetched from shared checkpoint storage.
    pub storage_fetched: hare_cluster::Bytes,
    /// Checkpoint accesses served machine-locally.
    pub storage_local_hits: u64,
    /// Fault-injection accounting (all zero without a fault plan).
    pub faults: FaultMetrics,
    /// Optional per-GPU utilization timelines.
    pub timelines: Option<Vec<Vec<UtilSpan>>>,
}

impl SimReport {
    /// Mean JCT in seconds.
    pub fn mean_jct(&self) -> f64 {
        if self.jct.is_empty() {
            return 0.0;
        }
        self.jct.iter().map(|d| d.as_secs_f64()).sum::<f64>() / self.jct.len() as f64
    }

    /// Fraction of jobs with JCT ≤ `limit` (Fig.-13 style statements like
    /// "90.5% of jobs complete within 25 minutes").
    pub fn fraction_within(&self, limit: SimDuration) -> f64 {
        if self.jct.is_empty() {
            return 0.0;
        }
        self.jct.iter().filter(|&&d| d <= limit).count() as f64 / self.jct.len() as f64
    }

    /// Mean busy-fraction across GPUs over the makespan.
    pub fn mean_utilization(&self) -> f64 {
        let span = self.makespan.as_secs_f64();
        if span <= 0.0 || self.gpus.is_empty() {
            return 0.0;
        }
        self.gpus
            .iter()
            .map(|g| g.busy.as_secs_f64() / span)
            .sum::<f64>()
            / self.gpus.len() as f64
    }

    /// Total switching overhead across GPUs.
    pub fn total_switching(&self) -> SimDuration {
        self.gpus.iter().map(|g| g.switching).sum()
    }

    /// Total switches and cache hits.
    pub fn switch_stats(&self) -> (u32, u32) {
        (
            self.gpus.iter().map(|g| g.switch_count).sum(),
            self.gpus.iter().map(|g| g.cache_hits).sum(),
        )
    }
}

/// Empirical CDF of JCTs: sorted (seconds, cumulative fraction) points —
/// exactly what Fig. 13 plots.
pub fn jct_cdf(jcts: &[SimDuration]) -> Vec<(f64, f64)> {
    let mut xs: Vec<f64> = jcts.iter().map(|d| d.as_secs_f64()).collect();
    xs.sort_by(f64::total_cmp);
    let n = xs.len() as f64;
    xs.into_iter()
        .enumerate()
        .map(|(i, x)| (x, (i + 1) as f64 / n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            scheme: "test".into(),
            completion: vec![SimTime::from_secs(10), SimTime::from_secs(20)],
            jct: vec![SimDuration::from_secs(10), SimDuration::from_secs(15)],
            weights: vec![1.0, 2.0],
            weighted_completion: 50.0,
            weighted_jct: 40.0,
            makespan: SimTime::from_secs(20),
            gpus: vec![
                GpuReport {
                    busy: SimDuration::from_secs(10),
                    effective_busy: SimDuration::from_secs(9),
                    switching: SimDuration::from_millis(100),
                    switch_count: 4,
                    cache_hits: 2,
                },
                GpuReport {
                    busy: SimDuration::from_secs(20),
                    effective_busy: SimDuration::from_secs(20),
                    switching: SimDuration::ZERO,
                    switch_count: 0,
                    cache_hits: 0,
                },
            ],
            storage_fetched: hare_cluster::Bytes::ZERO,
            storage_local_hits: 0,
            faults: FaultMetrics::default(),
            timelines: None,
        }
    }

    #[test]
    fn aggregates() {
        let r = report();
        assert!((r.mean_jct() - 12.5).abs() < 1e-12);
        assert!((r.mean_utilization() - 0.75).abs() < 1e-12);
        assert_eq!(r.total_switching(), SimDuration::from_millis(100));
        assert_eq!(r.switch_stats(), (4, 2));
    }

    #[test]
    fn fraction_within() {
        let r = report();
        assert_eq!(r.fraction_within(SimDuration::from_secs(9)), 0.0);
        assert_eq!(r.fraction_within(SimDuration::from_secs(10)), 0.5);
        assert_eq!(r.fraction_within(SimDuration::from_secs(60)), 1.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let jcts = vec![
            SimDuration::from_secs(5),
            SimDuration::from_secs(1),
            SimDuration::from_secs(3),
        ];
        let cdf = jct_cdf(&jcts);
        assert_eq!(cdf.len(), 3);
        assert!((cdf[0].0 - 1.0).abs() < 1e-12);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
        }
    }
}
