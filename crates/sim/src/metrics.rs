//! Simulation reports: the quantities the paper's evaluation plots.

use hare_cluster::{SimDuration, SimTime};
use hare_core::JobInfo;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Per-GPU accounting.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct GpuReport {
    /// Time spent computing (training steps).
    pub busy: SimDuration,
    /// Computing time weighted by the running model's SM-utilization cap —
    /// what `nvidia-smi` style utilization plots (Figs. 3/6/8) show.
    pub effective_busy: SimDuration,
    /// Time spent in task switches.
    pub switching: SimDuration,
    /// Number of task switches performed.
    pub switch_count: u32,
    /// Speculative-cache hits among those switches.
    pub cache_hits: u32,
}

/// One utilization interval of a GPU's timeline (only recorded when the
/// simulation asks for timelines).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UtilSpan {
    /// Interval start.
    pub from: SimTime,
    /// Interval end.
    pub to: SimTime,
    /// Utilization level in [0, 1] (0 = idle/switching, model cap while
    /// training).
    pub level: f64,
}

/// Fault-injection and recovery accounting of one run (all zero in a
/// fault-free simulation).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultMetrics {
    /// GPU failure events that took effect.
    pub gpu_failures: u32,
    /// Transient failures that recovered (GPU rejoined the ready set).
    pub gpu_recoveries: u32,
    /// Sum of failure-to-rejoin downtimes across recovered GPUs.
    pub recovery_latency: SimDuration,
    /// Compute wall-clock thrown away: partial runs killed by failures
    /// plus speculation copies that lost their race.
    pub lost_work: SimDuration,
    /// Wall-clock of full task re-executions forced by failures (the
    /// unacknowledged work, re-run elsewhere — not silently free).
    pub reexec_work: SimDuration,
    /// Tasks that executed again after a failure killed their first run.
    pub reexecuted_tasks: u32,
    /// Rounds whose barrier was fed by at least one re-executed or
    /// speculative gradient — rounds that degraded to the relaxed quorum.
    pub degraded_rounds: u32,
    /// Gradients dropped (relaxed quorum already had `|D_r|` contributions,
    /// or a duplicate finished after its twin).
    pub dropped_gradients: u64,
    /// Gradients accepted into round averages — exactly
    /// `Σ_jobs rounds × sync_scale` in every completed run, faults or not.
    pub gradients_accepted: u64,
    /// Speculative task copies launched against stragglers.
    pub speculated_tasks: u32,
    /// Extra wall-clock added to training by straggler slowdown windows.
    pub straggler_delay: SimDuration,
    /// Extra wall-clock added to checkpoint fetches by storage faults.
    pub storage_stall: SimDuration,
}

/// Everything one simulation run produced.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Policy name.
    pub scheme: String,
    /// Completion time per job.
    pub completion: Vec<SimTime>,
    /// JCT (completion − arrival) per job.
    pub jct: Vec<SimDuration>,
    /// Job weights (copied for weighted aggregates).
    pub weights: Vec<f64>,
    /// Σ wₙ Cₙ in seconds — the paper's objective.
    pub weighted_completion: f64,
    /// Σ wₙ (Cₙ − aₙ) in seconds.
    pub weighted_jct: f64,
    /// Latest completion.
    pub makespan: SimTime,
    /// Per-GPU accounting.
    pub gpus: Vec<GpuReport>,
    /// Bytes fetched from shared checkpoint storage.
    pub storage_fetched: hare_cluster::Bytes,
    /// Checkpoint accesses served machine-locally.
    pub storage_local_hits: u64,
    /// Fault-injection accounting (all zero without a fault plan).
    pub faults: FaultMetrics,
    /// Optional per-GPU utilization timelines.
    pub timelines: Option<Vec<Vec<UtilSpan>>>,
    /// Named counters/gauges/histograms filled at report time. Excluded
    /// from [`SimReport::to_json`] (the golden-fixture format) so new
    /// series can be added without re-blessing fixtures; render it with
    /// [`crate::MetricsRegistry::to_json`].
    pub metrics: crate::registry::MetricsRegistry,
}

impl SimReport {
    /// Mean JCT in seconds.
    pub fn mean_jct(&self) -> f64 {
        if self.jct.is_empty() {
            return 0.0;
        }
        self.jct.iter().map(|d| d.as_secs_f64()).sum::<f64>() / self.jct.len() as f64
    }

    /// Fraction of jobs with JCT ≤ `limit` (Fig.-13 style statements like
    /// "90.5% of jobs complete within 25 minutes").
    pub fn fraction_within(&self, limit: SimDuration) -> f64 {
        if self.jct.is_empty() {
            return 0.0;
        }
        self.jct.iter().filter(|&&d| d <= limit).count() as f64 / self.jct.len() as f64
    }

    /// Mean busy-fraction across GPUs over the makespan.
    pub fn mean_utilization(&self) -> f64 {
        let span = self.makespan.as_secs_f64();
        if span <= 0.0 || self.gpus.is_empty() {
            return 0.0;
        }
        self.gpus
            .iter()
            .map(|g| g.busy.as_secs_f64() / span)
            .sum::<f64>()
            / self.gpus.len() as f64
    }

    /// Total switching overhead across GPUs.
    pub fn total_switching(&self) -> SimDuration {
        self.gpus.iter().map(|g| g.switching).sum()
    }

    /// Total switches and cache hits.
    pub fn switch_stats(&self) -> (u32, u32) {
        (
            self.gpus.iter().map(|g| g.switch_count).sum(),
            self.gpus.iter().map(|g| g.cache_hits).sum(),
        )
    }
}

/// Per-job completion aggregates shared by the engine's realized
/// [`SimReport`] and the planner's expectation report: JCTs, the weighted
/// objective sums and the makespan, all derived from the completion vector
/// in job-index order so both callers produce bit-identical floats.
#[derive(Clone, Debug, PartialEq)]
pub struct CompletionStats {
    /// JCT (completion − arrival) per job.
    pub jct: Vec<SimDuration>,
    /// Job weights, copied for the report.
    pub weights: Vec<f64>,
    /// Σ wₙ Cₙ in seconds.
    pub weighted_completion: f64,
    /// Σ wₙ (Cₙ − aₙ) in seconds.
    pub weighted_jct: f64,
    /// Latest completion.
    pub makespan: SimTime,
}

/// Derive [`CompletionStats`] from per-job completion times. Sums run in
/// job-index order — f64 addition is order-sensitive, and golden-snapshot
/// tests pin these outputs bit for bit. An empty completion set (a report
/// aggregated from zero jobs) is legal and yields all-zero stats.
pub fn completion_stats(completion: &[SimTime], jobs: &[JobInfo]) -> CompletionStats {
    let arrivals: Vec<SimTime> = jobs.iter().map(|j| j.arrival).collect();
    let weights: Vec<f64> = jobs.iter().map(|j| j.weight).collect();
    completion_stats_parts(completion, &arrivals, &weights)
}

/// [`completion_stats`] over bare per-job arrival/weight columns, for
/// callers that never materialize full [`JobInfo`] rows (the sharded
/// datacenter run aggregates 100k+ streamed jobs whose per-GPU time
/// matrices exist only cell-locally and one cell at a time). Identical
/// arithmetic, in the same job-index order, as the `JobInfo` entry point.
pub fn completion_stats_parts(
    completion: &[SimTime],
    arrivals: &[SimTime],
    weights: &[f64],
) -> CompletionStats {
    debug_assert_eq!(completion.len(), arrivals.len());
    debug_assert_eq!(completion.len(), weights.len());
    let jct: Vec<SimDuration> = completion
        .iter()
        .zip(arrivals)
        .map(|(&c, &a)| c.saturating_since(a))
        .collect();
    let weights = weights.to_vec();
    let weighted_completion = completion
        .iter()
        .zip(&weights)
        .map(|(c, w)| c.as_secs_f64() * w)
        .sum();
    let weighted_jct = jct
        .iter()
        .zip(&weights)
        .map(|(d, w)| d.as_secs_f64() * w)
        .sum();
    let makespan = completion.iter().copied().max().unwrap_or(SimTime::ZERO);
    CompletionStats {
        jct,
        weights,
        weighted_completion,
        weighted_jct,
        makespan,
    }
}

/// Histogram buckets for the `sim.jct_secs` series: one minute through
/// eight hours, matching the Fig.-13 CDF's plotted range.
pub const JCT_BUCKETS_SECS: &[f64] =
    &[60.0, 300.0, 900.0, 1800.0, 3600.0, 7200.0, 14400.0, 28800.0];

/// Build the report-time metrics registry from run totals. Shared by the
/// engine's [`SimReport`] assembly and the sharded merge so a 1-cell
/// sharded run reproduces the unsharded registry exactly (series names,
/// insertion order, and values). Filled once at report time — never on
/// the event hot path — and every value is a deterministic function of
/// the inputs, keeping reports bit-reproducible.
pub fn sim_registry(
    events_processed: u64,
    gpus: &[GpuReport],
    faults: &FaultMetrics,
    stats: &CompletionStats,
) -> crate::registry::MetricsRegistry {
    let mut metrics = crate::registry::MetricsRegistry::new();
    metrics.add("sim.events_processed", events_processed);
    metrics.add("sim.jobs_completed", stats.jct.len() as u64);
    metrics.add("sim.gpu_failures", u64::from(faults.gpu_failures));
    metrics.add("sim.gpu_recoveries", u64::from(faults.gpu_recoveries));
    metrics.add("sim.gradients_accepted", faults.gradients_accepted);
    metrics.add("sim.gradients_dropped", faults.dropped_gradients);
    metrics.add(
        "sim.switches",
        gpus.iter().map(|g| u64::from(g.switch_count)).sum(),
    );
    metrics.add(
        "sim.cache_hits",
        gpus.iter().map(|g| u64::from(g.cache_hits)).sum(),
    );
    metrics.set_gauge("sim.makespan_secs", stats.makespan.as_secs_f64());
    metrics.set_gauge("sim.weighted_jct", stats.weighted_jct);
    for jct in &stats.jct {
        metrics.observe("sim.jct_secs", JCT_BUCKETS_SECS, jct.as_secs_f64());
    }
    metrics
}

/// Minimal JSON string escaping (scheme names are plain ASCII, but the
/// serializer should never emit malformed JSON regardless).
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `{:?}` on f64 prints the shortest decimal that round-trips, which is a
/// deterministic function of the bits — exactly what the golden-snapshot
/// fixtures need. (It never prints `1` for `1.0`, so output stays valid
/// JSON numbers.) Non-finite values have no JSON number representation —
/// `{:?}` would print literal `NaN`/`inf` and corrupt the document — so
/// they serialize as `null`, keeping the writer total over all inputs.
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

fn push_u64_seq(out: &mut String, vals: impl Iterator<Item = u64>) {
    out.push('[');
    for (i, v) in vals.enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

impl SimReport {
    /// Deterministic, dependency-free JSON rendering with a fixed field
    /// order and integer-microsecond times. Two reports serialize to the
    /// same bytes iff their fixture-pinned fields are equal — the
    /// golden-snapshot determinism test diffs exactly this output against
    /// committed fixtures. The [`SimReport::metrics`] registry is
    /// intentionally *not* rendered here (it has its own `to_json`), so
    /// the registry can grow without invalidating fixtures. The output is
    /// valid JSON for every input: non-finite floats become `null`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\"scheme\":");
        push_json_str(&mut s, &self.scheme);
        s.push_str(",\"completion\":");
        push_u64_seq(&mut s, self.completion.iter().map(|t| t.as_micros()));
        s.push_str(",\"jct\":");
        push_u64_seq(&mut s, self.jct.iter().map(|d| d.as_micros()));
        s.push_str(",\"weights\":[");
        for (i, w) in self.weights.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_f64(&mut s, *w);
        }
        s.push_str("],\"weighted_completion\":");
        push_f64(&mut s, self.weighted_completion);
        s.push_str(",\"weighted_jct\":");
        push_f64(&mut s, self.weighted_jct);
        let _ = write!(s, ",\"makespan\":{}", self.makespan.as_micros());
        s.push_str(",\"gpus\":[");
        for (i, g) in self.gpus.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"busy\":{},\"effective_busy\":{},\"switching\":{},\"switch_count\":{},\"cache_hits\":{}}}",
                g.busy.as_micros(),
                g.effective_busy.as_micros(),
                g.switching.as_micros(),
                g.switch_count,
                g.cache_hits
            );
        }
        let _ = write!(
            s,
            "],\"storage_fetched\":{},\"storage_local_hits\":{}",
            self.storage_fetched.as_u64(),
            self.storage_local_hits
        );
        let f = &self.faults;
        let _ = write!(
            s,
            ",\"faults\":{{\"gpu_failures\":{},\"gpu_recoveries\":{},\"recovery_latency\":{},\
             \"lost_work\":{},\"reexec_work\":{},\"reexecuted_tasks\":{},\"degraded_rounds\":{},\
             \"dropped_gradients\":{},\"gradients_accepted\":{},\"speculated_tasks\":{},\
             \"straggler_delay\":{},\"storage_stall\":{}}}",
            f.gpu_failures,
            f.gpu_recoveries,
            f.recovery_latency.as_micros(),
            f.lost_work.as_micros(),
            f.reexec_work.as_micros(),
            f.reexecuted_tasks,
            f.degraded_rounds,
            f.dropped_gradients,
            f.gradients_accepted,
            f.speculated_tasks,
            f.straggler_delay.as_micros(),
            f.storage_stall.as_micros()
        );
        s.push_str(",\"timelines\":");
        match &self.timelines {
            None => s.push_str("null"),
            Some(lines) => {
                s.push('[');
                for (i, line) in lines.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push('[');
                    for (k, span) in line.iter().enumerate() {
                        if k > 0 {
                            s.push(',');
                        }
                        let _ = write!(
                            s,
                            "{{\"from\":{},\"to\":{},\"level\":",
                            span.from.as_micros(),
                            span.to.as_micros()
                        );
                        push_f64(&mut s, span.level);
                        s.push('}');
                    }
                    s.push(']');
                }
                s.push(']');
            }
        }
        s.push('}');
        s
    }
}

/// Empirical CDF of JCTs: sorted (seconds, cumulative fraction) points —
/// exactly what Fig. 13 plots.
pub fn jct_cdf(jcts: &[SimDuration]) -> Vec<(f64, f64)> {
    let mut xs: Vec<f64> = jcts.iter().map(|d| d.as_secs_f64()).collect();
    xs.sort_by(f64::total_cmp);
    let n = xs.len() as f64;
    xs.into_iter()
        .enumerate()
        .map(|(i, x)| (x, (i + 1) as f64 / n))
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            scheme: "test".into(),
            completion: vec![SimTime::from_secs(10), SimTime::from_secs(20)],
            jct: vec![SimDuration::from_secs(10), SimDuration::from_secs(15)],
            weights: vec![1.0, 2.0],
            weighted_completion: 50.0,
            weighted_jct: 40.0,
            makespan: SimTime::from_secs(20),
            gpus: vec![
                GpuReport {
                    busy: SimDuration::from_secs(10),
                    effective_busy: SimDuration::from_secs(9),
                    switching: SimDuration::from_millis(100),
                    switch_count: 4,
                    cache_hits: 2,
                },
                GpuReport {
                    busy: SimDuration::from_secs(20),
                    effective_busy: SimDuration::from_secs(20),
                    switching: SimDuration::ZERO,
                    switch_count: 0,
                    cache_hits: 0,
                },
            ],
            storage_fetched: hare_cluster::Bytes::ZERO,
            storage_local_hits: 0,
            faults: FaultMetrics::default(),
            timelines: None,
            metrics: crate::registry::MetricsRegistry::default(),
        }
    }

    /// A report aggregated from zero jobs on zero GPUs — what heavy fault
    /// plans or empty sweep cells can produce upstream.
    fn empty_report() -> SimReport {
        SimReport {
            scheme: "empty".into(),
            completion: Vec::new(),
            jct: Vec::new(),
            weights: Vec::new(),
            weighted_completion: 0.0,
            weighted_jct: 0.0,
            makespan: SimTime::ZERO,
            gpus: Vec::new(),
            storage_fetched: hare_cluster::Bytes::ZERO,
            storage_local_hits: 0,
            faults: FaultMetrics::default(),
            timelines: None,
            metrics: crate::registry::MetricsRegistry::default(),
        }
    }

    #[test]
    fn empty_report_aggregates_are_zero_not_nan() {
        let r = empty_report();
        assert_eq!(r.mean_jct(), 0.0);
        assert_eq!(r.fraction_within(SimDuration::from_secs(60)), 0.0);
        assert_eq!(r.mean_utilization(), 0.0);
        assert_eq!(r.total_switching(), SimDuration::ZERO);
        assert_eq!(r.switch_stats(), (0, 0));
    }

    #[test]
    fn zero_gpu_report_with_jobs_has_zero_utilization() {
        let mut r = report();
        r.gpus.clear();
        assert_eq!(r.mean_utilization(), 0.0);
        assert!(serde_json::from_str(&r.to_json()).is_ok());
    }

    #[test]
    fn completion_stats_of_empty_set_is_total() {
        let stats = completion_stats(&[], &[]);
        assert_eq!(stats.makespan, SimTime::ZERO);
        assert_eq!(stats.weighted_completion, 0.0);
        assert_eq!(stats.weighted_jct, 0.0);
        assert!(stats.jct.is_empty() && stats.weights.is_empty());
    }

    #[test]
    fn empty_report_serializes_to_valid_json() {
        let json = empty_report().to_json();
        let v = serde_json::from_str(&json).expect("empty report JSON parses");
        assert_eq!(
            v.get("scheme").and_then(serde_json::Value::as_str),
            Some("empty")
        );
        assert_eq!(
            v.get("completion").and_then(serde_json::Value::as_array),
            Some(&Vec::new())
        );
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        let mut r = report();
        r.weights = vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 1.5];
        r.weighted_completion = f64::NAN;
        r.weighted_jct = f64::INFINITY;
        r.timelines = Some(vec![vec![UtilSpan {
            from: SimTime::ZERO,
            to: SimTime::from_secs(1),
            level: f64::NAN,
        }]]);
        let json = r.to_json();
        let v = serde_json::from_str(&json).expect("NaN-laden report still parses");
        assert!(v.get("weighted_completion").unwrap().is_null());
        assert!(v.get("weighted_jct").unwrap().is_null());
        let weights = v.get("weights").unwrap().as_array().unwrap();
        assert!(weights[0].is_null() && weights[1].is_null() && weights[2].is_null());
        assert_eq!(weights[3].as_f64(), Some(1.5));
    }

    #[test]
    fn aggregates() {
        let r = report();
        assert!((r.mean_jct() - 12.5).abs() < 1e-12);
        assert!((r.mean_utilization() - 0.75).abs() < 1e-12);
        assert_eq!(r.total_switching(), SimDuration::from_millis(100));
        assert_eq!(r.switch_stats(), (4, 2));
    }

    #[test]
    fn fraction_within() {
        let r = report();
        assert_eq!(r.fraction_within(SimDuration::from_secs(9)), 0.0);
        assert_eq!(r.fraction_within(SimDuration::from_secs(10)), 0.5);
        assert_eq!(r.fraction_within(SimDuration::from_secs(60)), 1.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let jcts = vec![
            SimDuration::from_secs(5),
            SimDuration::from_secs(1),
            SimDuration::from_secs(3),
        ];
        let cdf = jct_cdf(&jcts);
        assert_eq!(cdf.len(), 3);
        assert!((cdf[0].0 - 1.0).abs() < 1e-12);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
        }
    }
}
