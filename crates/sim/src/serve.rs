//! Continuous-service mode: an always-on scheduling loop absorbing an
//! open arrival stream (DESIGN.md §12), with crash tolerance and
//! lease-based worker liveness layered on top (DESIGN.md §13).
//!
//! The batch engine ([`crate::engine`]) materializes a complete trace and
//! replays it to quiescence; a production scheduler never sees the end of
//! its workload. [`ServeLoop`] is the complementary *job-granularity*
//! continuous-service simulator:
//!
//! * arrivals are pulled **lazily** from an
//!   [`hare_workload::ArrivalStream`] — one at a time, as simulated time
//!   reaches them; nothing is materialized;
//! * every arrival passes the [`AdmissionController`] (token buckets →
//!   bounded fair queue, typed outcomes, conservation accounting);
//! * at each **decision epoch** the [`BudgetController`] turns queue
//!   depth + recent decision-latency p99 into a solver-budget fraction
//!   (with hysteresis), a pluggable [`QueueScheduler`] ranks the fair-
//!   queue head window under that fraction, and ranked jobs dispatch to
//!   idle GPUs. The decision's deterministic work is priced into
//!   simulated latency (the `cost_per_work` convention shared with the
//!   online baselines) and charged before the dispatched jobs start;
//! * a **drain** (arrival horizon exhausted, or an external stop flag —
//!   SIGTERM in `hare serve`) stops admission, *drains* the pending
//!   queue (counted separately from overload shedding), lets in-flight
//!   jobs finish, and produces the final [`ServeReport`].
//!
//! # Crash tolerance
//!
//! [`ServeLoop::run_with_wal`] journals every state transition to a
//! [`WalFile`] (group-committed at epoch boundaries) and periodically
//! writes a compacted snapshot of the *complete* loop state — pending
//! queue, token buckets, in-flight placements, arrival-stream cursor,
//! budget hysteresis, scheduler-private state. After a crash (a real
//! SIGKILL, or an injected [`crate::faults::SchedulerCrash`]),
//! [`ServeLoop::recover`] loads the last snapshot and re-executes the
//! loop deterministically, *verifying* each regenerated transition
//! against the WAL suffix; the recovered [`ServeReport`] is
//! byte-identical to an uncrashed run's.
//!
//! # Lease-based liveness
//!
//! With [`ServeConfig::lease`] set, every GPU holds a heartbeated lease.
//! A [`crate::faults::SilentWorkerFault`] stops a worker's heartbeats
//! without any failure event; once the lease times out the scheduler
//! expires it ([`QueueScheduler::on_lease_expired`]), requeues the
//! worker's in-flight job with capped exponential backoff, and stops
//! dispatching to the GPU until heartbeats resume
//! ([`QueueScheduler::on_gpu_recovery`]). Jobs requeued more than
//! `max_requeues` times are counted lost.
//!
//! Decision-latency p50/p99 (via [`Histogram::quantile`]) and
//! decisions/sec are first-class [`MetricsRegistry`] series. Everything
//! is simulated-time deterministic: two runs of the same config and
//! scheduler produce byte-identical reports.

use crate::admission::{
    AdmissionConfig, AdmissionController, AdmissionCounters, AdmissionOutcome, BudgetController,
    PendingJob, PressureCurve, RejectReason, TenantId,
};
use crate::dense::DenseSet;
use crate::faults::{SchedulerCrash, ServeFaultPlan};
use crate::metrics::{push_f64, push_json_str};
use crate::recovery::{
    crc32, dead_at, dead_during, f64_from_hex, f64_hex, last_heartbeat, LeaseConfig, RecoveryError,
    RecoveryStats, WalFile, WalOptions, WalSession,
};
use crate::registry::{Histogram, MetricsRegistry};
use hare_cluster::{Cluster, GpuKind, SimDuration, SimTime};
use hare_workload::{ArrivalStream, JobSpec, OpenArrival, OpenArrivalConfig};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};

/// One scheduling decision over the planning window.
#[derive(Clone, Debug)]
pub struct PlanOutcome {
    /// Dispatch order as indices into the window handed to
    /// [`QueueScheduler::plan`] (best first). An index outside the
    /// window, or repeated, is a scheduler bug and panics in the loop.
    pub order: Vec<usize>,
    /// Deterministic work units spent deciding (priced into latency).
    pub work: u64,
    /// Which ladder rung (or heuristic) produced the plan — tallied into
    /// the report's rung-hit counts.
    pub rung: &'static str,
}

/// A scheduler ranking the pending-queue head under a budget fraction.
///
/// Implementations live in `hare-baselines` (the anytime-ladder scheduler
/// and an SRTF heuristic); the trait keeps `hare-sim` solver-free.
pub trait QueueScheduler {
    /// Scheme name for reports.
    fn name(&self) -> &'static str;

    /// Rank `window` (fair-queue order, never empty) for dispatch onto
    /// `cluster`, spending at most `budget_frac` of the full solve
    /// budget.
    fn plan(&mut self, window: &[&PendingJob], cluster: &Cluster, budget_frac: f64) -> PlanOutcome;

    /// Scheduler-private state for crash snapshots, as one line using
    /// only `:,|` separators (it nests inside the snapshot's `;`/`=`
    /// framing). Stateless schedulers (the default) return `""`; a
    /// scheduler whose plans depend on mutable state (e.g. the ladder's
    /// stale-plan cache) must round-trip it here or recovery will
    /// diverge.
    fn save_state(&self) -> String {
        String::new()
    }

    /// Restore the state produced by [`QueueScheduler::save_state`].
    fn load_state(&mut self, _state: &str) {}

    /// GPU `gpu`'s lease expired: it stopped heartbeating and is out of
    /// service until further notice. Its in-flight job (if any) is
    /// requeued by the loop itself.
    fn on_lease_expired(&mut self, _gpu: usize) {}

    /// GPU `gpu` resumed heartbeating after an expiry and rejoined the
    /// dispatchable set.
    fn on_gpu_recovery(&mut self, _gpu: usize) {}
}

/// Configuration of one serve run.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Open arrival stream (process, load factor, tenants, seed).
    pub arrivals: OpenArrivalConfig,
    /// Admission control (quotas, queue bound).
    pub admission: AdmissionConfig,
    /// Backpressure → budget mapping.
    pub pressure: PressureCurve,
    /// Hysteresis dwell (decision epochs of calm before ascending one
    /// budget level).
    pub ascend_dwell: u32,
    /// Decision epoch length.
    pub decision_interval: SimDuration,
    /// Stop generating arrivals at this simulated instant, then drain.
    pub horizon: SimTime,
    /// Maximum jobs the scheduler sees per decision (the fair-queue
    /// head; bounds per-decision solve cost).
    pub plan_window: usize,
    /// Simulated seconds charged per unit of scheduler work (the
    /// `ReplanBudget::cost_per_work` convention: 1e-5 ⇒ 100k work units
    /// ≈ 1 s of decision latency).
    pub cost_per_work: f64,
    /// Recent-decision window feeding the pressure controller's p99.
    pub latency_window: usize,
    /// Lease-based worker liveness; `None` trusts every GPU forever
    /// (required `Some` to inject silent-worker faults).
    pub lease: Option<LeaseConfig>,
    /// Injected failures (silent worker deaths, a scheduler crash).
    pub faults: ServeFaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            arrivals: OpenArrivalConfig::default(),
            admission: AdmissionConfig::default(),
            pressure: PressureCurve::default(),
            ascend_dwell: 5,
            decision_interval: SimDuration::from_secs(5),
            horizon: SimTime::from_secs(3_600),
            plan_window: 16,
            cost_per_work: 1e-5,
            latency_window: 64,
            lease: None,
            faults: ServeFaultPlan::default(),
        }
    }
}

impl ServeConfig {
    /// The unthrottled baseline: same arrivals, but no admission caps
    /// and no brownout — the configuration the resilience sweep compares
    /// against.
    pub fn unthrottled(mut self) -> Self {
        self.admission = AdmissionConfig::unthrottled();
        self.pressure = PressureCurve::disabled();
        self
    }
}

/// Decision-latency histogram buckets (seconds).
const LATENCY_BUCKETS_SECS: [f64; 9] = [0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 20.0, 60.0];
/// Queue-wait histogram buckets (seconds).
const WAIT_BUCKETS_SECS: [f64; 8] = [1.0, 10.0, 60.0, 300.0, 900.0, 3600.0, 14400.0, 86400.0];
/// Snapshot format version (bump on incompatible encoding changes).
const SNAPSHOT_VERSION: u32 = 1;

/// Sequential service time of one job on a GPU of the given kind: all its
/// tasks back to back (job-granularity serving has no intra-job
/// parallelism).
fn service_time_on(job: &JobSpec, kind: GpuKind) -> SimDuration {
    SimDuration::from_millis_f64(job.task_ms(kind) * job.task_count() as f64)
}

/// Speed-indexed idle-GPU tracker for the dispatch hot path.
///
/// The loop used to rebuild a `Vec` of idle GPUs every epoch by scanning
/// all of `0..n_gpus`, then `Vec::remove` each dispatch — O(epochs × |GPUs|)
/// before a single job moved. This structure is maintained incrementally
/// at every occupancy transition instead, with one [`DenseSet`] per GPU
/// *kind*: a job's service time depends only on the kind, so the GPU
/// minimizing `(service_time, gpu_id)` is found by comparing each kind's
/// lowest-id idle member — O(kinds) per dispatch, and byte-identical to
/// the full scan's `min_by_key` choice (within a kind the service time is
/// constant, so the kind's candidate is exactly its smallest id; across
/// kinds the same tuple comparison decides, ties falling to the lower id).
struct IdleGpus {
    /// One member set per kind present in the cluster.
    kinds: Vec<(GpuKind, DenseSet)>,
    /// GPU id → index into `kinds`.
    kind_idx: Vec<usize>,
    len: usize,
}

impl IdleGpus {
    /// Build from the current loop state: idle = no running job and no
    /// expired lease. Called once per `drive` entry (fresh, WAL-logged,
    /// and recovering runs alike), then maintained incrementally.
    fn new(cluster: &Cluster, st: &ServeState) -> Self {
        let n = cluster.gpu_count();
        let kinds: Vec<(GpuKind, DenseSet)> = cluster
            .kinds_present()
            .into_iter()
            .map(|k| (k, DenseSet::new(n)))
            .collect();
        let kind_idx = cluster
            .gpus()
            .iter()
            .map(|g| {
                kinds
                    .iter()
                    .position(|(k, _)| *k == g.kind)
                    .expect("every GPU's kind is present")
            })
            .collect();
        let mut idle = IdleGpus {
            kinds,
            kind_idx,
            len: 0,
        };
        for g in 0..n {
            if st.running[g].is_none() && !st.lease_expired[g] {
                idle.insert(g);
            }
        }
        idle
    }

    /// Mark a GPU idle (idempotent).
    fn insert(&mut self, gpu: usize) {
        if self.kinds[self.kind_idx[gpu]].1.insert(gpu) {
            self.len += 1;
        }
    }

    /// Mark a GPU non-idle (idempotent).
    fn remove(&mut self, gpu: usize) {
        if self.kinds[self.kind_idx[gpu]].1.remove(gpu) {
            self.len -= 1;
        }
    }

    /// True when no GPU is dispatchable.
    fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The idle GPU serving `job` fastest, lowest id breaking ties —
    /// the same choice as `min_by_key(|g| (service_time(job, g), g))`
    /// over the full idle scan.
    fn best_for(&self, job: &JobSpec) -> Option<usize> {
        let mut best: Option<(SimDuration, usize)> = None;
        for (kind, set) in &self.kinds {
            let Some(g) = set.first() else { continue };
            let cand = (service_time_on(job, *kind), g);
            if best.is_none_or(|b| cand < b) {
                best = Some(cand);
            }
        }
        best.map(|(_, g)| g)
    }
}

/// Final report of one serve run.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeReport {
    /// Scheduler name.
    pub scheme: String,
    /// Simulated instant the loop finished draining.
    pub end: SimTime,
    /// Admission conservation counters at the end of the run (the
    /// `drained` / `shed` split lives here: `drained` is the graceful
    /// wind-down residue, `shed` genuine overload loss).
    pub counters: AdmissionCounters,
    /// Jobs that finished service.
    pub completed: u64,
    /// Scheduling decisions taken.
    pub decisions: u64,
    /// Decisions per simulated second.
    pub decisions_per_sec: f64,
    /// Decision-latency distribution (simulated seconds).
    pub decision_latency: Histogram,
    /// Plans per rung name (ladder descent shows up here).
    pub rung_hits: BTreeMap<String, u64>,
    /// Peak pending-queue depth.
    pub queue_depth_max: usize,
    /// Pending-queue depth when the drain began (all drained).
    pub queue_depth_at_drain: usize,
    /// Deepest solver-budget level the controller reached.
    pub min_budget_level: f64,
    /// Budget-level transitions (both directions).
    pub budget_transitions: u32,
    /// Mean completion time of finished jobs (arrival → service end),
    /// seconds; zero when nothing completed.
    pub mean_jct_secs: f64,
    /// Jobs requeued after a lease expiry (entries into the backoff
    /// pool; one job can contribute several times).
    pub requeued: u64,
    /// Lease expiries across the run.
    pub lease_expiries: u64,
    /// Lease rejoins (heartbeats resumed after an expiry).
    pub lease_rejoins: u64,
    /// Jobs dropped after exceeding the lease requeue budget.
    pub lease_lost: u64,
    /// Every figure above (plus the queue-wait histogram) as registry
    /// series, for uniform JSON export.
    pub metrics: MetricsRegistry,
}

impl ServeReport {
    /// Decision-latency quantile in simulated seconds.
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        self.decision_latency.quantile(q)
    }

    /// Deterministic JSON rendering (scheme + headline figures + the
    /// full metrics registry). Not a golden-pinned format — serve mode
    /// is new — but byte-stable for a given run.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(2048);
        s.push_str("{\"scheme\":");
        push_json_str(&mut s, &self.scheme);
        let _ = write!(
            s,
            ",\"end_secs\":{},\"completed\":{},\"decisions\":{}",
            self.end.as_secs_f64(),
            self.completed,
            self.decisions,
        );
        let _ = write!(
            s,
            ",\"drained\":{},\"shed\":{},\"requeued\":{},\"lease_lost\":{}",
            self.counters.drained, self.counters.shed, self.requeued, self.lease_lost,
        );
        s.push_str(",\"decision_latency_p50\":");
        push_f64(&mut s, self.latency_quantile(0.5).unwrap_or(f64::NAN));
        s.push_str(",\"decision_latency_p99\":");
        push_f64(&mut s, self.latency_quantile(0.99).unwrap_or(f64::NAN));
        s.push_str(",\"decisions_per_sec\":");
        push_f64(&mut s, self.decisions_per_sec);
        s.push_str(",\"metrics\":");
        s.push_str(&self.metrics.to_json());
        s.push('}');
        s
    }
}

/// A dispatched job in service on one GPU.
#[derive(Clone, Debug)]
struct Running {
    job: PendingJob,
    started: SimTime,
    /// Completion instant; [`SimTime::MAX`] for a zombie whose worker
    /// died mid-service (the completion was suppressed; the lease
    /// machinery will requeue it).
    done_at: SimTime,
    /// Requeue attempts this job has already been through.
    requeues: u32,
}

/// A job waiting out its requeue backoff after a lease expiry.
#[derive(Clone, Debug)]
struct PoolEntry {
    job: PendingJob,
    ready_at: SimTime,
    requeues: u32,
}

/// The complete, snapshotable state of one serve run — everything
/// [`ServeLoop::drive`] mutates. Encoding this (plus the arrival-stream
/// cursor and scheduler-private state) *is* the crash snapshot.
struct ServeState {
    now: SimTime,
    /// Decision epochs processed (1-based once the first epoch runs).
    epoch_index: u64,
    admission: AdmissionController,
    budget: BudgetController,
    running: Vec<Option<Running>>,
    /// Per-GPU "lease currently expired" flags.
    lease_expired: Vec<bool>,
    /// Requeue backoff pool, FIFO.
    pool: Vec<PoolEntry>,
    /// Requeue counts of readmitted jobs, keyed by their fresh queue
    /// seq; read back (and dropped) when the job dispatches.
    requeue_tags: BTreeMap<u64, u32>,
    latency_hist: Histogram,
    wait_hist: Histogram,
    recent: Vec<f64>,
    recent_at: usize,
    decisions: u64,
    rung_hits: BTreeMap<String, u64>,
    completed: u64,
    jct_sum: f64,
    depth_max: usize,
    depth_at_drain: usize,
    work_total: u64,
    requeued: u64,
    lease_expiries: u64,
    lease_rejoins: u64,
    lease_lost: u64,
}

/// Log one WAL transition, formatting only when a session is attached
/// (plain runs pay nothing).
fn wal_log(
    session: &mut Option<&mut WalSession<'_>>,
    f: impl FnOnce() -> String,
) -> Result<(), RecoveryError> {
    match session {
        Some(s) => s.log(&f()),
        None => Ok(()),
    }
}

/// One-letter admission outcome code for `arr` WAL records.
fn outcome_code(o: AdmissionOutcome) -> String {
    match o {
        AdmissionOutcome::Admitted => "a".to_string(),
        AdmissionOutcome::Deferred { retry_at } => format!("d{}", retry_at.as_micros()),
        AdmissionOutcome::Rejected(RejectReason::RateLimited) => "rl".to_string(),
        AdmissionOutcome::Rejected(RejectReason::QueueFull) => "qf".to_string(),
        AdmissionOutcome::Rejected(RejectReason::Draining) => "dr".to_string(),
    }
}

/// Route a job coming off a dead worker: drained if the run is winding
/// down, lost if it exhausted its requeue budget, otherwise into the
/// backoff pool.
fn requeue_job(
    st: &mut ServeState,
    session: &mut Option<&mut WalSession<'_>>,
    lease: &LeaseConfig,
    now: SimTime,
    job: PendingJob,
    prev_requeues: u32,
) -> Result<(), RecoveryError> {
    let id = job.spec.id.0;
    if st.admission.is_draining() {
        st.admission.count_drained(1);
        wal_log(session, || format!("dreq {id}"))?;
    } else if prev_requeues >= lease.max_requeues {
        st.lease_lost += 1;
        wal_log(session, || format!("lost {id}"))?;
    } else {
        let ready_at = now + lease.backoff(prev_requeues);
        st.requeued += 1;
        wal_log(session, || {
            format!("req {id} {} {prev_requeues}", ready_at.as_micros())
        })?;
        st.pool.push(PoolEntry {
            job,
            ready_at,
            requeues: prev_requeues + 1,
        });
    }
    Ok(())
}

/// The continuous-service loop.
pub struct ServeLoop {
    cluster: Cluster,
    cfg: ServeConfig,
}

impl ServeLoop {
    /// A loop serving `cfg.arrivals` on `cluster`.
    pub fn new(cluster: Cluster, cfg: ServeConfig) -> Self {
        assert!(cfg.plan_window > 0, "empty plan window");
        assert!(!cfg.decision_interval.is_zero(), "zero decision interval");
        assert!(
            cfg.cost_per_work >= 0.0 && cfg.cost_per_work.is_finite(),
            "cost_per_work must be non-negative and finite"
        );
        assert!(cfg.latency_window > 0, "empty latency window");
        if let Some(lease) = &cfg.lease {
            if let Err(e) = lease.validate() {
                panic!("invalid lease config: {e}");
            }
        }
        if let Err(e) = cfg
            .faults
            .validate(cluster.gpu_count(), cfg.lease.is_some())
        {
            panic!("invalid serve fault plan: {e}");
        }
        ServeLoop { cluster, cfg }
    }

    /// Sequential service time of `job` on GPU `gpu` (all tasks back to
    /// back on that one GPU — the serve loop schedules at job
    /// granularity; intra-job parallelism is the batch engine's domain).
    fn service_time(&self, job: &JobSpec, gpu: usize) -> SimDuration {
        service_time_on(job, self.cluster.gpus()[gpu].kind)
    }

    /// Silent-death windows per GPU, sorted by open instant.
    fn death_windows(&self) -> Vec<Vec<(SimTime, Option<SimTime>)>> {
        let mut w = vec![Vec::new(); self.cluster.gpu_count()];
        for f in &self.cfg.faults.silent_workers {
            w[f.gpu].push((f.from, f.until));
        }
        for v in &mut w {
            v.sort_by_key(|&(from, _)| from);
        }
        w
    }

    /// CRC fingerprint of everything that must match between the run
    /// that wrote a snapshot and the run recovering from it. The crash
    /// injection is excluded: recovery deliberately strips it.
    fn fingerprint(&self, scheme: &str) -> u32 {
        let mut cfg = self.cfg.clone();
        cfg.faults.crash = None;
        let kinds: Vec<_> = self.cluster.gpus().iter().map(|g| g.kind).collect();
        crc32(format!("{SNAPSHOT_VERSION}|{scheme}|{cfg:?}|{kinds:?}").as_bytes())
    }

    fn fresh_state(&self) -> ServeState {
        let n = self.cluster.gpu_count();
        ServeState {
            now: SimTime::ZERO,
            epoch_index: 0,
            admission: AdmissionController::new(self.cfg.admission.clone()),
            budget: BudgetController::new(self.cfg.pressure, self.cfg.ascend_dwell),
            running: vec![None; n],
            lease_expired: vec![false; n],
            pool: Vec::new(),
            requeue_tags: BTreeMap::new(),
            latency_hist: Histogram::new(&LATENCY_BUCKETS_SECS),
            wait_hist: Histogram::new(&WAIT_BUCKETS_SECS),
            recent: Vec::with_capacity(self.cfg.latency_window),
            recent_at: 0,
            decisions: 0,
            rung_hits: BTreeMap::new(),
            completed: 0,
            jct_sum: 0.0,
            depth_max: 0,
            depth_at_drain: 0,
            work_total: 0,
            requeued: 0,
            lease_expiries: 0,
            lease_rejoins: 0,
            lease_lost: 0,
        }
    }

    /// Run to drain with no external stop signal.
    pub fn run(&self, scheduler: &mut dyn QueueScheduler) -> ServeReport {
        static NEVER: AtomicBool = AtomicBool::new(false);
        self.run_with_stop(scheduler, &NEVER, None)
    }

    /// Run until the arrival horizon drains or `stop` becomes true
    /// (checked every epoch; SIGTERM handlers set it). `pace` sleeps that
    /// long per decision epoch in *wall-clock* time — live-service pacing
    /// so an external signal can land mid-run; `None` runs flat out.
    /// Pacing ends once draining: the drain itself is pure simulation.
    ///
    /// Panics on an injected [`SchedulerCrash`] — crashing without a WAL
    /// leaves nothing to recover; use [`ServeLoop::run_with_wal`].
    pub fn run_with_stop(
        &self,
        scheduler: &mut dyn QueueScheduler,
        stop: &AtomicBool,
        pace: Option<std::time::Duration>,
    ) -> ServeReport {
        let mut st = self.fresh_state();
        let mut stream = self.cfg.arrivals.stream();
        let mut next_arrival = stream.next().filter(|a| a.spec.arrival < self.cfg.horizon);
        match self.drive(
            scheduler,
            &mut st,
            &mut stream,
            &mut next_arrival,
            None,
            self.cfg.faults.crash,
            1,
            stop,
            pace,
        ) {
            Ok(()) => self.finish(scheduler, st),
            Err(e) => panic!("serve run failed without a WAL: {e}"),
        }
    }

    /// Run with write-ahead logging: every transition is journaled to
    /// `wal.path`, group-committed at epoch boundaries, and every
    /// `wal.snapshot_every` epochs the log is compacted into a full
    /// state snapshot. An injected [`SchedulerCrash`] (or a real kill)
    /// leaves a WAL that [`ServeLoop::recover`] resumes from.
    pub fn run_with_wal(
        &self,
        scheduler: &mut dyn QueueScheduler,
        wal: &WalOptions,
        stop: &AtomicBool,
        pace: Option<std::time::Duration>,
    ) -> Result<ServeReport, RecoveryError> {
        assert!(wal.snapshot_every >= 1, "snapshot_every must be ≥ 1");
        let mut file = WalFile::create(&wal.path)?;
        let mut session = WalSession::new(&mut file, Vec::new());
        let mut st = self.fresh_state();
        let mut stream = self.cfg.arrivals.stream();
        let mut next_arrival = stream.next().filter(|a| a.spec.arrival < self.cfg.horizon);
        // Initial snapshot: recovery works from the first record on.
        let blob = self.encode_snapshot(
            &st,
            &scheduler.save_state(),
            scheduler.name(),
            stream.cursor(),
            next_arrival.is_some(),
        );
        session.snapshot(&blob)?;
        self.drive(
            scheduler,
            &mut st,
            &mut stream,
            &mut next_arrival,
            Some(&mut session),
            self.cfg.faults.crash,
            wal.snapshot_every,
            stop,
            pace,
        )?;
        Ok(self.finish(scheduler, st))
    }

    /// Recover a crashed (or completed) WAL-logged run: load the last
    /// valid snapshot, re-execute deterministically while verifying
    /// every regenerated transition against the WAL suffix, then keep
    /// serving live. The returned report is byte-identical to what an
    /// uncrashed run would have produced. Any injected crash in the
    /// config is ignored — recovery must not crash again.
    pub fn recover(
        &self,
        scheduler: &mut dyn QueueScheduler,
        wal: &WalOptions,
        stop: &AtomicBool,
        pace: Option<std::time::Duration>,
    ) -> Result<(ServeReport, RecoveryStats), RecoveryError> {
        assert!(wal.snapshot_every >= 1, "snapshot_every must be ≥ 1");
        let (mut file, blob, suffix) = WalFile::open_for_recovery(&wal.path)?;
        let (mut st, sched_state, cursor, buffered) =
            self.decode_snapshot(&blob, self.fingerprint(scheduler.name()))?;
        scheduler.load_state(&sched_state);

        // Resume the arrival stream at the snapshot's cursor. The last
        // draw is re-drawn (same seed ⇒ same value) so the horizon
        // filter re-applies; a draining snapshot pinned arrivals off.
        let mut stream = self.cfg.arrivals.stream();
        let mut next_arrival = if st.admission.is_draining() {
            stream.fast_forward(cursor);
            None
        } else {
            if cursor == 0 {
                return Err(RecoveryError::Corrupt {
                    line: 0,
                    why: "arrival cursor 0 in a non-draining snapshot".to_string(),
                });
            }
            stream.fast_forward(cursor - 1);
            stream.next().filter(|a| a.spec.arrival < self.cfg.horizon)
        };
        if !st.admission.is_draining() && next_arrival.is_some() != buffered {
            return Err(RecoveryError::Corrupt {
                line: 0,
                why: "arrival stream does not reproduce the snapshot's buffered arrival"
                    .to_string(),
            });
        }

        let resumed_at = st.now;
        let mut session = WalSession::new(&mut file, suffix);
        self.drive(
            scheduler,
            &mut st,
            &mut stream,
            &mut next_arrival,
            Some(&mut session),
            None, // recovery strips the injected crash
            wal.snapshot_every,
            stop,
            pace,
        )?;
        let stats = RecoveryStats {
            resumed_at,
            replayed: session.replayed(),
        };
        Ok((self.finish(scheduler, st), stats))
    }

    /// The event loop proper, shared by fresh, WAL-logged, and
    /// recovering runs. With a session attached every transition is
    /// logged (verified while the replay suffix lasts, appended after);
    /// wall-clock pacing and the external stop flag are suppressed
    /// during replay — the WAL already knows what happened.
    #[allow(clippy::too_many_arguments)]
    fn drive(
        &self,
        scheduler: &mut dyn QueueScheduler,
        st: &mut ServeState,
        stream: &mut ArrivalStream,
        next_arrival: &mut Option<OpenArrival>,
        mut session: Option<&mut WalSession<'_>>,
        crash: Option<SchedulerCrash>,
        snapshot_every: u64,
        stop: &AtomicBool,
        pace: Option<std::time::Duration>,
    ) -> Result<(), RecoveryError> {
        let horizon = self.cfg.horizon;
        let deaths = self.death_windows();
        let mut epoch = st.now + self.cfg.decision_interval;
        let mut finished = false;
        // Maintained incrementally at every occupancy transition below;
        // rebuilding from `st` here covers fresh and recovered runs alike.
        let mut idle = IdleGpus::new(&self.cluster, st);

        loop {
            // Next event: arrival (until drain), completion, or epoch.
            let next_completion = st
                .running
                .iter()
                .flatten()
                .map(|r| r.done_at)
                .min()
                .unwrap_or(SimTime::MAX);
            let arrival_t = match (&next_arrival, st.admission.is_draining()) {
                (Some(a), false) => a.spec.arrival,
                _ => SimTime::MAX,
            };

            if arrival_t <= next_completion && arrival_t <= epoch {
                st.now = arrival_t;
                let a = next_arrival.take().expect("arrival_t was finite");
                let id = a.spec.id.0;
                let outcome = st.admission.offer(st.now, TenantId(a.tenant), a.spec);
                wal_log(&mut session, || {
                    format!("arr {id} {}", outcome_code(outcome))
                })?;
                st.depth_max = st.depth_max.max(st.admission.depth());
                *next_arrival = stream.next().filter(|n| n.spec.arrival < horizon);
                continue;
            }
            if next_completion <= epoch {
                st.now = next_completion;
                for (gpu, gpu_deaths) in deaths.iter().enumerate() {
                    if st.running[gpu]
                        .as_ref()
                        .is_some_and(|r| r.done_at == st.now)
                    {
                        let r = st.running[gpu].take().expect("checked is_some");
                        let id = r.job.spec.id.0;
                        if self.cfg.lease.is_some() && dead_during(r.started, st.now, gpu_deaths) {
                            // The worker died mid-service: no completion
                            // happened. Park the job as a zombie; the
                            // lease machinery requeues it.
                            wal_log(&mut session, || {
                                format!("zomb {gpu} {id} {}", st.now.as_micros())
                            })?;
                            st.running[gpu] = Some(Running {
                                done_at: SimTime::MAX,
                                ..r
                            });
                        } else {
                            st.completed += 1;
                            st.jct_sum += st.now.saturating_since(r.job.spec.arrival).as_secs_f64();
                            wal_log(&mut session, || {
                                format!("comp {gpu} {id} {}", st.now.as_micros())
                            })?;
                            // An expired lease would have reclaimed the job
                            // before its completion event, so this GPU is
                            // dispatchable again.
                            idle.insert(gpu);
                        }
                    }
                }
                continue;
            }

            // Decision epoch.
            st.now = epoch;
            epoch += self.cfg.decision_interval;
            st.epoch_index += 1;

            // Injected crash: die at the top of the epoch, leaving the
            // buffered (un-fsynced) WAL tail to be regenerated by
            // recovery — exactly what a real kill loses.
            if let Some(c) = crash {
                if st.epoch_index == c.at_epoch {
                    return Err(RecoveryError::InjectedCrash { at: st.now });
                }
            }

            let replaying = session.as_ref().is_some_and(|s| s.replaying());
            if let Some(d) = pace {
                if !st.admission.is_draining() && !replaying {
                    std::thread::sleep(d);
                }
            }

            'epoch: {
                // Lease maintenance: expiries, rejoins, and jobs whose
                // worker is known to have died under them.
                if let Some(lease) = &self.cfg.lease {
                    for (gpu, gpu_deaths) in deaths.iter().enumerate() {
                        let lh = last_heartbeat(st.now, lease.heartbeat, gpu_deaths)
                            .unwrap_or(SimTime::ZERO);
                        let live = st.now.saturating_since(lh) <= lease.timeout;
                        if st.lease_expired[gpu] {
                            if live {
                                st.lease_expired[gpu] = false;
                                st.lease_rejoins += 1;
                                scheduler.on_gpu_recovery(gpu);
                                wal_log(&mut session, || format!("rejoin {gpu}"))?;
                                // An expired GPU never carries a running
                                // job (expiry reclaimed it), so the rejoin
                                // makes it dispatchable immediately.
                                idle.insert(gpu);
                            }
                        } else if !live {
                            st.lease_expired[gpu] = true;
                            st.lease_expiries += 1;
                            scheduler.on_lease_expired(gpu);
                            wal_log(&mut session, || format!("exp {gpu}"))?;
                            idle.remove(gpu);
                            if let Some(r) = st.running[gpu].take() {
                                requeue_job(st, &mut session, lease, st.now, r.job, r.requeues)?;
                            }
                        }
                        // A revived worker's heartbeat reveals it lost
                        // its job even if the lease never lapsed.
                        let doomed = st.running[gpu].as_ref().is_some_and(|r| {
                            !dead_at(st.now, gpu_deaths)
                                && dead_during(r.started, st.now, gpu_deaths)
                        });
                        if doomed {
                            let r = st.running[gpu].take().expect("checked some");
                            wal_log(&mut session, || format!("wlost {gpu} {}", r.job.spec.id.0))?;
                            requeue_job(st, &mut session, lease, st.now, r.job, r.requeues)?;
                            // The worker is back (not dead now, lease
                            // intact) and its old job is requeued: idle.
                            idle.insert(gpu);
                        }
                    }
                }

                // Drain: an external stop (live only — replay re-learns
                // it from the WAL's own drain record) or arrival
                // exhaustion.
                let stop_now = !replaying && stop.load(Ordering::SeqCst);
                let logged_drain = replaying
                    && session
                        .as_ref()
                        .is_some_and(|s| s.peek_drain_at(st.now.as_micros()));
                let drain_due = stop_now || next_arrival.is_none() || logged_drain;
                if drain_due && !st.admission.is_draining() {
                    st.depth_at_drain = st.admission.depth();
                    st.admission.begin_drain();
                    let q = st.admission.drain_all().len();
                    let p = st.pool.len();
                    st.admission.count_drained(p as u64);
                    st.pool.clear();
                    st.requeue_tags.clear();
                    *next_arrival = None;
                    wal_log(&mut session, || {
                        format!("drain {} {q} {p}", st.now.as_micros())
                    })?;
                }
                if st.admission.is_draining() {
                    if st.running.iter().all(Option::is_none) && st.pool.is_empty() {
                        finished = true;
                    }
                    break 'epoch;
                }

                // Ripened requeues re-enter the fair queue (FIFO).
                let mut i = 0;
                while i < st.pool.len() {
                    if st.pool[i].ready_at <= st.now {
                        let e = st.pool.remove(i);
                        let id = e.job.spec.id.0;
                        let seq = st.admission.readmit(e.job);
                        st.requeue_tags.insert(seq, e.requeues);
                        st.depth_max = st.depth_max.max(st.admission.depth());
                        wal_log(&mut session, || format!("readd {id} {seq}"))?;
                    } else {
                        i += 1;
                    }
                }

                st.admission.poll(st.now);
                st.depth_max = st.depth_max.max(st.admission.depth());
                let c = st.admission.counters();
                wal_log(&mut session, || {
                    format!(
                        "ep {} {} {} {} {} {}",
                        st.epoch_index,
                        st.now.as_micros(),
                        c.offered,
                        c.admitted,
                        c.rejected(),
                        st.admission.depth()
                    )
                })?;

                // Backpressure: depth + recent decision-latency p99 →
                // budget.
                let p99 = if st.recent.is_empty() {
                    0.0
                } else {
                    let mut v = st.recent.clone();
                    v.sort_by(f64::total_cmp);
                    v[((v.len() as f64 * 0.99).ceil() as usize).clamp(1, v.len()) - 1]
                };
                let before = st.budget.level_idx();
                let frac = st.budget.update(st.admission.depth(), p99);
                if st.budget.level_idx() != before {
                    wal_log(&mut session, || format!("budget {}", st.budget.level_idx()))?;
                }

                if idle.is_empty() || st.admission.depth() == 0 {
                    break 'epoch;
                }

                // Plan over the fair-queue head window.
                let window = st.admission.peek_window(self.cfg.plan_window);
                let window_seqs: Vec<u64> = window.iter().map(|p| p.seq).collect();
                let outcome = scheduler.plan(&window, &self.cluster, frac);
                let latency_secs = outcome.work as f64 * self.cfg.cost_per_work;
                let latency = SimDuration::from_secs_f64(latency_secs);
                st.decisions += 1;
                st.work_total += outcome.work;
                st.latency_hist.record(latency_secs);
                if st.recent.len() < self.cfg.latency_window {
                    st.recent.push(latency_secs);
                } else {
                    st.recent[st.recent_at] = latency_secs;
                    st.recent_at = (st.recent_at + 1) % self.cfg.latency_window;
                }
                *st.rung_hits.entry(outcome.rung.to_string()).or_insert(0) += 1;
                wal_log(&mut session, || {
                    format!("plan {} {}", outcome.rung, outcome.work)
                })?;

                // Dispatch in plan order: each job onto the idle GPU
                // that serves it fastest; decision latency is charged
                // up front.
                let mut seen = vec![false; window_seqs.len()];
                for &wi in &outcome.order {
                    if idle.is_empty() {
                        break;
                    }
                    assert!(
                        wi < window_seqs.len() && !std::mem::replace(&mut seen[wi], true),
                        "scheduler returned an invalid dispatch order"
                    );
                    let job = st
                        .admission
                        .take(window_seqs[wi])
                        .expect("window entries stay live until taken");
                    let requeues = st.take_requeue_tag(job.seq);
                    let gpu = idle
                        .best_for(&job.spec)
                        .expect("idle is non-empty: checked above");
                    idle.remove(gpu);
                    st.wait_hist
                        .record(st.now.saturating_since(job.admitted_at).as_secs_f64());
                    let done_at = st.now + latency + self.service_time(&job.spec, gpu);
                    wal_log(&mut session, || {
                        format!("disp {} {gpu} {}", job.spec.id.0, done_at.as_micros())
                    })?;
                    st.running[gpu] = Some(Running {
                        job,
                        started: st.now,
                        done_at,
                        requeues,
                    });
                }
            }

            // Epoch postlude: snapshot (compacting the log) on cadence,
            // group-commit otherwise. Both are no-ops during replay.
            if session.is_some() && !finished {
                if st.epoch_index.is_multiple_of(snapshot_every) {
                    let blob = self.encode_snapshot(
                        st,
                        &scheduler.save_state(),
                        scheduler.name(),
                        stream.cursor(),
                        next_arrival.is_some(),
                    );
                    if let Some(s) = session.as_deref_mut() {
                        s.snapshot(&blob)?;
                    }
                } else if let Some(s) = session.as_deref_mut() {
                    s.commit()?;
                }
            }
            if finished {
                break;
            }
        }

        wal_log(&mut session, || {
            format!("end {} {}", st.now.as_micros(), st.completed)
        })?;
        if let Some(s) = session {
            s.commit()?;
        }
        Ok(())
    }

    /// Build the final report from a drained state.
    fn finish(&self, scheduler: &dyn QueueScheduler, st: ServeState) -> ServeReport {
        let counters = st.admission.counters();
        let elapsed = st.now.as_secs_f64().max(1e-9);
        let decisions_per_sec = st.decisions as f64 / elapsed;
        let mean_jct_secs = if st.completed > 0 {
            st.jct_sum / st.completed as f64
        } else {
            0.0
        };

        let mut metrics = MetricsRegistry::new();
        metrics.add("serve.offered", counters.offered);
        metrics.add("serve.admitted", counters.admitted);
        metrics.add(
            "serve.rejected_rate_limited",
            counters.rejected_rate_limited,
        );
        metrics.add("serve.rejected_queue_full", counters.rejected_queue_full);
        metrics.add("serve.rejected_draining", counters.rejected_draining);
        metrics.add("serve.deferrals", counters.deferrals);
        metrics.add("serve.shed", counters.shed);
        metrics.add("serve.drained", counters.drained);
        metrics.add("serve.readmitted", counters.readmitted);
        metrics.add("serve.completed", st.completed);
        metrics.add("serve.decisions", st.decisions);
        metrics.add("serve.decision_work", st.work_total);
        metrics.add("serve.queue_depth_max", st.depth_max as u64);
        metrics.add("serve.requeued", st.requeued);
        metrics.add("serve.lease_expiries", st.lease_expiries);
        metrics.add("serve.lease_rejoins", st.lease_rejoins);
        metrics.add("serve.lease_lost", st.lease_lost);
        metrics.set_gauge("serve.decisions_per_sec", decisions_per_sec);
        metrics.set_gauge(
            "serve.decision_latency_p50",
            st.latency_hist.quantile(0.5).unwrap_or(0.0),
        );
        metrics.set_gauge(
            "serve.decision_latency_p99",
            st.latency_hist.quantile(0.99).unwrap_or(0.0),
        );
        metrics.set_gauge("serve.min_budget_level", st.budget.min_level());
        metrics.set_gauge("serve.budget_transitions", st.budget.transitions() as f64);
        metrics.set_gauge("serve.mean_jct_secs", mean_jct_secs);
        for (rung, hits) in &st.rung_hits {
            metrics.add(&format!("serve.rung.{rung}"), *hits);
        }
        metrics.insert_histogram("serve.decision_latency_secs", st.latency_hist.clone());
        metrics.insert_histogram("serve.queue_wait_secs", st.wait_hist);

        ServeReport {
            scheme: scheduler.name().to_string(),
            end: st.now,
            counters,
            completed: st.completed,
            decisions: st.decisions,
            decisions_per_sec,
            decision_latency: st.latency_hist,
            rung_hits: st.rung_hits,
            queue_depth_max: st.depth_max,
            queue_depth_at_drain: st.depth_at_drain,
            min_budget_level: st.budget.min_level(),
            budget_transitions: st.budget.transitions(),
            mean_jct_secs,
            requeued: st.requeued,
            lease_expiries: st.lease_expiries,
            lease_rejoins: st.lease_rejoins,
            lease_lost: st.lease_lost,
            metrics,
        }
    }

    /// Encode the complete loop state as the single-line snapshot blob:
    /// `;`-separated `key=value` sections, nesting the admission/budget
    /// encodings (which use only `:,|`).
    fn encode_snapshot(
        &self,
        st: &ServeState,
        sched_state: &str,
        scheme: &str,
        cursor: u64,
        buffered: bool,
    ) -> String {
        assert!(
            !sched_state.contains([';', '=', ' ', '\n']),
            "scheduler state must avoid the snapshot framing characters"
        );
        let mut s = String::with_capacity(1024);
        let _ = write!(s, "v={SNAPSHOT_VERSION}");
        let _ = write!(s, ";fp={:08x}", self.fingerprint(scheme));
        let _ = write!(s, ";now={}", st.now.as_micros());
        let _ = write!(s, ";ei={}", st.epoch_index);
        let _ = write!(s, ";cur={cursor}");
        let _ = write!(s, ";buf={}", u8::from(buffered));
        let _ = write!(s, ";ac={}", st.admission.encode_state());
        let _ = write!(s, ";bc={}", st.budget.encode_state());
        s.push_str(";run=");
        for (i, slot) in st.running.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            match slot {
                None => s.push('-'),
                Some(r) => {
                    let _ = write!(
                        s,
                        "{}:{}:{}:{}",
                        r.job.encode(),
                        r.started.as_micros(),
                        r.done_at.as_micros(),
                        r.requeues
                    );
                }
            }
        }
        s.push_str(";ls=");
        for &e in &st.lease_expired {
            s.push(if e { '1' } else { '0' });
        }
        s.push_str(";pool=");
        for (i, e) in st.pool.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{}:{}:{}",
                e.job.encode(),
                e.ready_at.as_micros(),
                e.requeues
            );
        }
        s.push_str(";rt=");
        for (i, (seq, req)) in st.requeue_tags.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{seq}:{req}");
        }
        let _ = write!(s, ";lh={}", encode_hist(&st.latency_hist));
        let _ = write!(s, ";wh={}", encode_hist(&st.wait_hist));
        s.push_str(";rc=");
        for (i, v) in st.recent.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&f64_hex(*v));
        }
        let _ = write!(s, ";ra={}", st.recent_at);
        let _ = write!(
            s,
            ";ct={}:{}:{}:{}:{}:{}:{}:{}:{}:{}",
            st.decisions,
            st.completed,
            f64_hex(st.jct_sum),
            st.depth_max,
            st.depth_at_drain,
            st.work_total,
            st.requeued,
            st.lease_expiries,
            st.lease_rejoins,
            st.lease_lost
        );
        s.push_str(";rh=");
        for (i, (rung, hits)) in st.rung_hits.iter().enumerate() {
            assert!(
                !rung.contains([':', ',', ';', '=']),
                "rung names must avoid snapshot framing characters"
            );
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{rung}:{hits}");
        }
        let _ = write!(s, ";ss={sched_state}");
        s
    }

    /// Inverse of [`Self::encode_snapshot`]: `(state, scheduler_state,
    /// arrival_cursor, arrival_buffered)`.
    fn decode_snapshot(
        &self,
        blob: &str,
        expected_fp: u32,
    ) -> Result<(ServeState, String, u64, bool), RecoveryError> {
        let corrupt = |why: String| RecoveryError::Corrupt { line: 0, why };
        let mut map: BTreeMap<&str, &str> = BTreeMap::new();
        for section in blob.split(';') {
            let (k, v) = section
                .split_once('=')
                .ok_or_else(|| corrupt(format!("snapshot section without '=': {section:?}")))?;
            map.insert(k, v);
        }
        let get = |k: &str| {
            map.get(k)
                .copied()
                .ok_or_else(|| corrupt(format!("snapshot is missing section {k:?}")))
        };
        let pu64 = |k: &str, v: &str| {
            v.parse::<u64>()
                .map_err(|e| corrupt(format!("snapshot {k}={v:?}: {e}")))
        };

        let version = pu64("v", get("v")?)?;
        if version != u64::from(SNAPSHOT_VERSION) {
            return Err(corrupt(format!(
                "snapshot version {version}, want {SNAPSHOT_VERSION}"
            )));
        }
        let fp = u32::from_str_radix(get("fp")?, 16)
            .map_err(|e| corrupt(format!("snapshot fingerprint: {e}")))?;
        if fp != expected_fp {
            return Err(RecoveryError::ConfigMismatch {
                expected: fp,
                got: expected_fp,
            });
        }

        let mut st = self.fresh_state();
        st.now = SimTime::from_micros(pu64("now", get("now")?)?);
        st.epoch_index = pu64("ei", get("ei")?)?;
        let cursor = pu64("cur", get("cur")?)?;
        let buffered = match get("buf")? {
            "0" => false,
            "1" => true,
            other => return Err(corrupt(format!("snapshot buf={other:?}"))),
        };
        st.admission = AdmissionController::decode_state(self.cfg.admission.clone(), get("ac")?)
            .map_err(|why| corrupt(format!("admission state: {why}")))?;
        st.budget =
            BudgetController::decode_state(self.cfg.pressure, self.cfg.ascend_dwell, get("bc")?)
                .map_err(|why| corrupt(format!("budget state: {why}")))?;

        let n_gpus = self.cluster.gpu_count();
        let run = get("run")?;
        let slots: Vec<&str> = run.split(',').collect();
        if slots.len() != n_gpus {
            return Err(corrupt(format!(
                "snapshot has {} running slots for a {n_gpus}-GPU cluster",
                slots.len()
            )));
        }
        for (gpu, slot) in slots.iter().enumerate() {
            if *slot == "-" {
                continue;
            }
            let f: Vec<&str> = slot.split(':').collect();
            if f.len() != 15 {
                return Err(corrupt(format!(
                    "running slot {slot:?}: {} fields, want 15",
                    f.len()
                )));
            }
            let job = PendingJob::decode(&f[..12].join(":"))
                .map_err(|why| corrupt(format!("running job: {why}")))?;
            st.running[gpu] = Some(Running {
                job,
                started: SimTime::from_micros(pu64("run.started", f[12])?),
                done_at: SimTime::from_micros(pu64("run.done", f[13])?),
                requeues: pu64("run.requeues", f[14])? as u32,
            });
        }

        let ls = get("ls")?;
        if ls.len() != n_gpus || !ls.bytes().all(|b| b == b'0' || b == b'1') {
            return Err(corrupt(format!("snapshot lease flags {ls:?}")));
        }
        st.lease_expired = ls.bytes().map(|b| b == b'1').collect();

        let pool = get("pool")?;
        if !pool.is_empty() {
            for entry in pool.split(',') {
                let f: Vec<&str> = entry.split(':').collect();
                if f.len() != 14 {
                    return Err(corrupt(format!(
                        "pool entry {entry:?}: {} fields, want 14",
                        f.len()
                    )));
                }
                let job = PendingJob::decode(&f[..12].join(":"))
                    .map_err(|why| corrupt(format!("pool job: {why}")))?;
                st.pool.push(PoolEntry {
                    job,
                    ready_at: SimTime::from_micros(pu64("pool.ready", f[12])?),
                    requeues: pu64("pool.requeues", f[13])? as u32,
                });
            }
        }

        let rt = get("rt")?;
        if !rt.is_empty() {
            for entry in rt.split(',') {
                let (seq, req) = entry
                    .split_once(':')
                    .ok_or_else(|| corrupt(format!("requeue tag {entry:?}")))?;
                st.requeue_tags
                    .insert(pu64("rt.seq", seq)?, pu64("rt.req", req)? as u32);
            }
        }

        st.latency_hist = decode_hist(&LATENCY_BUCKETS_SECS, get("lh")?)
            .map_err(|why| corrupt(format!("latency histogram: {why}")))?;
        st.wait_hist = decode_hist(&WAIT_BUCKETS_SECS, get("wh")?)
            .map_err(|why| corrupt(format!("wait histogram: {why}")))?;

        let rc = get("rc")?;
        if !rc.is_empty() {
            for v in rc.split(',') {
                st.recent
                    .push(f64_from_hex(v).ok_or_else(|| corrupt(format!("recent latency {v:?}")))?);
            }
        }
        if st.recent.len() > self.cfg.latency_window {
            return Err(corrupt(format!(
                "snapshot recent window {} exceeds latency_window {}",
                st.recent.len(),
                self.cfg.latency_window
            )));
        }
        st.recent_at = pu64("ra", get("ra")?)? as usize;

        let ct: Vec<&str> = get("ct")?.split(':').collect();
        let [decisions, completed, jct, depth_max, depth_at_drain, work_total, requeued, lexp, lrej, llost] =
            ct[..]
        else {
            return Err(corrupt(format!(
                "snapshot ct has {} fields, want 10",
                ct.len()
            )));
        };
        st.decisions = pu64("ct.decisions", decisions)?;
        st.completed = pu64("ct.completed", completed)?;
        st.jct_sum = f64_from_hex(jct).ok_or_else(|| corrupt(format!("jct sum {jct:?}")))?;
        st.depth_max = pu64("ct.depth_max", depth_max)? as usize;
        st.depth_at_drain = pu64("ct.depth_at_drain", depth_at_drain)? as usize;
        st.work_total = pu64("ct.work_total", work_total)?;
        st.requeued = pu64("ct.requeued", requeued)?;
        st.lease_expiries = pu64("ct.lease_expiries", lexp)?;
        st.lease_rejoins = pu64("ct.lease_rejoins", lrej)?;
        st.lease_lost = pu64("ct.lease_lost", llost)?;

        let rh = get("rh")?;
        if !rh.is_empty() {
            for entry in rh.split(',') {
                let (rung, hits) = entry
                    .split_once(':')
                    .ok_or_else(|| corrupt(format!("rung tally {entry:?}")))?;
                st.rung_hits.insert(rung.to_string(), pu64("rh", hits)?);
            }
        }

        let ss = get("ss")?.to_string();
        Ok((st, ss, cursor, buffered))
    }
}

impl ServeState {
    /// Requeue count carried by the readmitted queue entry `seq`; 0 for
    /// first-time admissions.
    fn take_requeue_tag(&mut self, seq: u64) -> u32 {
        self.requeue_tags.remove(&seq).unwrap_or(0)
    }
}

/// Histogram → `count:count:…:sum_bits` (bounds are compile-time
/// constants, not encoded).
fn encode_hist(h: &Histogram) -> String {
    let mut s = String::with_capacity(64);
    for c in h.counts() {
        let _ = write!(s, "{c}:");
    }
    s.push_str(&f64_hex(h.sum()));
    s
}

/// Inverse of [`encode_hist`] over the known `bounds`.
fn decode_hist(bounds: &[f64], s: &str) -> Result<Histogram, String> {
    let fields: Vec<&str> = s.split(':').collect();
    let [counts @ .., sum] = &fields[..] else {
        return Err(format!("histogram {s:?} has no fields"));
    };
    let counts: Vec<u64> = counts
        .iter()
        .map(|c| c.parse::<u64>().map_err(|e| format!("count {c:?}: {e}")))
        .collect::<Result<_, _>>()?;
    let sum = f64_from_hex(sum).ok_or_else(|| format!("sum {sum:?}"))?;
    Histogram::from_parts(bounds, counts, sum)
        .ok_or_else(|| format!("histogram {s:?} does not fit {} bounds", bounds.len()))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::admission::TokenBucketConfig;
    use crate::faults::SilentWorkerFault;
    use hare_workload::estimate_capacity_jobs_per_sec;
    use std::path::PathBuf;

    /// Trivial FIFO scheduler: dispatch in fair-queue order, flat work.
    struct Fifo;

    impl QueueScheduler for Fifo {
        fn name(&self) -> &'static str {
            "FIFO"
        }
        fn plan(&mut self, window: &[&PendingJob], _cluster: &Cluster, _frac: f64) -> PlanOutcome {
            PlanOutcome {
                order: (0..window.len()).collect(),
                work: window.len() as u64 * 10,
                rung: "fifo",
            }
        }
    }

    fn config(load: f64, horizon_secs: u64) -> ServeConfig {
        let cluster = Cluster::testbed15();
        let mut arrivals = OpenArrivalConfig {
            load_factor: load,
            seed: 11,
            ..OpenArrivalConfig::default()
        };
        let counts: Vec<_> = cluster.count_by_kind().into_iter().collect();
        arrivals.capacity_jobs_per_sec =
            estimate_capacity_jobs_per_sec(&counts, &arrivals, OpenArrivalConfig::CAPACITY_SAMPLES);
        ServeConfig {
            arrivals,
            horizon: SimTime::from_secs(horizon_secs),
            admission: AdmissionConfig {
                queue_capacity: 64,
                bucket: TokenBucketConfig {
                    rate_per_sec: 1.0,
                    burst: 32.0,
                },
                ..AdmissionConfig::default()
            },
            ..ServeConfig::default()
        }
    }

    fn tmp_wal(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hare-serve-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn serves_to_drain_and_conserves() {
        let cfg = config(0.7, 2_000);
        let report = ServeLoop::new(Cluster::testbed15(), cfg).run(&mut Fifo);
        assert!(report.completed > 0, "jobs completed");
        assert!(report.counters.conserved(), "{:?}", report.counters);
        assert_eq!(
            report.counters.admitted,
            report.completed + report.counters.drained,
            "admitted jobs either completed or were drained at wind-down"
        );
        assert_eq!(report.counters.shed, 0, "a graceful drain is not overload");
        assert!(report.decisions > 0);
        assert!(report.latency_quantile(0.99).is_some());
        assert!(report.mean_jct_secs > 0.0);
    }

    #[test]
    fn deterministic_byte_identical_reports() {
        let cfg = config(1.3, 1_200);
        let a = ServeLoop::new(Cluster::testbed15(), cfg.clone()).run(&mut Fifo);
        let b = ServeLoop::new(Cluster::testbed15(), cfg).run(&mut Fifo);
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        assert!(serde_json::from_str(&a.to_json()).is_ok());
    }

    #[test]
    fn overload_keeps_the_queue_bounded() {
        let cfg = config(2.5, 3_000);
        let cap = cfg.admission.queue_capacity;
        let report = ServeLoop::new(Cluster::testbed15(), cfg).run(&mut Fifo);
        assert!(report.queue_depth_max <= cap, "bounded queue");
        assert!(
            report.counters.rejected() > 0 || report.counters.drained > 0,
            "overload must reject or leave a drain residue: {:?}",
            report.counters
        );
        assert!(report.counters.conserved());
    }

    #[test]
    fn stop_flag_triggers_a_clean_drain() {
        // A pre-set stop flag: the loop must drain at the first epoch and
        // still produce a valid, conserved report.
        let cfg = config(1.0, 100_000);
        let stop = AtomicBool::new(true);
        let report =
            ServeLoop::new(Cluster::testbed15(), cfg).run_with_stop(&mut Fifo, &stop, None);
        assert!(report.end < SimTime::from_secs(100));
        assert!(report.counters.conserved());
    }

    #[test]
    fn unthrottled_config_never_rejects() {
        let cfg = config(1.5, 1_000).unthrottled();
        let report = ServeLoop::new(Cluster::testbed15(), cfg).run(&mut Fifo);
        assert_eq!(report.counters.rejected(), 0);
        assert_eq!(report.counters.deferrals, 0);
        assert_eq!(report.min_budget_level, 1.0, "no brownout when disabled");
        assert!(report.counters.conserved());
    }

    #[test]
    fn wal_run_matches_plain_run() {
        let cfg = config(1.2, 1_500);
        let golden = ServeLoop::new(Cluster::testbed15(), cfg.clone()).run(&mut Fifo);
        let path = tmp_wal("match");
        let stop = AtomicBool::new(false);
        let wal = WalOptions::new(&path);
        let report = ServeLoop::new(Cluster::testbed15(), cfg)
            .run_with_wal(&mut Fifo, &wal, &stop, None)
            .unwrap();
        assert_eq!(report, golden, "journaling must not perturb the run");
        assert_eq!(report.to_json(), golden.to_json());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crash_and_recover_is_byte_identical() {
        let cfg = config(1.2, 1_500);
        let golden = ServeLoop::new(Cluster::testbed15(), cfg.clone()).run(&mut Fifo);
        for at_epoch in [1, 7, 40, 220] {
            let mut cfg = cfg.clone();
            cfg.faults.crash = Some(SchedulerCrash { at_epoch });
            let path = tmp_wal(&format!("crash-{at_epoch}"));
            let mut wal = WalOptions::new(&path);
            wal.snapshot_every = 10;
            let stop = AtomicBool::new(false);
            let loop_ = ServeLoop::new(Cluster::testbed15(), cfg);
            let err = loop_
                .run_with_wal(&mut Fifo, &wal, &stop, None)
                .expect_err("crash fires");
            assert!(matches!(err, RecoveryError::InjectedCrash { .. }), "{err}");
            let (report, stats) = loop_.recover(&mut Fifo, &wal, &stop, None).unwrap();
            assert_eq!(report, golden, "crash at epoch {at_epoch}");
            assert_eq!(report.to_json(), golden.to_json());
            assert!(stats.resumed_at <= SimTime::from_micros(err.crash_instant()));
            std::fs::remove_file(&path).unwrap();
        }
    }

    impl RecoveryError {
        fn crash_instant(&self) -> u64 {
            match self {
                RecoveryError::InjectedCrash { at } => at.as_micros(),
                other => panic!("expected InjectedCrash, got {other}"),
            }
        }
    }

    #[test]
    fn recovering_a_completed_wal_replays_to_the_same_report() {
        let cfg = config(0.9, 1_000);
        let path = tmp_wal("completed");
        let wal = WalOptions::new(&path);
        let stop = AtomicBool::new(false);
        let loop_ = ServeLoop::new(Cluster::testbed15(), cfg);
        let report = loop_.run_with_wal(&mut Fifo, &wal, &stop, None).unwrap();
        let (recovered, stats) = loop_.recover(&mut Fifo, &wal, &stop, None).unwrap();
        assert_eq!(recovered, report);
        assert!(stats.replayed > 0, "the whole suffix replays");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn recover_rejects_a_changed_config() {
        let cfg = config(1.0, 800);
        let path = tmp_wal("fingerprint");
        let wal = WalOptions::new(&path);
        let stop = AtomicBool::new(false);
        ServeLoop::new(Cluster::testbed15(), cfg.clone())
            .run_with_wal(&mut Fifo, &wal, &stop, None)
            .unwrap();
        let mut other = cfg;
        other.plan_window += 1;
        let err = ServeLoop::new(Cluster::testbed15(), other)
            .recover(&mut Fifo, &wal, &stop, None)
            .expect_err("fingerprint mismatch");
        assert!(matches!(err, RecoveryError::ConfigMismatch { .. }), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn silent_death_expires_the_lease_and_requeues_work() {
        let mut cfg = config(1.5, 2_500);
        cfg.lease = Some(LeaseConfig::default());
        // Every worker goes silent mid-run and revives later: whatever
        // was in flight at the blackout must requeue and finish after.
        cfg.faults.silent_workers = (0..Cluster::testbed15().gpu_count())
            .map(|gpu| SilentWorkerFault {
                gpu,
                from: SimTime::from_secs(600),
                until: Some(SimTime::from_secs(900)),
            })
            .collect();
        let report = ServeLoop::new(Cluster::testbed15(), cfg).run(&mut Fifo);
        assert!(report.lease_expiries >= 2, "deaths detected");
        assert!(report.lease_rejoins >= 1, "workers rejoin after revival");
        assert!(report.requeued > 0, "in-flight work requeued");
        assert!(
            report.counters.readmitted > 0,
            "requeues re-entered the queue"
        );
        assert!(report.counters.conserved());
        assert_eq!(
            report.counters.admitted,
            report.completed + report.counters.drained + report.counters.shed + report.lease_lost,
            "lease accounting closes the conservation identity: {report:?}"
        );
    }

    #[test]
    fn crash_recovery_with_leases_and_silent_faults() {
        let mut cfg = config(0.8, 1_500);
        cfg.lease = Some(LeaseConfig::default());
        cfg.faults.silent_workers = vec![SilentWorkerFault {
            gpu: 1,
            from: SimTime::from_secs(60),
            until: Some(SimTime::from_secs(500)),
        }];
        let golden = ServeLoop::new(Cluster::testbed15(), cfg.clone()).run(&mut Fifo);
        let mut crash_cfg = cfg;
        crash_cfg.faults.crash = Some(SchedulerCrash { at_epoch: 25 });
        let path = tmp_wal("lease-crash");
        let mut wal = WalOptions::new(&path);
        wal.snapshot_every = 7;
        let stop = AtomicBool::new(false);
        let loop_ = ServeLoop::new(Cluster::testbed15(), crash_cfg);
        loop_
            .run_with_wal(&mut Fifo, &wal, &stop, None)
            .expect_err("crash fires");
        let (report, _) = loop_.recover(&mut Fifo, &wal, &stop, None).unwrap();
        assert_eq!(report, golden);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn snapshot_round_trips_mid_run_state() {
        // Encode/decode identity on a non-trivial mid-run state, checked
        // indirectly: crash exactly between snapshots so recovery must
        // decode a snapshot with running jobs, a busy queue, and recent
        // latencies, then verify a long replay suffix.
        let cfg = config(1.6, 1_200);
        let golden = ServeLoop::new(Cluster::testbed15(), cfg.clone()).run(&mut Fifo);
        let mut cfg = cfg;
        cfg.faults.crash = Some(SchedulerCrash { at_epoch: 40 });
        let path = tmp_wal("roundtrip");
        let mut wal = WalOptions::new(&path);
        wal.snapshot_every = 16;
        let stop = AtomicBool::new(false);
        let loop_ = ServeLoop::new(Cluster::testbed15(), cfg);
        loop_
            .run_with_wal(&mut Fifo, &wal, &stop, None)
            .expect_err("crash fires");
        let (report, stats) = loop_.recover(&mut Fifo, &wal, &stop, None).unwrap();
        assert_eq!(report, golden);
        assert!(stats.replayed > 0, "suffix was verified, not skipped");
        std::fs::remove_file(&path).unwrap();
    }
}
