//! Continuous-service mode: an always-on scheduling loop absorbing an
//! open arrival stream (DESIGN.md §12).
//!
//! The batch engine ([`crate::engine`]) materializes a complete trace and
//! replays it to quiescence; a production scheduler never sees the end of
//! its workload. [`ServeLoop`] is the complementary *job-granularity*
//! continuous-service simulator:
//!
//! * arrivals are pulled **lazily** from an
//!   [`hare_workload::ArrivalStream`] — one at a time, as simulated time
//!   reaches them; nothing is materialized;
//! * every arrival passes the [`AdmissionController`] (token buckets →
//!   bounded fair queue, typed outcomes, conservation accounting);
//! * at each **decision epoch** the [`BudgetController`] turns queue
//!   depth + recent decision-latency p99 into a solver-budget fraction
//!   (with hysteresis), a pluggable [`QueueScheduler`] ranks the fair-
//!   queue head window under that fraction, and ranked jobs dispatch to
//!   idle GPUs. The decision's deterministic work is priced into
//!   simulated latency (the `cost_per_work` convention shared with the
//!   online baselines) and charged before the dispatched jobs start;
//! * a **drain** (arrival horizon exhausted, or an external stop flag —
//!   SIGTERM in `hare serve`) stops admission, sheds the pending queue,
//!   lets in-flight jobs finish, and produces the final [`ServeReport`].
//!
//! Decision-latency p50/p99 (via [`Histogram::quantile`]) and
//! decisions/sec are first-class [`MetricsRegistry`] series. Everything
//! is simulated-time deterministic: two runs of the same config and
//! scheduler produce byte-identical reports.

use crate::admission::{
    AdmissionConfig, AdmissionController, AdmissionCounters, BudgetController, PendingJob,
    PressureCurve, TenantId,
};
use crate::metrics::{push_f64, push_json_str};
use crate::registry::{Histogram, MetricsRegistry};
use hare_cluster::{Cluster, SimDuration, SimTime};
use hare_workload::{ArrivalStream, OpenArrival, OpenArrivalConfig};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};

/// One scheduling decision over the planning window.
#[derive(Clone, Debug)]
pub struct PlanOutcome {
    /// Dispatch order as indices into the window handed to
    /// [`QueueScheduler::plan`] (best first). An index outside the
    /// window, or repeated, is a scheduler bug and panics in the loop.
    pub order: Vec<usize>,
    /// Deterministic work units spent deciding (priced into latency).
    pub work: u64,
    /// Which ladder rung (or heuristic) produced the plan — tallied into
    /// the report's rung-hit counts.
    pub rung: &'static str,
}

/// A scheduler ranking the pending-queue head under a budget fraction.
///
/// Implementations live in `hare-baselines` (the anytime-ladder scheduler
/// and an SRTF heuristic); the trait keeps `hare-sim` solver-free.
pub trait QueueScheduler {
    /// Scheme name for reports.
    fn name(&self) -> &'static str;

    /// Rank `window` (fair-queue order, never empty) for dispatch onto
    /// `cluster`, spending at most `budget_frac` of the full solve
    /// budget.
    fn plan(&mut self, window: &[&PendingJob], cluster: &Cluster, budget_frac: f64) -> PlanOutcome;
}

/// Configuration of one serve run.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Open arrival stream (process, load factor, tenants, seed).
    pub arrivals: OpenArrivalConfig,
    /// Admission control (quotas, queue bound).
    pub admission: AdmissionConfig,
    /// Backpressure → budget mapping.
    pub pressure: PressureCurve,
    /// Hysteresis dwell (decision epochs of calm before ascending one
    /// budget level).
    pub ascend_dwell: u32,
    /// Decision epoch length.
    pub decision_interval: SimDuration,
    /// Stop generating arrivals at this simulated instant, then drain.
    pub horizon: SimTime,
    /// Maximum jobs the scheduler sees per decision (the fair-queue
    /// head; bounds per-decision solve cost).
    pub plan_window: usize,
    /// Simulated seconds charged per unit of scheduler work (the
    /// `ReplanBudget::cost_per_work` convention: 1e-5 ⇒ 100k work units
    /// ≈ 1 s of decision latency).
    pub cost_per_work: f64,
    /// Recent-decision window feeding the pressure controller's p99.
    pub latency_window: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            arrivals: OpenArrivalConfig::default(),
            admission: AdmissionConfig::default(),
            pressure: PressureCurve::default(),
            ascend_dwell: 5,
            decision_interval: SimDuration::from_secs(5),
            horizon: SimTime::from_secs(3_600),
            plan_window: 16,
            cost_per_work: 1e-5,
            latency_window: 64,
        }
    }
}

impl ServeConfig {
    /// The unthrottled baseline: same arrivals, but no admission caps
    /// and no brownout — the configuration the resilience sweep compares
    /// against.
    pub fn unthrottled(mut self) -> Self {
        self.admission = AdmissionConfig::unthrottled();
        self.pressure = PressureCurve::disabled();
        self
    }
}

/// Decision-latency histogram buckets (seconds).
const LATENCY_BUCKETS_SECS: [f64; 9] = [0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 20.0, 60.0];
/// Queue-wait histogram buckets (seconds).
const WAIT_BUCKETS_SECS: [f64; 8] = [1.0, 10.0, 60.0, 300.0, 900.0, 3600.0, 14400.0, 86400.0];

/// Final report of one serve run.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeReport {
    /// Scheduler name.
    pub scheme: String,
    /// Simulated instant the loop finished draining.
    pub end: SimTime,
    /// Admission conservation counters at the end of the run.
    pub counters: AdmissionCounters,
    /// Jobs that finished service.
    pub completed: u64,
    /// Scheduling decisions taken.
    pub decisions: u64,
    /// Decisions per simulated second.
    pub decisions_per_sec: f64,
    /// Decision-latency distribution (simulated seconds).
    pub decision_latency: Histogram,
    /// Plans per rung name (ladder descent shows up here).
    pub rung_hits: BTreeMap<String, u64>,
    /// Peak pending-queue depth.
    pub queue_depth_max: usize,
    /// Pending-queue depth when the drain began (all shed).
    pub queue_depth_at_drain: usize,
    /// Deepest solver-budget level the controller reached.
    pub min_budget_level: f64,
    /// Budget-level transitions (both directions).
    pub budget_transitions: u32,
    /// Mean completion time of finished jobs (arrival → service end),
    /// seconds; zero when nothing completed.
    pub mean_jct_secs: f64,
    /// Every figure above (plus the queue-wait histogram) as registry
    /// series, for uniform JSON export.
    pub metrics: MetricsRegistry,
}

impl ServeReport {
    /// Decision-latency quantile in simulated seconds.
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        self.decision_latency.quantile(q)
    }

    /// Deterministic JSON rendering (scheme + headline figures + the
    /// full metrics registry). Not a golden-pinned format — serve mode
    /// is new — but byte-stable for a given run.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(2048);
        s.push_str("{\"scheme\":");
        push_json_str(&mut s, &self.scheme);
        let _ = write!(
            s,
            ",\"end_secs\":{},\"completed\":{},\"decisions\":{}",
            self.end.as_secs_f64(),
            self.completed,
            self.decisions,
        );
        s.push_str(",\"decision_latency_p50\":");
        push_f64(&mut s, self.latency_quantile(0.5).unwrap_or(f64::NAN));
        s.push_str(",\"decision_latency_p99\":");
        push_f64(&mut s, self.latency_quantile(0.99).unwrap_or(f64::NAN));
        s.push_str(",\"decisions_per_sec\":");
        push_f64(&mut s, self.decisions_per_sec);
        s.push_str(",\"metrics\":");
        s.push_str(&self.metrics.to_json());
        s.push('}');
        s
    }
}

/// A dispatched job in service on one GPU.
#[derive(Clone, Debug)]
struct Running {
    done_at: SimTime,
    arrival: SimTime,
}

/// The continuous-service loop.
pub struct ServeLoop {
    cluster: Cluster,
    cfg: ServeConfig,
}

impl ServeLoop {
    /// A loop serving `cfg.arrivals` on `cluster`.
    pub fn new(cluster: Cluster, cfg: ServeConfig) -> Self {
        assert!(cfg.plan_window > 0, "empty plan window");
        assert!(!cfg.decision_interval.is_zero(), "zero decision interval");
        assert!(
            cfg.cost_per_work >= 0.0 && cfg.cost_per_work.is_finite(),
            "cost_per_work must be non-negative and finite"
        );
        assert!(cfg.latency_window > 0, "empty latency window");
        ServeLoop { cluster, cfg }
    }

    /// Sequential service time of `job` on GPU `gpu` (all tasks back to
    /// back on that one GPU — the serve loop schedules at job
    /// granularity; intra-job parallelism is the batch engine's domain).
    fn service_time(&self, job: &hare_workload::JobSpec, gpu: usize) -> SimDuration {
        let kind = self.cluster.gpus()[gpu].kind;
        SimDuration::from_millis_f64(job.task_ms(kind) * job.task_count() as f64)
    }

    /// Run to drain with no external stop signal.
    pub fn run(&self, scheduler: &mut dyn QueueScheduler) -> ServeReport {
        static NEVER: AtomicBool = AtomicBool::new(false);
        self.run_with_stop(scheduler, &NEVER, None)
    }

    /// Run until the arrival horizon drains or `stop` becomes true
    /// (checked every epoch; SIGTERM handlers set it). `pace` sleeps that
    /// long per decision epoch in *wall-clock* time — live-service pacing
    /// so an external signal can land mid-run; `None` runs flat out.
    /// Pacing ends once draining: the drain itself is pure simulation.
    pub fn run_with_stop(
        &self,
        scheduler: &mut dyn QueueScheduler,
        stop: &AtomicBool,
        pace: Option<std::time::Duration>,
    ) -> ServeReport {
        let horizon = self.cfg.horizon;
        let mut admission = AdmissionController::new(self.cfg.admission.clone());
        let mut budget = BudgetController::new(self.cfg.pressure, self.cfg.ascend_dwell);
        let mut stream: ArrivalStream = self.cfg.arrivals.stream();
        // The stream is infinite; the horizon truncates it lazily.
        let mut next_arrival: Option<OpenArrival> =
            stream.next().filter(|a| a.spec.arrival < horizon);

        let n_gpus = self.cluster.gpu_count();
        let mut running: Vec<Option<Running>> = vec![None; n_gpus];
        let mut now = SimTime::ZERO;
        let mut epoch = now + self.cfg.decision_interval;

        let mut latency_hist = Histogram::new(&LATENCY_BUCKETS_SECS);
        let mut wait_hist = Histogram::new(&WAIT_BUCKETS_SECS);
        let mut recent: Vec<f64> = Vec::with_capacity(self.cfg.latency_window);
        let mut recent_at = 0usize;
        let mut decisions = 0u64;
        let mut rung_hits: BTreeMap<String, u64> = BTreeMap::new();
        let mut completed = 0u64;
        let mut jct_sum = 0.0f64;
        let mut depth_max = 0usize;
        let mut depth_at_drain = 0usize;
        let mut work_total = 0u64;

        loop {
            // Next event: arrival (until drain), completion, or epoch.
            let next_completion = running
                .iter()
                .flatten()
                .map(|r| r.done_at)
                .min()
                .unwrap_or(SimTime::MAX);
            let arrival_t = match (&next_arrival, admission.is_draining()) {
                (Some(a), false) => a.spec.arrival,
                _ => SimTime::MAX,
            };

            if arrival_t <= next_completion && arrival_t <= epoch {
                now = arrival_t;
                let a = next_arrival.take().expect("arrival_t was finite");
                admission.offer(now, TenantId(a.tenant), a.spec);
                depth_max = depth_max.max(admission.depth());
                next_arrival = stream.next().filter(|n| n.spec.arrival < horizon);
                continue;
            }
            if next_completion <= epoch {
                now = next_completion;
                for slot in running.iter_mut() {
                    if slot.as_ref().is_some_and(|r| r.done_at == now) {
                        let r = slot.take().expect("checked is_some");
                        completed += 1;
                        jct_sum += now.saturating_since(r.arrival).as_secs_f64();
                    }
                }
                continue;
            }

            // Decision epoch.
            now = epoch;
            epoch += self.cfg.decision_interval;
            if let Some(d) = pace {
                if !admission.is_draining() {
                    std::thread::sleep(d);
                }
            }
            let drain_due = stop.load(Ordering::SeqCst) || next_arrival.is_none();
            if drain_due && !admission.is_draining() {
                // Graceful drain: stop admitting, shed the pending queue,
                // let in-flight jobs finish.
                depth_at_drain = admission.depth();
                admission.begin_drain();
                let _ = admission.shed_all();
                next_arrival = None;
            }
            if admission.is_draining() {
                if running.iter().all(Option::is_none) {
                    break;
                }
                continue;
            }

            admission.poll(now);
            depth_max = depth_max.max(admission.depth());

            // Backpressure: depth + recent decision-latency p99 → budget.
            let p99 = if recent.is_empty() {
                0.0
            } else {
                let mut v = recent.clone();
                v.sort_by(f64::total_cmp);
                v[((v.len() as f64 * 0.99).ceil() as usize).clamp(1, v.len()) - 1]
            };
            let frac = budget.update(admission.depth(), p99);

            let mut idle: Vec<usize> = (0..n_gpus).filter(|&g| running[g].is_none()).collect();
            if idle.is_empty() || admission.depth() == 0 {
                continue;
            }

            // Plan over the fair-queue head window.
            let window = admission.peek_window(self.cfg.plan_window);
            let window_seqs: Vec<u64> = window.iter().map(|p| p.seq).collect();
            let outcome = scheduler.plan(&window, &self.cluster, frac);
            let latency_secs = outcome.work as f64 * self.cfg.cost_per_work;
            let latency = SimDuration::from_secs_f64(latency_secs);
            decisions += 1;
            work_total += outcome.work;
            latency_hist.record(latency_secs);
            if recent.len() < self.cfg.latency_window {
                recent.push(latency_secs);
            } else {
                recent[recent_at] = latency_secs;
                recent_at = (recent_at + 1) % self.cfg.latency_window;
            }
            *rung_hits.entry(outcome.rung.to_string()).or_insert(0) += 1;

            // Dispatch in plan order: each job onto the idle GPU that
            // serves it fastest; decision latency is charged up front.
            let mut seen = vec![false; window_seqs.len()];
            for &wi in &outcome.order {
                if idle.is_empty() {
                    break;
                }
                assert!(
                    wi < window_seqs.len() && !std::mem::replace(&mut seen[wi], true),
                    "scheduler returned an invalid dispatch order"
                );
                let job = admission
                    .take(window_seqs[wi])
                    .expect("window entries stay live until taken");
                let (pos, &gpu) = idle
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &g)| (self.service_time(&job.spec, g), g))
                    .expect("idle is non-empty: checked above");
                idle.remove(pos);
                wait_hist.record(now.saturating_since(job.admitted_at).as_secs_f64());
                let done_at = now + latency + self.service_time(&job.spec, gpu);
                running[gpu] = Some(Running {
                    done_at,
                    arrival: job.spec.arrival,
                });
            }
        }

        let counters = admission.counters();
        let elapsed = now.as_secs_f64().max(1e-9);
        let decisions_per_sec = decisions as f64 / elapsed;
        let mean_jct_secs = if completed > 0 {
            jct_sum / completed as f64
        } else {
            0.0
        };

        let mut metrics = MetricsRegistry::new();
        metrics.add("serve.offered", counters.offered);
        metrics.add("serve.admitted", counters.admitted);
        metrics.add(
            "serve.rejected_rate_limited",
            counters.rejected_rate_limited,
        );
        metrics.add("serve.rejected_queue_full", counters.rejected_queue_full);
        metrics.add("serve.rejected_draining", counters.rejected_draining);
        metrics.add("serve.deferrals", counters.deferrals);
        metrics.add("serve.shed", counters.shed);
        metrics.add("serve.completed", completed);
        metrics.add("serve.decisions", decisions);
        metrics.add("serve.decision_work", work_total);
        metrics.add("serve.queue_depth_max", depth_max as u64);
        metrics.set_gauge("serve.decisions_per_sec", decisions_per_sec);
        metrics.set_gauge(
            "serve.decision_latency_p50",
            latency_hist.quantile(0.5).unwrap_or(0.0),
        );
        metrics.set_gauge(
            "serve.decision_latency_p99",
            latency_hist.quantile(0.99).unwrap_or(0.0),
        );
        metrics.set_gauge("serve.min_budget_level", budget.min_level());
        metrics.set_gauge("serve.budget_transitions", budget.transitions() as f64);
        metrics.set_gauge("serve.mean_jct_secs", mean_jct_secs);
        for (rung, hits) in &rung_hits {
            metrics.add(&format!("serve.rung.{rung}"), *hits);
        }
        metrics.insert_histogram("serve.decision_latency_secs", latency_hist.clone());
        metrics.insert_histogram("serve.queue_wait_secs", wait_hist);

        ServeReport {
            scheme: scheduler.name().to_string(),
            end: now,
            counters,
            completed,
            decisions,
            decisions_per_sec,
            decision_latency: latency_hist,
            rung_hits,
            queue_depth_max: depth_max,
            queue_depth_at_drain: depth_at_drain,
            min_budget_level: budget.min_level(),
            budget_transitions: budget.transitions(),
            mean_jct_secs,
            metrics,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::admission::TokenBucketConfig;
    use hare_workload::estimate_capacity_jobs_per_sec;

    /// Trivial FIFO scheduler: dispatch in fair-queue order, flat work.
    struct Fifo;

    impl QueueScheduler for Fifo {
        fn name(&self) -> &'static str {
            "FIFO"
        }
        fn plan(&mut self, window: &[&PendingJob], _cluster: &Cluster, _frac: f64) -> PlanOutcome {
            PlanOutcome {
                order: (0..window.len()).collect(),
                work: window.len() as u64 * 10,
                rung: "fifo",
            }
        }
    }

    fn config(load: f64, horizon_secs: u64) -> ServeConfig {
        let cluster = Cluster::testbed15();
        let mut arrivals = OpenArrivalConfig {
            load_factor: load,
            seed: 11,
            ..OpenArrivalConfig::default()
        };
        let counts: Vec<_> = cluster.count_by_kind().into_iter().collect();
        arrivals.capacity_jobs_per_sec = estimate_capacity_jobs_per_sec(&counts, &arrivals, 128);
        ServeConfig {
            arrivals,
            horizon: SimTime::from_secs(horizon_secs),
            admission: AdmissionConfig {
                queue_capacity: 64,
                bucket: TokenBucketConfig {
                    rate_per_sec: 1.0,
                    burst: 32.0,
                },
                ..AdmissionConfig::default()
            },
            ..ServeConfig::default()
        }
    }

    #[test]
    fn serves_to_drain_and_conserves() {
        let cfg = config(0.7, 2_000);
        let report = ServeLoop::new(Cluster::testbed15(), cfg).run(&mut Fifo);
        assert!(report.completed > 0, "jobs completed");
        assert!(report.counters.conserved(), "{:?}", report.counters);
        assert_eq!(
            report.counters.admitted,
            report.completed + report.counters.shed,
            "admitted jobs either completed or were shed at drain"
        );
        assert!(report.decisions > 0);
        assert!(report.latency_quantile(0.99).is_some());
        assert!(report.mean_jct_secs > 0.0);
    }

    #[test]
    fn deterministic_byte_identical_reports() {
        let cfg = config(1.3, 1_200);
        let a = ServeLoop::new(Cluster::testbed15(), cfg.clone()).run(&mut Fifo);
        let b = ServeLoop::new(Cluster::testbed15(), cfg).run(&mut Fifo);
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        assert!(serde_json::from_str(&a.to_json()).is_ok());
    }

    #[test]
    fn overload_keeps_the_queue_bounded() {
        let cfg = config(2.5, 3_000);
        let cap = cfg.admission.queue_capacity;
        let report = ServeLoop::new(Cluster::testbed15(), cfg).run(&mut Fifo);
        assert!(report.queue_depth_max <= cap, "bounded queue");
        assert!(
            report.counters.rejected() > 0 || report.counters.shed > 0,
            "overload must shed or reject: {:?}",
            report.counters
        );
        assert!(report.counters.conserved());
    }

    #[test]
    fn stop_flag_triggers_a_clean_drain() {
        // A pre-set stop flag: the loop must drain at the first epoch and
        // still produce a valid, conserved report.
        let cfg = config(1.0, 100_000);
        let stop = AtomicBool::new(true);
        let report =
            ServeLoop::new(Cluster::testbed15(), cfg).run_with_stop(&mut Fifo, &stop, None);
        assert!(report.end < SimTime::from_secs(100));
        assert!(report.counters.conserved());
    }

    #[test]
    fn unthrottled_config_never_rejects() {
        let cfg = config(1.5, 1_000).unthrottled();
        let report = ServeLoop::new(Cluster::testbed15(), cfg).run(&mut Fifo);
        assert_eq!(report.counters.rejected(), 0);
        assert_eq!(report.counters.deferrals, 0);
        assert_eq!(report.min_budget_level, 1.0, "no brownout when disabled");
        assert!(report.counters.conserved());
    }
}
