//! Trace-driven discrete-event simulator for DML job scheduling on
//! heterogeneous GPUs — the reproduction of the paper's Python simulator
//! (Section 7.1), with the fast-task-switching runtime (Section 4) and the
//! PS-based synchronization model wired in.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod admission;
pub mod build;
pub mod control;
mod dense;
pub mod engine;
pub mod event;
pub mod faults;
pub mod metrics;
pub mod policy;
pub mod ps;
pub mod recovery;
pub mod registry;
pub mod serve;
pub mod shard;
pub mod storage;
pub mod trace;

pub use admission::{
    AdmissionConfig, AdmissionController, AdmissionCounters, AdmissionOutcome, BudgetController,
    PendingJob, PressureCurve, RejectReason, TenantId, TokenBucketConfig, BUDGET_LEVELS,
};
pub use build::SimWorkload;
pub use control::{
    broadcast_schedule, broadcast_schedule_with_failures, ControlLog, ExecutorMsg, SchedulerMsg,
};
pub use engine::{planned_report, Simulation};
pub use event::{Event, EventQueue};
pub use faults::{
    FaultPlan, FaultProfile, GpuFault, NetworkFault, SchedulerCrash, ServeFaultPlan,
    SilentWorkerFault, SimError, SolverDegradation, SpeculationConfig, StorageFault,
    StorageFaultKind, StragglerWindow,
};
pub use metrics::{
    completion_stats, completion_stats_parts, jct_cdf, sim_registry, CompletionStats, FaultMetrics,
    GpuReport, SimReport, UtilSpan,
};
pub use policy::{OfflineReplay, Policy, SimView};
pub use ps::{ParameterServer, SyncOutcome};
pub use recovery::{crc32, LeaseConfig, RecoveryError, RecoveryStats, WalFile, WalOptions};
pub use registry::{Histogram, MetricsRegistry};
pub use serve::{PlanOutcome, QueueScheduler, ServeConfig, ServeLoop, ServeReport};
pub use shard::{CellSummary, GatewayConfig, ShardReport, ShardedTrace};
pub use storage::CheckpointStore;
pub use trace::{ChromeTraceSink, NoopSink, SimInstant, TaskPhase, TraceSink};
