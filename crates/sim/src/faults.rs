//! Fault injection and recovery: plans, seeded generators, and the
//! piecewise slowdown-window arithmetic shared by the engine and the
//! checkpoint store.
//!
//! A [`FaultPlan`] is a *static, declarative* description of everything
//! that goes wrong during a run: GPU outages (transient or permanent),
//! straggler slowdown windows, per-machine NIC degradation, and
//! checkpoint-store outages or latency spikes. Because the plan is fixed
//! up front, every fault path stays bit-for-bit deterministic in
//! (workload, policy, seed, plan) — the property all experiments inherit.
//!
//! Plans come from two places: scripted events (the fault-sweep
//! experiment) or a [`FaultProfile`] — a seeded generator drawing
//! exponential inter-event gaps from MTBF/MTTR means, the classic
//! reliability model.

use hare_cluster::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error surfaced by [`crate::Simulation::run`]: a malformed fault plan, a
/// policy violating the dispatch contract, or a wedged simulation. All
/// variants used to be `panic!`s; returning them lets callers degrade
/// gracefully on bad inputs.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The fault plan references non-existent hardware or has inconsistent
    /// windows (overlapping outages of one GPU, factors out of range, …).
    InvalidFaultPlan(String),
    /// The policy dispatched a task that is not ready or a GPU that is not
    /// idle/alive.
    PolicyViolation(String),
    /// No events remain but jobs are incomplete — the policy stopped
    /// dispatching, or every GPU died permanently.
    Deadlock {
        /// Simulation time at which the queue drained.
        at: SimTime,
        /// Jobs completed so far.
        jobs_done: usize,
        /// Total jobs in the workload.
        jobs: usize,
        /// Ready (undispatched) tasks at the deadlock.
        ready: usize,
        /// Idle live GPUs at the deadlock.
        idle: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidFaultPlan(why) => write!(f, "invalid fault plan: {why}"),
            SimError::PolicyViolation(why) => write!(f, "policy violation: {why}"),
            SimError::Deadlock {
                at,
                jobs_done,
                jobs,
                ready,
                idle,
            } => write!(
                f,
                "simulation deadlock at {at}: {jobs_done}/{jobs} jobs done, {ready} ready \
                 tasks, {idle} idle GPUs — the policy stopped dispatching"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// One GPU outage: the GPU leaves service at `at`; with `recover_after`
/// set it rejoins that much later (transient fault), otherwise it is gone
/// for good.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GpuFault {
    /// GPU index.
    pub gpu: usize,
    /// Failure instant.
    pub at: SimTime,
    /// Downtime before the GPU rejoins; `None` = permanent.
    pub recover_after: Option<SimDuration>,
}

/// A straggler window: while it is open, every training step on `gpu`
/// takes `slowdown`× its nominal wall-clock time (thermal throttling, a
/// noisy neighbour, ECC retirement storms). Applies to in-flight *and*
/// future batches via piecewise integration.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StragglerWindow {
    /// Affected GPU.
    pub gpu: usize,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Multiplicative wall-clock factor, ≥ 1.
    pub slowdown: f64,
}

/// NIC bandwidth degradation: while open, the named machine's NIC (or,
/// with `machine == None`, the backbone every flow crosses) delivers only
/// `factor` of its bandwidth. A near-zero factor models a partition.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkFault {
    /// Affected machine index, or `None` for the shared backbone (hits the
    /// PS side of every sync).
    pub machine: Option<usize>,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Remaining bandwidth fraction, in (0, 1].
    pub factor: f64,
}

/// What a checkpoint-store fault does to in-window fetches.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum StorageFaultKind {
    /// The store serves nothing: fetches stall until the window closes.
    Outage,
    /// A latency spike: fetch progress is slowed by this factor (≥ 1).
    Slowdown(f64),
}

/// A checkpoint-store outage or latency spike (the HDFS of Fig. 9 having
/// a bad day). First-touch fetches overlapping the window are stretched
/// by piecewise integration.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StorageFault {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Outage or slowdown.
    pub kind: StorageFaultKind,
}

/// A solver-degradation window: while it is open, the scheduler's replan
/// budget is multiplied by `factor` (a control-plane brownout — the solver
/// host is overloaded, so each replan gets only a fraction of its normal
/// pivot/node budget and the anytime ladder degrades to lower rungs).
/// Only budget-aware policies react; others ignore it.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SolverDegradation {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Remaining budget fraction, in (0, 1].
    pub factor: f64,
}

/// Speculative re-execution config (the relaxed-sync escape hatch): when a
/// round is waiting on exactly one gradient and the GPU computing it is
/// currently straggling by at least `threshold`, the engine clones the
/// task onto the fastest idle GPU; the first copy to finish feeds the PS
/// and the loser's gradient is dropped by the quorum.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpeculationConfig {
    /// Minimum live slowdown factor that triggers a speculative copy.
    pub threshold: f64,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        SpeculationConfig { threshold: 1.5 }
    }
}

/// Everything injected into one run. Empty by default; see the field docs
/// for each fault class. Validated against the cluster before the run
/// starts — [`crate::Simulation::run`] returns
/// [`SimError::InvalidFaultPlan`] rather than aborting on bad plans.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// GPU outages (transient and permanent).
    pub gpu_faults: Vec<GpuFault>,
    /// Straggler slowdown windows.
    pub stragglers: Vec<StragglerWindow>,
    /// NIC / backbone degradation windows.
    pub network_faults: Vec<NetworkFault>,
    /// Checkpoint-store outage / latency windows.
    pub storage_faults: Vec<StorageFault>,
    /// Solver-budget brownout windows (control-plane degradation).
    pub solver_degradations: Vec<SolverDegradation>,
    /// Enable speculative re-execution of straggling last gradients.
    pub speculation: Option<SpeculationConfig>,
}

impl FaultPlan {
    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.gpu_faults.is_empty()
            && self.stragglers.is_empty()
            && self.network_faults.is_empty()
            && self.storage_faults.is_empty()
            && self.solver_degradations.is_empty()
    }

    /// Check the plan against a cluster of `n_gpus` GPUs on `n_machines`
    /// machines: indices in range, factors in their domains, and no GPU
    /// with overlapping down-windows (a GPU cannot fail while already
    /// down; a permanent failure must be its last).
    pub fn validate(&self, n_gpus: usize, n_machines: usize) -> Result<(), SimError> {
        let bad = |why: String| Err(SimError::InvalidFaultPlan(why));
        for f in &self.gpu_faults {
            if f.gpu >= n_gpus {
                return bad(format!(
                    "GPU fault on GPU {} of a {n_gpus}-GPU cluster",
                    f.gpu
                ));
            }
            if f.recover_after.is_some_and(|d| d.is_zero()) {
                return bad(format!(
                    "GPU {} fault at {} recovers instantly",
                    f.gpu, f.at
                ));
            }
        }
        // Down-windows of the same GPU must be disjoint.
        let mut downs: Vec<(usize, SimTime, Option<SimTime>)> = self
            .gpu_faults
            .iter()
            .map(|f| (f.gpu, f.at, f.recover_after.map(|d| f.at + d)))
            .collect();
        downs.sort_by_key(|&(gpu, at, _)| (gpu, at));
        for w in downs.windows(2) {
            let ((g0, _, until0), (g1, at1, _)) = (w[0], w[1]);
            if g0 != g1 {
                continue;
            }
            match until0 {
                None => {
                    return bad(format!("GPU {g0} fails at {at1} after failing permanently"));
                }
                Some(up) if at1 < up => {
                    return bad(format!("GPU {g0} fails at {at1} while already down"));
                }
                Some(_) => {}
            }
        }
        for s in &self.stragglers {
            if s.gpu >= n_gpus {
                return bad(format!(
                    "straggler on GPU {} of a {n_gpus}-GPU cluster",
                    s.gpu
                ));
            }
            if s.from >= s.until {
                return bad(format!(
                    "straggler window [{}, {}) is empty",
                    s.from, s.until
                ));
            }
            if !s.slowdown.is_finite() || s.slowdown < 1.0 {
                return bad(format!("straggler slowdown {} is not ≥ 1", s.slowdown));
            }
        }
        for n in &self.network_faults {
            if let Some(m) = n.machine {
                if m >= n_machines {
                    return bad(format!(
                        "network fault on machine {m} of a {n_machines}-machine cluster"
                    ));
                }
            }
            if n.from >= n.until {
                return bad(format!("network window [{}, {}) is empty", n.from, n.until));
            }
            if !n.factor.is_finite() || n.factor <= 0.0 || n.factor > 1.0 {
                return bad(format!("network factor {} is not in (0, 1]", n.factor));
            }
        }
        for s in &self.storage_faults {
            if s.from >= s.until {
                return bad(format!("storage window [{}, {}) is empty", s.from, s.until));
            }
            if let StorageFaultKind::Slowdown(f) = s.kind {
                if !f.is_finite() || f < 1.0 {
                    return bad(format!("storage slowdown {f} is not ≥ 1"));
                }
            }
        }
        for s in &self.solver_degradations {
            if s.from >= s.until {
                return bad(format!(
                    "solver-degradation window [{}, {}) is empty",
                    s.from, s.until
                ));
            }
            if !s.factor.is_finite() || s.factor <= 0.0 || s.factor > 1.0 {
                return bad(format!(
                    "solver-degradation factor {} is not in (0, 1]",
                    s.factor
                ));
            }
        }
        if let Some(spec) = &self.speculation {
            if !spec.threshold.is_finite() || spec.threshold <= 1.0 {
                return bad(format!(
                    "speculation threshold {} is not > 1",
                    spec.threshold
                ));
            }
        }
        Ok(())
    }

    /// Straggler windows of one GPU as `(from, until, slowdown)` triples
    /// for [`finish_over_windows`], sorted by start.
    pub fn straggler_windows(&self, gpu: usize) -> Vec<(SimTime, SimTime, f64)> {
        let mut ws: Vec<_> = self
            .stragglers
            .iter()
            .filter(|s| s.gpu == gpu)
            .map(|s| (s.from, s.until, s.slowdown))
            .collect();
        ws.sort_by_key(|&(from, until, _)| (from, until));
        ws
    }

    /// Solver-budget fraction available at `t`: the *worst* (smallest)
    /// factor among open degradation windows, 1.0 when none are open.
    pub fn solver_frac_at(&self, t: SimTime) -> f64 {
        self.solver_degradations
            .iter()
            .filter(|s| s.from <= t && t < s.until)
            .map(|s| s.factor)
            .fold(1.0, f64::min)
    }
}

/// A silently-dead worker window for the serve loop's lease machinery:
/// the GPU stops heartbeating at `from` and — unlike a [`GpuFault`] —
/// the scheduler receives **no failure event**; only missed heartbeats
/// reveal the death, after the lease timeout. Work in flight on the GPU
/// when the window opens is lost (requeued once the lease expires). With
/// `until` set the worker comes back and resumes heartbeating; `None` is
/// a permanent silent death.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SilentWorkerFault {
    /// Affected GPU.
    pub gpu: usize,
    /// Instant heartbeats stop (inclusive).
    pub from: SimTime,
    /// Instant heartbeats resume (exclusive); `None` = never.
    pub until: Option<SimTime>,
}

/// An injected scheduler crash: the serve loop aborts at the start of
/// the given decision epoch (1-based), returning
/// [`crate::RecoveryError::InjectedCrash`] and leaving its WAL behind
/// for `--recover`. Applies to fresh runs only — recovery strips it.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SchedulerCrash {
    /// Decision epoch (1-based) at whose start the loop dies.
    pub at_epoch: u64,
}

/// Everything injected into one serve run — the continuous-service
/// analogue of [`FaultPlan`]. Empty by default.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ServeFaultPlan {
    /// Silently-dead worker windows (lease-detected).
    pub silent_workers: Vec<SilentWorkerFault>,
    /// Scheduler crash injection.
    pub crash: Option<SchedulerCrash>,
}

impl ServeFaultPlan {
    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.silent_workers.is_empty() && self.crash.is_none()
    }

    /// Check the plan against a cluster of `n_gpus` GPUs: indices in
    /// range, windows non-empty and per-GPU disjoint (permanent death
    /// last), silent deaths only when the lease machinery that can
    /// detect them is on, and a crash epoch ≥ 1.
    pub fn validate(&self, n_gpus: usize, leases_enabled: bool) -> Result<(), SimError> {
        let bad = |why: String| Err(SimError::InvalidFaultPlan(why));
        if !self.silent_workers.is_empty() && !leases_enabled {
            return bad(
                "silent worker faults without lease-based liveness would never be detected"
                    .to_string(),
            );
        }
        for f in &self.silent_workers {
            if f.gpu >= n_gpus {
                return bad(format!(
                    "silent worker fault on GPU {} of a {n_gpus}-GPU cluster",
                    f.gpu
                ));
            }
            if f.until.is_some_and(|u| u <= f.from) {
                return bad(format!(
                    "silent-death window [{}, {}) of GPU {} is empty",
                    f.from,
                    f.until.unwrap_or(SimTime::MAX),
                    f.gpu
                ));
            }
        }
        let mut windows: Vec<(usize, SimTime, Option<SimTime>)> = self
            .silent_workers
            .iter()
            .map(|f| (f.gpu, f.from, f.until))
            .collect();
        windows.sort_by_key(|&(gpu, from, _)| (gpu, from));
        for w in windows.windows(2) {
            let ((g0, _, until0), (g1, from1, _)) = (w[0], w[1]);
            if g0 != g1 {
                continue;
            }
            match until0 {
                None => {
                    return bad(format!(
                        "GPU {g0} dies silently at {from1} after dying permanently"
                    ));
                }
                Some(up) if from1 < up => {
                    return bad(format!(
                        "GPU {g0} dies silently at {from1} while already dead"
                    ));
                }
                Some(_) => {}
            }
        }
        if let Some(c) = &self.crash {
            if c.at_epoch == 0 {
                return bad("scheduler crash at epoch 0: epochs are 1-based".to_string());
            }
        }
        Ok(())
    }
}

/// Maximum slowdown factor active at `t` among `(from, until, slowdown)`
/// windows (1.0 when none are open).
pub fn slowdown_at(windows: &[(SimTime, SimTime, f64)], t: SimTime) -> f64 {
    windows
        .iter()
        .filter(|&&(from, until, _)| from <= t && t < until)
        .map(|&(_, _, s)| s)
        .fold(1.0, f64::max)
}

/// Wall-clock completion of `work` (nominal compute time) started at
/// `start` under slowdown windows: progress accrues at rate `1/s` inside
/// a window of factor `s` (overlaps take the worst factor; `f64::INFINITY`
/// stalls progress entirely, used for storage outages). With no windows
/// this is exactly `start + work`.
pub fn finish_over_windows(
    windows: &[(SimTime, SimTime, f64)],
    start: SimTime,
    work: SimDuration,
) -> SimTime {
    let mut t = start;
    let mut remaining = work.as_micros() as f64;
    if remaining <= 0.0 {
        return start;
    }
    loop {
        let s = slowdown_at(windows, t);
        let boundary = windows
            .iter()
            .flat_map(|&(from, until, _)| [from, until])
            .filter(|&b| b > t)
            .min();
        match boundary {
            Some(b) => {
                let span = b.saturating_since(t).as_micros() as f64;
                let progressed = span / s; // s = ∞ ⇒ no progress
                if progressed < remaining {
                    remaining -= progressed;
                    t = b;
                } else {
                    return t + SimDuration::from_micros((remaining * s).round() as u64);
                }
            }
            None => {
                debug_assert!(s.is_finite(), "open-ended window with infinite slowdown");
                return t + SimDuration::from_micros((remaining * s).round() as u64);
            }
        }
    }
}

/// Precompiled piecewise-constant slowdown profile: the segment
/// decomposition of a window set, built once so the hot path can evaluate
/// [`slowdown_at`] with one binary search and [`finish_over_windows`]
/// without rescanning every window per boundary.
///
/// `edges` is the sorted, deduplicated union of all window endpoints;
/// `factors[i]` is the active factor on the half-open segment
/// `[edges[i-1], edges[i])` (with `factors[0]` covering everything before
/// the first edge and `factors[edges.len()]` everything after the last —
/// both 1.0 by construction).
///
/// Bit-for-bit equivalence with the free functions is deliberate and
/// guarded by tests: the replay in [`SlowdownProfile::finish_over`] visits
/// exactly the same boundaries in the same order and performs the same
/// f64 operations (`remaining -= span / s`, final
/// `(remaining * s).round()`) as [`finish_over_windows`] — it never merges
/// equal-factor segments, because `a/s + b/s` and `(a+b)/s` can differ in
/// the last ulp.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SlowdownProfile {
    edges: Vec<SimTime>,
    factors: Vec<f64>,
}

impl SlowdownProfile {
    /// Compile a window set (as produced by
    /// [`FaultPlan::straggler_windows`]) into its segment decomposition.
    pub fn new(windows: &[(SimTime, SimTime, f64)]) -> Self {
        let mut edges: Vec<SimTime> = windows.iter().flat_map(|&(f, u, _)| [f, u]).collect();
        edges.sort_unstable();
        edges.dedup();
        let mut factors = Vec::with_capacity(edges.len() + 1);
        factors.push(1.0);
        for &seg_start in &edges {
            let f = windows
                .iter()
                .filter(|&&(from, until, _)| from <= seg_start && seg_start < until)
                .map(|&(_, _, s)| s)
                .fold(1.0, f64::max);
            factors.push(f);
        }
        SlowdownProfile { edges, factors }
    }

    /// True when no windows were compiled in (every lookup returns 1.0).
    pub fn is_trivial(&self) -> bool {
        self.edges.is_empty()
    }

    /// Maximum slowdown factor active at `t` (1.0 outside all windows);
    /// equals [`slowdown_at`] on the source windows.
    pub fn slowdown_at(&self, t: SimTime) -> f64 {
        self.factors[self.edges.partition_point(|&e| e <= t)]
    }

    /// Wall-clock completion of `work` started at `start`; equals
    /// [`finish_over_windows`] on the source windows, bit for bit.
    pub fn finish_over(&self, start: SimTime, work: SimDuration) -> SimTime {
        let mut remaining = work.as_micros() as f64;
        if remaining <= 0.0 {
            return start;
        }
        let mut t = start;
        let mut idx = self.edges.partition_point(|&e| e <= t);
        loop {
            let s = self.factors[idx];
            if let Some(&b) = self.edges.get(idx) {
                let span = b.saturating_since(t).as_micros() as f64;
                let progressed = span / s; // s = ∞ ⇒ no progress
                if progressed < remaining {
                    remaining -= progressed;
                    t = b;
                    idx += 1;
                } else {
                    return t + SimDuration::from_micros((remaining * s).round() as u64);
                }
            } else {
                debug_assert!(s.is_finite(), "open-ended window with infinite slowdown");
                return t + SimDuration::from_micros((remaining * s).round() as u64);
            }
        }
    }
}

/// Seeded fault-plan generator over MTBF/MTTR means: per-GPU failures and
/// straggler windows, per-machine NIC degradation, and global storage
/// windows, all with exponential inter-event gaps. A `None` MTBF disables
/// that fault class. The draw order is fixed, so a (profile, seed,
/// cluster) triple always yields the same plan.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct FaultProfile {
    /// Mean time between failures per GPU (`None` = no GPU faults).
    pub gpu_mtbf: Option<SimDuration>,
    /// Mean downtime of a transient GPU failure.
    pub gpu_mttr: SimDuration,
    /// Probability that a GPU failure is permanent.
    pub permanent_fraction: f64,
    /// Mean time between straggler windows per GPU (`None` = none).
    pub straggler_mtbf: Option<SimDuration>,
    /// Mean straggler-window length.
    pub straggler_duration: SimDuration,
    /// Straggler slowdowns are drawn uniformly from `[1.2, max_slowdown)`.
    pub max_slowdown: f64,
    /// Mean time between NIC degradations per machine (`None` = none).
    pub net_mtbf: Option<SimDuration>,
    /// Mean NIC-degradation window length.
    pub net_duration: SimDuration,
    /// NIC factors are drawn uniformly from `[min_net_factor, 1.0)`.
    pub min_net_factor: f64,
    /// Mean time between checkpoint-store faults (`None` = none).
    pub storage_mtbf: Option<SimDuration>,
    /// Mean storage-fault window length.
    pub storage_duration: SimDuration,
}

impl FaultProfile {
    /// A quiet cluster: rare transient GPU faults only.
    pub fn calm() -> Self {
        FaultProfile {
            gpu_mtbf: Some(SimDuration::from_secs(4000)),
            gpu_mttr: SimDuration::from_secs(120),
            permanent_fraction: 0.0,
            straggler_mtbf: None,
            straggler_duration: SimDuration::from_secs(180),
            max_slowdown: 2.5,
            net_mtbf: None,
            net_duration: SimDuration::from_secs(240),
            min_net_factor: 0.3,
            storage_mtbf: None,
            storage_duration: SimDuration::from_secs(60),
        }
    }

    /// A stressed cluster: every fault class active at moderate rates.
    pub fn harsh() -> Self {
        FaultProfile {
            gpu_mtbf: Some(SimDuration::from_secs(1200)),
            gpu_mttr: SimDuration::from_secs(180),
            permanent_fraction: 0.1,
            straggler_mtbf: Some(SimDuration::from_secs(900)),
            straggler_duration: SimDuration::from_secs(240),
            max_slowdown: 3.0,
            net_mtbf: Some(SimDuration::from_secs(1500)),
            net_duration: SimDuration::from_secs(300),
            min_net_factor: 0.25,
            storage_mtbf: Some(SimDuration::from_secs(2000)),
            storage_duration: SimDuration::from_secs(90),
        }
    }

    /// Scale every fault rate by `intensity` (MTBFs divided by it): 0
    /// disables all faults, 1 is this profile, 2 doubles the fault rates.
    pub fn scaled(mut self, intensity: f64) -> Self {
        assert!(intensity >= 0.0 && intensity.is_finite());
        let scale = |mtbf: Option<SimDuration>| {
            if intensity == 0.0 {
                None
            } else {
                mtbf.map(|d| d.mul_f64(1.0 / intensity))
            }
        };
        self.gpu_mtbf = scale(self.gpu_mtbf);
        self.straggler_mtbf = scale(self.straggler_mtbf);
        self.net_mtbf = scale(self.net_mtbf);
        self.storage_mtbf = scale(self.storage_mtbf);
        self
    }

    /// Draw a plan covering `[0, horizon)` for a cluster of `n_gpus` GPUs
    /// on `n_machines` machines. At least one GPU is always spared a
    /// permanent failure, so generated plans cannot wedge a run for lack
    /// of hardware. The result always passes
    /// [`FaultPlan::validate`] for the same cluster shape.
    pub fn generate(
        &self,
        seed: u64,
        horizon: SimDuration,
        n_gpus: usize,
        n_machines: usize,
    ) -> FaultPlan {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xfa17_5eed_c0de_0001);
        let end = SimTime::ZERO + horizon;
        let mut plan = FaultPlan::default();
        let mut permanents = 0usize;
        for gpu in 0..n_gpus {
            if let Some(mtbf) = self.gpu_mtbf {
                let mut t = SimTime::ZERO + exp_sample(&mut rng, mtbf);
                while t < end {
                    let permanent = rng.gen_range(0.0..1.0) < self.permanent_fraction
                        && permanents + 1 < n_gpus;
                    if permanent {
                        permanents += 1;
                        plan.gpu_faults.push(GpuFault {
                            gpu,
                            at: t,
                            recover_after: None,
                        });
                        break;
                    }
                    let down = exp_sample(&mut rng, self.gpu_mttr).max(SimDuration::from_secs(5));
                    plan.gpu_faults.push(GpuFault {
                        gpu,
                        at: t,
                        recover_after: Some(down),
                    });
                    t = t + down + exp_sample(&mut rng, mtbf);
                }
            }
            if let Some(mtbf) = self.straggler_mtbf {
                let mut t = SimTime::ZERO + exp_sample(&mut rng, mtbf);
                while t < end {
                    let dur = exp_sample(&mut rng, self.straggler_duration)
                        .max(SimDuration::from_secs(10));
                    plan.stragglers.push(StragglerWindow {
                        gpu,
                        from: t,
                        until: t + dur,
                        slowdown: rng.gen_range(1.2..self.max_slowdown.max(1.21)),
                    });
                    t = t + dur + exp_sample(&mut rng, mtbf);
                }
            }
        }
        if let Some(mtbf) = self.net_mtbf {
            for machine in 0..n_machines {
                let mut t = SimTime::ZERO + exp_sample(&mut rng, mtbf);
                while t < end {
                    let dur =
                        exp_sample(&mut rng, self.net_duration).max(SimDuration::from_secs(10));
                    plan.network_faults.push(NetworkFault {
                        machine: Some(machine),
                        from: t,
                        until: t + dur,
                        factor: rng.gen_range(self.min_net_factor.clamp(0.01, 0.99)..1.0),
                    });
                    t = t + dur + exp_sample(&mut rng, mtbf);
                }
            }
        }
        if let Some(mtbf) = self.storage_mtbf {
            let mut t = SimTime::ZERO + exp_sample(&mut rng, mtbf);
            while t < end {
                let dur =
                    exp_sample(&mut rng, self.storage_duration).max(SimDuration::from_secs(5));
                let kind = if rng.gen_range(0.0..1.0) < 0.5 {
                    StorageFaultKind::Outage
                } else {
                    StorageFaultKind::Slowdown(rng.gen_range(2.0..8.0))
                };
                plan.storage_faults.push(StorageFault {
                    from: t,
                    until: t + dur,
                    kind,
                });
                t = t + dur + exp_sample(&mut rng, mtbf);
            }
        }
        plan
    }
}

/// One exponential draw with the given mean.
fn exp_sample(rng: &mut SmallRng, mean: SimDuration) -> SimDuration {
    let u: f64 = rng.gen_range(1.0e-12..1.0);
    SimDuration::from_micros((-u.ln() * mean.as_micros() as f64) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn d(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn empty_plan_validates_and_is_empty() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert!(plan.validate(4, 2).is_ok());
    }

    #[test]
    fn out_of_range_gpu_is_rejected() {
        let plan = FaultPlan {
            gpu_faults: vec![GpuFault {
                gpu: 9,
                at: t(1),
                recover_after: None,
            }],
            ..FaultPlan::default()
        };
        assert!(matches!(
            plan.validate(4, 2),
            Err(SimError::InvalidFaultPlan(_))
        ));
    }

    #[test]
    fn overlapping_downtime_is_rejected() {
        let plan = FaultPlan {
            gpu_faults: vec![
                GpuFault {
                    gpu: 0,
                    at: t(10),
                    recover_after: Some(d(100)),
                },
                GpuFault {
                    gpu: 0,
                    at: t(50),
                    recover_after: Some(d(10)),
                },
            ],
            ..FaultPlan::default()
        };
        assert!(plan.validate(4, 2).is_err());
        // Same instants on different GPUs are fine.
        let plan = FaultPlan {
            gpu_faults: vec![
                GpuFault {
                    gpu: 0,
                    at: t(10),
                    recover_after: Some(d(100)),
                },
                GpuFault {
                    gpu: 1,
                    at: t(50),
                    recover_after: Some(d(10)),
                },
            ],
            ..FaultPlan::default()
        };
        assert!(plan.validate(4, 2).is_ok());
    }

    #[test]
    fn failure_after_permanent_death_is_rejected() {
        let plan = FaultPlan {
            gpu_faults: vec![
                GpuFault {
                    gpu: 2,
                    at: t(10),
                    recover_after: None,
                },
                GpuFault {
                    gpu: 2,
                    at: t(500),
                    recover_after: Some(d(10)),
                },
            ],
            ..FaultPlan::default()
        };
        assert!(plan.validate(4, 2).is_err());
    }

    #[test]
    fn bad_factors_are_rejected() {
        let straggler = FaultPlan {
            stragglers: vec![StragglerWindow {
                gpu: 0,
                from: t(0),
                until: t(10),
                slowdown: 0.5,
            }],
            ..FaultPlan::default()
        };
        assert!(straggler.validate(4, 2).is_err());
        let net = FaultPlan {
            network_faults: vec![NetworkFault {
                machine: Some(0),
                from: t(0),
                until: t(10),
                factor: 0.0,
            }],
            ..FaultPlan::default()
        };
        assert!(net.validate(4, 2).is_err());
        let storage = FaultPlan {
            storage_faults: vec![StorageFault {
                from: t(5),
                until: t(5),
                kind: StorageFaultKind::Outage,
            }],
            ..FaultPlan::default()
        };
        assert!(storage.validate(4, 2).is_err());
    }

    #[test]
    fn solver_degradation_validates_and_composes() {
        let plan = FaultPlan {
            solver_degradations: vec![
                SolverDegradation {
                    from: t(10),
                    until: t(100),
                    factor: 0.5,
                },
                SolverDegradation {
                    from: t(50),
                    until: t(200),
                    factor: 0.1,
                },
            ],
            ..FaultPlan::default()
        };
        assert!(!plan.is_empty());
        assert!(plan.validate(4, 2).is_ok());
        assert_eq!(plan.solver_frac_at(t(0)), 1.0);
        assert_eq!(plan.solver_frac_at(t(20)), 0.5);
        // Overlap takes the worst factor; windows are half-open.
        assert_eq!(plan.solver_frac_at(t(60)), 0.1);
        assert_eq!(plan.solver_frac_at(t(150)), 0.1);
        assert_eq!(plan.solver_frac_at(t(200)), 1.0);

        let empty_window = FaultPlan {
            solver_degradations: vec![SolverDegradation {
                from: t(10),
                until: t(10),
                factor: 0.5,
            }],
            ..FaultPlan::default()
        };
        assert!(empty_window.validate(4, 2).is_err());
        let bad_factor = FaultPlan {
            solver_degradations: vec![SolverDegradation {
                from: t(0),
                until: t(10),
                factor: 1.5,
            }],
            ..FaultPlan::default()
        };
        assert!(bad_factor.validate(4, 2).is_err());
    }

    #[test]
    fn finish_without_windows_is_exact() {
        assert_eq!(finish_over_windows(&[], t(10), d(25)), t(35));
        assert_eq!(finish_over_windows(&[], t(10), SimDuration::ZERO), t(10));
    }

    #[test]
    fn finish_stretches_inside_window() {
        // Entirely inside a 2× window: doubled.
        let w = [(t(0), t(1000), 2.0)];
        assert_eq!(finish_over_windows(&w, t(10), d(20)), t(50));
        // Straddling the window end: the 20 wall-seconds inside the window
        // complete 10s of work, the remaining 10s run clean after it.
        let w = [(t(0), t(30), 2.0)];
        assert_eq!(finish_over_windows(&w, t(10), d(20)), t(40));
        // Window opens mid-run: 10s of work clean, the last 10s at 2×.
        let w = [(t(20), t(1000), 2.0)];
        assert_eq!(finish_over_windows(&w, t(10), d(20)), t(40));
    }

    #[test]
    fn overlapping_windows_take_worst_factor() {
        let w = [(t(0), t(100), 2.0), (t(0), t(100), 4.0)];
        assert_eq!(finish_over_windows(&w, t(0), d(10)), t(40));
        assert_eq!(slowdown_at(&w, t(50)), 4.0);
        assert_eq!(slowdown_at(&w, t(100)), 1.0);
    }

    #[test]
    fn outage_window_stalls_until_close() {
        // Work of 10s started at 0; store dark on [5, 65): 5s done, then a
        // 60s stall, then the last 5s.
        let w = [(t(5), t(65), f64::INFINITY)];
        assert_eq!(finish_over_windows(&w, t(0), d(10)), t(70));
        // Started inside the outage: nothing until 65.
        assert_eq!(finish_over_windows(&w, t(20), d(10)), t(75));
    }

    #[test]
    fn profile_matches_free_functions_exactly() {
        // Overlapping, nested, adjacent, and outage windows — the profile
        // must agree with the per-call scans bit for bit, including at the
        // half-open boundaries.
        let windows = [
            (t(10), t(100), 2.0),
            (t(50), t(200), 4.0),
            (t(100), t(150), 1.5),
            (t(400), t(460), f64::INFINITY),
        ];
        let profile = SlowdownProfile::new(&windows);
        assert!(!profile.is_trivial());
        for micros in (0..500_000_000u64).step_by(1_234_567) {
            let at = SimTime::ZERO + SimDuration::from_micros(micros);
            assert_eq!(
                profile.slowdown_at(at),
                slowdown_at(&windows, at),
                "at {at}"
            );
            for work_micros in [0u64, 1, 999_999, 17_000_000, 250_000_000] {
                let work = SimDuration::from_micros(work_micros);
                assert_eq!(
                    profile.finish_over(at, work),
                    finish_over_windows(&windows, at, work),
                    "start {at}, work {work}"
                );
            }
        }
        // Boundary instants exactly on edges.
        for edge_secs in [10u64, 50, 100, 150, 200, 400, 460] {
            let at = t(edge_secs);
            assert_eq!(profile.slowdown_at(at), slowdown_at(&windows, at));
            assert_eq!(
                profile.finish_over(at, d(75)),
                finish_over_windows(&windows, at, d(75))
            );
        }
    }

    #[test]
    fn trivial_profile_is_identity() {
        let profile = SlowdownProfile::new(&[]);
        assert!(profile.is_trivial());
        assert_eq!(profile.slowdown_at(t(5)), 1.0);
        assert_eq!(profile.finish_over(t(10), d(25)), t(35));
        assert_eq!(profile.finish_over(t(10), SimDuration::ZERO), t(10));
    }

    #[test]
    fn randomized_profile_equivalence() {
        // Seeded random window sets: the compiled profile must reproduce
        // the free functions everywhere we probe.
        let mut rng = SmallRng::seed_from_u64(0x510d_0d04);
        for _ in 0..50 {
            let n = rng.gen_range(0..6);
            let windows: Vec<(SimTime, SimTime, f64)> = (0..n)
                .map(|_| {
                    let from = rng.gen_range(0..2_000u64);
                    let len = rng.gen_range(1..800u64);
                    let s = if rng.gen_range(0.0..1.0) < 0.15 {
                        f64::INFINITY
                    } else {
                        rng.gen_range(1.0..6.0)
                    };
                    (t(from), t(from + len), s)
                })
                .collect();
            let profile = SlowdownProfile::new(&windows);
            for _ in 0..40 {
                let at = t(rng.gen_range(0..3_000u64));
                assert_eq!(profile.slowdown_at(at), slowdown_at(&windows, at));
                let work = d(rng.gen_range(0..1_500u64));
                assert_eq!(
                    profile.finish_over(at, work),
                    finish_over_windows(&windows, at, work)
                );
            }
        }
    }

    #[test]
    fn generated_plans_validate_and_are_deterministic() {
        let profile = FaultProfile::harsh();
        let a = profile.generate(7, d(3000), 15, 4);
        let b = profile.generate(7, d(3000), 15, 4);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "harsh profile over 3000s must inject faults");
        assert!(a.validate(15, 4).is_ok());
        let c = profile.generate(8, d(3000), 15, 4);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn scaled_zero_disables_everything() {
        let none = FaultProfile::harsh().scaled(0.0);
        let plan = none.generate(3, d(5000), 15, 4);
        assert!(plan.is_empty());
        // Higher intensity means more GPU faults on average.
        let calm = FaultProfile::harsh().generate(3, d(5000), 15, 4);
        let wild = FaultProfile::harsh()
            .scaled(4.0)
            .generate(3, d(5000), 15, 4);
        assert!(wild.gpu_faults.len() >= calm.gpu_faults.len());
    }
}
