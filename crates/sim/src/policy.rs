//! The scheduling-policy interface of the simulator, and offline replay.
//!
//! Online baselines (FIFO, SRTF, …) implement [`Policy`] directly in
//! `hare-baselines`; offline schedulers (Hare, Sched_Homo, Sched_Allox)
//! compute a [`hare_core::Schedule`] first and replay its per-GPU task
//! sequences through [`OfflineReplay`] — order is preserved, timing is
//! whatever the simulated cluster actually delivers (noise, switching,
//! network contention).

use crate::build::SimWorkload;
use hare_cluster::SimTime;
use hare_core::Schedule;
use std::collections::VecDeque;

/// What a policy sees at each dispatch opportunity.
pub struct SimView<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// The workload being executed.
    pub workload: &'a SimWorkload,
    /// Tasks whose round is released (arrival reached, previous round
    /// synced) and that have not started yet, ascending task index.
    pub ready: &'a [usize],
    /// GPUs with no task assigned, ascending GPU index.
    pub idle_gpus: &'a [usize],
    /// Per job: next round to *finish* (== number of fully synced rounds);
    /// equals `rounds` when the job is done.
    pub synced_rounds: &'a [u32],
    /// Per job: whether it has arrived.
    pub arrived: &'a [bool],
    /// Fraction of the scheduler's replan budget currently available, in
    /// (0, 1]; 1.0 when the control plane is healthy. Shrunk by open
    /// [`crate::faults::SolverDegradation`] windows. Budget-aware
    /// policies scale their per-replan [`hare_solver::SolveBudget`] by
    /// it; others are free to ignore it.
    pub solver_budget_frac: f64,
}

/// A scheduling policy driven by the simulator.
pub trait Policy {
    /// Display name (used in reports and tables).
    fn name(&self) -> String;

    /// Offered a dispatch opportunity: append (ready task, idle GPU) pairs
    /// to start now onto `out` (cleared by the engine before the call —
    /// the buffer is reused across calls so steady-state dispatching
    /// allocates nothing). Each task must appear in `view.ready`, each GPU
    /// in `view.idle_gpus`, and no GPU may be used twice. Leaving `out`
    /// empty means "wait for the next event".
    ///
    /// Opportunities arrive whenever the view may have changed: after
    /// every simulation event that can alter the ready/idle sets or job
    /// progress, and again after each non-empty dispatch until the policy
    /// passes or a set drains. Events that provably change nothing a
    /// policy may read (a switch completing on a still-busy GPU) are *not*
    /// offered, so a policy must not rely on being polled at such moments.
    fn dispatch(&mut self, view: &SimView<'_>, out: &mut Vec<(usize, usize)>);

    /// Notification that `gpu` failed (failure injection): the engine will
    /// not offer it as idle until it recovers (if ever), and `requeued`
    /// lists the task (if any) that was running there and has been
    /// returned to the ready set. Policies holding per-GPU state (planned
    /// queues, dedicated gangs) must migrate it and re-own the requeued
    /// tasks. The default does nothing — correct for policies that
    /// re-derive their decisions from the view on every dispatch.
    fn on_gpu_failure(&mut self, gpu: usize, requeued: &[usize]) {
        let _ = (gpu, requeued);
    }

    /// Notification that a transiently-failed `gpu` rejoined (fault
    /// injection): it is idle again, with cold caches and no resident
    /// model. Policies holding per-GPU queues should rebalance work onto
    /// it; the default does nothing — correct for policies that re-derive
    /// their decisions from the view.
    fn on_gpu_recovery(&mut self, gpu: usize) {
        let _ = gpu;
    }
}

/// Replay a precomputed schedule's per-GPU sequences in order.
pub struct OfflineReplay {
    name: String,
    /// Remaining task queue per GPU (planned order).
    queues: Vec<VecDeque<usize>>,
    /// Planned start per task — queue positions always keep ascending
    /// planned starts, which keeps the replay's wait graph acyclic even
    /// after failure migration.
    planned: Vec<SimTime>,
    /// Generic speedup per GPU (failure migration prefers faster, emptier
    /// survivors).
    speedup: Vec<f64>,
    /// GPUs reported failed.
    failed: Vec<usize>,
}

impl OfflineReplay {
    /// Build from a schedule (its per-GPU sequences, sorted by planned
    /// start, become the executors' task sequences — exactly the artifact
    /// Hare's scheduler ships to executors in Section 3).
    pub fn new(name: impl Into<String>, workload: &SimWorkload, schedule: &Schedule) -> Self {
        let queues = schedule
            .gpu_sequences(&workload.problem)
            .into_iter()
            .map(VecDeque::from)
            .collect();
        OfflineReplay {
            name: name.into(),
            queues,
            planned: schedule.start.clone(),
            speedup: workload
                .cluster
                .gpus()
                .iter()
                .map(|g| g.kind.generic_speedup())
                .collect(),
            failed: Vec::new(),
        }
    }

    /// Tasks not yet dispatched.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Distribute `orphans` (sorted by planned start) over the live GPUs:
    /// each lands on the survivor with the least speed-normalized backlog
    /// (queue length over generic throughput), *inserted by planned start
    /// time*, not appended — every wait edge then still points at an
    /// earlier-planned task, so the replay's wait graph stays acyclic and
    /// deadlock-free.
    fn assign_by_planned_start(&mut self, orphans: Vec<usize>) {
        for task in orphans {
            let target = (0..self.queues.len())
                .filter(|g| !self.failed.contains(g))
                .min_by(|&a, &b| {
                    let ka = (self.queues[a].len() as f64 + 1.0) / self.speedup[a];
                    let kb = (self.queues[b].len() as f64 + 1.0) / self.speedup[b];
                    ka.total_cmp(&kb).then(a.cmp(&b))
                })
                .expect("at least one surviving GPU");
            let queue = &mut self.queues[target];
            let pos = queue
                .iter()
                .position(|&t| self.planned[t] > self.planned[task])
                .unwrap_or(queue.len());
            queue.insert(pos, task);
        }
    }
}

impl Policy for OfflineReplay {
    fn name(&self) -> String {
        self.name.clone()
    }

    /// Migrate the dead GPU's remaining queue to the surviving queues
    /// (greedy rebalancing — the executor restart path of a real
    /// deployment).
    fn on_gpu_failure(&mut self, gpu: usize, requeued: &[usize]) {
        let mut orphans: Vec<usize> = self.queues[gpu].drain(..).collect();
        // The task that was mid-flight on the dead GPU re-enters the plan
        // ahead of everything it preceded.
        orphans.extend_from_slice(requeued);
        orphans.sort_by_key(|&t| (self.planned[t], t));
        self.failed.push(gpu);
        self.assign_by_planned_start(orphans);
    }

    /// A transiently-failed GPU rejoined: take every undispatched task
    /// back and redistribute over the (now larger) live set, so the
    /// recovered GPU earns a share of the backlog instead of idling.
    fn on_gpu_recovery(&mut self, gpu: usize) {
        self.failed.retain(|&g| g != gpu);
        let mut orphans: Vec<usize> = self.queues.iter_mut().flat_map(|q| q.drain(..)).collect();
        orphans.sort_by_key(|&t| (self.planned[t], t));
        self.assign_by_planned_start(orphans);
    }

    fn dispatch(&mut self, view: &SimView<'_>, out: &mut Vec<(usize, usize)>) {
        for &gpu in view.idle_gpus {
            if let Some(&head) = self.queues[gpu].front() {
                // `view.ready` is ascending by contract.
                if view.ready.binary_search(&head).is_ok() {
                    self.queues[gpu].pop_front();
                    out.push((head, gpu));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hare_cluster::Cluster;
    use hare_workload::{testbed_trace, ProfileDb};

    fn tiny_workload() -> SimWorkload {
        let db = ProfileDb::with_noise(1, 0.0);
        let mut trace = testbed_trace(3);
        trace.truncate(4);
        SimWorkload::build(Cluster::testbed15(), trace, &db)
    }

    fn dispatch(p: &mut impl Policy, view: &SimView<'_>) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        p.dispatch(view, &mut out);
        out
    }

    #[test]
    fn replay_respects_order_and_readiness() {
        let w = tiny_workload();
        let out = hare_core::hare_schedule(&w.problem);
        let mut replay = OfflineReplay::new("hare", &w, &out.schedule);
        let total = replay.pending();
        assert_eq!(total, w.problem.n_tasks());

        // Ready = nothing -> no dispatch even with all GPUs idle.
        let idle: Vec<usize> = (0..15).collect();
        let view = SimView {
            now: SimTime::ZERO,
            workload: &w,
            ready: &[],
            idle_gpus: &idle,
            synced_rounds: &vec![0; w.problem.jobs.len()],
            arrived: &vec![true; w.problem.jobs.len()],
            solver_budget_frac: 1.0,
        };
        assert!(dispatch(&mut replay, &view).is_empty());

        // Make the heads of two queues ready; they dispatch to their own GPUs.
        let seqs = out.schedule.gpu_sequences(&w.problem);
        let mut heads: Vec<usize> = seqs.iter().filter_map(|q| q.first().copied()).collect();
        heads.sort_unstable();
        let view = SimView {
            now: SimTime::ZERO,
            workload: &w,
            ready: &heads,
            idle_gpus: &idle,
            synced_rounds: &vec![0; w.problem.jobs.len()],
            arrived: &vec![true; w.problem.jobs.len()],
            solver_budget_frac: 1.0,
        };
        let assignments = dispatch(&mut replay, &view);
        assert!(!assignments.is_empty());
        for (task, gpu) in &assignments {
            assert_eq!(seqs[*gpu].first(), Some(task));
        }
        assert_eq!(replay.pending(), total - assignments.len());
    }

    #[test]
    fn recovery_rebalances_pending_queues() {
        let w = tiny_workload();
        let out = hare_core::hare_schedule(&w.problem);
        let mut replay = OfflineReplay::new("hare", &w, &out.schedule);
        let total = replay.pending();
        replay.on_gpu_failure(0, &[]);
        assert_eq!(replay.pending(), total, "failure migration loses no task");
        assert!(replay.queues[0].is_empty());
        replay.on_gpu_recovery(0);
        assert_eq!(replay.pending(), total, "recovery rebalance loses no task");
        // Queues stay sorted by planned start (the acyclicity invariant).
        for q in &replay.queues {
            let tasks: Vec<usize> = q.iter().copied().collect();
            for pair in tasks.windows(2) {
                assert!(replay.planned[pair[0]] <= replay.planned[pair[1]]);
            }
        }
        // The recovered GPU is live again: fail every other GPU and the
        // whole backlog must land on it.
        let survivors: Vec<usize> = (1..replay.queues.len()).collect();
        for g in survivors {
            replay.on_gpu_failure(g, &[]);
        }
        assert_eq!(replay.queues[0].len(), total);
    }

    #[test]
    fn replay_keeps_gpu_idle_for_unready_head() {
        let w = tiny_workload();
        let out = hare_core::hare_schedule(&w.problem);
        let mut replay = OfflineReplay::new("hare", &w, &out.schedule);
        let seqs = out.schedule.gpu_sequences(&w.problem);
        let busy_gpu = (0..15).find(|&g| seqs[g].len() >= 2).expect("a 2-task GPU");
        // Second task of that GPU is ready, head is not: nothing dispatches
        // on that GPU (order preservation).
        let second = seqs[busy_gpu][1];
        let view = SimView {
            now: SimTime::ZERO,
            workload: &w,
            ready: &[second],
            idle_gpus: &[busy_gpu],
            synced_rounds: &vec![0; w.problem.jobs.len()],
            arrived: &vec![true; w.problem.jobs.len()],
            solver_budget_frac: 1.0,
        };
        assert!(dispatch(&mut replay, &view).is_empty());
    }
}
