//! Admission control and overload governance for the continuous-service
//! mode (DESIGN.md §12).
//!
//! Three cooperating pieces keep the scheduler stable when offered load
//! exceeds capacity:
//!
//! * [`AdmissionController`] — the front door. Every offered job passes a
//!   per-tenant **token bucket** (rate + burst quota) and, if it clears,
//!   enters a **bounded pending queue** ordered by start-time fair
//!   queueing (weighted fair-share across tenants). Outcomes are typed
//!   ([`AdmissionOutcome`]): admitted, deferred until the bucket refills,
//!   or rejected with a reason. The controller keeps **exact conservation
//!   accounting**: at any instant
//!   `offered == admitted + rejected + deferred_pending`
//!   ([`AdmissionCounters::conserved`]), a property the chaos proptest
//!   pins down.
//! * [`PressureCurve`] — maps the two overload signals (pending-queue
//!   depth, recent decision-latency p99) to a target solver-budget
//!   fraction in `[floor, 1]`.
//! * [`BudgetController`] — quantizes that target onto a fixed level
//!   ladder with **hysteresis**: descent (brownout) is immediate, ascent
//!   (recovery) requires the pressure to stay low for `ascend_dwell`
//!   consecutive updates and climbs one level at a time, so a signal
//!   flapping around a boundary cannot make the solver budget oscillate.
//!
//! Everything here is pure state-machine code driven by simulation time —
//! deterministic, no clocks, no threads.

use crate::recovery::{f64_from_hex, f64_hex};
use hare_cluster::{SimDuration, SimTime};
use hare_workload::{JobId, JobSpec, ModelKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Dense tenant identifier.
#[derive(
    Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct TenantId(pub u32);

/// Why an offered job was turned away.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The tenant's token bucket was empty and the deferral pool full
    /// (or a deferred retry still found no tokens).
    RateLimited,
    /// The bounded pending queue was full.
    QueueFull,
    /// The controller is draining: no new work is admitted.
    Draining,
}

/// Typed outcome of one [`AdmissionController::offer`].
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum AdmissionOutcome {
    /// In the pending queue.
    Admitted,
    /// Parked until the tenant's bucket refills; retried (once) by
    /// [`AdmissionController::poll`] at the given instant.
    Deferred {
        /// When the deferral ripens.
        retry_at: SimTime,
    },
    /// Turned away.
    Rejected(RejectReason),
}

/// Per-tenant token-bucket quota.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TokenBucketConfig {
    /// Sustained admissions per second per tenant.
    pub rate_per_sec: f64,
    /// Burst allowance (bucket capacity, in jobs).
    pub burst: f64,
}

impl Default for TokenBucketConfig {
    fn default() -> Self {
        TokenBucketConfig {
            rate_per_sec: 0.05,
            burst: 8.0,
        }
    }
}

/// Admission-control configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Pending-queue capacity (jobs waiting for a scheduling decision).
    pub queue_capacity: usize,
    /// Deferral-pool capacity (jobs parked on an empty bucket).
    pub defer_capacity: usize,
    /// Per-tenant quota.
    pub bucket: TokenBucketConfig,
    /// Fair-share weight per tenant id; tenants beyond the vector get
    /// weight 1. Higher weight drains faster.
    pub tenant_weights: Vec<f64>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_capacity: 256,
            defer_capacity: 64,
            bucket: TokenBucketConfig::default(),
            tenant_weights: Vec::new(),
        }
    }
}

impl AdmissionConfig {
    /// An effectively unthrottled controller (huge queue, huge quota) —
    /// the baseline the sweep compares resilience against.
    pub fn unthrottled() -> Self {
        AdmissionConfig {
            queue_capacity: usize::MAX / 2,
            defer_capacity: 0,
            bucket: TokenBucketConfig {
                rate_per_sec: 1e9,
                burst: 1e9,
            },
            tenant_weights: Vec::new(),
        }
    }

    fn weight(&self, t: TenantId) -> f64 {
        self.tenant_weights
            .get(t.0 as usize)
            .copied()
            .unwrap_or(1.0)
    }
}

/// Conservation accounting. The invariant — checked after every state
/// transition by the chaos proptest — is
/// `offered == admitted + rejected() + deferred_pending`.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionCounters {
    /// Jobs ever offered (external arrivals; a deferred retry is not a
    /// second offer).
    pub offered: u64,
    /// Jobs admitted to the pending queue (directly or via a ripened
    /// deferral).
    pub admitted: u64,
    /// Rejections because the tenant bucket stayed empty.
    pub rejected_rate_limited: u64,
    /// Rejections because the pending queue was full.
    pub rejected_queue_full: u64,
    /// Rejections because the controller was draining.
    pub rejected_draining: u64,
    /// Jobs currently parked in the deferral pool.
    pub deferred_pending: u64,
    /// Total deferrals ever issued (observability; not part of the
    /// conservation identity).
    pub deferrals: u64,
    /// Admitted jobs shed from the pending queue under genuine overload
    /// (a *post-admission* event, outside the identity).
    pub shed: u64,
    /// Admitted jobs dropped by the graceful drain — the residual queue
    /// when the run winds down. Kept separate from `shed` so that
    /// counter measures real overload loss, not the drain formality.
    pub drained: u64,
    /// Requeue re-admissions after a lease expiry (a job re-entering the
    /// queue is not a new offer; also outside the identity).
    pub readmitted: u64,
}

impl AdmissionCounters {
    /// Total rejections across all reasons.
    pub fn rejected(&self) -> u64 {
        self.rejected_rate_limited + self.rejected_queue_full + self.rejected_draining
    }

    /// The conservation identity.
    pub fn conserved(&self) -> bool {
        self.offered == self.admitted + self.rejected() + self.deferred_pending
    }
}

/// One pending-queue entry.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PendingJob {
    /// Submitting tenant.
    pub tenant: TenantId,
    /// The job.
    pub spec: JobSpec,
    /// When it entered the queue.
    pub admitted_at: SimTime,
    /// Start-time fair-queueing tag (virtual start).
    start_tag: f64,
    /// Dispatch handle, unique per admission.
    pub seq: u64,
}

#[derive(Clone, Debug, Default)]
struct TenantState {
    tokens: f64,
    last_refill: SimTime,
    /// Virtual finish tag of this tenant's most recent admission.
    last_finish: f64,
    initialized: bool,
}

#[derive(Clone, Debug)]
struct Deferred {
    tenant: TenantId,
    spec: JobSpec,
    retry_at: SimTime,
}

/// The admission controller: token buckets in front of a bounded,
/// fair-queued pending queue.
#[derive(Clone, Debug, Default)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
    tenants: BTreeMap<TenantId, TenantState>,
    /// WFQ order: keyed by (virtual finish tag bits, seq). Tags are
    /// finite and non-negative, so the bit order equals numeric order.
    queue: BTreeMap<(u64, u64), PendingJob>,
    /// seq → queue key, for O(log n) removal by handle.
    by_seq: BTreeMap<u64, (u64, u64)>,
    deferred: Vec<Deferred>,
    /// Global virtual time: start tag of the last dispatched entry.
    vtime: f64,
    next_seq: u64,
    draining: bool,
    counters: AdmissionCounters,
}

impl AdmissionController {
    /// A controller with the given configuration.
    pub fn new(cfg: AdmissionConfig) -> Self {
        assert!(cfg.queue_capacity > 0, "queue capacity must be positive");
        assert!(cfg.bucket.rate_per_sec > 0.0 && cfg.bucket.burst >= 1.0);
        AdmissionController {
            cfg,
            ..AdmissionController::default()
        }
    }

    /// Current pending-queue depth.
    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    /// Conservation counters (a copy; cheap).
    pub fn counters(&self) -> AdmissionCounters {
        self.counters
    }

    /// True once [`Self::begin_drain`] was called.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Stop admitting: every later offer is `Rejected(Draining)`, and
    /// parked deferrals are rejected immediately (their retry can never
    /// be admitted).
    pub fn begin_drain(&mut self) {
        self.draining = true;
        let parked = self.deferred.len() as u64;
        self.deferred.clear();
        self.counters.deferred_pending -= parked;
        self.counters.rejected_draining += parked;
    }

    /// Shed the whole pending queue under overload pressure; returns the
    /// shed jobs, oldest virtual tag first. Counts into
    /// [`AdmissionCounters::shed`] — for the graceful end-of-run drop use
    /// [`Self::drain_all`], which counts separately.
    pub fn shed_all(&mut self) -> Vec<PendingJob> {
        let shed: Vec<PendingJob> = std::mem::take(&mut self.queue).into_values().collect();
        self.by_seq.clear();
        self.counters.shed += shed.len() as u64;
        shed
    }

    /// Drop the whole pending queue as part of a graceful drain; returns
    /// the dropped jobs, oldest virtual tag first. Counts into
    /// [`AdmissionCounters::drained`], not `shed`.
    pub fn drain_all(&mut self) -> Vec<PendingJob> {
        let dropped: Vec<PendingJob> = std::mem::take(&mut self.queue).into_values().collect();
        self.by_seq.clear();
        self.counters.drained += dropped.len() as u64;
        dropped
    }

    /// Count jobs dropped at drain that were no longer in the pending
    /// queue (e.g. the serve loop's requeue pool) into `drained`, so the
    /// end-of-run accounting identity stays exact.
    pub(crate) fn count_drained(&mut self, n: u64) {
        self.counters.drained += n;
    }

    /// Re-admit a job whose worker lost its lease. Bypasses the token
    /// bucket and the queue bound (the job already paid admission once
    /// and the scheduler owes it service); keeps the original
    /// `admitted_at` so queue-wait accounting spans the disruption, and
    /// assigns fresh fair-queue tags and a fresh `seq` handle, which is
    /// returned.
    pub fn readmit(&mut self, job: PendingJob) -> u64 {
        self.counters.readmitted += 1;
        self.enqueue(job.admitted_at, job.tenant, job.spec);
        self.next_seq - 1
    }

    fn refill(&mut self, tenant: TenantId, now: SimTime) {
        let bucket = self.cfg.bucket;
        let s = self.tenants.entry(tenant).or_default();
        if !s.initialized {
            s.tokens = bucket.burst;
            s.last_refill = now;
            s.initialized = true;
            return;
        }
        let dt = now.saturating_since(s.last_refill).as_secs_f64();
        s.tokens = (s.tokens + dt * bucket.rate_per_sec).min(bucket.burst);
        s.last_refill = now;
    }

    /// Offer one job. Must be called with non-decreasing `now`.
    pub fn offer(&mut self, now: SimTime, tenant: TenantId, spec: JobSpec) -> AdmissionOutcome {
        self.counters.offered += 1;
        if self.draining {
            self.counters.rejected_draining += 1;
            return AdmissionOutcome::Rejected(RejectReason::Draining);
        }
        self.refill(tenant, now);
        let s = self.tenants.get_mut(&tenant).expect("refilled above");
        if s.tokens >= 1.0 {
            if self.queue.len() >= self.cfg.queue_capacity {
                self.counters.rejected_queue_full += 1;
                return AdmissionOutcome::Rejected(RejectReason::QueueFull);
            }
            s.tokens -= 1.0;
            self.enqueue(now, tenant, spec);
            self.counters.admitted += 1;
            return AdmissionOutcome::Admitted;
        }
        // Bucket empty: defer until one token has accrued, if the pool
        // has room; otherwise this tenant is over quota — reject.
        if self.deferred.len() >= self.cfg.defer_capacity {
            self.counters.rejected_rate_limited += 1;
            return AdmissionOutcome::Rejected(RejectReason::RateLimited);
        }
        let wait = (1.0 - s.tokens) / self.cfg.bucket.rate_per_sec;
        let retry_at = now + SimDuration::from_secs_f64(wait);
        self.deferred.push(Deferred {
            tenant,
            spec,
            retry_at,
        });
        self.counters.deferred_pending += 1;
        self.counters.deferrals += 1;
        AdmissionOutcome::Deferred { retry_at }
    }

    /// Retry ripened deferrals (single retry each: admit if the bucket
    /// and queue allow, reject otherwise). Call at each time step.
    pub fn poll(&mut self, now: SimTime) {
        let mut i = 0;
        while i < self.deferred.len() {
            if self.deferred[i].retry_at > now {
                i += 1;
                continue;
            }
            let d = self.deferred.remove(i);
            self.counters.deferred_pending -= 1;
            self.refill(d.tenant, now);
            let s = self.tenants.get_mut(&d.tenant).expect("refilled above");
            if s.tokens >= 1.0 {
                if self.queue.len() >= self.cfg.queue_capacity {
                    self.counters.rejected_queue_full += 1;
                } else {
                    s.tokens -= 1.0;
                    self.enqueue(now, d.tenant, d.spec);
                    self.counters.admitted += 1;
                }
            } else {
                // Another arrival drained the bucket first: over quota.
                self.counters.rejected_rate_limited += 1;
            }
        }
    }

    /// Start-time fair queueing (SFQ): virtual start = max(global
    /// virtual time, tenant's last finish); finish = start + 1/weight.
    /// Dispatch order is by finish tag, so a tenant's share of dispatch
    /// slots is proportional to its weight regardless of offered rate.
    fn enqueue(&mut self, now: SimTime, tenant: TenantId, spec: JobSpec) {
        let weight = self.cfg.weight(tenant);
        let s = self.tenants.entry(tenant).or_default();
        let start = self.vtime.max(s.last_finish);
        let finish = start + 1.0 / weight;
        s.last_finish = finish;
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = (finish.to_bits(), seq);
        self.queue.insert(
            key,
            PendingJob {
                tenant,
                spec,
                admitted_at: now,
                start_tag: start,
                seq,
            },
        );
        self.by_seq.insert(seq, key);
    }

    /// The first `k` pending jobs in fair-queue order — the scheduler's
    /// planning window.
    pub fn peek_window(&self, k: usize) -> Vec<&PendingJob> {
        self.queue.values().take(k).collect()
    }

    /// Remove (dispatch) a pending job by its `seq` handle, advancing
    /// the fair-queueing virtual clock.
    pub fn take(&mut self, seq: u64) -> Option<PendingJob> {
        let key = self.by_seq.remove(&seq)?;
        let job = self.queue.remove(&key).expect("by_seq and queue agree");
        self.vtime = self.vtime.max(job.start_tag);
        Some(job)
    }

    /// Pop the fair-queue head, if any.
    pub fn pop(&mut self) -> Option<PendingJob> {
        let (&key, _) = self.queue.iter().next()?;
        self.by_seq.remove(&key.1);
        let job = self.queue.remove(&key).expect("key just observed");
        self.vtime = self.vtime.max(job.start_tag);
        Some(job)
    }

    /// Bit-exact single-line encoding of the complete controller state
    /// (counters, virtual time, token buckets, pending queue, deferral
    /// pool) for the crash-tolerance snapshots of DESIGN.md §13. Floats
    /// are hex bit patterns, times integer microseconds; the encoding
    /// uses only `:|,` separators so it can nest inside the serve
    /// snapshot's `;`/`=` framing.
    pub(crate) fn encode_state(&self) -> String {
        let c = &self.counters;
        let mut s = String::with_capacity(256);
        let _ = write!(
            s,
            "{}:{}:{}:{}:{}:{}:{}:{}:{}:{}",
            c.offered,
            c.admitted,
            c.rejected_rate_limited,
            c.rejected_queue_full,
            c.rejected_draining,
            c.deferred_pending,
            c.deferrals,
            c.shed,
            c.drained,
            c.readmitted,
        );
        let _ = write!(
            s,
            "|{}|{}|{}",
            f64_hex(self.vtime),
            self.next_seq,
            u8::from(self.draining)
        );
        s.push('|');
        for (i, (t, ts)) in self.tenants.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{}:{}:{}:{}:{}",
                t.0,
                f64_hex(ts.tokens),
                ts.last_refill.as_micros(),
                f64_hex(ts.last_finish),
                u8::from(ts.initialized)
            );
        }
        s.push('|');
        for (i, (key, job)) in self.queue.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{:016x}:{}", key.0, job.encode());
        }
        s.push('|');
        for (i, d) in self.deferred.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{}:{}:{}",
                d.tenant.0,
                encode_job(&d.spec),
                d.retry_at.as_micros()
            );
        }
        s
    }

    /// Inverse of [`Self::encode_state`]: rebuild a controller with the
    /// given configuration from an encoded snapshot section.
    pub(crate) fn decode_state(cfg: AdmissionConfig, s: &str) -> Result<Self, String> {
        let sections: Vec<&str> = s.split('|').collect();
        let [counters, vtime, next_seq, draining, tenants, queue, deferred] = sections[..] else {
            return Err(format!(
                "admission state has {} sections, want 7",
                sections.len()
            ));
        };
        let cn: Vec<u64> = counters
            .split(':')
            .map(|x| {
                x.parse::<u64>()
                    .map_err(|e| format!("bad counter {x:?}: {e}"))
            })
            .collect::<Result<_, _>>()?;
        let [offered, admitted, rr, rqf, rd, dp, df, shed, drained, readmitted] = cn[..] else {
            return Err(format!("admission counters: {} fields, want 10", cn.len()));
        };
        let mut a = AdmissionController::new(cfg);
        a.counters = AdmissionCounters {
            offered,
            admitted,
            rejected_rate_limited: rr,
            rejected_queue_full: rqf,
            rejected_draining: rd,
            deferred_pending: dp,
            deferrals: df,
            shed,
            drained,
            readmitted,
        };
        a.vtime = f64_from_hex(vtime).ok_or_else(|| format!("bad vtime {vtime:?}"))?;
        a.next_seq = next_seq
            .parse::<u64>()
            .map_err(|e| format!("bad next_seq {next_seq:?}: {e}"))?;
        a.draining = draining == "1";
        for item in tenants.split(',').filter(|i| !i.is_empty()) {
            let f: Vec<&str> = item.split(':').collect();
            let [id, tokens, refill, finish, init] = f[..] else {
                return Err(format!("tenant item {item:?}"));
            };
            let tid = TenantId(id.parse::<u32>().map_err(|e| format!("tenant id: {e}"))?);
            a.tenants.insert(
                tid,
                TenantState {
                    tokens: f64_from_hex(tokens).ok_or_else(|| format!("tokens {tokens:?}"))?,
                    last_refill: SimTime::from_micros(
                        refill.parse::<u64>().map_err(|e| format!("refill: {e}"))?,
                    ),
                    last_finish: f64_from_hex(finish)
                        .ok_or_else(|| format!("finish {finish:?}"))?,
                    initialized: init == "1",
                },
            );
        }
        for item in queue.split(',').filter(|i| !i.is_empty()) {
            let (key_hex, rest) = item
                .split_once(':')
                .ok_or_else(|| format!("queue item {item:?}"))?;
            let key_bits =
                u64::from_str_radix(key_hex, 16).map_err(|e| format!("queue key: {e}"))?;
            let job = PendingJob::decode(rest)?;
            let key = (key_bits, job.seq);
            a.by_seq.insert(job.seq, key);
            a.queue.insert(key, job);
        }
        for item in deferred.split(',').filter(|i| !i.is_empty()) {
            let f: Vec<&str> = item.split(':').collect();
            if f.len() != 10 {
                return Err(format!(
                    "deferred item {item:?}: {} fields, want 10",
                    f.len()
                ));
            }
            let tenant = TenantId(
                f[0].parse::<u32>()
                    .map_err(|e| format!("deferred tenant: {e}"))?,
            );
            let spec = decode_job(&f[1..9])?;
            let retry_at =
                SimTime::from_micros(f[9].parse::<u64>().map_err(|e| format!("retry_at: {e}"))?);
            a.deferred.push(Deferred {
                tenant,
                spec,
                retry_at,
            });
        }
        Ok(a)
    }
}

/// Encode a [`JobSpec`] as 8 `:`-separated fields (model as its index in
/// [`ModelKind::ALL`], weight as hex bits, arrival in microseconds).
pub(crate) fn encode_job(s: &JobSpec) -> String {
    let model_idx = ModelKind::ALL
        .iter()
        .position(|&m| m == s.model)
        .expect("every ModelKind is in ALL");
    format!(
        "{}:{}:{}:{}:{}:{}:{}:{}",
        s.id.0,
        model_idx,
        s.batch_size,
        s.rounds,
        s.sync_scale,
        s.batches_per_task,
        f64_hex(s.weight),
        s.arrival.as_micros()
    )
}

/// Inverse of [`encode_job`] over exactly 8 already-split fields.
pub(crate) fn decode_job(parts: &[&str]) -> Result<JobSpec, String> {
    let [id, model, batch, rounds, sync, bpt, weight, arrival] = *parts else {
        return Err(format!("job: {} fields, want 8", parts.len()));
    };
    let pu32 = |x: &str| x.parse::<u32>().map_err(|e| format!("bad u32 {x:?}: {e}"));
    let model_idx = model
        .parse::<usize>()
        .map_err(|e| format!("bad model index {model:?}: {e}"))?;
    let model = *ModelKind::ALL
        .get(model_idx)
        .ok_or_else(|| format!("model index {model_idx} out of range"))?;
    Ok(JobSpec {
        id: JobId(pu32(id)?),
        model,
        batch_size: pu32(batch)?,
        rounds: pu32(rounds)?,
        sync_scale: pu32(sync)?,
        batches_per_task: pu32(bpt)?,
        weight: f64_from_hex(weight).ok_or_else(|| format!("bad weight {weight:?}"))?,
        arrival: SimTime::from_micros(
            arrival
                .parse::<u64>()
                .map_err(|e| format!("bad arrival {arrival:?}: {e}"))?,
        ),
    })
}

impl PendingJob {
    /// 12 `:`-separated fields: tenant, the 8 job fields, admission
    /// instant, start tag bits, seq.
    pub(crate) fn encode(&self) -> String {
        format!(
            "{}:{}:{}:{}:{}",
            self.tenant.0,
            encode_job(&self.spec),
            self.admitted_at.as_micros(),
            f64_hex(self.start_tag),
            self.seq
        )
    }

    /// Inverse of [`Self::encode`].
    pub(crate) fn decode(s: &str) -> Result<PendingJob, String> {
        let f: Vec<&str> = s.split(':').collect();
        if f.len() != 12 {
            return Err(format!("pending job {s:?}: {} fields, want 12", f.len()));
        }
        Ok(PendingJob {
            tenant: TenantId(f[0].parse::<u32>().map_err(|e| format!("tenant: {e}"))?),
            spec: decode_job(&f[1..9])?,
            admitted_at: SimTime::from_micros(
                f[9].parse::<u64>()
                    .map_err(|e| format!("admitted_at: {e}"))?,
            ),
            start_tag: f64_from_hex(f[10]).ok_or_else(|| format!("start_tag {:?}", f[10]))?,
            seq: f[11].parse::<u64>().map_err(|e| format!("seq: {e}"))?,
        })
    }
}

/// Maps overload signals to a target solver-budget fraction.
///
/// Each signal contributes a linear ramp: 0 below its low watermark, 1
/// above its high watermark. The *stronger* signal wins, and the target
/// is `1 - pressure × (1 - floor)` — full budget when calm, `floor` under
/// saturation (the greedy rung still always runs: plans never stop).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PressureCurve {
    /// Queue depth at which brownout begins.
    pub depth_low: usize,
    /// Queue depth at which the budget hits the floor.
    pub depth_high: usize,
    /// Decision-latency p99 (seconds) at which brownout begins.
    pub latency_low: f64,
    /// Decision-latency p99 (seconds) at which the budget hits the floor.
    pub latency_high: f64,
    /// Minimum budget fraction (> 0 keeps the lower rungs running).
    pub floor: f64,
}

impl Default for PressureCurve {
    fn default() -> Self {
        PressureCurve {
            depth_low: 8,
            depth_high: 64,
            latency_low: 1.0,
            latency_high: 10.0,
            floor: 0.02,
        }
    }
}

impl PressureCurve {
    /// A curve that never leaves full budget (the unthrottled baseline).
    pub fn disabled() -> Self {
        PressureCurve {
            depth_low: usize::MAX / 2,
            depth_high: usize::MAX / 2,
            latency_low: f64::INFINITY,
            latency_high: f64::INFINITY,
            floor: 1.0,
        }
    }

    fn ramp(x: f64, lo: f64, hi: f64) -> f64 {
        if x <= lo {
            0.0
        } else if x >= hi {
            1.0
        } else {
            (x - lo) / (hi - lo)
        }
    }

    /// Target budget fraction for the given signals, in `[floor, 1]`.
    pub fn target(&self, depth: usize, latency_p99: f64) -> f64 {
        let d = Self::ramp(depth as f64, self.depth_low as f64, self.depth_high as f64);
        let l = Self::ramp(latency_p99, self.latency_low, self.latency_high);
        let pressure = d.max(l);
        1.0 - pressure * (1.0 - self.floor.clamp(0.0, 1.0))
    }
}

/// The discrete budget ladder the controller moves on, full budget first.
/// Matches the anytime ladder's useful operating points: full exact/
/// relaxation budget down to a sliver that only fits stale-plan repair
/// and the greedy rung.
pub const BUDGET_LEVELS: [f64; 5] = [1.0, 0.5, 0.25, 0.1, 0.02];

/// Hysteresis-bearing quantizer from [`PressureCurve::target`] onto
/// [`BUDGET_LEVELS`]. Descends immediately (overload must brown out
/// *now*); ascends one level at a time, and only after `ascend_dwell`
/// consecutive updates of sustained headroom — so boundary noise cannot
/// make the solver budget oscillate.
#[derive(Clone, Debug)]
pub struct BudgetController {
    curve: PressureCurve,
    idx: usize,
    dwell: u32,
    ascend_dwell: u32,
    transitions: u32,
    min_idx: usize,
}

impl BudgetController {
    /// A controller starting at full budget.
    pub fn new(curve: PressureCurve, ascend_dwell: u32) -> Self {
        BudgetController {
            curve,
            idx: 0,
            dwell: 0,
            ascend_dwell: ascend_dwell.max(1),
            transitions: 0,
            min_idx: 0,
        }
    }

    /// Feed the current signals; returns the budget fraction to use.
    pub fn update(&mut self, depth: usize, latency_p99: f64) -> f64 {
        let target = self.curve.target(depth, latency_p99);
        // Deepest (largest-index) level whose fraction still fits under
        // the target; saturates at the ladder floor.
        let desired = BUDGET_LEVELS
            .iter()
            .position(|&l| l <= target)
            .unwrap_or(BUDGET_LEVELS.len() - 1);
        if desired > self.idx {
            self.idx = desired;
            self.dwell = 0;
            self.transitions += 1;
        } else if desired < self.idx {
            self.dwell += 1;
            if self.dwell >= self.ascend_dwell {
                self.idx -= 1;
                self.dwell = 0;
                self.transitions += 1;
            }
        } else {
            self.dwell = 0;
        }
        self.min_idx = self.min_idx.max(self.idx);
        BUDGET_LEVELS[self.idx]
    }

    /// The level currently in force.
    pub fn level(&self) -> f64 {
        BUDGET_LEVELS[self.idx]
    }

    /// Level changes so far (both directions).
    pub fn transitions(&self) -> u32 {
        self.transitions
    }

    /// The deepest brownout level reached so far.
    pub fn min_level(&self) -> f64 {
        BUDGET_LEVELS[self.min_idx]
    }

    /// Ladder index of the level currently in force (for WAL records).
    pub(crate) fn level_idx(&self) -> usize {
        self.idx
    }

    /// Snapshot encoding of the hysteresis state (4 `:`-joined fields).
    pub(crate) fn encode_state(&self) -> String {
        format!(
            "{}:{}:{}:{}",
            self.idx, self.dwell, self.transitions, self.min_idx
        )
    }

    /// Inverse of [`Self::encode_state`].
    pub(crate) fn decode_state(
        curve: PressureCurve,
        ascend_dwell: u32,
        s: &str,
    ) -> Result<Self, String> {
        let f: Vec<&str> = s.split(':').collect();
        let [idx, dwell, transitions, min_idx] = f[..] else {
            return Err(format!("budget state {s:?}: {} fields, want 4", f.len()));
        };
        let pi = |x: &str| {
            x.parse::<usize>()
                .map_err(|e| format!("bad index {x:?}: {e}"))
        };
        let pu = |x: &str| x.parse::<u32>().map_err(|e| format!("bad u32 {x:?}: {e}"));
        let mut b = BudgetController::new(curve, ascend_dwell);
        b.idx = pi(idx)?;
        b.min_idx = pi(min_idx)?;
        if b.idx >= BUDGET_LEVELS.len() || b.min_idx >= BUDGET_LEVELS.len() {
            return Err(format!("budget level index out of range in {s:?}"));
        }
        b.dwell = pu(dwell)?;
        b.transitions = pu(transitions)?;
        Ok(b)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use hare_workload::{JobId, ModelKind};

    fn job(i: u32) -> JobSpec {
        JobSpec::new(JobId(i), ModelKind::ResNet50, 4, 1)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn admits_within_quota_and_defers_beyond() {
        let mut a = AdmissionController::new(AdmissionConfig {
            bucket: TokenBucketConfig {
                rate_per_sec: 0.1,
                burst: 2.0,
            },
            ..AdmissionConfig::default()
        });
        let tn = TenantId(0);
        assert_eq!(a.offer(t(0), tn, job(0)), AdmissionOutcome::Admitted);
        assert_eq!(a.offer(t(0), tn, job(1)), AdmissionOutcome::Admitted);
        // Bucket empty: third job defers until a token accrues (10s).
        match a.offer(t(0), tn, job(2)) {
            AdmissionOutcome::Deferred { retry_at } => assert_eq!(retry_at, t(10)),
            other => panic!("expected deferral, got {other:?}"),
        }
        assert_eq!(a.depth(), 2);
        assert!(a.counters().conserved());
        // Ripen it: poll after the retry instant admits it.
        a.poll(t(10));
        assert_eq!(a.depth(), 3);
        let c = a.counters();
        assert_eq!((c.offered, c.admitted, c.deferred_pending), (3, 3, 0));
        assert!(c.conserved());
    }

    #[test]
    fn bounded_queue_rejects_when_full() {
        let mut a = AdmissionController::new(AdmissionConfig {
            queue_capacity: 2,
            bucket: TokenBucketConfig {
                rate_per_sec: 100.0,
                burst: 100.0,
            },
            ..AdmissionConfig::default()
        });
        assert_eq!(
            a.offer(t(0), TenantId(0), job(0)),
            AdmissionOutcome::Admitted
        );
        assert_eq!(
            a.offer(t(0), TenantId(1), job(1)),
            AdmissionOutcome::Admitted
        );
        assert_eq!(
            a.offer(t(0), TenantId(2), job(2)),
            AdmissionOutcome::Rejected(RejectReason::QueueFull)
        );
        assert_eq!(a.depth(), 2);
        assert!(a.counters().conserved());
    }

    #[test]
    fn draining_rejects_everything_and_flushes_deferrals() {
        let mut a = AdmissionController::new(AdmissionConfig {
            bucket: TokenBucketConfig {
                rate_per_sec: 0.01,
                burst: 1.0,
            },
            ..AdmissionConfig::default()
        });
        assert_eq!(
            a.offer(t(0), TenantId(0), job(0)),
            AdmissionOutcome::Admitted
        );
        assert!(matches!(
            a.offer(t(0), TenantId(0), job(1)),
            AdmissionOutcome::Deferred { .. }
        ));
        a.begin_drain();
        assert_eq!(
            a.offer(t(1), TenantId(1), job(2)),
            AdmissionOutcome::Rejected(RejectReason::Draining)
        );
        let c = a.counters();
        assert_eq!(c.deferred_pending, 0, "drain flushes the deferral pool");
        assert_eq!(c.rejected_draining, 2);
        assert!(c.conserved());
        let shed = a.shed_all();
        assert_eq!(shed.len(), 1);
        assert_eq!(a.counters().shed, 1);
        assert_eq!(a.depth(), 0);
    }

    #[test]
    fn fair_queueing_interleaves_a_flooding_tenant() {
        // Tenant 0 floods 8 jobs, then tenant 1 submits 2; SFQ must not
        // make tenant 1 wait behind the whole flood.
        let mut a = AdmissionController::new(AdmissionConfig {
            bucket: TokenBucketConfig {
                rate_per_sec: 100.0,
                burst: 100.0,
            },
            ..AdmissionConfig::default()
        });
        for i in 0..8 {
            assert_eq!(
                a.offer(t(0), TenantId(0), job(i)),
                AdmissionOutcome::Admitted
            );
        }
        for i in 8..10 {
            assert_eq!(
                a.offer(t(0), TenantId(1), job(i)),
                AdmissionOutcome::Admitted
            );
        }
        let order: Vec<u32> = std::iter::from_fn(|| a.pop()).map(|p| p.tenant.0).collect();
        // Tenant 1's first job dispatches 2nd, its second 4th: finish
        // tags interleave 1:1 until tenant 1's backlog is drained.
        assert_eq!(order[..4], [0, 1, 0, 1], "full order {order:?}");
    }

    #[test]
    fn weights_bias_the_dispatch_share() {
        let mut a = AdmissionController::new(AdmissionConfig {
            bucket: TokenBucketConfig {
                rate_per_sec: 1000.0,
                burst: 1000.0,
            },
            tenant_weights: vec![2.0, 1.0],
            ..AdmissionConfig::default()
        });
        for i in 0..12 {
            a.offer(t(0), TenantId(i % 2), job(i));
        }
        let first6: Vec<u32> = (0..6).filter_map(|_| a.pop()).map(|p| p.tenant.0).collect();
        let heavy = first6.iter().filter(|&&x| x == 0).count();
        assert_eq!(heavy, 4, "weight-2 tenant gets 2/3 of slots: {first6:?}");
    }

    #[test]
    fn take_by_seq_matches_peek_window() {
        let mut a = AdmissionController::new(AdmissionConfig::default());
        for i in 0..5u32 {
            a.offer(t(i as u64), TenantId(i), job(i));
        }
        let seqs: Vec<u64> = a.peek_window(3).iter().map(|p| p.seq).collect();
        assert_eq!(seqs.len(), 3);
        let taken = a.take(seqs[1]).unwrap();
        assert_eq!(taken.seq, seqs[1]);
        assert_eq!(a.depth(), 4);
        assert!(a.take(seqs[1]).is_none(), "double-take returns None");
    }

    #[test]
    fn drain_all_counts_separately_from_shed() {
        let mut a = AdmissionController::new(AdmissionConfig {
            bucket: TokenBucketConfig {
                rate_per_sec: 100.0,
                burst: 100.0,
            },
            ..AdmissionConfig::default()
        });
        for i in 0..4 {
            a.offer(t(0), TenantId(i % 2), job(i));
        }
        let dropped = a.drain_all();
        assert_eq!(dropped.len(), 4);
        let c = a.counters();
        assert_eq!(
            (c.drained, c.shed),
            (4, 0),
            "drain is not overload shedding"
        );
        assert!(c.conserved());
    }

    #[test]
    fn readmit_requeues_with_fresh_seq_and_original_admission_time() {
        let mut a = AdmissionController::new(AdmissionConfig::default());
        a.offer(t(3), TenantId(1), job(0));
        let j = a.pop().unwrap();
        let old_seq = j.seq;
        let new_seq = a.readmit(j);
        assert_ne!(new_seq, old_seq, "requeue gets a fresh dispatch handle");
        assert_eq!(a.depth(), 1);
        let back = a.pop().unwrap();
        assert_eq!(back.seq, new_seq);
        assert_eq!(back.admitted_at, t(3), "queue-wait spans the disruption");
        let c = a.counters();
        assert_eq!((c.admitted, c.readmitted), (1, 1));
        assert!(c.conserved(), "readmission is outside the offer identity");
    }

    #[test]
    fn state_encoding_round_trips_bit_exactly() {
        let cfg = AdmissionConfig {
            queue_capacity: 8,
            defer_capacity: 4,
            bucket: TokenBucketConfig {
                rate_per_sec: 0.2,
                burst: 3.0,
            },
            tenant_weights: vec![2.0, 1.0],
        };
        let mut a = AdmissionController::new(cfg.clone());
        for i in 0..7 {
            a.offer(t(i as u64 * 2), TenantId(i % 3), job(i));
        }
        let _ = a.pop();
        let encoded = a.encode_state();
        let mut b = AdmissionController::decode_state(cfg, &encoded).unwrap();
        assert_eq!(b.encode_state(), encoded, "decode∘encode is the identity");
        assert_eq!(b.counters(), a.counters());
        assert_eq!(b.depth(), a.depth());
        // Behavioral equivalence: both controllers drain identically.
        let from_a: Vec<_> = std::iter::from_fn(|| a.pop()).collect();
        let from_b: Vec<_> = std::iter::from_fn(|| b.pop()).collect();
        assert_eq!(from_a, from_b);
        // And job encode/decode is exact, including float weights.
        let spec = job(9).with_weight(2.5).arriving_at(t(17));
        let enc = encode_job(&spec);
        let parts: Vec<&str> = enc.split(':').collect();
        assert_eq!(decode_job(&parts).unwrap(), spec);
    }

    #[test]
    fn budget_state_encoding_round_trips() {
        let mut b = BudgetController::new(PressureCurve::default(), 3);
        b.update(1000, 0.0);
        b.update(0, 0.0);
        let enc = b.encode_state();
        let c = BudgetController::decode_state(PressureCurve::default(), 3, &enc).unwrap();
        assert_eq!(c.encode_state(), enc);
        assert_eq!(c.level(), b.level());
        assert_eq!(c.min_level(), b.min_level());
        assert_eq!(c.transitions(), b.transitions());
        assert!(BudgetController::decode_state(PressureCurve::default(), 3, "9:0:0:0").is_err());
    }

    #[test]
    fn pressure_curve_ramps_and_floors() {
        let c = PressureCurve {
            depth_low: 10,
            depth_high: 20,
            latency_low: 1.0,
            latency_high: 2.0,
            floor: 0.1,
        };
        assert_eq!(c.target(0, 0.0), 1.0);
        assert!((c.target(15, 0.0) - 0.55).abs() < 1e-12, "mid-ramp");
        assert!(
            (c.target(100, 0.0) - 0.1).abs() < 1e-12,
            "floor under saturation"
        );
        // The stronger signal wins.
        assert!((c.target(0, 5.0) - 0.1).abs() < 1e-12);
        assert_eq!(PressureCurve::disabled().target(usize::MAX / 4, 1e9), 1.0);
    }

    #[test]
    fn controller_descends_immediately_and_ascends_with_dwell() {
        let mut b = BudgetController::new(PressureCurve::default(), 3);
        assert_eq!(b.update(0, 0.0), 1.0);
        // Saturated: straight to the floor level in one update.
        assert_eq!(b.update(1000, 0.0), 0.02);
        assert_eq!(b.transitions(), 1);
        // Pressure gone: needs 3 calm updates per level to climb.
        assert_eq!(b.update(0, 0.0), 0.02);
        assert_eq!(b.update(0, 0.0), 0.02);
        assert_eq!(b.update(0, 0.0), 0.1, "one level up after dwell");
        assert_eq!(b.min_level(), 0.02);
    }

    #[test]
    fn controller_does_not_oscillate_on_boundary_noise() {
        // A signal flapping across the 0.5-level boundary: after the
        // initial descent the level must hold (dwell resets on every
        // pressured update).
        let mut b = BudgetController::new(
            PressureCurve {
                depth_low: 0,
                depth_high: 100,
                ..PressureCurve::default()
            },
            3,
        );
        let depths = [60usize, 40, 60, 40, 60, 40, 60, 40];
        let mut levels = Vec::new();
        for &d in &depths {
            levels.push(b.update(d, 0.0));
        }
        assert!(
            levels[1..].iter().all(|&l| l == levels[1]),
            "no oscillation: {levels:?}"
        );
        assert!(b.transitions() <= 2, "transitions {}", b.transitions());
    }

    #[test]
    fn controller_recovers_fully_when_pressure_drains() {
        let mut b = BudgetController::new(PressureCurve::default(), 2);
        b.update(1000, 0.0);
        for _ in 0..20 {
            b.update(0, 0.0);
        }
        assert_eq!(b.level(), 1.0, "full recovery");
        assert_eq!(b.min_level(), 0.02, "deepest brownout remembered");
    }

    mod chaos {
        use super::*;
        use proptest::prelude::*;

        /// One step of the chaos schedule.
        #[derive(Clone, Debug)]
        enum Op {
            /// Offer a job from the tenant after advancing by `dt_ms`.
            Offer { tenant: u32, dt_ms: u32 },
            /// Pop the fair-queue head.
            Pop,
            /// Retry ripened deferrals.
            Poll,
            /// Begin drain (idempotent).
            Drain,
            /// Shed the pending queue (overload).
            Shed,
            /// Drop the pending queue gracefully (drain accounting).
            DrainAll,
            /// Pop the head and immediately re-admit it (lease requeue).
            Readmit,
        }

        fn op() -> impl Strategy<Value = Op> {
            // Weighted mix: offers dominate so queues actually fill.
            (0u8..16, 0u32..4, 0u32..30_000).prop_map(|(sel, tenant, dt_ms)| match sel {
                0..=5 => Op::Offer { tenant, dt_ms },
                6..=8 => Op::Pop,
                9..=10 => Op::Poll,
                11 => Op::Drain,
                12 => Op::Shed,
                13 => Op::DrainAll,
                _ => Op::Readmit,
            })
        }

        fn tight_cfg() -> AdmissionConfig {
            AdmissionConfig {
                queue_capacity: 6,
                defer_capacity: 4,
                bucket: TokenBucketConfig {
                    rate_per_sec: 0.2,
                    burst: 3.0,
                },
                tenant_weights: vec![2.0, 1.0, 1.0],
            }
        }

        proptest! {
            /// The conservation identity and the queue bound hold after
            /// *every* transition of an arbitrary offer/pop/poll/drain/
            /// shed schedule — not just at quiescence.
            #[test]
            fn conservation_holds_under_chaos(ops in proptest::collection::vec(op(), 1..200)) {
                let mut a = AdmissionController::new(tight_cfg());
                let mut now = SimTime::ZERO;
                let mut popped = 0u64;
                let mut shed = 0u64;
                let mut drained = 0u64;
                for (i, o) in ops.iter().enumerate() {
                    match *o {
                        Op::Offer { tenant, dt_ms } => {
                            now += SimDuration::from_millis(dt_ms as u64);
                            a.offer(now, TenantId(tenant), job(i as u32));
                        }
                        Op::Pop => {
                            if a.pop().is_some() {
                                popped += 1;
                            }
                        }
                        Op::Poll => a.poll(now),
                        Op::Drain => a.begin_drain(),
                        Op::Shed => {
                            shed += a.shed_all().len() as u64;
                        }
                        Op::DrainAll => {
                            drained += a.drain_all().len() as u64;
                        }
                        Op::Readmit => {
                            if let Some(j) = a.pop() {
                                popped += 1;
                                a.readmit(j);
                            }
                        }
                    }
                    let c = a.counters();
                    prop_assert!(
                        c.conserved(),
                        "step {i}: offered {} != admitted {} + rejected {} + deferred {}",
                        c.offered, c.admitted, c.rejected(), c.deferred_pending
                    );
                    prop_assert!(a.depth() <= tight_cfg().queue_capacity, "queue bound");
                    // Every queue entry ever made (fresh admission or
                    // lease requeue) is exactly accounted for: still
                    // queued, dispatched, shed, or drained.
                    prop_assert_eq!(c.shed, shed, "controller and test agree on sheds");
                    prop_assert_eq!(c.drained, drained, "and on drains");
                    prop_assert_eq!(
                        c.admitted + c.readmitted,
                        a.depth() as u64 + popped + c.shed + c.drained,
                        "admitted + readmitted = queued + popped + shed + drained"
                    );
                    if a.is_draining() {
                        prop_assert_eq!(c.deferred_pending, 0, "drain keeps no deferrals");
                    }
                }
            }
        }
    }
}
