//! Crash tolerance for the continuous-service mode (DESIGN.md §13):
//! write-ahead logging with compacted snapshots, deterministic replay,
//! and the lease state machine that guards against silently-dead workers.
//!
//! The serve loop ([`crate::ServeLoop`]) is a deterministic state
//! machine; this module makes it *crash-tolerant* without giving that
//! up:
//!
//! * [`WalFile`] — an append-only, line-framed, CRC32-checked log using
//!   the same durability discipline as `hare-experiments::journal`
//!   (fsynced appends, torn tails truncated on open). Every serve-loop
//!   state transition (arrival admission/reject/defer, dispatch,
//!   completion, drain, budget-level change, lease events) becomes one
//!   record; records are group-committed at decision-epoch boundaries —
//!   an un-fsynced tail is harmless because replay *re-executes* from
//!   the last snapshot and regenerates whatever the tail would have
//!   said.
//! * **Snapshots** — periodically the loop encodes its complete state
//!   (pending queue, token buckets, in-flight placements, arrival-stream
//!   cursor, hysteresis state, scheduler-private state) as one `snap`
//!   record, written via write-temp + atomic-rename so the log is
//!   *compacted* in the same motion: after a snapshot the file is
//!   `[snapshot][records since]` and never grows without bound.
//! * **Recovery** — load the last valid snapshot, then re-execute the
//!   loop deterministically while *verifying* each regenerated
//!   transition against the WAL suffix ([`WalSession`]); any mismatch is
//!   a [`RecoveryError::Divergence`] (corrupt snapshot, changed config,
//!   or nondeterministic scheduler) instead of silent state skew. The
//!   recovered run's final report is byte-identical to an uncrashed run
//!   — the property `crash_sweep` and the CI SIGKILL step assert.
//! * [`LeaseConfig`] — workers hold heartbeated leases; a worker that
//!   stops heartbeating (a [`crate::faults::SilentWorkerFault`], distinct
//!   from the batch engine's *explicit* failure events) loses its lease
//!   after `timeout`, its in-flight job is requeued with capped
//!   exponential backoff, and it rejoins through the scheduler's
//!   `on_gpu_recovery` hook once heartbeats resume.

use hare_cluster::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{self, Write as _};
use std::path::PathBuf;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) lookup table,
/// built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the per-record checksum shared by the WAL
/// and `hare-experiments::journal`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Bit-exact hex encoding of an `f64` (the snapshot/WAL float format —
/// no decimal round-tripping).
pub(crate) fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Inverse of [`f64_hex`].
pub(crate) fn f64_from_hex(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

/// Why a recovery attempt (or a WAL-logged run) failed.
#[derive(Debug)]
pub enum RecoveryError {
    /// The WAL file could not be read or written.
    Io(io::Error),
    /// The WAL holds no valid snapshot to recover from.
    NoSnapshot,
    /// A snapshot or record failed to decode.
    Corrupt {
        /// 1-based line of the offending record (0 when unknown).
        line: usize,
        /// What failed to parse.
        why: String,
    },
    /// The snapshot was written under a different serve configuration
    /// (or scheduler) than the one recovering.
    ConfigMismatch {
        /// Fingerprint stored in the snapshot.
        expected: u32,
        /// Fingerprint of the recovering configuration.
        got: u32,
    },
    /// Deterministic replay regenerated a transition that differs from
    /// the WAL — corrupt state, changed config, or a nondeterministic
    /// scheduler.
    Divergence {
        /// Index of the diverging record within the replayed suffix.
        record: u64,
        /// What the WAL says happened.
        expected: String,
        /// What replay produced.
        got: String,
    },
    /// An injected [`crate::faults::SchedulerCrash`] fired — the run
    /// aborted mid-flight on purpose, leaving the WAL for recovery.
    InjectedCrash {
        /// Simulated instant of the crash.
        at: SimTime,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Io(e) => write!(f, "WAL I/O error: {e}"),
            RecoveryError::NoSnapshot => write!(f, "WAL holds no valid snapshot"),
            RecoveryError::Corrupt { line, why } => {
                write!(f, "corrupt WAL (line {line}): {why}")
            }
            RecoveryError::ConfigMismatch { expected, got } => write!(
                f,
                "serve config fingerprint {got:08x} does not match snapshot {expected:08x}"
            ),
            RecoveryError::Divergence {
                record,
                expected,
                got,
            } => write!(
                f,
                "replay diverged from WAL at suffix record {record}: \
                 log says {expected:?}, replay produced {got:?}"
            ),
            RecoveryError::InjectedCrash { at } => {
                write!(f, "injected scheduler crash at {at}")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<io::Error> for RecoveryError {
    fn from(e: io::Error) -> Self {
        RecoveryError::Io(e)
    }
}

/// Where the WAL lives and how often the loop snapshots into it.
#[derive(Clone, Debug)]
pub struct WalOptions {
    /// Log file path.
    pub path: PathBuf,
    /// Decision epochs between compacted snapshots (≥ 1). Smaller means
    /// shorter replay after a crash but more snapshot I/O — the
    /// trade-off `crash_sweep` measures.
    pub snapshot_every: u64,
}

impl WalOptions {
    /// Options with the default cadence (a snapshot every 20 epochs).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        WalOptions {
            path: path.into(),
            snapshot_every: 20,
        }
    }
}

/// What `hare serve --recover` reports about the recovery itself (kept
/// out of [`crate::ServeReport`] so recovered reports stay byte-identical
/// to uncrashed ones).
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct RecoveryStats {
    /// Simulated instant of the snapshot the run resumed from.
    pub resumed_at: SimTime,
    /// WAL suffix records replayed (verified) after the snapshot.
    pub replayed: u64,
}

/// The append-only, CRC-framed log file.
///
/// On-disk format: one record per line, `crc32-as-8-hex SP payload`,
/// where the CRC covers the payload bytes. A snapshot is a record whose
/// payload is `snap SP blob`. Appends are buffered and made durable by
/// [`WalFile::commit`] (write + flush + fsync) — the serve loop commits
/// at every decision epoch (group commit). [`WalFile::write_snapshot`]
/// compacts: the file is atomically replaced by `[snapshot]` via
/// write-temp + rename.
#[derive(Debug)]
pub struct WalFile {
    path: PathBuf,
    file: File,
    buf: String,
    appended: u64,
}

impl WalFile {
    /// Create (truncating any previous log) a fresh WAL at `path`.
    pub fn create(path: impl Into<PathBuf>) -> io::Result<WalFile> {
        let path = path.into();
        let file = File::create(&path)?;
        Ok(WalFile {
            path,
            file,
            buf: String::new(),
            appended: 0,
        })
    }

    /// Open an existing WAL for recovery: validate every record's CRC,
    /// truncate the file at the first invalid record (torn tail or
    /// in-place corruption), and return the last valid snapshot blob
    /// plus the record payloads after it — the replay suffix.
    pub fn open_for_recovery(
        path: impl Into<PathBuf>,
    ) -> Result<(WalFile, String, Vec<String>), RecoveryError> {
        let path = path.into();
        let bytes = std::fs::read(&path)?;
        let text = String::from_utf8_lossy(&bytes);
        let mut payloads: Vec<String> = Vec::new();
        let mut valid_len = 0usize;
        let mut offset = 0usize;
        for line in text.split_inclusive('\n') {
            let start = offset;
            offset += line.len();
            if !line.ends_with('\n') {
                break; // torn tail
            }
            let Some(payload) = decode_record(line.trim_end_matches('\n')) else {
                break; // CRC mismatch or malformed framing
            };
            payloads.push(payload.to_string());
            valid_len = start + line.len();
        }
        if valid_len < bytes.len() {
            let file = std::fs::OpenOptions::new().write(true).open(&path)?;
            file.set_len(valid_len as u64)?;
            file.sync_data()?;
        }
        let snap_at = payloads
            .iter()
            .rposition(|p| p.starts_with("snap "))
            .ok_or(RecoveryError::NoSnapshot)?;
        let blob = payloads[snap_at]["snap ".len()..].to_string();
        let suffix = payloads.split_off(snap_at + 1);
        let file = std::fs::OpenOptions::new().append(true).open(&path)?;
        Ok((
            WalFile {
                path,
                file,
                buf: String::new(),
                appended: 0,
            },
            blob,
            suffix,
        ))
    }

    /// Records appended (buffered or committed) since open.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Buffer one record. `payload` must be a single line.
    pub fn append(&mut self, payload: &str) {
        debug_assert!(!payload.contains('\n'), "WAL payloads must be single-line");
        let _ = {
            use std::fmt::Write as _;
            writeln!(self.buf, "{:08x} {payload}", crc32(payload.as_bytes()))
        };
        self.appended += 1;
    }

    /// Make every buffered record durable: write, flush, fsync.
    pub fn commit(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.file.write_all(self.buf.as_bytes())?;
        self.file.flush()?;
        self.file.sync_data()?;
        self.buf.clear();
        Ok(())
    }

    /// Write a compacted snapshot: the log is atomically replaced by a
    /// single `snap` record carrying `blob` (uncommitted pre-snapshot
    /// records are subsumed by the snapshot and dropped). Crash-safe:
    /// the new file is fsynced before the rename, and a crash mid-write
    /// leaves the previous log intact.
    pub fn write_snapshot(&mut self, blob: &str) -> io::Result<()> {
        debug_assert!(!blob.contains('\n'), "snapshot blobs must be single-line");
        self.buf.clear();
        let tmp = self.path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            let payload = format!("snap {blob}");
            writeln!(f, "{:08x} {payload}", crc32(payload.as_bytes()))?;
            f.flush()?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        self.file = std::fs::OpenOptions::new().append(true).open(&self.path)?;
        self.appended += 1;
        Ok(())
    }
}

/// Decode one framed line into its payload; `None` on bad framing or a
/// CRC mismatch.
fn decode_record(line: &str) -> Option<&str> {
    let (crc_hex, payload) = line.split_once(' ')?;
    let crc = u32::from_str_radix(crc_hex, 16).ok()?;
    if crc_hex.len() != 8 || crc != crc32(payload.as_bytes()) {
        return None;
    }
    Some(payload)
}

/// The serve loop's handle on the WAL: while a replay suffix remains,
/// every logged transition is *verified* against it; once the suffix is
/// exhausted the session switches to live appends. Fresh runs start with
/// an empty suffix.
#[derive(Debug)]
pub(crate) struct WalSession<'a> {
    wal: &'a mut WalFile,
    suffix: VecDeque<String>,
    replayed: u64,
}

impl<'a> WalSession<'a> {
    pub(crate) fn new(wal: &'a mut WalFile, suffix: Vec<String>) -> Self {
        WalSession {
            wal,
            suffix: suffix.into(),
            replayed: 0,
        }
    }

    /// True while WAL records remain to verify against.
    pub(crate) fn replaying(&self) -> bool {
        !self.suffix.is_empty()
    }

    /// Suffix records verified so far.
    pub(crate) fn replayed(&self) -> u64 {
        self.replayed
    }

    /// Log one transition: verify against the replay suffix, or append.
    pub(crate) fn log(&mut self, payload: &str) -> Result<(), RecoveryError> {
        match self.suffix.pop_front() {
            Some(expected) => {
                if expected != payload {
                    return Err(RecoveryError::Divergence {
                        record: self.replayed,
                        expected,
                        got: payload.to_string(),
                    });
                }
                self.replayed += 1;
                Ok(())
            }
            None => {
                self.wal.append(payload);
                Ok(())
            }
        }
    }

    /// True when the next suffix record is a drain transition at `t_us`
    /// — how replay re-learns that an *external* stop signal (SIGTERM)
    /// triggered a drain in the original run.
    pub(crate) fn peek_drain_at(&self, t_us: u64) -> bool {
        self.suffix
            .front()
            .and_then(|p| p.strip_prefix("drain "))
            .and_then(|rest| rest.split(' ').next())
            .and_then(|t| t.parse::<u64>().ok())
            .is_some_and(|t| t == t_us)
    }

    /// Group-commit buffered records (no-op while replaying).
    pub(crate) fn commit(&mut self) -> Result<(), RecoveryError> {
        if !self.replaying() {
            self.wal.commit()?;
        }
        Ok(())
    }

    /// Write a compacted snapshot (no-op while replaying: the on-disk
    /// history already covers this point).
    pub(crate) fn snapshot(&mut self, blob: &str) -> Result<(), RecoveryError> {
        if !self.replaying() {
            self.wal.write_snapshot(blob)?;
        }
        Ok(())
    }
}

/// Lease-based worker liveness (DESIGN.md §13).
///
/// Every worker heartbeats every `heartbeat`; the scheduler holds a
/// lease per worker that expires `timeout` after the last heartbeat.
/// Expiry requeues the worker's in-flight job with exponential backoff
/// (`requeue_backoff · 2^attempt`, capped at `backoff_cap`); a job
/// requeued more than `max_requeues` times is shed as lost. A worker
/// whose heartbeats resume rejoins through the scheduler's
/// `on_gpu_recovery` hook.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LeaseConfig {
    /// Worker heartbeat interval.
    pub heartbeat: SimDuration,
    /// Lease lifetime after the last heartbeat (≥ `heartbeat`).
    pub timeout: SimDuration,
    /// Base backoff before a requeued job is eligible to dispatch again.
    pub requeue_backoff: SimDuration,
    /// Upper bound on the exponential backoff.
    pub backoff_cap: SimDuration,
    /// Requeues after which a job is shed as lost.
    pub max_requeues: u32,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig {
            heartbeat: SimDuration::from_secs(10),
            timeout: SimDuration::from_secs(60),
            requeue_backoff: SimDuration::from_secs(5),
            backoff_cap: SimDuration::from_secs(300),
            max_requeues: 8,
        }
    }
}

impl LeaseConfig {
    /// Basic sanity checks (positive intervals, timeout ≥ heartbeat).
    pub fn validate(&self) -> Result<(), String> {
        if self.heartbeat.is_zero() {
            return Err("lease heartbeat must be positive".into());
        }
        if self.timeout < self.heartbeat {
            return Err("lease timeout must be at least one heartbeat".into());
        }
        if self.requeue_backoff.is_zero() || self.backoff_cap < self.requeue_backoff {
            return Err("requeue backoff must be positive and below its cap".into());
        }
        Ok(())
    }

    /// Backoff before requeue attempt `attempt` (0-based) re-enters the
    /// queue: `requeue_backoff · 2^attempt`, capped.
    pub(crate) fn backoff(&self, attempt: u32) -> SimDuration {
        let base = self.requeue_backoff.as_micros().max(1);
        let mult = 1u64.checked_shl(attempt.min(63)).unwrap_or(u64::MAX);
        SimDuration::from_micros(base.saturating_mul(mult).min(self.backoff_cap.as_micros()))
    }
}

/// The last heartbeat a worker managed at or before `now`, given its
/// silent-death windows `[from, until)` (`until == None` = never
/// revives). Heartbeats tick at multiples of `heartbeat` from t = 0;
/// `None` means the worker never heartbeated at all.
pub(crate) fn last_heartbeat(
    now: SimTime,
    heartbeat: SimDuration,
    deaths: &[(SimTime, Option<SimTime>)],
) -> Option<SimTime> {
    let hb = heartbeat.as_micros().max(1);
    let mut t = now.as_micros() / hb * hb;
    loop {
        let covering = deaths
            .iter()
            .find(|(from, until)| from.as_micros() <= t && until.is_none_or(|u| t < u.as_micros()));
        match covering {
            None => return Some(SimTime::from_micros(t)),
            Some((from, _)) => {
                if from.as_micros() == 0 {
                    return None;
                }
                // Last heartbeat strictly before the window opened.
                t = (from.as_micros() - 1) / hb * hb;
            }
        }
    }
}

/// True when any silent-death window of this worker overlaps the
/// in-service interval `[started, done]` — the completion must then be
/// suppressed (a dead worker does no work).
pub(crate) fn dead_during(
    started: SimTime,
    done: SimTime,
    deaths: &[(SimTime, Option<SimTime>)],
) -> bool {
    deaths
        .iter()
        .any(|(from, until)| *from <= done && until.is_none_or(|u| started < u))
}

/// True when the worker is inside a silent-death window at `now`.
pub(crate) fn dead_at(now: SimTime, deaths: &[(SimTime, Option<SimTime>)]) -> bool {
    deaths
        .iter()
        .any(|(from, until)| *from <= now && until.is_none_or(|u| now < u))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hare-wal-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn wal_round_trips_snapshot_and_suffix() {
        let path = tmp("roundtrip");
        let mut wal = WalFile::create(&path).unwrap();
        wal.write_snapshot("state-zero").unwrap();
        wal.append("ep 1");
        wal.append("disp 3 0 100");
        wal.commit().unwrap();
        wal.write_snapshot("state-one").unwrap();
        wal.append("ep 2");
        wal.commit().unwrap();
        drop(wal);

        let (_, blob, suffix) = WalFile::open_for_recovery(&path).unwrap();
        assert_eq!(blob, "state-one", "last snapshot wins (compaction)");
        assert_eq!(suffix, vec!["ep 2".to_string()]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_and_corruption_truncate() {
        let path = tmp("torn");
        let mut wal = WalFile::create(&path).unwrap();
        wal.write_snapshot("s").unwrap();
        wal.append("a 1");
        wal.append("b 2");
        wal.commit().unwrap();
        // Corrupt record "b 2" in place (flip a payload byte).
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = bytes.windows(3).rposition(|w| w == b"b 2").unwrap();
        bytes[pos] = b'X';
        // And add a torn tail.
        bytes.extend_from_slice(b"deadbeef torn-record-without-newl");
        std::fs::write(&path, &bytes).unwrap();

        let (_, blob, suffix) = WalFile::open_for_recovery(&path).unwrap();
        assert_eq!(blob, "s");
        assert_eq!(suffix, vec!["a 1".to_string()], "truncated at corruption");
        // The file itself was truncated: reopening sees the same view.
        let (_, _, suffix2) = WalFile::open_for_recovery(&path).unwrap();
        assert_eq!(suffix2, suffix);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn no_snapshot_is_an_error() {
        let path = tmp("nosnap");
        let mut wal = WalFile::create(&path).unwrap();
        wal.append("ep 1");
        wal.commit().unwrap();
        drop(wal);
        assert!(matches!(
            WalFile::open_for_recovery(&path),
            Err(RecoveryError::NoSnapshot)
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn session_verifies_then_appends() {
        let path = tmp("session");
        let mut wal = WalFile::create(&path).unwrap();
        let mut s = WalSession::new(&mut wal, vec!["a".into(), "b".into()]);
        assert!(s.replaying());
        s.log("a").unwrap();
        s.log("b").unwrap();
        assert!(!s.replaying());
        assert_eq!(s.replayed(), 2);
        s.log("c").unwrap(); // live append now
        s.commit().unwrap();
        drop(s);
        assert_eq!(wal.appended(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn session_divergence_is_detected() {
        let path = tmp("diverge");
        let mut wal = WalFile::create(&path).unwrap();
        let mut s = WalSession::new(&mut wal, vec!["a".into()]);
        let err = s.log("not-a").unwrap_err();
        assert!(matches!(err, RecoveryError::Divergence { .. }), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn heartbeats_skip_death_windows() {
        let hb = SimDuration::from_secs(10);
        let t = SimTime::from_secs;
        // Alive: last heartbeat is the last multiple of 10.
        assert_eq!(last_heartbeat(t(37), hb, &[]), Some(t(30)));
        // Dead in [25, 55): at t=57 the last live heartbeat is t=20.
        let deaths = [(t(25), Some(t(55)))];
        assert_eq!(last_heartbeat(t(47), hb, &deaths), Some(t(20)));
        // After revival the next tick counts again.
        assert_eq!(last_heartbeat(t(62), hb, &deaths), Some(t(60)));
        // Dead from t=0 forever: never heartbeated.
        assert_eq!(last_heartbeat(t(99), hb, &[(t(0), None)]), None);
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let cfg = LeaseConfig::default(); // base 5s, cap 300s
        assert_eq!(cfg.backoff(0), SimDuration::from_secs(5));
        assert_eq!(cfg.backoff(1), SimDuration::from_secs(10));
        assert_eq!(cfg.backoff(3), SimDuration::from_secs(40));
        assert_eq!(cfg.backoff(10), SimDuration::from_secs(300), "capped");
        assert_eq!(cfg.backoff(200), SimDuration::from_secs(300), "no overflow");
    }

    #[test]
    fn dead_during_detects_overlap() {
        let t = SimTime::from_secs;
        let deaths = [(t(50), Some(t(60)))];
        assert!(dead_during(t(40), t(55), &deaths), "dies mid-service");
        assert!(dead_during(t(55), t(70), &deaths), "starts while dead");
        assert!(!dead_during(t(60), t(70), &deaths), "after revival");
        assert!(!dead_during(t(10), t(49), &deaths), "before death");
    }

    #[test]
    fn lease_config_validation() {
        assert!(LeaseConfig::default().validate().is_ok());
        let c = LeaseConfig {
            timeout: SimDuration::from_secs(1),
            ..LeaseConfig::default()
        };
        assert!(c.validate().is_err(), "timeout below heartbeat");
    }
}
