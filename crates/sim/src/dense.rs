//! Dense index sets for the simulation hot path.
//!
//! The engine's ready-task and idle-GPU sets were `BTreeSet<usize>`:
//! every insert/remove allocated tree nodes and every dispatch walked the
//! tree to snapshot it into a `Vec`. Both sets are dense over a small
//! fixed universe (task indices, GPU indices), so a bitset does the same
//! job allocation-free with O(1) mutation — and iteration over set bits is
//! naturally ascending, preserving the exact ordering policies observed
//! from the `BTreeSet`.

/// A set of `usize` indices over a fixed universe `0..capacity`, backed by
/// a bit vector. Mutations bump a version counter so callers can cache
/// derived snapshots and rebuild them only when the set actually changed.
#[derive(Clone, Debug)]
pub(crate) struct DenseSet {
    words: Vec<u64>,
    len: usize,
    version: u64,
}

impl DenseSet {
    /// An empty set over `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        DenseSet {
            words: vec![0; capacity.div_ceil(64)],
            len: 0,
            version: 0,
        }
    }

    /// The full set `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = DenseSet::new(capacity);
        for i in 0..capacity {
            s.insert(i);
        }
        s.version = 0;
        s
    }

    /// Insert `i`; returns false if it was already present.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, 1u64 << (i % 64));
        if self.words[w] & b != 0 {
            return false;
        }
        self.words[w] |= b;
        self.len += 1;
        self.version += 1;
        true
    }

    /// Remove `i`; returns false if it was absent.
    pub fn remove(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, 1u64 << (i % 64));
        if self.words[w] & b == 0 {
            return false;
        }
        self.words[w] &= !b;
        self.len -= 1;
        self.version += 1;
        true
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no members remain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Counter bumped on every successful mutation; equal versions imply
    /// equal contents (for one set instance).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Smallest member, if any — O(words), no iterator machinery, for the
    /// dispatch hot path's "lowest-id idle GPU of this kind" lookup.
    pub fn first(&self) -> Option<usize> {
        self.words
            .iter()
            .enumerate()
            .find(|(_, &w)| w != 0)
            .map(|(wi, &w)| wi * 64 + w.trailing_zeros() as usize)
    }

    /// Members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(wi * 64 + bit)
            })
        })
    }

    /// Overwrite `out` with the members in ascending order (the snapshot
    /// the dispatch view hands to policies), reusing its allocation.
    pub fn collect_into(&self, out: &mut Vec<usize>) {
        out.clear();
        out.extend(self.iter());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_btreeset_semantics() {
        use std::collections::BTreeSet;
        let mut dense = DenseSet::new(200);
        let mut tree = BTreeSet::new();
        // Deterministic pseudo-random walk of inserts and removes.
        let mut x = 0x1234_5678u64;
        for _ in 0..2_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let i = (x >> 33) as usize % 200;
            if x & 1 == 0 {
                assert_eq!(dense.insert(i), tree.insert(i));
            } else {
                assert_eq!(dense.remove(i), tree.remove(&i));
            }
            assert_eq!(dense.len(), tree.len());
        }
        assert_eq!(
            dense.iter().collect::<Vec<_>>(),
            tree.iter().copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn full_and_collect() {
        let s = DenseSet::full(70);
        assert_eq!(s.len(), 70);
        let mut out = vec![99; 3];
        s.collect_into(&mut out);
        assert_eq!(out, (0..70).collect::<Vec<_>>());
    }

    #[test]
    fn first_is_the_minimum_member() {
        let mut s = DenseSet::new(200);
        assert_eq!(s.first(), None);
        for i in [150, 70, 3, 64, 199] {
            s.insert(i);
        }
        assert_eq!(s.first(), Some(3));
        s.remove(3);
        assert_eq!(s.first(), Some(64));
        s.remove(64);
        s.remove(70);
        assert_eq!(s.first(), Some(150));
    }

    #[test]
    fn version_changes_only_on_mutation() {
        let mut s = DenseSet::new(10);
        let v0 = s.version();
        assert!(s.insert(3));
        assert_ne!(s.version(), v0);
        let v1 = s.version();
        assert!(!s.insert(3), "duplicate insert");
        assert_eq!(s.version(), v1, "no-op mutations leave the version");
        assert!(!s.remove(7), "absent remove");
        assert_eq!(s.version(), v1);
        assert!(s.remove(3));
        assert_ne!(s.version(), v1);
    }
}
