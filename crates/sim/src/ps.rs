//! Per-job parameter servers.
//!
//! Each DML job gets its own `Hare_Parameter_Server` (Section 6): workers
//! push gradients as they finish a task, and the round's synchronization
//! completes when the slowest worker's push+pull finishes. The transfer
//! times come from the cluster's [`hare_cluster::NetworkModel`], so
//! colocated workers contend for their machine's NIC exactly as in the
//! Fig.-18 bandwidth study.
//!
//! Round admission goes through the relaxed scale-fixed barrier
//! ([`hare_core::QuorumTracker`]): exactly `sync_scale` gradients enter
//! each round's average, and anything beyond — late copies from recovered
//! GPUs, stragglers that lost a speculation race, pushes after the job's
//! last round — is *dropped*, not an error. This is the paper's sync
//! scheme acting as a fault-tolerance mechanism.

use hare_cluster::{Bytes, MachineId, NetworkModel, SimTime};
use hare_core::{Contribution, QuorumTracker};
use serde::{Deserialize, Serialize};

/// Synchronization state of one job.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ParameterServer {
    job: usize,
    param_bytes: Bytes,
    sync_scale: u32,
    rounds: u32,
    /// Round currently collecting gradients.
    round: u32,
    /// (train finish time, worker machine) of this round's pushes.
    pushes: Vec<(SimTime, MachineId)>,
    /// Relaxed scale-fixed admission: `sync_scale` gradients per round.
    quorum: QuorumTracker,
}

/// Completion record of one round's synchronization.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncOutcome {
    /// The round that synchronized.
    pub round: u32,
    /// When the slowest worker finished push+pull (the barrier the next
    /// round waits for).
    pub done_at: SimTime,
    /// True when this was the job's final round.
    pub job_complete: bool,
}

impl ParameterServer {
    /// A PS for a job with `sync_scale` workers per round and `rounds`
    /// rounds, shipping `param_bytes` of FP32 parameters.
    pub fn new(job: usize, sync_scale: u32, rounds: u32, param_bytes: Bytes) -> Self {
        assert!(sync_scale > 0 && rounds > 0);
        ParameterServer {
            job,
            param_bytes,
            sync_scale,
            rounds,
            round: 0,
            pushes: Vec::with_capacity(sync_scale as usize),
            quorum: QuorumTracker::new(sync_scale),
        }
    }

    /// Job this PS belongs to.
    pub fn job(&self) -> usize {
        self.job
    }

    /// Round currently collecting gradients.
    pub fn current_round(&self) -> u32 {
        self.round
    }

    /// Gradients still missing from the current round (0 once the job has
    /// no round left to fill).
    pub fn missing(&self) -> u32 {
        if self.round >= self.rounds {
            0
        } else {
            self.sync_scale - self.pushes.len() as u32
        }
    }

    /// Total gradients accepted into round averages so far.
    pub fn accepted(&self) -> u64 {
        self.quorum.accepted()
    }

    /// Gradients dropped by the relaxed quorum (late duplicates, pushes
    /// after the final round).
    pub fn dropped(&self) -> u64 {
        self.quorum.dropped()
    }

    /// A worker finished training a task of the current round at `at` on
    /// `machine`. When this was the round's last push, returns the sync
    /// outcome and advances to the next round.
    pub fn push_gradient(
        &mut self,
        at: SimTime,
        machine: MachineId,
        net: &NetworkModel,
    ) -> Option<SyncOutcome> {
        self.push_gradient_contended(at, machine, net, 0)
    }

    /// Like [`ParameterServer::push_gradient`], with `extra_flows` other
    /// jobs' gradient flows contending on the network (the engine passes
    /// the number of concurrently synchronizing jobs).
    pub fn push_gradient_contended(
        &mut self,
        at: SimTime,
        machine: MachineId,
        net: &NetworkModel,
        extra_flows: u32,
    ) -> Option<SyncOutcome> {
        self.push_gradient_degraded(at, machine, net, extra_flows, &[], 1.0)
    }

    /// Like [`ParameterServer::push_gradient_contended`], under NIC
    /// degradation: `machine_factors` / `backbone` are forwarded to
    /// [`NetworkModel::round_sync_times_degraded`] when this push closes
    /// the round. A push beyond the job's rounds is dropped by the quorum
    /// and returns `None` (count via [`ParameterServer::dropped`]).
    pub fn push_gradient_degraded(
        &mut self,
        at: SimTime,
        machine: MachineId,
        net: &NetworkModel,
        extra_flows: u32,
        machine_factors: &[f64],
        backbone: f64,
    ) -> Option<SyncOutcome> {
        let completes = match self.quorum.offer(self.round < self.rounds) {
            Contribution::Dropped => return None,
            Contribution::Accepted { completes_round } => completes_round,
        };
        self.pushes.push((at, machine));
        debug_assert!(self.pushes.len() <= self.sync_scale as usize);
        if !completes {
            return None;
        }

        // All gradients of the round are in: each worker's sync spans
        // [train finish, finish + its transfer time], and the barrier is
        // the slowest worker.
        let machines: Vec<MachineId> = self.pushes.iter().map(|&(_, m)| m).collect();
        let times = net.round_sync_times_degraded(
            self.param_bytes,
            &machines,
            extra_flows,
            machine_factors,
            backbone,
        );
        let done_at = self
            .pushes
            .iter()
            .zip(&times)
            .map(|(&(t, _), &d)| t + d)
            .max()
            .expect("non-empty round");

        let round = self.round;
        self.round += 1;
        self.pushes.clear();
        Some(SyncOutcome {
            round,
            done_at,
            job_complete: self.round == self.rounds,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn net() -> NetworkModel {
        NetworkModel::default()
    }

    #[test]
    fn barrier_waits_for_all_workers() {
        let mut ps = ParameterServer::new(0, 3, 2, Bytes::mib(100));
        let n = net();
        assert_eq!(ps.missing(), 3);
        assert!(ps
            .push_gradient(SimTime::from_secs(1), MachineId(0), &n)
            .is_none());
        assert_eq!(ps.missing(), 2);
        assert!(ps
            .push_gradient(SimTime::from_secs(2), MachineId(1), &n)
            .is_none());
        let out = ps
            .push_gradient(SimTime::from_secs(5), MachineId(2), &n)
            .expect("third push completes the round");
        assert_eq!(out.round, 0);
        assert!(!out.job_complete);
        assert!(out.done_at > SimTime::from_secs(5));
        assert_eq!(ps.current_round(), 1);
        assert_eq!(ps.accepted(), 3);
    }

    #[test]
    fn final_round_flags_completion() {
        let mut ps = ParameterServer::new(3, 1, 1, Bytes::mib(10));
        let out = ps
            .push_gradient(SimTime::from_secs(4), MachineId(0), &net())
            .unwrap();
        assert!(out.job_complete);
    }

    #[test]
    fn colocated_workers_sync_slower() {
        let n = net();
        let run = |machines: [MachineId; 2]| {
            let mut ps = ParameterServer::new(0, 2, 1, Bytes::mib(200));
            ps.push_gradient(SimTime::ZERO, machines[0], &n);
            ps.push_gradient(SimTime::ZERO, machines[1], &n)
                .unwrap()
                .done_at
        };
        let spread = run([MachineId(0), MachineId(1)]);
        let packed = run([MachineId(0), MachineId(0)]);
        assert!(packed > spread, "NIC sharing must slow the barrier");
    }

    #[test]
    fn extra_push_is_dropped_by_quorum() {
        // Two rounds of one worker, then a stray third push — a late
        // duplicate from a recovered GPU or a lost speculation race. The
        // relaxed quorum drops it instead of corrupting PS state.
        let mut ps = ParameterServer::new(0, 1, 2, Bytes::mib(1));
        let n = net();
        assert!(ps.push_gradient(SimTime::ZERO, MachineId(0), &n).is_some());
        assert!(ps.push_gradient(SimTime::ZERO, MachineId(0), &n).is_some());
        assert!(ps.push_gradient(SimTime::ZERO, MachineId(0), &n).is_none());
        assert_eq!(ps.dropped(), 1);
        assert_eq!(ps.accepted(), 2);
        assert_eq!(ps.current_round(), 2);
        assert_eq!(ps.missing(), 0);
    }

    #[test]
    fn degraded_push_slows_the_barrier() {
        let n = net();
        let run = |factors: &[f64]| {
            let mut ps = ParameterServer::new(0, 2, 1, Bytes::mib(200));
            ps.push_gradient_degraded(SimTime::ZERO, MachineId(0), &n, 0, factors, 1.0);
            ps.push_gradient_degraded(SimTime::ZERO, MachineId(1), &n, 0, factors, 1.0)
                .unwrap()
                .done_at
        };
        assert!(run(&[0.2, 1.0]) > run(&[]), "a cut NIC must slow the sync");
    }
}
