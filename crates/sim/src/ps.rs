//! Per-job parameter servers.
//!
//! Each DML job gets its own `Hare_Parameter_Server` (Section 6): workers
//! push gradients as they finish a task, and the round's synchronization
//! completes when the slowest worker's push+pull finishes. The transfer
//! times come from the cluster's [`hare_cluster::NetworkModel`], so
//! colocated workers contend for their machine's NIC exactly as in the
//! Fig.-18 bandwidth study.

use hare_cluster::{Bytes, MachineId, NetworkModel, SimTime};
use serde::{Deserialize, Serialize};

/// Synchronization state of one job.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ParameterServer {
    job: usize,
    param_bytes: Bytes,
    sync_scale: u32,
    rounds: u32,
    /// Round currently collecting gradients.
    round: u32,
    /// (train finish time, worker machine) of this round's pushes.
    pushes: Vec<(SimTime, MachineId)>,
}

/// Completion record of one round's synchronization.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncOutcome {
    /// The round that synchronized.
    pub round: u32,
    /// When the slowest worker finished push+pull (the barrier the next
    /// round waits for).
    pub done_at: SimTime,
    /// True when this was the job's final round.
    pub job_complete: bool,
}

impl ParameterServer {
    /// A PS for a job with `sync_scale` workers per round and `rounds`
    /// rounds, shipping `param_bytes` of FP32 parameters.
    pub fn new(job: usize, sync_scale: u32, rounds: u32, param_bytes: Bytes) -> Self {
        assert!(sync_scale > 0 && rounds > 0);
        ParameterServer {
            job,
            param_bytes,
            sync_scale,
            rounds,
            round: 0,
            pushes: Vec::with_capacity(sync_scale as usize),
        }
    }

    /// Job this PS belongs to.
    pub fn job(&self) -> usize {
        self.job
    }

    /// Round currently collecting gradients.
    pub fn current_round(&self) -> u32 {
        self.round
    }

    /// A worker finished training a task of the current round at `at` on
    /// `machine`. When this was the round's last push, returns the sync
    /// outcome and advances to the next round.
    pub fn push_gradient(
        &mut self,
        at: SimTime,
        machine: MachineId,
        net: &NetworkModel,
    ) -> Option<SyncOutcome> {
        self.push_gradient_contended(at, machine, net, 0)
    }

    /// Like [`ParameterServer::push_gradient`], with `extra_flows` other
    /// jobs' gradient flows contending on the network (the engine passes
    /// the number of concurrently synchronizing jobs).
    pub fn push_gradient_contended(
        &mut self,
        at: SimTime,
        machine: MachineId,
        net: &NetworkModel,
        extra_flows: u32,
    ) -> Option<SyncOutcome> {
        assert!(
            self.round < self.rounds,
            "push after job {} completed",
            self.job
        );
        self.pushes.push((at, machine));
        assert!(
            self.pushes.len() <= self.sync_scale as usize,
            "job {}: more pushes than workers in round {}",
            self.job,
            self.round
        );
        if self.pushes.len() < self.sync_scale as usize {
            return None;
        }

        // All gradients of the round are in: each worker's sync spans
        // [train finish, finish + its transfer time], and the barrier is
        // the slowest worker.
        let machines: Vec<MachineId> = self.pushes.iter().map(|&(_, m)| m).collect();
        let times = net.round_sync_times_contended(self.param_bytes, &machines, extra_flows);
        let done_at = self
            .pushes
            .iter()
            .zip(&times)
            .map(|(&(t, _), &d)| t + d)
            .max()
            .expect("non-empty round");

        let round = self.round;
        self.round += 1;
        self.pushes.clear();
        Some(SyncOutcome {
            round,
            done_at,
            job_complete: self.round == self.rounds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetworkModel {
        NetworkModel::default()
    }

    #[test]
    fn barrier_waits_for_all_workers() {
        let mut ps = ParameterServer::new(0, 3, 2, Bytes::mib(100));
        let n = net();
        assert!(ps
            .push_gradient(SimTime::from_secs(1), MachineId(0), &n)
            .is_none());
        assert!(ps
            .push_gradient(SimTime::from_secs(2), MachineId(1), &n)
            .is_none());
        let out = ps
            .push_gradient(SimTime::from_secs(5), MachineId(2), &n)
            .expect("third push completes the round");
        assert_eq!(out.round, 0);
        assert!(!out.job_complete);
        assert!(out.done_at > SimTime::from_secs(5));
        assert_eq!(ps.current_round(), 1);
    }

    #[test]
    fn final_round_flags_completion() {
        let mut ps = ParameterServer::new(3, 1, 1, Bytes::mib(10));
        let out = ps
            .push_gradient(SimTime::from_secs(4), MachineId(0), &net())
            .unwrap();
        assert!(out.job_complete);
    }

    #[test]
    fn colocated_workers_sync_slower() {
        let n = net();
        let run = |machines: [MachineId; 2]| {
            let mut ps = ParameterServer::new(0, 2, 1, Bytes::mib(200));
            ps.push_gradient(SimTime::ZERO, machines[0], &n);
            ps.push_gradient(SimTime::ZERO, machines[1], &n)
                .unwrap()
                .done_at
        };
        let spread = run([MachineId(0), MachineId(1)]);
        let packed = run([MachineId(0), MachineId(0)]);
        assert!(packed > spread, "NIC sharing must slow the barrier");
    }

    #[test]
    #[should_panic(expected = "push after job")]
    fn extra_push_panics() {
        let mut ps = ParameterServer::new(0, 1, 2, Bytes::mib(1));
        let n = net();
        // Round 0 completes on the first push; a stray second push for the
        // same round would be a simulator bug... but push_gradient advances
        // rounds, so emulate the bug by pushing three times for 2 rounds of
        // 1 worker: the third push targets a finished job.
        ps.push_gradient(SimTime::ZERO, MachineId(0), &n);
        ps.push_gradient(SimTime::ZERO, MachineId(0), &n);
        ps.push_gradient(SimTime::ZERO, MachineId(0), &n);
    }
}
