//! Execution tracing: a zero-cost-when-disabled hook layer over the
//! simulator (and, via the baselines, the solver), plus a Chrome
//! trace-event JSON exporter loadable in Perfetto / `chrome://tracing`.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disabled.** The engine holds an
//!    `Option<SinkHandle>`; every hook is a single `if let Some(..)`
//!    branch on the event path, and the default is `None`. The
//!    `sim_report --smoke` benchmark guards this (see BENCH_sim.json).
//! 2. **Determinism.** Sinks are fed in event-handling order, which the
//!    engine already fixes bit-exactly. Solver spans use a *work-unit*
//!    clock (pivots, B&B nodes), never wall-clock, so traces are
//!    reproducible across machines and thread counts.
//! 3. **Golden fixtures untouched.** Tracing never feeds back into the
//!    simulation: a sink only observes. The golden-snapshot suite runs
//!    once with a live sink attached to prove report bytes are unchanged.
//!
//! The Chrome trace-event format reference is the "Trace Event Format"
//! document; we emit only `"X"` (complete), `"i"` (instant) and `"M"`
//! (metadata) phases, which every viewer understands.

use hare_cluster::{SimDuration, SimTime};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Which phase of a task's life a span covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskPhase {
    /// Model switching (stop + fetch + resume) before training starts.
    Switch,
    /// The training computation itself.
    Train,
}

/// A point event on the simulation clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimInstant {
    /// A job entered the system.
    JobArrival {
        /// Job index.
        job: usize,
    },
    /// A job finished its final synchronization round.
    JobComplete {
        /// Job index.
        job: usize,
    },
    /// A running task was preempted before finishing.
    Preempt {
        /// Task index.
        task: usize,
    },
    /// A GPU failed.
    GpuFailure,
    /// A failed GPU came back.
    GpuRecovery,
}

/// Observer interface for simulation and solver activity.
///
/// Every method has a no-op default, so a sink implements only what it
/// cares about. Methods take `&self`: sinks use interior mutability and
/// must be thread-safe (`Send + Sync`) because the parallel experiment
/// harness shares them across runs.
pub trait TraceSink: Send + Sync {
    /// A task occupied `gpu` from `from` to `to` in the given phase.
    fn task_span(
        &self,
        phase: TaskPhase,
        gpu: usize,
        task: usize,
        job: usize,
        from: SimTime,
        to: SimTime,
    ) {
        let _ = (phase, gpu, task, job, from, to);
    }

    /// Job `job` synchronized round `round` from `from` to `to`.
    fn sync_span(&self, job: usize, round: usize, from: SimTime, to: SimTime) {
        let _ = (job, round, from, to);
    }

    /// A point event, optionally pinned to a GPU track.
    fn instant(&self, what: SimInstant, gpu: Option<usize>, at: SimTime) {
        let _ = (what, gpu, at);
    }

    /// The online scheduler replanned at `at`; the chosen plan came from
    /// `rung` after `work` solver work units, charged as `latency` on the
    /// simulation clock.
    fn replan(&self, at: SimTime, latency: SimDuration, rung: &str, work: u64) {
        let _ = (at, latency, rung, work);
    }

    /// A solver phase ran from `start_work` to `end_work` on the solver's
    /// deterministic work-unit clock, anchored at simulation time
    /// `anchor`. `detail` is phase-specific (cut round, branch index,
    /// rung outcome, ...).
    fn solver_span(
        &self,
        phase: &str,
        anchor: SimTime,
        start_work: u64,
        end_work: u64,
        detail: u64,
    ) {
        let _ = (phase, anchor, start_work, end_work, detail);
    }
}

/// A sink that ignores everything. Exists so call sites can be written
/// against a concrete type in tests; the engine itself uses `None`
/// rather than a boxed no-op, keeping the disabled path branch-only.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {}

/// Shared, clonable handle to a sink. The engine stores this instead of
/// a bare `Arc<dyn TraceSink>` so `Simulation` can keep deriving
/// `Debug`/`Clone`.
#[derive(Clone)]
pub(crate) struct SinkHandle(pub(crate) Arc<dyn TraceSink>);

impl std::fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SinkHandle(..)")
    }
}

impl std::ops::Deref for SinkHandle {
    type Target = dyn TraceSink;
    fn deref(&self) -> &Self::Target {
        &*self.0
    }
}

/// One buffered trace event, already resolved to Chrome trace fields.
#[derive(Clone, Debug)]
struct TraceEvent {
    name: String,
    cat: &'static str,
    /// 'X' (complete) or 'i' (instant).
    ph: char,
    pid: u32,
    tid: u64,
    /// Microseconds.
    ts: u64,
    /// Microseconds; only meaningful for 'X'.
    dur: u64,
    /// Pre-rendered JSON fragments, e.g. `("job", "3")`.
    args: Vec<(&'static str, String)>,
}

/// The simulator process in the exported trace.
const PID_SIM: u32 = 0;
/// The solver process in the exported trace.
const PID_SOLVER: u32 = 1;
/// Simulator-track offset for per-job synchronization rows.
const TID_SYNC_BASE: u64 = 10_000;
/// Simulator track for instants not tied to a GPU or a job.
const TID_MISC: u64 = 9_999;

/// A [`TraceSink`] that buffers everything and renders Chrome
/// trace-event JSON (an object with a `traceEvents` array), loadable in
/// Perfetto or `chrome://tracing`.
///
/// Layout: pid 0 is the simulator — one thread row per GPU, plus one
/// row per job for synchronization spans; pid 1 is the solver, whose
/// spans live on a deterministic work-unit clock rendered as
/// microseconds after the anchoring simulation time.
#[derive(Debug, Default)]
pub struct ChromeTraceSink {
    events: Mutex<Vec<TraceEvent>>,
}

impl ChromeTraceSink {
    /// An empty sink.
    pub fn new() -> ChromeTraceSink {
        ChromeTraceSink::default()
    }

    fn push(&self, ev: TraceEvent) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(ev);
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render the buffered events as Chrome trace-event JSON. Metadata
    /// events naming processes and threads come first, then the payload
    /// in recording order.
    pub fn to_chrome_json(&self) -> String {
        let events = self.events.lock().unwrap_or_else(|e| e.into_inner());
        let mut s = String::with_capacity(4096 + events.len() * 128);
        s.push_str("{\"traceEvents\":[");
        let mut first = true;
        let mut meta = |s: &mut String, name: &str, pid: u32, tid: Option<u64>, label: &str| {
            if !std::mem::take(&mut first) {
                s.push(',');
            }
            let _ = write!(s, "{{\"name\":{name:?},\"ph\":\"M\",\"pid\":{pid}");
            if let Some(t) = tid {
                let _ = write!(s, ",\"tid\":{t}");
            }
            let _ = write!(s, ",\"args\":{{\"name\":{label:?}}}}}");
        };
        meta(&mut s, "process_name", PID_SIM, None, "simulator");
        meta(&mut s, "process_name", PID_SOLVER, None, "solver");
        // Name every distinct simulator thread row we actually used.
        let mut tids: Vec<(u32, u64)> = events.iter().map(|e| (e.pid, e.tid)).collect();
        tids.sort_unstable();
        tids.dedup();
        for (pid, tid) in tids {
            let label = match (pid, tid) {
                (PID_SOLVER, _) => "solver".to_string(),
                (_, TID_MISC) => "events".to_string(),
                (_, t) if t >= TID_SYNC_BASE => format!("job {} sync", t - TID_SYNC_BASE),
                (_, t) => format!("gpu {t}"),
            };
            meta(&mut s, "thread_name", pid, Some(tid), &label);
        }
        for ev in events.iter() {
            s.push(',');
            let _ = write!(
                s,
                "{{\"name\":{:?},\"cat\":{:?},\"ph\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{}",
                ev.name, ev.cat, ev.ph, ev.pid, ev.tid, ev.ts
            );
            if ev.ph == 'X' {
                let _ = write!(s, ",\"dur\":{}", ev.dur);
            }
            if ev.ph == 'i' {
                // Thread-scoped instants render as small arrows.
                s.push_str(",\"s\":\"t\"");
            }
            s.push_str(",\"args\":{");
            for (i, (k, v)) in ev.args.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{k:?}:{v}");
            }
            s.push_str("}}");
        }
        s.push_str("]}");
        s
    }
}

impl TraceSink for ChromeTraceSink {
    fn task_span(
        &self,
        phase: TaskPhase,
        gpu: usize,
        task: usize,
        job: usize,
        from: SimTime,
        to: SimTime,
    ) {
        let (name, cat) = match phase {
            TaskPhase::Switch => (format!("switch j{job}/t{task}"), "switch"),
            TaskPhase::Train => (format!("train j{job}/t{task}"), "train"),
        };
        self.push(TraceEvent {
            name,
            cat,
            ph: 'X',
            pid: PID_SIM,
            tid: gpu as u64,
            ts: from.as_micros(),
            dur: to.saturating_since(from).as_micros(),
            args: vec![("job", job.to_string()), ("task", task.to_string())],
        });
    }

    fn sync_span(&self, job: usize, round: usize, from: SimTime, to: SimTime) {
        self.push(TraceEvent {
            name: format!("sync j{job} r{round}"),
            cat: "sync",
            ph: 'X',
            pid: PID_SIM,
            tid: TID_SYNC_BASE + job as u64,
            ts: from.as_micros(),
            dur: to.saturating_since(from).as_micros(),
            args: vec![("job", job.to_string()), ("round", round.to_string())],
        });
    }

    fn instant(&self, what: SimInstant, gpu: Option<usize>, at: SimTime) {
        let (name, args): (String, Vec<(&'static str, String)>) = match what {
            SimInstant::JobArrival { job } => {
                (format!("arrive j{job}"), vec![("job", job.to_string())])
            }
            SimInstant::JobComplete { job } => {
                (format!("complete j{job}"), vec![("job", job.to_string())])
            }
            SimInstant::Preempt { task } => {
                (format!("preempt t{task}"), vec![("task", task.to_string())])
            }
            SimInstant::GpuFailure => ("gpu failure".to_string(), vec![]),
            SimInstant::GpuRecovery => ("gpu recovery".to_string(), vec![]),
        };
        let tid = match (gpu, what) {
            (Some(g), _) => g as u64,
            (None, SimInstant::JobArrival { job } | SimInstant::JobComplete { job }) => {
                TID_SYNC_BASE + job as u64
            }
            (None, _) => TID_MISC,
        };
        self.push(TraceEvent {
            name,
            cat: "lifecycle",
            ph: 'i',
            pid: PID_SIM,
            tid,
            ts: at.as_micros(),
            dur: 0,
            args,
        });
    }

    fn replan(&self, at: SimTime, latency: SimDuration, rung: &str, work: u64) {
        self.push(TraceEvent {
            name: format!("replan ({rung})"),
            cat: "replan",
            ph: 'X',
            pid: PID_SOLVER,
            tid: 0,
            ts: at.as_micros(),
            dur: latency.as_micros(),
            args: vec![("work", work.to_string()), ("rung", format!("{rung:?}"))],
        });
    }

    fn solver_span(
        &self,
        phase: &str,
        anchor: SimTime,
        start_work: u64,
        end_work: u64,
        detail: u64,
    ) {
        self.push(TraceEvent {
            name: phase.to_string(),
            cat: "solver",
            ph: 'X',
            pid: PID_SOLVER,
            tid: 0,
            // Work units rendered as microseconds past the anchor: the
            // absolute positions are fictitious but ordering and nesting
            // are exact and deterministic.
            ts: anchor.as_micros() + start_work,
            dur: end_work.saturating_sub(start_work),
            args: vec![("detail", detail.to_string())],
        });
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn chrome_export_is_valid_json_with_expected_events() {
        let sink = ChromeTraceSink::new();
        sink.task_span(
            TaskPhase::Switch,
            0,
            3,
            1,
            SimTime::from_secs(1),
            SimTime::from_secs(2),
        );
        sink.task_span(
            TaskPhase::Train,
            0,
            3,
            1,
            SimTime::from_secs(2),
            SimTime::from_secs(5),
        );
        sink.sync_span(1, 0, SimTime::from_secs(5), SimTime::from_secs(6));
        sink.instant(SimInstant::GpuFailure, Some(2), SimTime::from_secs(4));
        sink.instant(SimInstant::JobArrival { job: 1 }, None, SimTime::ZERO);
        sink.replan(
            SimTime::from_secs(3),
            SimDuration::from_micros(250),
            "relaxation",
            40,
        );
        sink.solver_span("lp_round", SimTime::from_secs(3), 0, 40, 1);
        assert_eq!(sink.len(), 7);

        let json = sink.to_chrome_json();
        let v = serde_json::from_str(&json).expect("chrome trace parses");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        // 7 payload events plus metadata.
        assert!(events.len() > 7);
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
            .collect();
        assert!(names.contains(&"train j1/t3"));
        assert!(names.contains(&"sync j1 r0"));
        assert!(names.contains(&"replan (relaxation)"));
        assert!(names.contains(&"lp_round"));
        // Train span timing survives the round trip.
        let train = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("train j1/t3"))
            .unwrap();
        assert_eq!(train.get("ts").unwrap().as_u64(), Some(2_000_000));
        assert_eq!(train.get("dur").unwrap().as_u64(), Some(3_000_000));
        assert_eq!(train.get("pid").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn empty_sink_still_exports_valid_json() {
        let sink = ChromeTraceSink::new();
        assert!(sink.is_empty());
        let json = sink.to_chrome_json();
        assert!(serde_json::from_str(&json).is_ok());
    }

    #[test]
    fn noop_sink_accepts_everything() {
        let sink = NoopSink;
        sink.task_span(
            TaskPhase::Train,
            0,
            0,
            0,
            SimTime::ZERO,
            SimTime::from_secs(1),
        );
        sink.instant(SimInstant::GpuRecovery, None, SimTime::ZERO);
        sink.replan(SimTime::ZERO, SimDuration::ZERO, "greedy", 1);
    }
}
