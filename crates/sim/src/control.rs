//! Scheduler ↔ executor control plane (Section 6).
//!
//! The prototype's scheduler ships task sequences to executors and receives
//! gradient/completion notifications over gRPC. This module reproduces the
//! message vocabulary and a deterministic in-process transport built on
//! std mpsc channels: the scheduler broadcasts each GPU's task sequence,
//! executor threads acknowledge and stream back per-task completion
//! notices. The discrete-event engine itself stays single-threaded (for
//! determinism); this layer exists so the control protocol is real,
//! testable code rather than an abstraction note.

use hare_core::Schedule;
use serde::{Deserialize, Serialize};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread;

/// Messages the scheduler sends to executors.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerMsg {
    /// The ordered task sequence one executor must run.
    TaskSequence {
        /// Target GPU.
        gpu: usize,
        /// Task indices in execution order.
        tasks: Vec<usize>,
    },
    /// Graceful shutdown.
    Shutdown,
}

/// Messages executors send back.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutorMsg {
    /// Sequence received and validated.
    SequenceAck {
        /// Acknowledging GPU.
        gpu: usize,
        /// Number of tasks accepted.
        accepted: usize,
    },
    /// One task's gradients were pushed to the PS.
    GradientPushed {
        /// Reporting GPU.
        gpu: usize,
        /// Completed task.
        task: usize,
    },
    /// Executor exited.
    Stopped {
        /// The GPU whose executor stopped.
        gpu: usize,
    },
}

/// Result of a control-plane round trip.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlLog {
    /// Sequence acknowledgements received, by GPU.
    pub acks: Vec<(usize, usize)>,
    /// Gradient notifications in arrival order.
    pub gradients: Vec<(usize, usize)>,
    /// Executors that stopped.
    pub stopped: Vec<usize>,
    /// Executors that were down at broadcast time (their sequences were
    /// reassigned instead of shipped).
    pub lost: Vec<usize>,
    /// `(task, survivor)` reassignments of orphaned work.
    pub reassigned: Vec<(usize, usize)>,
}

/// Broadcast a schedule's per-GPU sequences to one executor thread per GPU
/// and collect every notification until all executors stop.
///
/// Each executor validates its sequence (strictly increasing *planned*
/// order is already guaranteed by construction), acks, replays the task
/// list emitting `GradientPushed` per task, then stops. The transport is
/// real mpsc channels across real threads; determinism of the
/// *aggregate* log is restored by sorting notification streams per GPU.
pub fn broadcast_schedule(schedule: &Schedule, problem: &hare_core::SchedProblem) -> ControlLog {
    broadcast_schedule_with_failures(schedule, problem, &[])
}

/// [`broadcast_schedule`] against a cluster where the executors in
/// `failed` are down: their sequences are not shipped — the scheduler
/// reassigns each orphaned task to the least-loaded surviving executor
/// (appended in planned order, so every orphan still executes exactly
/// once) and records the rerouting in [`ControlLog::reassigned`]. Panics
/// if every executor is down (there is nowhere to run the work).
pub fn broadcast_schedule_with_failures(
    schedule: &Schedule,
    problem: &hare_core::SchedProblem,
    failed: &[usize],
) -> ControlLog {
    let mut sequences = schedule.gpu_sequences(problem);
    let mut lost: Vec<usize> = failed
        .iter()
        .copied()
        .filter(|&g| g < sequences.len())
        .collect();
    lost.sort_unstable();
    lost.dedup();
    assert!(
        lost.len() < sequences.len(),
        "no surviving executor to reassign work to"
    );
    let mut reassigned = Vec::new();
    for &g in &lost {
        for task in std::mem::take(&mut sequences[g]) {
            let survivor = (0..sequences.len())
                .filter(|g2| !lost.contains(g2))
                .min_by_key(|&g2| (sequences[g2].len(), g2))
                .expect("a survivor exists");
            sequences[survivor].push(task);
            reassigned.push((task, survivor));
        }
    }
    let mut log = run_broadcast(sequences, &lost);
    log.lost = lost;
    log.reassigned = reassigned;
    log
}

fn run_broadcast(sequences: Vec<Vec<usize>>, lost: &[usize]) -> ControlLog {
    let n = sequences.len();
    let (to_sched, from_exec): (Sender<ExecutorMsg>, Receiver<ExecutorMsg>) = channel();

    let mut handles = Vec::with_capacity(n);
    for (gpu, tasks) in sequences.into_iter().enumerate() {
        if lost.contains(&gpu) {
            continue; // down: nothing to ship, no executor thread
        }
        let tx = to_sched.clone();
        handles.push(thread::spawn(move || {
            // Executor side: receive (here: own) the sequence, ack, run.
            let msg = SchedulerMsg::TaskSequence { gpu, tasks };
            let SchedulerMsg::TaskSequence { gpu, tasks } = msg else {
                unreachable!()
            };
            tx.send(ExecutorMsg::SequenceAck {
                gpu,
                accepted: tasks.len(),
            })
            .expect("scheduler alive");
            for task in tasks {
                tx.send(ExecutorMsg::GradientPushed { gpu, task })
                    .expect("scheduler alive");
            }
            tx.send(ExecutorMsg::Stopped { gpu })
                .expect("scheduler alive");
        }));
    }
    drop(to_sched);

    let mut log = ControlLog::default();
    for msg in from_exec {
        match msg {
            ExecutorMsg::SequenceAck { gpu, accepted } => log.acks.push((gpu, accepted)),
            ExecutorMsg::GradientPushed { gpu, task } => log.gradients.push((gpu, task)),
            ExecutorMsg::Stopped { gpu } => log.stopped.push(gpu),
        }
    }
    for h in handles {
        h.join().expect("executor thread panicked");
    }
    // Thread interleaving is nondeterministic; normalize.
    log.acks.sort_unstable();
    log.gradients.sort_unstable();
    log.stopped.sort_unstable();
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use hare_core::{hare_schedule, SchedProblem};

    #[test]
    fn every_task_is_acknowledged_and_executed() {
        let p = SchedProblem::fig1();
        let out = hare_schedule(&p);
        let log = broadcast_schedule(&out.schedule, &p);
        assert_eq!(log.stopped, (0..3).collect::<Vec<_>>());
        let accepted: usize = log.acks.iter().map(|&(_, a)| a).sum();
        assert_eq!(accepted, p.n_tasks());
        assert_eq!(log.gradients.len(), p.n_tasks());
        // Every task reported exactly once.
        let mut tasks: Vec<usize> = log.gradients.iter().map(|&(_, t)| t).collect();
        tasks.sort_unstable();
        assert_eq!(tasks, (0..p.n_tasks()).collect::<Vec<_>>());
    }

    #[test]
    fn log_is_deterministic_after_normalization() {
        let p = SchedProblem::fig1();
        let out = hare_schedule(&p);
        let a = broadcast_schedule(&out.schedule, &p);
        let b = broadcast_schedule(&out.schedule, &p);
        assert_eq!(a, b);
    }

    #[test]
    fn orphaned_tasks_execute_exactly_once_on_survivors() {
        let p = SchedProblem::fig1();
        let out = hare_schedule(&p);
        let log = broadcast_schedule_with_failures(&out.schedule, &p, &[1]);
        assert_eq!(log.lost, vec![1]);
        // The dead executor never speaks.
        assert!(log.acks.iter().all(|&(g, _)| g != 1));
        assert!(log.gradients.iter().all(|&(g, _)| g != 1));
        assert_eq!(log.stopped, vec![0, 2]);
        // Its whole sequence was rerouted to survivors...
        let orphans = out.schedule.gpu_sequences(&p)[1].clone();
        let mut rerouted: Vec<usize> = log.reassigned.iter().map(|&(t, _)| t).collect();
        rerouted.sort_unstable();
        let mut expected = orphans.clone();
        expected.sort_unstable();
        assert_eq!(rerouted, expected);
        assert!(log.reassigned.iter().all(|&(_, g)| g != 1));
        // ...and every task of the problem still executed exactly once.
        let mut tasks: Vec<usize> = log.gradients.iter().map(|&(_, t)| t).collect();
        tasks.sort_unstable();
        assert_eq!(tasks, (0..p.n_tasks()).collect::<Vec<_>>());
        // Deterministic under failures too.
        let again = broadcast_schedule_with_failures(&out.schedule, &p, &[1]);
        assert_eq!(log, again);
    }
}
