//! Bridge from workload traces to scheduling problems.
//!
//! The paper's preparation stage (Section 3) profiles every (job, GPU kind)
//! pair and feeds expected task times to the scheduling algorithm. This
//! module reproduces that stage: it turns a [`JobSpec`] trace plus a
//! [`Cluster`] and a [`ProfileDb`] into a [`SchedProblem`] (expected times)
//! bundled with the per-job model metadata the simulator needs to realize
//! actual times, switching costs and synchronization traffic.

use hare_cluster::{Cluster, SimDuration};
use hare_core::{JobInfo, SchedProblem};
use hare_workload::{JobSpec, ModelKind, ProfileDb};
use serde::{Deserialize, Serialize};
use std::ops::Range;
use std::sync::OnceLock;

/// A scheduling problem plus everything needed to *execute* it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimWorkload {
    /// The cluster (GPU kinds, machines, network).
    pub cluster: Cluster,
    /// Expected-time scheduling problem (what schedulers see).
    pub problem: SchedProblem,
    /// Original job specs, index-aligned with `problem.jobs`.
    pub specs: Vec<JobSpec>,
    /// Lazily-computed first-task index of each job (tasks are dense and
    /// job-major), so [`SimWorkload::round_range`] is O(1) where
    /// [`SchedProblem::round_tasks`] rescans every job. Excluded from
    /// serialization — it is derived state, rebuilt on first use.
    #[serde(skip)]
    job_base: OnceLock<Vec<usize>>,
}

impl SimWorkload {
    /// Build the preparation-stage output for a trace.
    ///
    /// Per job and GPU: expected task training time = profiled batch time ×
    /// batches-per-task; expected sync time = one push + one pull of the
    /// gradient payload over an uncontended NIC share (the scheduler cannot
    /// know the actual colocation in advance — the simulator charges the
    /// real, contended time).
    pub fn build(cluster: Cluster, specs: Vec<JobSpec>, db: &ProfileDb) -> SimWorkload {
        assert!(!specs.is_empty(), "empty trace");
        let net = *cluster.network();
        let jobs: Vec<JobInfo> = specs
            .iter()
            .map(|spec| {
                let train: Vec<SimDuration> = cluster
                    .gpus()
                    .iter()
                    .map(|g| {
                        let profile = db.profile(spec.model, g.kind, spec.batch_size);
                        profile.batch_time * spec.batches_per_task as u64
                    })
                    .collect();
                let payload = net.payload(spec.model.spec().param_bytes);
                let single_flow = net.nic.mul_f64(net.efficiency).transfer_time(payload) * 2;
                let sync: Vec<SimDuration> = cluster.gpus().iter().map(|_| single_flow).collect();
                JobInfo {
                    weight: spec.weight,
                    arrival: spec.arrival,
                    rounds: spec.rounds,
                    sync_scale: spec.sync_scale,
                    train,
                    sync,
                }
            })
            .collect();
        let problem = SchedProblem::new(cluster.gpu_count(), jobs);
        SimWorkload {
            cluster,
            problem,
            specs,
            job_base: OnceLock::new(),
        }
    }

    /// First-task index of every job, computed once.
    fn job_bases(&self) -> &[usize] {
        self.job_base.get_or_init(|| {
            let mut bases = Vec::with_capacity(self.problem.jobs.len());
            let mut base = 0usize;
            for j in &self.problem.jobs {
                bases.push(base);
                base += (j.rounds * j.sync_scale) as usize;
            }
            bases
        })
    }

    /// Task-index range of one `(job, round)`, in slot order — the O(1)
    /// equivalent of [`SchedProblem::round_tasks`], which the engine and
    /// online scheduler call on every sync completion.
    pub fn round_range(&self, job: usize, round: u32) -> Range<usize> {
        let info = &self.problem.jobs[job];
        let start = self.job_bases()[job] + (round * info.sync_scale) as usize;
        start..start + info.sync_scale as usize
    }

    /// Model trained by a job.
    pub fn model_of(&self, job: usize) -> ModelKind {
        self.specs[job].model
    }

    /// Model trained by a task.
    pub fn task_model(&self, task: usize) -> ModelKind {
        self.model_of(self.problem.tasks[task].job)
    }

    /// Duration of one training *step* (mini-batch) of a task on a GPU —
    /// the granularity early task cleaning operates at.
    pub fn step_time(&self, task: usize, gpu: usize) -> SimDuration {
        let job = self.problem.tasks[task].job;
        self.problem.train(task, gpu) / self.specs[job].batches_per_task.max(1) as u64
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use hare_cluster::GpuKind;
    use hare_workload::{testbed_trace, JobId};

    fn workload() -> SimWorkload {
        let db = ProfileDb::with_noise(1, 0.0);
        SimWorkload::build(Cluster::testbed15(), testbed_trace(7), &db)
    }

    #[test]
    fn problem_matches_trace_shape() {
        let w = workload();
        assert_eq!(w.problem.jobs.len(), 40);
        assert_eq!(w.problem.n_gpus, 15);
        assert!(w.problem.validate().is_ok());
        let expected: usize = w
            .specs
            .iter()
            .map(|s| (s.rounds * s.sync_scale) as usize)
            .sum();
        assert_eq!(w.problem.n_tasks(), expected);
    }

    #[test]
    fn times_follow_gpu_kind() {
        let w = workload();
        // Every V100 column must be strictly faster than the K80 column
        // for every job (the profile is kind-level).
        let v100 = w
            .cluster
            .gpus()
            .iter()
            .position(|g| g.kind == GpuKind::V100)
            .unwrap();
        let k80 = w
            .cluster
            .gpus()
            .iter()
            .position(|g| g.kind == GpuKind::K80)
            .unwrap();
        for job in &w.problem.jobs {
            assert!(job.train[v100] < job.train[k80]);
        }
    }

    #[test]
    fn same_kind_gpus_have_equal_expected_times() {
        let w = workload();
        let v100s: Vec<usize> = w
            .cluster
            .gpus()
            .iter()
            .filter(|g| g.kind == GpuKind::V100)
            .map(|g| g.id.index())
            .collect();
        for job in &w.problem.jobs {
            for pair in v100s.windows(2) {
                assert_eq!(job.train[pair[0]], job.train[pair[1]]);
            }
        }
    }

    #[test]
    fn sync_stays_below_training() {
        // SchedProblem::new would panic otherwise; check explicitly too.
        let w = workload();
        for job in &w.problem.jobs {
            let t_min = job.train.iter().min().unwrap();
            let s_max = job.sync.iter().max().unwrap();
            assert!(s_max <= t_min);
        }
    }

    #[test]
    fn step_time_divides_task_time() {
        let w = workload();
        let t0 = 0usize;
        let job = w.problem.tasks[t0].job;
        let steps = w.specs[job].batches_per_task as u64;
        let full = w.problem.train(t0, 0);
        assert_eq!(
            w.step_time(t0, 0) * steps,
            SimDuration::from_micros(full.as_micros() / steps * steps)
        );
    }

    #[test]
    fn round_range_matches_round_tasks() {
        let w = workload();
        for (job, info) in w.problem.jobs.iter().enumerate() {
            for round in [0, info.rounds / 2, info.rounds - 1] {
                let range = w.round_range(job, round);
                assert_eq!(
                    range.collect::<Vec<_>>(),
                    w.problem.round_tasks(job, round),
                    "job {job} round {round}"
                );
            }
        }
    }

    #[test]
    fn specs_align_with_jobs() {
        let w = workload();
        for (i, spec) in w.specs.iter().enumerate() {
            assert_eq!(spec.id, JobId(i as u32));
            assert_eq!(w.problem.jobs[i].arrival, spec.arrival);
            assert_eq!(w.problem.jobs[i].rounds, spec.rounds);
        }
    }
}
