//! Shared checkpoint storage (the HDFS of the paper's Fig. 9).
//!
//! Every job's checkpoint lives in a shared store; an executor that starts
//! a job's task on a *machine that has not touched that job yet* must first
//! fetch the checkpoint over the storage network (Section 6: the working
//! process "loads the checkpoint from storage"). Later tasks of the job on
//! the same machine hit the local copy ("the model structure is small so
//! that we can save it locally"). Concurrent fetches share the store's
//! aggregate read bandwidth.
//!
//! The simulator charges the fetch as part of the first switch onto each
//! machine; with the default aggregate bandwidth the cost is small but
//! visible under cold-start storms — set a lower bandwidth to study
//! storage-bound regimes.

use crate::faults::{finish_over_windows, StorageFault, StorageFaultKind};
use hare_cluster::{Bandwidth, Bytes, MachineId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Shared checkpoint store with machine-local caching.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CheckpointStore {
    /// Aggregate read bandwidth of the store (HDFS datanodes combined).
    pub read_bandwidth: Bandwidth,
    /// (job, machine) pairs that already hold a local copy.
    cached: Vec<(usize, MachineId)>,
    /// Total bytes fetched from the shared store.
    fetched: Bytes,
    /// Fetches served from machine-local copies.
    local_hits: u64,
    /// Outage / latency-spike windows (fault injection) as piecewise
    /// slowdowns: outages stall progress, slowdowns stretch it.
    faults: Vec<(SimTime, SimTime, f64)>,
    /// Extra wall-clock beyond the fault-free fetch times, accumulated.
    stalled: SimDuration,
}

impl Default for CheckpointStore {
    fn default() -> Self {
        // A modest HDFS deployment: ~4 GB/s aggregate read throughput.
        CheckpointStore::new(Bandwidth::gigabytes_per_sec(4.0))
    }
}

impl CheckpointStore {
    /// A store with the given aggregate read bandwidth.
    pub fn new(read_bandwidth: Bandwidth) -> Self {
        CheckpointStore {
            read_bandwidth,
            cached: Vec::new(),
            fetched: Bytes::ZERO,
            local_hits: 0,
            faults: Vec::new(),
            stalled: SimDuration::ZERO,
        }
    }

    /// Install outage / latency-spike windows (the engine passes the fault
    /// plan's storage faults before the run starts).
    pub fn set_faults(&mut self, faults: &[StorageFault]) {
        self.faults = faults
            .iter()
            .map(|f| {
                let slowdown = match f.kind {
                    StorageFaultKind::Outage => f64::INFINITY,
                    StorageFaultKind::Slowdown(s) => s,
                };
                (f.from, f.until, slowdown)
            })
            .collect();
        self.faults.sort_by_key(|&(from, until, _)| (from, until));
    }

    /// Charge a checkpoint access for `job` on `machine`: zero when the
    /// machine already holds a copy, otherwise the shared-bandwidth fetch
    /// time of `bytes` with `concurrent_readers` other fetches in flight.
    /// The copy is cached on the machine afterwards. Equivalent to
    /// [`CheckpointStore::access_at`] at time zero — only correct when no
    /// fault windows are installed.
    pub fn access(
        &mut self,
        job: usize,
        machine: MachineId,
        bytes: Bytes,
        concurrent_readers: u32,
    ) -> SimDuration {
        self.access_at(SimTime::ZERO, job, machine, bytes, concurrent_readers)
    }

    /// [`CheckpointStore::access`] at simulation time `now`: a fetch that
    /// overlaps an outage window stalls until the window closes; one that
    /// overlaps a latency spike is stretched by its slowdown factor
    /// (piecewise, so a fetch can straddle window edges).
    pub fn access_at(
        &mut self,
        now: SimTime,
        job: usize,
        machine: MachineId,
        bytes: Bytes,
        concurrent_readers: u32,
    ) -> SimDuration {
        if self.cached.contains(&(job, machine)) {
            self.local_hits += 1;
            return SimDuration::ZERO;
        }
        self.cached.push((job, machine));
        self.fetched += bytes;
        let clean = self
            .read_bandwidth
            .shared(concurrent_readers + 1)
            .transfer_time(bytes);
        if self.faults.is_empty() {
            return clean;
        }
        let wall = finish_over_windows(&self.faults, now, clean).saturating_since(now);
        self.stalled += wall.saturating_sub(clean);
        wall
    }

    /// A job completed: its checkpoints can be garbage-collected.
    pub fn evict_job(&mut self, job: usize) {
        self.cached.retain(|&(j, _)| j != job);
    }

    /// Total bytes fetched from the shared store so far.
    pub fn fetched(&self) -> Bytes {
        self.fetched
    }

    /// Accesses served machine-locally so far.
    pub fn local_hits(&self) -> u64 {
        self.local_hits
    }

    /// Wall-clock added to fetches by outage / latency windows so far.
    pub fn stalled(&self) -> SimDuration {
        self.stalled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_fetches_then_caches() {
        let mut store = CheckpointStore::default();
        let m = MachineId(0);
        let t1 = store.access(7, m, Bytes::mib(400), 0);
        assert!(t1 > SimDuration::ZERO);
        let t2 = store.access(7, m, Bytes::mib(400), 0);
        assert_eq!(t2, SimDuration::ZERO);
        assert_eq!(store.local_hits(), 1);
        assert_eq!(store.fetched(), Bytes::mib(400));
    }

    #[test]
    fn different_machines_fetch_separately() {
        let mut store = CheckpointStore::default();
        store.access(1, MachineId(0), Bytes::mib(100), 0);
        let t = store.access(1, MachineId(1), Bytes::mib(100), 0);
        assert!(t > SimDuration::ZERO);
        assert_eq!(store.fetched(), Bytes::mib(200));
    }

    #[test]
    fn concurrency_shares_bandwidth() {
        let mut a = CheckpointStore::default();
        let mut b = CheckpointStore::default();
        let lone = a.access(1, MachineId(0), Bytes::gib(1), 0);
        let crowded = b.access(1, MachineId(0), Bytes::gib(1), 7);
        let ratio = crowded.as_micros() as f64 / lone.as_micros() as f64;
        assert!((ratio - 8.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn eviction_forces_refetch() {
        let mut store = CheckpointStore::default();
        store.access(3, MachineId(2), Bytes::mib(50), 0);
        store.evict_job(3);
        let t = store.access(3, MachineId(2), Bytes::mib(50), 0);
        assert!(t > SimDuration::ZERO);
    }

    #[test]
    fn outage_stalls_fetch_until_window_closes() {
        let mut healthy = CheckpointStore::default();
        let clean = healthy.access(1, MachineId(0), Bytes::gib(1), 0);

        let mut store = CheckpointStore::default();
        store.set_faults(&[StorageFault {
            from: SimTime::from_secs(100),
            until: SimTime::from_secs(160),
            kind: StorageFaultKind::Outage,
        }]);
        // Fetch starting inside the outage waits for it to close.
        let stalled = store.access_at(SimTime::from_secs(120), 1, MachineId(0), Bytes::gib(1), 0);
        assert_eq!(stalled, SimDuration::from_secs(40) + clean);
        assert_eq!(store.stalled(), SimDuration::from_secs(40));
        // A fetch clear of the window is unaffected.
        let clear = store.access_at(SimTime::from_secs(500), 1, MachineId(1), Bytes::gib(1), 0);
        assert_eq!(clear, clean);
    }

    #[test]
    fn latency_spike_stretches_fetch() {
        let mut healthy = CheckpointStore::default();
        let clean = healthy.access(1, MachineId(0), Bytes::gib(1), 0);

        let mut store = CheckpointStore::default();
        store.set_faults(&[StorageFault {
            from: SimTime::ZERO,
            until: SimTime::from_secs(10_000),
            kind: StorageFaultKind::Slowdown(3.0),
        }]);
        let slow = store.access_at(SimTime::from_secs(5), 1, MachineId(0), Bytes::gib(1), 0);
        let ratio = slow.as_micros() as f64 / clean.as_micros() as f64;
        assert!((ratio - 3.0).abs() < 0.01, "ratio {ratio}");
    }
}
