//! Deterministic event queue.
//!
//! Events are totally ordered by (time, sequence number): two events at the
//! same instant fire in insertion order, so a simulation is a pure function
//! of its inputs — the property the paper's simulator-vs-testbed validation
//! (Fig. 12) depends on and that all our experiments inherit.
//!
//! The queue is *indexed*: the heap holds only `(time, seq)` keys while the
//! event payloads live in a slab addressed by sequence number. `push`
//! returns the sequence number as a handle, and [`EventQueue::cancel`]
//! tombstones the slot in O(1) — the engine cancels a failed GPU's
//! in-flight occupancy events instead of popping and re-checking them
//! later. Because the (time, seq) key order is untouched by cancellation,
//! the pop order of surviving events is identical to the un-indexed queue's
//! — determinism is preserved bit for bit.

use hare_cluster::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What happened.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A job's arrival time was reached.
    JobArrival {
        /// Job index.
        job: usize,
    },
    /// A GPU finished the switch into a task and starts computing.
    SwitchDone {
        /// Task index.
        task: usize,
        /// GPU index.
        gpu: usize,
        /// GPU occupancy generation at scheduling time: the engine bumps a
        /// per-GPU counter on every failure, so events scheduled before a
        /// fault are recognized as stale after the GPU recovers (a plain
        /// "is it failed" check would mistake them for live work).
        gen: u32,
    },
    /// A task finished its training computation on a GPU.
    TrainDone {
        /// Task index.
        task: usize,
        /// GPU index.
        gpu: usize,
        /// GPU occupancy generation (see `SwitchDone::gen`).
        gen: u32,
    },
    /// A round's gradient synchronization completed at the PS.
    SyncDone {
        /// Job index.
        job: usize,
        /// Round index.
        round: u32,
    },
    /// A GPU fails (failure injection); transient faults schedule a
    /// matching [`Event::GpuRecovery`].
    GpuFailure {
        /// GPU index.
        gpu: usize,
    },
    /// A transiently-failed GPU rejoins the cluster (fault injection): it
    /// re-enters the idle set with cold caches and the policy is notified
    /// via [`crate::policy::Policy::on_gpu_recovery`].
    GpuRecovery {
        /// GPU index.
        gpu: usize,
    },
}

/// Min-heap of timestamped events with deterministic tie-breaking and O(1)
/// cancellation by sequence number.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    /// Event payloads, indexed by sequence number; `None` marks a
    /// cancelled (tombstoned) event whose heap key is skipped at pop.
    slots: Vec<Option<Event>>,
    /// Live (pushed, not yet popped or cancelled) events.
    live: usize,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedule an event; the returned sequence number is a handle for
    /// [`EventQueue::cancel`].
    pub fn push(&mut self, at: SimTime, event: Event) -> u64 {
        let seq = self.slots.len() as u64;
        self.heap.push(Reverse((at, seq)));
        self.slots.push(Some(event));
        self.live += 1;
        seq
    }

    /// Cancel a scheduled event by its sequence number. Returns the event
    /// if it was still pending (already-fired or already-cancelled handles
    /// are a no-op returning `None`).
    pub fn cancel(&mut self, seq: u64) -> Option<Event> {
        let slot = self.slots.get_mut(seq as usize)?;
        let event = slot.take()?;
        self.live -= 1;
        Some(event)
    }

    /// Pop the earliest surviving event.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        while let Some(Reverse((t, seq))) = self.heap.pop() {
            if let Some(event) = self.slots[seq as usize].take() {
                self.live -= 1;
                return Some((t, event));
            }
        }
        None
    }

    /// Events still queued (cancelled events excluded).
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), Event::JobArrival { job: 3 });
        q.push(SimTime::from_secs(1), Event::JobArrival { job: 1 });
        q.push(SimTime::from_secs(2), Event::JobArrival { job: 2 });
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::JobArrival { job } => job,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for job in 0..10 {
            q.push(t, Event::JobArrival { job });
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::JobArrival { job } => job,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, Event::SyncDone { job: 0, round: 0 });
        q.push(
            SimTime::ZERO,
            Event::TrainDone {
                task: 0,
                gpu: 0,
                gen: 0,
            },
        );
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn cancelled_events_are_skipped_and_uncounted() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_secs(1), Event::JobArrival { job: 1 });
        let b = q.push(SimTime::from_secs(2), Event::JobArrival { job: 2 });
        q.push(SimTime::from_secs(3), Event::JobArrival { job: 3 });
        assert_eq!(q.cancel(b), Some(Event::JobArrival { job: 2 }));
        assert_eq!(q.cancel(b), None, "double cancel is a no-op");
        assert_eq!(q.len(), 2);
        assert_eq!(
            q.pop(),
            Some((SimTime::from_secs(1), Event::JobArrival { job: 1 }))
        );
        assert_eq!(q.cancel(a), None, "cancelling a fired event is a no-op");
        assert_eq!(
            q.pop(),
            Some((SimTime::from_secs(3), Event::JobArrival { job: 3 }))
        );
        assert!(q.is_empty());
    }
}
